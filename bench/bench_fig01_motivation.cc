// Figure 1: motivation — CCEH and Level hashing fail to scale on PM for
// both inserts and (even read-only) searches. Reproduces the two panels of
// the figure as throughput-vs-threads series.
//
// Expected shape: insert throughput flattens for both baselines as threads
// grow (PM write bandwidth + locking); search scales sub-linearly because
// every probe writes the PM-resident read locks.

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig01_motivation");

  for (api::IndexKind kind : {api::IndexKind::kCCEH, api::IndexKind::kLevel}) {
    for (int threads : config.thread_counts) {
      DashOptions opts;
      // Insert panel.
      {
        TableHandle h = MakeTable(kind, config, opts);
        Preload(h.table.get(), config.Preload());
        const PhaseResult r =
            InsertPhase(h.table.get(), config.Preload(), config.Ops(), threads);
        PrintRow("fig01_motivation", api::IndexKindName(kind), "insert",
                 threads, r);
      }
      // Search panel.
      {
        TableHandle h = MakeTable(kind, config, opts);
        const uint64_t n = config.Preload() + config.Ops();
        Preload(h.table.get(), n);
        const PhaseResult r =
            PositiveSearchPhase(h.table.get(), n, config.Ops(), threads);
        PrintRow("fig01_motivation", api::IndexKindName(kind), "search",
                 threads, r);
      }
    }
  }
  return 0;
}
