// Figure 9: effect of fingerprinting in Dash-EH, with fixed-length (left)
// and variable-length (right) keys, multi-threaded.
//
// Expected shape: largest gains on negative search (no fingerprint match →
// zero record probes), moderate on positive search / insert (uniqueness
// check); much larger across the board for variable-length keys, where
// every skipped probe avoids a pointer dereference.

#include <thread>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig09_fingerprint");
  const int threads = config.thread_counts.back();
  const uint64_t preload = config.Preload();
  const uint64_t ops = config.Scaled(190'000'000) / 4;

  for (bool fingerprints : {false, true}) {
    DashOptions opts;
    opts.use_fingerprints = fingerprints;
    const char* tag = fingerprints ? "with_fp" : "without_fp";

    TableHandle h = MakeTable(api::IndexKind::kDashEH, config, opts);
    Preload(h.table.get(), preload);
    PrintRow("fig09_fixed", tag, "insert", threads,
             InsertPhase(h.table.get(), preload, ops, threads));
    PrintRow("fig09_fixed", tag, "pos_search", threads,
             PositiveSearchPhase(h.table.get(), preload, ops, threads));
    PrintRow("fig09_fixed", tag, "neg_search", threads,
             NegativeSearchPhase(h.table.get(), preload, ops, threads));
    PrintRow("fig09_fixed", tag, "delete", threads,
             DeletePhase(h.table.get(), std::min(preload, ops), threads));
  }
  return 0;
}
