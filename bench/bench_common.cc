#include "bench_common.h"

#include <pthread.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace dash::bench {

namespace {

void PinToCore(int core) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % static_cast<int>(std::thread::hardware_concurrency()), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

std::string UniquePoolPath(const std::string& dir) {
  static int counter = 0;
  return dir + "/dash_bench_" + std::to_string(getpid()) + "_" +
         std::to_string(counter++);
}

}  // namespace

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  config.pool_dir = access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = std::strtod(arg + 8, nullptr);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.thread_counts.clear();
      const char* p = arg + 10;
      while (*p != '\0') {
        config.thread_counts.push_back(std::atoi(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strncmp(arg, "--pool-gb=", 10) == 0) {
      config.pool_gb = std::strtoul(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--pool-dir=", 11) == 0) {
      config.pool_dir = arg + 11;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      config.shards = std::strtoul(arg + 9, nullptr, 10);
    }
  }
  if (const char* env = std::getenv("DASH_BENCH_SCALE")) {
    config.scale = std::strtod(env, nullptr);
  }
  return config;
}

TableHandle::~TableHandle() {
  if (table != nullptr) table->CloseClean();
  table.reset();
  if (pool != nullptr) pool->CloseClean();
  pool.reset();
  if (!path.empty()) std::remove(path.c_str());
}

TableHandle MakeTable(api::IndexKind kind, const BenchConfig& config,
                      const DashOptions& options) {
  TableHandle handle;
  handle.path = UniquePoolPath(config.pool_dir);
  std::remove(handle.path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;
  handle.pool = pmem::PmPool::Create(handle.path, pool_options);
  if (handle.pool == nullptr) {
    std::fprintf(stderr, "cannot create pool at %s\n", handle.path.c_str());
    std::exit(1);
  }
  handle.epochs = std::make_unique<epoch::EpochManager>();
  handle.table =
      api::CreateKvIndex(kind, handle.pool.get(), handle.epochs.get(), options);
  return handle;
}

StoreHandle::~StoreHandle() { Reset(); }

void StoreHandle::Reset() {
  if (store != nullptr) store->CloseClean();
  store.reset();
  if (prefix.empty()) return;  // default-constructed or moved-from
  for (size_t i = 0; i < shards; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
  prefix.clear();
  shards = 0;
}

StoreHandle MakeShardedStore(api::IndexKind kind, size_t shards,
                             const BenchConfig& config,
                             const DashOptions& options,
                             const api::AsyncOptions& async) {
  StoreHandle handle;
  handle.prefix = UniquePoolPath(config.pool_dir) + "_store";
  handle.shards = shards;
  api::ShardedStoreOptions store_options;
  store_options.kind = kind;
  store_options.shards = shards;
  store_options.path_prefix = handle.prefix;
  store_options.shard_pool_size =
      std::max<size_t>((config.pool_gb << 30) / shards, 1ull << 30);
  store_options.table = options;
  store_options.async = async;
  handle.store = api::ShardedStore::Open(store_options);
  if (handle.store == nullptr) {
    std::fprintf(stderr, "cannot create sharded store at %s\n",
                 handle.prefix.c_str());
    std::exit(1);
  }
  return handle;
}

PhaseResult RunParallel(
    int threads, uint64_t total_ops,
    const std::function<void(int, uint64_t, uint64_t)>& fn) {
  pmem::ResetPmStats();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const uint64_t per_thread = total_ops / threads;
  for (int t = 0; t < threads; ++t) {
    const uint64_t begin = t * per_thread;
    const uint64_t end = (t == threads - 1) ? total_ops : begin + per_thread;
    workers.emplace_back([&, t, begin, end] {
      PinToCore(t);
      fn(t, begin, end);
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  PhaseResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.mops = static_cast<double>(total_ops) / result.seconds / 1e6;
  const pmem::PmStats stats = pmem::AggregatePmStats();
  result.clwb_per_op =
      static_cast<double>(stats.clwb) / static_cast<double>(total_ops);
  result.reads_per_op =
      static_cast<double>(stats.read_probes) / static_cast<double>(total_ops);
  result.lockwrites_per_op =
      static_cast<double>(stats.nt_stores) / static_cast<double>(total_ops);
  return result;
}

void Preload(api::KvIndex* table, uint64_t n, int threads) {
  RunParallel(threads, n, [table](int, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      table->Insert(i + 1, i + 1);
    }
  });
}

PhaseResult InsertPhase(api::KvIndex* table, uint64_t base, uint64_t n,
                        int threads) {
  return RunParallel(threads, n,
                     [table, base](int, uint64_t begin, uint64_t end) {
                       for (uint64_t i = begin; i < end; ++i) {
                         table->Insert(base + i + 1, i);
                       }
                     });
}

PhaseResult PositiveSearchPhase(api::KvIndex* table, uint64_t preloaded,
                                uint64_t ops, int threads) {
  return RunParallel(
      threads, ops, [table, preloaded](int, uint64_t begin, uint64_t end) {
        uint64_t value;
        for (uint64_t i = begin; i < end; ++i) {
          const uint64_t key = UniformKey(i, preloaded);
          table->Search(key, &value);
        }
      });
}

PhaseResult NegativeSearchPhase(api::KvIndex* table, uint64_t preloaded,
                                uint64_t ops, int threads) {
  // Keys strictly above the loaded range never exist.
  const uint64_t absent_base = preloaded * 16 + 1'000'000'000ull;
  return RunParallel(
      threads, ops, [table, absent_base](int, uint64_t begin, uint64_t end) {
        uint64_t value;
        for (uint64_t i = begin; i < end; ++i) {
          table->Search(absent_base + i, &value);
        }
      });
}

PhaseResult DeletePhase(api::KvIndex* table, uint64_t n, int threads) {
  return RunParallel(threads, n, [table](int, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      table->Delete(i + 1);
    }
  });
}

PhaseResult MixedPhase(api::KvIndex* table, uint64_t preloaded, uint64_t ops,
                       int threads) {
  const uint64_t insert_base = preloaded * 4;
  return RunParallel(
      threads, ops,
      [table, preloaded, insert_base](int, uint64_t begin, uint64_t end) {
        uint64_t value;
        for (uint64_t i = begin; i < end; ++i) {
          if (i % 5 == 0) {  // 20% inserts
            table->Insert(insert_base + i, i);
          } else {  // 80% searches
            const uint64_t key = UniformKey(i, preloaded);
            table->Search(key, &value);
          }
        }
      });
}

void PrintHeader(const std::string& bench) {
  std::printf("# %s\n", bench.c_str());
  std::printf("%-28s %-10s %-12s %8s %10s %10s %10s %12s\n", "bench", "table",
              "op", "threads", "Mops/s", "clwb/op", "reads/op", "lockwr/op");
}

void PrintRow(const std::string& bench, const std::string& table,
              const std::string& op, int threads, const PhaseResult& result) {
  std::printf("%-28s %-10s %-12s %8d %10.3f %10.2f %10.2f %12.2f\n",
              bench.c_str(), table.c_str(), op.c_str(), threads, result.mops,
              result.clwb_per_op, result.reads_per_op,
              result.lockwrites_per_op);
  std::fflush(stdout);
}

}  // namespace dash::bench
