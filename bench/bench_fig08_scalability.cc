// Figure 8(a-e): scalability of all four tables under insert, positive
// search, negative search, delete, and the 20/80 mixed workload, across a
// range of thread counts.
//
// Expected shape: Dash-EH/LH scale near-linearly for searches (optimistic
// locking: no PM writes to read); CCEH and Level flatten (pessimistic
// locks). For inserts Dash leads but none scale perfectly (inherent random
// PM writes).

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig08_scalability");

  const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kLevel};

  for (api::IndexKind kind : kinds) {
    for (int threads : config.thread_counts) {
      DashOptions opts;
      // (a) insert
      {
        TableHandle h = MakeTable(kind, config, opts);
        Preload(h.table.get(), config.Preload());
        PrintRow("fig08a", api::IndexKindName(kind), "insert", threads,
                 InsertPhase(h.table.get(), config.Preload(), config.Ops(),
                             threads));
      }
      // (b)-(d) search/delete phases share one preloaded table.
      {
        TableHandle h = MakeTable(kind, config, opts);
        const uint64_t n = config.Preload() + config.Ops();
        Preload(h.table.get(), n);
        PrintRow("fig08b", api::IndexKindName(kind), "pos_search", threads,
                 PositiveSearchPhase(h.table.get(), n, config.Ops(), threads));
        PrintRow("fig08c", api::IndexKindName(kind), "neg_search", threads,
                 NegativeSearchPhase(h.table.get(), n, config.Ops(), threads));
        PrintRow("fig08d", api::IndexKindName(kind), "delete", threads,
                 DeletePhase(h.table.get(), config.Ops(), threads));
      }
      // (e) mixed 20% insert / 80% search, preloaded with 60M-scaled.
      {
        TableHandle h = MakeTable(kind, config, opts);
        const uint64_t preload = config.Scaled(60'000'000);
        Preload(h.table.get(), preload);
        PrintRow("fig08e", api::IndexKindName(kind), "mixed", threads,
                 MixedPhase(h.table.get(), preload, config.Ops(), threads));
      }
    }
  }
  return 0;
}
