// Batched vs single-op throughput (the batch pipeline with software
// prefetching, see src/util/prefetch.h and the MultiSearch/MultiInsert
// implementations in each table).
//
// For every table kind the same uniform-random key stream is driven once
// through the single-op loop and once through Multi* batches; the batch
// path should win by overlapping memory stalls across the group and by
// amortizing one epoch guard over the batch. Results are printed as the
// usual human-readable rows plus one JSON line per measurement (and one
// speedup summary line per table) for the perf trajectory.
//
// Flags: --preload=N --ops=M --batch=B (defaults 3M / 2M / 16) plus the
// common --pool-gb/--pool-dir flags. --pipeline={group,amac,both}
// (default both) A/B-tests the PR-1 group pipeline against the
// state-machine AMAC engine on the same tables; AMAC measurements carry
// the engine's per-state suspend/resume counters in their JSON lines.
// Every per-table measurement also carries the read-path lock telemetry
// deltas (optimistic retries, version conflicts, exclusive lock
// acquisitions — IndexStats), which is how "searches write no lock word"
// is observable: search-only phases report "write_locks":0.
// --check-speedup=X exits non-zero if any table's batch search speedup
// over single-op falls below X on the selected pipeline (CI gate).
//
// --workload={a,b,c,d,f} switches to the YCSB-style mixed mode instead:
// 50/50 (a), 95/5 (b), 100/0 (c) search/update, 95/5 read-latest/insert
// (d), or 50/50 read/RMW (f) over a zipfian key choice
// (theta 0.99) against the preloaded table, run at each --threads value,
// single-op loop vs MultiExecute descriptor batches per pipeline. This
// measures the optimistic read path under write contention rather than
// in a pure search phase.
// --shards=N (N >= 1) switches to the ShardedStore facade: the same key
// stream runs once through single-op calls and once through mixed-op
// MultiExecute descriptor batches that are scattered/regrouped per shard
// (sequential caller-thread execution, the PR2 baseline).
//
// --shards=N --threads=K engages the async serving mode instead: K
// submitter threads drive SubmitExecute against the per-shard worker
// executor, each keeping --window=W batches in flight, and the same
// mixed stream is measured on the sequential caller-thread path for
// comparison. Results (plus machine context) are appended as JSON to
// --json-out (default BENCH_async.json) — the perf-trajectory artifact.
//
// --churn[=MULT] (default MULT=4) switches to the hybrid-tier log
// compaction A/B instead: preload, live-set downsize to a sixteenth, then
// MULT x --preload uniform updates over the survivors — once with
// compaction off (log space stays at its peak) and once with a
// background compactor racing the storm. Each leg reports storm
// throughput, live-space amplification, and post-churn dirty-reopen
// time; a churn-summary JSON line carries the on/off ratios the CI
// churn gate asserts on. The mode also emits the SWAR-vs-scalar
// fingerprint-probe microbench datapoint (op "fp_probe").

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "hybrid/hybrid_table.h"
#include "util/amac.h"
#include "util/hash.h"
#include "util/rand.h"
#include "util/zipf.h"

namespace dash::bench {
namespace {

constexpr size_t kMaxBatch = 256;

const char* PipelineName(BatchPipeline p) {
  return p == BatchPipeline::kAmac ? "amac" : "group";
}

// One JSON fragment with the AMAC engine's per-op suspend/resume
// telemetry (drained between phases; empty for the group pipeline, whose
// measurements carry no counters).
std::string TelemetryJson(const util::AmacTelemetry& t) {
  if (t.ops == 0) return "";
  char buf[512];
  const double ops = static_cast<double>(t.ops);
  std::snprintf(
      buf, sizeof(buf),
      ",\"amac\":{\"steps_per_op\":%.2f,\"suspends_per_op\":%.2f,"
      "\"suspends\":{\"hash\":%.2f,\"dir_probe\":%.2f,\"seg_resolve\":%.2f,"
      "\"bucket_probe\":%.2f,\"execute\":%.2f,\"retry\":%.2f}}",
      static_cast<double>(t.steps) / ops,
      static_cast<double>(t.TotalSuspends()) / ops,
      static_cast<double>(t.suspends[0]) / ops,
      static_cast<double>(t.suspends[1]) / ops,
      static_cast<double>(t.suspends[2]) / ops,
      static_cast<double>(t.suspends[3]) / ops,
      static_cast<double>(t.suspends[4]) / ops,
      static_cast<double>(t.suspends[5]) / ops);
  return buf;
}

// Read-path lock telemetry snapshot (cumulative per table); JSON lines
// report the per-phase delta. A search-only phase on the optimistic
// tables must show write_locks == 0 — the observable form of "searches
// perform zero PM lock-word writes".
struct LockCounters {
  uint64_t opt_retries = 0;
  uint64_t version_conflicts = 0;
  uint64_t write_locks = 0;
  uint64_t bucket_acqs = 0;
  uint64_t bucket_spins = 0;
};

LockCounters SnapshotLockCounters(api::KvIndex* table) {
  const api::IndexStats s = table->Stats();
  return {s.opt_retries, s.version_conflicts, s.write_locks,
          s.bucket_lock_acquisitions, s.bucket_lock_contended_spins};
}

std::string LockJson(const LockCounters& before, const LockCounters& after) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      ",\"lock\":{\"opt_retries\":%llu,\"version_conflicts\":%llu,"
      "\"write_locks\":%llu,\"bucket_acqs\":%llu,\"bucket_spins\":%llu}",
      static_cast<unsigned long long>(after.opt_retries - before.opt_retries),
      static_cast<unsigned long long>(after.version_conflicts -
                                      before.version_conflicts),
      static_cast<unsigned long long>(after.write_locks -
                                      before.write_locks),
      static_cast<unsigned long long>(after.bucket_acqs -
                                      before.bucket_acqs),
      static_cast<unsigned long long>(after.bucket_spins -
                                      before.bucket_spins));
  return buf;
}

PhaseResult BatchSearchPhase(api::KvIndex* table, uint64_t preloaded,
                             uint64_t ops, size_t batch) {
  return RunParallel(
      1, ops, [table, preloaded, batch](int, uint64_t begin, uint64_t end) {
        uint64_t keys[kMaxBatch];
        uint64_t values[kMaxBatch];
        api::Status statuses[kMaxBatch];
        uint64_t i = begin;
        while (i < end) {
          const size_t n =
              std::min<uint64_t>(batch, end - i);
          for (size_t j = 0; j < n; ++j) {
            keys[j] = UniformKey(i + j, preloaded);
          }
          table->MultiSearch(keys, n, values, statuses);
          i += n;
        }
      });
}

PhaseResult BatchInsertPhase(api::KvIndex* table, uint64_t base, uint64_t n,
                             size_t batch) {
  return RunParallel(
      1, n, [table, base, batch](int, uint64_t begin, uint64_t end) {
        uint64_t keys[kMaxBatch];
        uint64_t values[kMaxBatch];
        api::Status statuses[kMaxBatch];
        uint64_t i = begin;
        while (i < end) {
          const size_t count = std::min<uint64_t>(batch, end - i);
          for (size_t j = 0; j < count; ++j) {
            keys[j] = base + i + j + 1;
            values[j] = i + j;
          }
          table->MultiInsert(keys, values, count, statuses);
          i += count;
        }
      });
}

// ---- YCSB-style mixed workload mode (--workload={a,b,c,d,f}) ----
//
// 50/50 (a), 95/5 (b) or 100/0 (c) search/update over a zipfian key
// choice (theta 0.99, YCSB's default skew) against the preloaded key
// space. Workload d is read-latest: 95% reads of the zipf rank counted
// back from the highest inserted key, 5% inserts extending the key
// space. Workload f is read-modify-write: 50% plain reads, 50% RMW
// pairs (a Search and an Update of the same key in one request —
// MultiExecute runs the search group before the update group within a
// batch, so each pair reads then writes). Both phases replay identical
// per-thread op streams (fixed generator seeds), so single vs batch
// compares only the execution path.

struct WorkloadSpec {
  int read_pct = 50;
  bool read_latest = false;  // d: reads target newest keys, writes insert
  bool rmw = false;          // f: each write is a search+update pair
};

// Read-latest key choice: zipf rank 0 (the most likely) maps to the
// newest inserted key, rank r to the r-th newest. `hi` is the shared
// high-water mark of inserted keys.
inline uint64_t LatestKey(uint64_t rank, uint64_t hi) {
  return hi > rank ? hi - rank : 1;
}

PhaseResult WorkloadSinglePhase(api::KvIndex* table, uint64_t ops,
                                int threads, const WorkloadSpec& spec,
                                const util::ZipfGenerator& zipf_proto,
                                std::atomic<uint64_t>* max_key) {
  return RunParallel(
      threads, ops,
      [table, &spec, &zipf_proto, max_key](int t, uint64_t begin,
                                           uint64_t end) {
        util::ZipfGenerator zipf(zipf_proto, 42 + t);
        util::Xoshiro256 op_rng(1000 + t);
        uint64_t value = 0;
        for (uint64_t i = begin; i < end; ++i) {
          const bool is_read =
              op_rng.NextBounded(100) < static_cast<uint64_t>(spec.read_pct);
          if (spec.read_latest) {
            if (is_read) {
              const uint64_t hi =
                  max_key->load(std::memory_order_relaxed);
              table->Search(LatestKey(zipf.Next(), hi), &value);
            } else {
              const uint64_t key =
                  max_key->fetch_add(1, std::memory_order_relaxed) + 1;
              table->Insert(key, i);
            }
            continue;
          }
          const uint64_t key = zipf.Next() + 1;
          if (is_read) {
            table->Search(key, &value);
          } else if (spec.rmw) {
            table->Search(key, &value);
            table->Update(key, value + 1);
          } else {
            table->Update(key, i);
          }
        }
      });
}

PhaseResult WorkloadBatchPhase(api::KvIndex* table, uint64_t ops,
                               int threads, const WorkloadSpec& spec,
                               size_t batch,
                               const util::ZipfGenerator& zipf_proto,
                               std::atomic<uint64_t>* max_key) {
  return RunParallel(
      threads, ops,
      [table, &spec, batch, &zipf_proto, max_key](int t, uint64_t begin,
                                                  uint64_t end) {
        util::ZipfGenerator zipf(zipf_proto, 42 + t);
        util::Xoshiro256 op_rng(1000 + t);
        api::Op descriptors[kMaxBatch];
        api::Status statuses[kMaxBatch];
        uint64_t i = begin;
        while (i < end) {
          // One stream step can emit two descriptors (an RMW pair), so
          // fill until the next step would not fit.
          const uint64_t steps = std::min<uint64_t>(batch, end - i);
          size_t n = 0;
          uint64_t taken = 0;
          while (taken < steps && n + 2 <= kMaxBatch &&
                 n < batch) {
            const bool is_read =
                op_rng.NextBounded(100) <
                static_cast<uint64_t>(spec.read_pct);
            if (spec.read_latest) {
              if (is_read) {
                const uint64_t hi =
                    max_key->load(std::memory_order_relaxed);
                descriptors[n++] =
                    api::Op::Search(LatestKey(zipf.Next(), hi));
              } else {
                const uint64_t key =
                    max_key->fetch_add(1, std::memory_order_relaxed) + 1;
                descriptors[n++] = api::Op::Insert(key, i + taken);
              }
            } else {
              const uint64_t key = zipf.Next() + 1;
              if (is_read) {
                descriptors[n++] = api::Op::Search(key);
              } else if (spec.rmw) {
                // Search lands in the batch's read group (runs first),
                // the update in the write group: read-then-write.
                descriptors[n++] = api::Op::Search(key);
                descriptors[n++] = api::Op::Update(key, i + taken);
              } else {
                descriptors[n++] = api::Op::Update(key, i + taken);
              }
            }
            ++taken;
          }
          table->MultiExecute(descriptors, n, statuses);
          i += taken;
        }
      });
}

void PrintJson(const std::string& table, const std::string& op,
               const std::string& mode, size_t batch,
               const PhaseResult& result, size_t shards = 0,
               const std::string& pipeline = "",
               const std::string& extra = "", int threads = 1) {
  const std::string pipeline_field =
      pipeline.empty() ? "" : "\"pipeline\":\"" + pipeline + "\",";
  std::printf(
      "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"op\":\"%s\","
      "\"mode\":\"%s\",%s\"batch\":%zu,\"threads\":%d,\"shards\":%zu,"
      "\"mops\":%.4f,"
      "\"reads_per_op\":%.2f,\"clwb_per_op\":%.2f%s}\n",
      table.c_str(), op.c_str(), mode.c_str(), pipeline_field.c_str(),
      batch, threads, shards, result.mops, result.reads_per_op,
      result.clwb_per_op, extra.c_str());
  std::fflush(stdout);
}

// Maps a YCSB workload letter onto its mix. False on an unknown letter.
bool ResolveWorkload(const std::string& workload, WorkloadSpec* spec) {
  if (workload == "a") {
    spec->read_pct = 50;
  } else if (workload == "b") {
    spec->read_pct = 95;
  } else if (workload == "c") {
    spec->read_pct = 100;
  } else if (workload == "d") {
    spec->read_pct = 95;
    spec->read_latest = true;
  } else if (workload == "f") {
    spec->read_pct = 50;
    spec->rmw = true;
  } else {
    return false;
  }
  return true;
}

// The --workload={a,b,c,d,f} mode: for every table, at every --threads
// value, run the zipfian mix once through the single-op loop and once
// through MultiExecute descriptor batches per pipeline. JSON lines carry
// the lock-telemetry deltas, so the contention behaviour of the
// optimistic read path (retries/conflicts vs exclusive acquisitions) is
// recorded alongside throughput.
int RunWorkloadMode(const std::string& workload,
                    const std::vector<BatchPipeline>& pipelines,
                    const std::string& only_table, uint64_t preload,
                    uint64_t ops, size_t batch, const BenchConfig& config) {
  WorkloadSpec spec;
  if (!ResolveWorkload(workload, &spec)) {
    std::fprintf(stderr, "unknown --workload=%s (a|b|c|d|f)\n",
                 workload.c_str());
    return 1;
  }
  const std::string opname = "ycsb-" + workload;
  for (api::IndexKind kind :
       {api::IndexKind::kDashEH, api::IndexKind::kDashLH,
        api::IndexKind::kCCEH, api::IndexKind::kLevel,
        api::IndexKind::kHybrid}) {
    const std::string name = api::IndexKindName(kind);
    if (!only_table.empty() && only_table != name) continue;
    DashOptions options;
    TableHandle handle = MakeTable(kind, config, options);
    Preload(handle.table.get(), preload, /*threads=*/1);
    api::KvIndex* table = handle.table.get();
    // One zeta computation (O(preload) pow calls) outside every timed
    // region; the per-thread generators derive from it.
    const util::ZipfGenerator zipf_proto(preload, 0.99, 0);
    // Read-latest high-water mark; inserts (workload d) push it forward.
    std::atomic<uint64_t> max_key{preload};
    for (int threads : config.thread_counts) {
      LockCounters lc0 = SnapshotLockCounters(table);
      const PhaseResult single = WorkloadSinglePhase(
          table, ops, threads, spec, zipf_proto, &max_key);
      LockCounters lc1 = SnapshotLockCounters(table);
      PrintRow("bench_batch", name, opname + "-single", threads, single);
      PrintJson(name, opname, "single", 1, single, 0, "", LockJson(lc0, lc1),
                threads);
      for (BatchPipeline p : pipelines) {
        const char* pname = PipelineName(p);
        table->SetBatchPipeline(p);
        util::AmacTelemetry::DrainAll();
        lc0 = SnapshotLockCounters(table);
        const PhaseResult batched = WorkloadBatchPhase(
            table, ops, threads, spec, batch, zipf_proto, &max_key);
        lc1 = SnapshotLockCounters(table);
        const auto tele = util::AmacTelemetry::DrainAll();
        PrintRow("bench_batch", name,
                 opname + "-batch-" + pname, threads, batched);
        PrintJson(name, opname, "batch", batch, batched, 0, pname,
                  TelemetryJson(tele) + LockJson(lc0, lc1), threads);
        std::printf(
            "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"workload\":"
            "\"%s\",\"pipeline\":\"%s\",\"threads\":%d,\"batch\":%zu,"
            "\"read_pct\":%d,\"mixed_speedup_vs_single\":%.3f}\n",
            name.c_str(), workload.c_str(), pname, threads, batch,
            spec.read_pct, batched.mops / single.mops);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

// ---- ShardedStore phases (mixed-op descriptor batches) ----

void ShardedPreload(api::ShardedStore* store, uint64_t n) {
  RunParallel(1, n, [store](int, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) store->Insert(i + 1, i + 1);
  });
}

PhaseResult ShardedSingleSearchPhase(api::ShardedStore* store,
                                     uint64_t preloaded, uint64_t ops) {
  return RunParallel(1, ops,
                     [store, preloaded](int, uint64_t begin, uint64_t end) {
                       uint64_t value = 0;
                       for (uint64_t i = begin; i < end; ++i) {
                         store->Search(UniformKey(i, preloaded), &value);
                       }
                     });
}

PhaseResult ShardedBatchSearchPhase(api::ShardedStore* store,
                                    uint64_t preloaded, uint64_t ops,
                                    size_t batch) {
  return RunParallel(
      1, ops,
      [store, preloaded, batch](int, uint64_t begin, uint64_t end) {
        uint64_t keys[kMaxBatch];
        uint64_t values[kMaxBatch];
        api::Status statuses[kMaxBatch];
        uint64_t i = begin;
        while (i < end) {
          const size_t n = std::min<uint64_t>(batch, end - i);
          for (size_t j = 0; j < n; ++j) {
            keys[j] = UniformKey(i + j, preloaded);
          }
          store->MultiSearch(keys, n, values, statuses);
          i += n;
        }
      });
}

// 50% search / 25% update / 25% fresh insert mixed stream; both modes
// derive the identical op stream from the index, so the comparison only
// measures the descriptor batch path.
api::Op MixedOp(uint64_t i, uint64_t preloaded, uint64_t insert_base) {
  const uint64_t r = util::Mix64(i);
  switch (r & 3) {
    case 0:
    case 1: return api::Op::Search(UniformKey(i, preloaded));
    case 2: return api::Op::Update(UniformKey(i, preloaded), i);
    default: return api::Op::Insert(insert_base + i + 1, i);
  }
}

PhaseResult ShardedSingleMixedPhase(api::ShardedStore* store,
                                    uint64_t preloaded, uint64_t insert_base,
                                    uint64_t ops) {
  return RunParallel(
      1, ops,
      [store, preloaded, insert_base](int, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          api::Op op = MixedOp(i, preloaded, insert_base);
          switch (op.type) {
            case api::OpType::kSearch: store->Search(op.key, &op.value); break;
            case api::OpType::kInsert: store->Insert(op.key, op.value); break;
            case api::OpType::kUpdate: store->Update(op.key, op.value); break;
            case api::OpType::kDelete: store->Delete(op.key); break;
          }
        }
      });
}

PhaseResult ShardedBatchMixedPhase(api::ShardedStore* store,
                                   uint64_t preloaded, uint64_t insert_base,
                                   uint64_t ops, size_t batch) {
  return RunParallel(
      1, ops,
      [store, preloaded, insert_base, batch](int, uint64_t begin,
                                             uint64_t end) {
        api::Op descriptors[kMaxBatch];
        api::Status statuses[kMaxBatch];
        uint64_t i = begin;
        while (i < end) {
          const size_t n = std::min<uint64_t>(batch, end - i);
          for (size_t j = 0; j < n; ++j) {
            descriptors[j] = MixedOp(i + j, preloaded, insert_base);
          }
          store->MultiExecute(descriptors, n, statuses);
          i += n;
        }
      });
}

// ---- async serving mode (per-shard workers + windowed submission) ----

// K submitter threads drive mixed descriptor batches through
// SubmitExecute, each keeping `window` futures in flight so the shard
// queues stay busy; per-shard FIFO makes the overlap safe.
PhaseResult AsyncMixedPhase(api::ShardedStore* store, uint64_t preloaded,
                            uint64_t insert_base, uint64_t ops, size_t batch,
                            int clients, size_t window) {
  return RunParallel(
      clients, ops,
      [store, preloaded, insert_base, batch, window](int, uint64_t begin,
                                                     uint64_t end) {
        struct Slot {
          api::Op ops[kMaxBatch];
          api::Status statuses[kMaxBatch];
          api::BatchFuture future;
          size_t n = 0;
        };
        std::vector<Slot> slots(window);
        size_t w = 0;
        uint64_t i = begin;
        while (i < end) {
          Slot& slot = slots[w++ % window];
          if (slot.future.valid()) slot.future.Wait();
          slot.n = std::min<uint64_t>(batch, end - i);
          for (size_t j = 0; j < slot.n; ++j) {
            slot.ops[j] = MixedOp(i + j, preloaded, insert_base);
          }
          slot.future =
              store->SubmitExecute(slot.ops, slot.n, slot.statuses);
          i += slot.n;
        }
        for (Slot& slot : slots) {
          if (slot.future.valid()) slot.future.Wait();
        }
      });
}

// Sequential baseline vs per-shard-worker async submission on identical
// mixed streams, reported to stdout and appended to `json_path`.
int RunAsyncServingMode(api::IndexKind kind, size_t shards, int clients,
                        size_t batch, size_t window, uint64_t preload,
                        uint64_t ops, const BenchConfig& config,
                        const std::string& json_path) {
  const std::string name =
      std::string(api::IndexKindName(kind)) + "-x" + std::to_string(shards);
  DashOptions options;
  const uint64_t mixed_ops = std::min<uint64_t>(ops, preload * 2);

  // Baseline: the PR2 facade — every shard sub-batch executes
  // sequentially on the single caller thread.
  PhaseResult seq;
  {
    api::AsyncOptions sequential;
    sequential.workers = false;
    StoreHandle handle =
        MakeShardedStore(kind, shards, config, options, sequential);
    ShardedPreload(handle.store.get(), preload);
    seq = ShardedBatchMixedPhase(handle.store.get(), preload, preload,
                                 mixed_ops, batch);
    PrintRow("bench_batch", name, "mixed-seq", 1, seq);
    PrintJson(name, "mixed", "sequential", batch, seq, shards);
  }

  // Sync wrapper on the executor path (1 client, submit+wait per batch):
  // isolates the queue hand-off cost from the parallelism win. Runs on
  // its own store so its inserts do not skew the async phase below.
  PhaseResult wrapper;
  {
    StoreHandle handle = MakeShardedStore(kind, shards, config, options);
    ShardedPreload(handle.store.get(), preload);
    wrapper = ShardedBatchMixedPhase(handle.store.get(), preload, preload,
                                     mixed_ops, batch);
    PrintRow("bench_batch", name, "mixed-wrapper", 1, wrapper);
    PrintJson(name, "mixed", "sync-wrapper", batch, wrapper, shards);
  }

  // Async: per-shard workers; K clients submit with a window of futures.
  // Fresh store preloaded identically to the sequential baseline, so the
  // headline speedup compares identical store states.
  PhaseResult async;
  {
    StoreHandle handle = MakeShardedStore(kind, shards, config, options);
    ShardedPreload(handle.store.get(), preload);
    async = AsyncMixedPhase(handle.store.get(), preload, preload,
                            mixed_ops, batch, clients, window);
    PrintRow("bench_batch", name, "mixed-async", clients, async);
    std::printf(
        "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"op\":\"mixed\","
        "\"mode\":\"async\",\"batch\":%zu,\"threads\":%d,\"shards\":%zu,"
        "\"window\":%zu,\"mops\":%.4f}\n",
        name.c_str(), batch, clients, shards, window, async.mops);
  }

  const double speedup = async.mops / seq.mops;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf(
      "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"shards\":%zu,"
      "\"clients\":%d,\"batch\":%zu,\"async_speedup_vs_sequential\":%.3f}"
      "\n",
      name.c_str(), shards, clients, batch, speedup);
  std::fflush(stdout);

  std::FILE* out = std::fopen(json_path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"bench\":\"bench_batch_async\",\"table\":\"%s\",\"shards\":%zu,"
      "\"clients\":%d,\"batch\":%zu,\"window\":%zu,\"hw_threads\":%u,"
      "\"preload\":%llu,\"ops\":%llu,\"seq_mops\":%.4f,"
      "\"sync_wrapper_mops\":%.4f,\"async_mops\":%.4f,"
      "\"async_speedup_vs_sequential\":%.3f}\n",
      api::IndexKindName(kind), shards, clients, batch, window, hw_threads,
      static_cast<unsigned long long>(preload),
      static_cast<unsigned long long>(mixed_ops), seq.mops, wrapper.mops,
      async.mops, speedup);
  std::fclose(out);
  std::printf("# async serving results appended to %s\n",
              json_path.c_str());
  return 0;
}

// ---- sustained-churn mode (--churn[=MULT]) ----
//
// Space behaviour of the hybrid tier's value log under update churn,
// A/B over DashOptions::compaction_trigger. Each leg preloads
// --preload records, deletes fifteen of every sixteen keys (the
// live-set downsize: pure update churn is space-bounded by epoch
// recycling alone — freed slots feed the very next append — so dead
// capacity only accumulates when the live set shrinks below the chain
// sizes built for its peak), then drives MULT x preload uniform updates
// over the survivors. Run under DASH_PM_READ_NS/DASH_PM_FLUSH_NS to
// model DCPMM: the reopen scan is charged per chunk line, which is the
// term compaction shrinks. The compaction leg races a background compactor thread
// against the storm, standing in for the ShardExecutor idle path; the
// baseline leg never compacts. Reported per leg: storm throughput,
// live-space amplification (log_chunk_bytes / live-bytes), and the
// post-churn dirty-reopen time (scan rebuild — a compacted log scans
// fewer chunks). The CI churn gate parses the summary line.

// The per-byte fingerprint compare loop the SWAR probe replaced, kept
// here as the A/B baseline. Both probes fold the matched slot index into
// the returned accumulator so neither loop can be optimized away.
uint64_t FpProbeScalar(uint64_t fps, uint8_t fp) {
  uint64_t acc = 0;
  for (uint64_t s = 0; s < 8; ++s) {
    if (static_cast<uint8_t>(fps >> (8 * s)) == fp) acc += s + 1;
  }
  return acc;
}

uint64_t FpProbeSwar(uint64_t fps, uint8_t fp) {
  uint64_t acc = 0;
  for (uint64_t m = hybrid::MatchFps(fps, fp); m != 0; m &= m - 1) {
    const uint64_t s = __builtin_ctzll(m) >> 3;
    // Mirror of the probe path's key compare behind the candidate mask
    // (SWAR may flag the byte above a true match; the compare strips it).
    if (static_cast<uint8_t>(fps >> (8 * s)) == fp) acc += s + 1;
  }
  return acc;
}

// Satellite A/B datapoint: the branch-free SWAR fingerprint probe
// (hybrid::MatchFps) vs the per-byte compare loop it replaced, over the
// same random (fps, fp) stream. One JSON line; ~1 in 32 probes carries a
// real match, like a bucket probe on a half-loaded table.
void RunFpProbeAB() {
  constexpr size_t kWords = 1 << 16;
  constexpr uint64_t kProbes = 1 << 24;
  std::vector<uint64_t> words(kWords);
  util::Xoshiro256 rng(0x5eed);
  for (auto& w : words) w = rng.Next();
  auto run = [&](uint64_t (*probe)(uint64_t, uint8_t)) {
    uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kProbes; ++i) {
      const uint64_t fps = words[i & (kWords - 1)];
      // Every 32nd probe aims at a byte actually present in the word.
      const uint8_t fp = (i & 31) == 0
                             ? static_cast<uint8_t>(fps >> ((i & 7) * 8))
                             : static_cast<uint8_t>(i * 0x9e);
      sink += probe(fps, fp);
    }
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    asm volatile("" : : "r"(sink));
    return ns / static_cast<double>(kProbes);
  };
  const double scalar_ns = run(FpProbeScalar);
  const double swar_ns = run(FpProbeSwar);
  std::printf(
      "{\"bench\":\"bench_batch\",\"op\":\"fp_probe\",\"probes\":%llu,"
      "\"scalar_ns\":%.3f,\"swar_ns\":%.3f,\"speedup\":%.2f}\n",
      static_cast<unsigned long long>(kProbes), scalar_ns, swar_ns,
      swar_ns > 0 ? scalar_ns / swar_ns : 0.0);
  std::fflush(stdout);
}

struct ChurnLeg {
  PhaseResult storm;
  double amplification = 0.0;
  double reopen_ms = 0.0;
  api::IndexStats stats;
};

// One leg's open table state; both legs stay open at once so their storm
// segments can interleave.
struct ChurnTable {
  std::string path;
  DashOptions options;
  std::unique_ptr<pmem::PmPool> pool;
  std::unique_ptr<epoch::EpochManager> epochs;
  std::unique_ptr<api::KvIndex> table;
};

ChurnTable OpenChurnTable(const BenchConfig& config, bool compaction) {
  static int counter = 0;
  ChurnTable t;
  t.path = config.pool_dir + "/dash_churn_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++);
  std::remove(t.path.c_str());
  t.options.compaction_trigger = compaction ? 0.25 : 0.0;
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;
  t.pool = pmem::PmPool::Create(t.path, pool_options);
  if (t.pool == nullptr) std::exit(1);
  t.epochs = std::make_unique<epoch::EpochManager>();
  t.table = api::CreateKvIndex(api::IndexKind::kHybrid, t.pool.get(),
                               t.epochs.get(), t.options);
  return t;
}

// Preload, live-set downsize (keep only keys divisible by sixteen), and —
// on the compaction leg — burn down the downsize backlog, so the timed
// storm measures the sustained cost of background compaction rather than
// the one-time catch-up (which the compactions/chunks_reclaimed telemetry
// still reports). The downsize is what makes the A/B meaningful: pure
// update churn is space-bounded by epoch recycling alone (freed slots
// feed the very next append); dead capacity accumulates when the live
// set shrinks below the chain sizes built for its peak — which is when
// compaction matters.
void PrepareChurn(ChurnTable& t, uint64_t records, int threads) {
  Preload(t.table.get(), records, threads);
  api::KvIndex* table = t.table.get();
  RunParallel(threads, records, [&](int, uint64_t begin, uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      if ((k + 1) % 16 != 0) table->Delete(k + 1);
    }
  });
  t.epochs->DrainAll();
  while (t.table->Compact()) {  // no-op when the trigger is 0
    t.epochs->DrainAll();
  }
}

double Amplification(const api::IndexStats& s, uint64_t live) {
  return static_cast<double>(s.log_chunk_bytes) /
         (static_cast<double>(live) * static_cast<double>(sizeof(uint64_t) * 4));
}

void PrintChurnLeg(const char* label, uint64_t records, uint64_t updates,
                   int threads, const ChurnLeg& leg) {
  std::printf(
      "{\"bench\":\"bench_batch\",\"op\":\"churn\",\"compaction\":%s,"
      "\"records\":%llu,\"live\":%llu,\"updates\":%llu,\"threads\":%d,"
      "\"update_mops\":%.4f,\"amplification\":%.3f,\"log_chunks\":%llu,"
      "\"log_chunk_bytes\":%llu,\"reopen_ms\":%.3f,\"dead_ratio\":%.3f,"
      "\"compactions\":%llu,\"chunks_reclaimed\":%llu,"
      "\"bytes_rewritten\":%llu}\n",
      label, static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(records / 16),
      static_cast<unsigned long long>(updates), threads, leg.storm.mops,
      leg.amplification,
      static_cast<unsigned long long>(leg.stats.log_chunks),
      static_cast<unsigned long long>(leg.stats.log_chunk_bytes),
      leg.reopen_ms, leg.stats.compaction_dead_ratio,
      static_cast<unsigned long long>(leg.stats.compactions),
      static_cast<unsigned long long>(leg.stats.compaction_chunks_reclaimed),
      static_cast<unsigned long long>(leg.stats.compaction_bytes_rewritten));
  std::fflush(stdout);
}

int RunChurnMode(const BenchConfig& config, uint64_t records,
                 uint64_t churn_mult) {
  const int threads =
      config.thread_counts.empty() ? 4 : config.thread_counts.back();
  const uint64_t updates = records * churn_mult;
  const uint64_t live = records / 16;
  RunFpProbeAB();

  ChurnTable off = OpenChurnTable(config, false);
  ChurnTable on = OpenChurnTable(config, true);
  PrepareChurn(off, records, threads);
  PrepareChurn(on, records, threads);

  // Background compactor over the compaction leg, interval-throttled
  // like the ShardExecutor idle path (compaction_interval_ms) rather
  // than a tight loop, so the storm threads keep the machine.
  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!on.table->Compact()) on.epochs->TryAdvanceAndReclaim();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // The storm runs as four equal segments per leg, interleaved
  // off/on/off/on/..., and each leg reports its median segment: host
  // speed drifting over the run or a one-off stall dents individual
  // segments, not the A/B ratio the CI gate asserts on.
  constexpr size_t kSegments = 4;
  auto storm_segment = [&](ChurnTable& t, size_t seg) {
    api::KvIndex* table = t.table.get();
    return RunParallel(
        threads, updates / kSegments,
        [&, table, seg](int th, uint64_t begin, uint64_t end) {
          util::Xoshiro256 rng(0x9e3779b97f4a7c15ull + seg * 131 + th);
          for (uint64_t i = begin; i < end; ++i) {
            table->Update(16 * (1 + rng.NextBounded(live)), i);
          }
        });
  };
  std::vector<PhaseResult> off_segs, on_segs;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    off_segs.push_back(storm_segment(off, seg));
    on_segs.push_back(storm_segment(on, seg));
  }
  stop.store(true, std::memory_order_release);
  compactor.join();

  auto median = [](std::vector<PhaseResult> v) {
    std::sort(v.begin(), v.end(),
              [](const PhaseResult& a, const PhaseResult& b) {
                return a.mops < b.mops;
              });
    return v[v.size() / 2];
  };
  ChurnLeg off_leg, on_leg;
  off_leg.storm = median(off_segs);
  on_leg.storm = median(on_segs);

  // Quiesce both legs; converge the compaction leg back under its
  // trigger before reading the space numbers.
  off.epochs->DrainAll();
  on.epochs->DrainAll();
  while (on.table->Compact()) {
    on.epochs->DrainAll();
  }
  off_leg.stats = off.table->Stats();
  on_leg.stats = on.table->Stats();
  off_leg.amplification = Amplification(off_leg.stats, live);
  on_leg.amplification = Amplification(on_leg.stats, live);

  auto crash_close = [](ChurnTable& t) {
    t.epochs->DiscardAll();
    t.table.reset();
    t.pool->CloseDirty();  // crash image for the reopen measurement
    t.pool.reset();
  };
  crash_close(off);
  crash_close(on);

  // Post-churn restart: time-to-first-request over each leg's crash
  // image. No checkpoint is configured, so this is the full log-scan
  // rebuild — proportional to the chunk bytes the leg left behind.
  auto timed_reopen = [](ChurnTable& t) {
    const auto start = std::chrono::steady_clock::now();
    auto pool = pmem::PmPool::Open(t.path);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(api::IndexKind::kHybrid, pool.get(),
                                    &epochs, t.options);
    uint64_t value = 0;
    table->Search(16, &value);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();
    std::remove(t.path.c_str());
    return ms;
  };
  off_leg.reopen_ms = timed_reopen(off);
  on_leg.reopen_ms = timed_reopen(on);
  PrintChurnLeg("false", records, updates, threads, off_leg);
  PrintChurnLeg("true", records, updates, threads, on_leg);
  std::printf(
      "{\"bench\":\"bench_batch\",\"op\":\"churn-summary\","
      "\"amp_on\":%.3f,\"amp_off\":%.3f,\"reopen_on_ms\":%.3f,"
      "\"reopen_off_ms\":%.3f,\"reopen_speedup\":%.2f,"
      "\"mops_on\":%.4f,\"mops_off\":%.4f,\"mops_ratio\":%.3f}\n",
      on_leg.amplification, off_leg.amplification, on_leg.reopen_ms, off_leg.reopen_ms,
      on_leg.reopen_ms > 0 ? off_leg.reopen_ms / on_leg.reopen_ms : 0.0, on_leg.storm.mops,
      off_leg.storm.mops,
      off_leg.storm.mops > 0 ? on_leg.storm.mops / off_leg.storm.mops : 0.0);
  std::fflush(stdout);
  return 0;
}

}  // namespace
}  // namespace dash::bench

int main(int argc, char** argv) {
  using namespace dash;
  using namespace dash::bench;

  BenchConfig config = ParseArgs(argc, argv);
  uint64_t preload = 3'000'000;
  uint64_t ops = 2'000'000;
  size_t batch = 16;
  size_t shards = 0;
  size_t window = 4;
  bool has_threads_flag = false;
  std::string only_table;
  std::string json_out = "BENCH_async.json";
  std::string pipeline_arg = "both";
  std::string workload_arg;
  uint64_t churn_mult = 0;  // 0 = churn mode off
  double check_speedup = 0.0;
  std::string check_vs_arg;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preload=", 10) == 0) {
      preload = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch = std::clamp<size_t>(std::strtoull(argv[i] + 8, nullptr, 10), 1,
                                 kMaxBatch);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      has_threads_flag = true;  // value parsed by ParseArgs
    } else if (std::strncmp(argv[i], "--window=", 9) == 0) {
      window = std::clamp<size_t>(std::strtoull(argv[i] + 9, nullptr, 10),
                                  1, 64);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--table=", 8) == 0) {
      only_table = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--kind=", 7) == 0) {
      // Alias for --table=, matching bench_serving's spelling.
      only_table = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--pipeline=", 11) == 0) {
      pipeline_arg = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--workload=", 11) == 0) {
      workload_arg = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      churn_mult = std::max<uint64_t>(1, std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      churn_mult = 4;
    } else if (std::strncmp(argv[i], "--check-speedup=", 16) == 0) {
      check_speedup = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--check-vs=", 11) == 0) {
      check_vs_arg = argv[i] + 11;
    }
  }
  std::vector<BatchPipeline> pipelines;
  if (pipeline_arg == "group") {
    pipelines = {BatchPipeline::kGroup};
  } else if (pipeline_arg == "amac") {
    pipelines = {BatchPipeline::kAmac};
  } else if (pipeline_arg == "both") {
    pipelines = {BatchPipeline::kGroup, BatchPipeline::kAmac};
  } else {
    std::fprintf(stderr, "unknown --pipeline=%s (group|amac|both)\n",
                 pipeline_arg.c_str());
    return 1;
  }
  // The gated pipeline: the explicitly selected one, amac under "both".
  const BatchPipeline gated = pipelines.back();
  // --check-vs=BASE:RATIO — a cross-table gate: every other table's
  // gated-pipeline batch search throughput must be >= RATIO x the BASE
  // table's. BASE always runs, even under --table=/--kind=.
  std::string check_vs_base;
  double check_vs_ratio = 0.0;
  if (!check_vs_arg.empty()) {
    const size_t colon = check_vs_arg.find(':');
    api::IndexKind base_kind;
    if (colon == std::string::npos ||
        !api::ParseIndexKind(check_vs_arg.substr(0, colon), &base_kind)) {
      std::fprintf(stderr, "bad --check-vs=%s (want BASE:RATIO)\n",
                   check_vs_arg.c_str());
      return 1;
    }
    check_vs_base = check_vs_arg.substr(0, colon);
    check_vs_ratio = std::strtod(check_vs_arg.c_str() + colon + 1, nullptr);
    if (check_vs_ratio <= 0.0) {
      std::fprintf(stderr, "bad --check-vs ratio in %s\n",
                   check_vs_arg.c_str());
      return 1;
    }
  }
  if (check_speedup > 0 && shards > 0) {
    std::fprintf(stderr,
                 "--check-speedup only applies to the per-table A/B mode; "
                 "drop --shards/--threads\n");
    return 1;
  }
  if (!check_vs_arg.empty() && (shards > 0 || !workload_arg.empty())) {
    std::fprintf(stderr,
                 "--check-vs only applies to the per-table A/B mode; "
                 "drop --shards/--threads/--workload\n");
    return 1;
  }
  const uint64_t insert_ops = std::min<uint64_t>(ops / 2, preload);

  PrintHeader("bench_batch");

  // --churn[=MULT]: hybrid-tier space/throughput under sustained update
  // churn, compaction on vs off (plus the SWAR fingerprint-probe A/B
  // datapoint).
  if (churn_mult > 0) {
    if (shards > 0 || !workload_arg.empty()) {
      std::fprintf(stderr,
                   "--churn is its own mode; drop --shards/--workload\n");
      return 1;
    }
    return RunChurnMode(config, preload, churn_mult);
  }

  // --workload={a,b,c}: the YCSB-style zipfian read/update mix.
  if (!workload_arg.empty()) {
    if (shards > 0) {
      std::fprintf(stderr,
                   "--workload applies to the per-table mode; drop "
                   "--shards/--threads\n");
      return 1;
    }
    return RunWorkloadMode(workload_arg, pipelines, only_table, preload,
                           ops, batch, config);
  }

  // --shards=N --threads=K: the async serving mode (multi-client
  // submission against the per-shard worker executor).
  if (shards > 0 && has_threads_flag) {
    api::IndexKind kind = api::IndexKind::kDashEH;
    if (!only_table.empty() && !api::ParseIndexKind(only_table, &kind)) {
      std::fprintf(stderr, "unknown table kind %s\n", only_table.c_str());
      return 1;
    }
    const int clients = std::max(1, config.thread_counts.empty()
                                        ? 1
                                        : config.thread_counts.back());
    return RunAsyncServingMode(kind, shards, clients, batch, window,
                               preload, ops, config, json_out);
  }

  // --shards=N: the serving-path configuration — one ShardedStore, the
  // single-op facade vs mixed-op MultiExecute descriptor batches.
  if (shards > 0) {
    api::IndexKind kind = api::IndexKind::kDashEH;
    if (!only_table.empty() && !api::ParseIndexKind(only_table, &kind)) {
      std::fprintf(stderr, "unknown table kind %s\n", only_table.c_str());
      return 1;
    }
    const std::string name =
        std::string(api::IndexKindName(kind)) + "-x" + std::to_string(shards);
    DashOptions options;
    // Sequential caller-thread execution: this mode isolates the
    // descriptor-batch path itself; the worker executor is measured by
    // the --threads mode above.
    api::AsyncOptions sequential;
    sequential.workers = false;
    StoreHandle handle =
        MakeShardedStore(kind, shards, config, options, sequential);
    ShardedPreload(handle.store.get(), preload);

    const PhaseResult single_search =
        ShardedSingleSearchPhase(handle.store.get(), preload, ops);
    PrintRow("bench_batch", name, "search-single", 1, single_search);
    PrintJson(name, "search", "single", 1, single_search, shards);
    const PhaseResult batch_search =
        ShardedBatchSearchPhase(handle.store.get(), preload, ops, batch);
    PrintRow("bench_batch", name, "search-batch", 1, batch_search);
    PrintJson(name, "search", "batch", batch, batch_search, shards);

    const uint64_t mixed_ops = std::min<uint64_t>(ops, preload * 2);
    const PhaseResult single_mixed = ShardedSingleMixedPhase(
        handle.store.get(), preload, preload, mixed_ops);
    PrintRow("bench_batch", name, "mixed-single", 1, single_mixed);
    PrintJson(name, "mixed", "single", 1, single_mixed, shards);
    const PhaseResult batch_mixed = ShardedBatchMixedPhase(
        handle.store.get(), preload, preload + mixed_ops, mixed_ops, batch);
    PrintRow("bench_batch", name, "mixed-batch", 1, batch_mixed);
    PrintJson(name, "mixed", "batch", batch, batch_mixed, shards);

    std::printf(
        "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"shards\":%zu,"
        "\"batch\":%zu,\"search_speedup_vs_single\":%.3f,"
        "\"mixed_speedup_vs_single\":%.3f}\n",
        name.c_str(), shards, batch, batch_search.mops / single_search.mops,
        batch_mixed.mops / single_mixed.mops);
    std::fflush(stdout);
    return 0;
  }
  std::vector<std::string> gate_failures;
  // Gated-pipeline batch-search Mops per table, for --check-vs.
  std::vector<std::pair<std::string, double>> gated_search_mops;
  for (api::IndexKind kind :
       {api::IndexKind::kDashEH, api::IndexKind::kDashLH,
        api::IndexKind::kCCEH, api::IndexKind::kLevel,
        api::IndexKind::kHybrid}) {
    const std::string name = api::IndexKindName(kind);
    if (!only_table.empty() && only_table != name &&
        name != check_vs_base) {
      continue;
    }
    DashOptions options;

    // Searches do not mutate the table, so the single-op baseline and
    // every pipeline's batch phase share one table (identical key
    // stream, identical layout).
    PhaseResult single_search;
    std::vector<PhaseResult> batch_search(pipelines.size());
    {
      TableHandle handle = MakeTable(kind, config, options);
      Preload(handle.table.get(), preload, /*threads=*/1);
      LockCounters lc0 = SnapshotLockCounters(handle.table.get());
      single_search =
          PositiveSearchPhase(handle.table.get(), preload, ops, 1);
      LockCounters lc1 = SnapshotLockCounters(handle.table.get());
      PrintRow("bench_batch", name, "search-single", 1, single_search);
      // Search-only phase: on the optimistic tables the write_locks
      // delta here must be zero (no lock-word writes on the read path).
      PrintJson(name, "search", "single", 1, single_search, 0, "",
                LockJson(lc0, lc1));

      for (size_t m = 0; m < pipelines.size(); ++m) {
        const char* pname = PipelineName(pipelines[m]);
        handle.table->SetBatchPipeline(pipelines[m]);
        util::AmacTelemetry::DrainAll();
        lc0 = SnapshotLockCounters(handle.table.get());
        batch_search[m] =
            BatchSearchPhase(handle.table.get(), preload, ops, batch);
        lc1 = SnapshotLockCounters(handle.table.get());
        const auto tele = util::AmacTelemetry::DrainAll();
        PrintRow("bench_batch", name,
                 std::string("search-batch-") + pname, 1, batch_search[m]);
        PrintJson(name, "search", "batch", batch, batch_search[m], 0, pname,
                  TelemetryJson(tele) + LockJson(lc0, lc1));
      }
    }

    // Fresh-key inserts: a fresh preloaded table per mode, so every mode
    // starts from the same load factor and hits the same split/resize
    // schedule.
    PhaseResult single_insert;
    std::vector<PhaseResult> batch_insert(pipelines.size());
    {
      TableHandle handle = MakeTable(kind, config, options);
      Preload(handle.table.get(), preload, /*threads=*/1);
      single_insert = InsertPhase(handle.table.get(), preload, insert_ops, 1);
      PrintRow("bench_batch", name, "insert-single", 1, single_insert);
      PrintJson(name, "insert", "single", 1, single_insert);
    }
    for (size_t m = 0; m < pipelines.size(); ++m) {
      const char* pname = PipelineName(pipelines[m]);
      TableHandle handle = MakeTable(kind, config, options);
      handle.table->SetBatchPipeline(pipelines[m]);
      Preload(handle.table.get(), preload, /*threads=*/1);
      util::AmacTelemetry::DrainAll();
      const LockCounters lc0 = SnapshotLockCounters(handle.table.get());
      batch_insert[m] =
          BatchInsertPhase(handle.table.get(), preload, insert_ops, batch);
      const LockCounters lc1 = SnapshotLockCounters(handle.table.get());
      const auto tele = util::AmacTelemetry::DrainAll();
      PrintRow("bench_batch", name, std::string("insert-batch-") + pname, 1,
               batch_insert[m]);
      PrintJson(name, "insert", "batch", batch, batch_insert[m], 0, pname,
                TelemetryJson(tele) + LockJson(lc0, lc1));
    }

    for (size_t m = 0; m < pipelines.size(); ++m) {
      if (pipelines[m] == gated) {
        gated_search_mops.emplace_back(name, batch_search[m].mops);
      }
      const double search_speedup =
          batch_search[m].mops / single_search.mops;
      std::printf(
          "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"pipeline\":\"%s\","
          "\"batch\":%zu,\"search_speedup_vs_single\":%.3f,"
          "\"insert_speedup_vs_single\":%.3f}\n",
          name.c_str(), PipelineName(pipelines[m]), batch, search_speedup,
          batch_insert[m].mops / single_insert.mops);
      std::fflush(stdout);
      if (check_speedup > 0 && pipelines[m] == gated &&
          search_speedup < check_speedup) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s %s search %.3fx < %.3fx",
                      name.c_str(), PipelineName(pipelines[m]),
                      search_speedup, check_speedup);
        gate_failures.push_back(buf);
      }
    }
  }

  // Batch-size sweep on Dash-EH: how wide the group must be before the
  // pipeline covers the memory latency. Runs on the gated pipeline.
  if (only_table.empty() || only_table == "dash-eh") {
    DashOptions options;
    options.batch_pipeline = gated;
    TableHandle handle =
        MakeTable(api::IndexKind::kDashEH, config, options);
    Preload(handle.table.get(), preload, /*threads=*/1);
    for (size_t b : {2, 4, 8, 16, 32, 64}) {
      const PhaseResult r =
          BatchSearchPhase(handle.table.get(), preload, ops, b);
      PrintRow("bench_batch", "dash-eh", "search-b" + std::to_string(b), 1,
               r);
      PrintJson("dash-eh", "search-sweep", "batch", b, r, 0,
                PipelineName(gated));
    }
  }

  // Cross-table gate: every non-base table that ran must hit RATIO x the
  // base table's gated batch-search throughput.
  if (check_vs_ratio > 0) {
    double base_mops = 0.0;
    for (const auto& [tname, mops] : gated_search_mops) {
      if (tname == check_vs_base) base_mops = mops;
    }
    if (base_mops <= 0.0) {
      std::fprintf(stderr, "--check-vs base table %s did not run\n",
                   check_vs_base.c_str());
      return 1;
    }
    for (const auto& [tname, mops] : gated_search_mops) {
      if (tname == check_vs_base) continue;
      const double ratio = mops / base_mops;
      std::printf(
          "{\"bench\":\"bench_batch\",\"table\":\"%s\",\"pipeline\":\"%s\","
          "\"batch\":%zu,\"search_mops_vs_%s\":%.3f}\n",
          tname.c_str(), PipelineName(gated), batch, check_vs_base.c_str(),
          ratio);
      std::fflush(stdout);
      if (ratio < check_vs_ratio) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s batch search %.3f Mops is %.3fx %s (%.3f Mops), "
                      "need %.3fx",
                      tname.c_str(), mops, ratio, check_vs_base.c_str(),
                      base_mops, check_vs_ratio);
        gate_failures.push_back(buf);
      }
    }
  }

  if (!gate_failures.empty()) {
    for (const std::string& f : gate_failures) {
      std::fprintf(stderr, "SPEEDUP GATE FAILED: %s\n", f.c_str());
    }
    return 1;
  }
  return 0;
}
