// Figure 11: maximum load factor of ONE segment as techniques are stacked
// (bucketized -> +probing -> +balanced insert -> +displacement -> +2/4
// stash buckets) across segment sizes from 1 KB to 128 KB.
//
// Expected shape: bucketized degrades sharply with segment size (~40% at
// 128 KB); probing adds ~20 points; balanced insert + displacement another
// ~20; stashing reaches near-100% for small-to-medium segments. Dash's
// full stack more than doubles vanilla segmentation at large sizes.

#include <unistd.h>

#include <cstdio>

#include "bench_common.h"
#include "dash/segment.h"
#include "util/hash.h"

using namespace dash;
using namespace dash::bench;

namespace {

double MaxSegmentLoadFactor(pmem::PmPool* pool, const DashOptions& opts) {
  auto* seg = static_cast<Segment*>(pool->allocator().Alloc(
      Segment::AllocSize(opts.buckets_per_segment, opts.stash_buckets)));
  if (seg == nullptr) return -1;
  seg->Initialize(opts.buckets_per_segment, opts.stash_buckets, 0, 0,
                  Segment::kClean, 1);
  uint64_t k = 1;
  while (seg->Insert<IntKeyPolicy>(k, k, util::HashInt64(k), opts,
                                   &pool->allocator(), false,
                                   [] { return true; }) == OpStatus::kOk) {
    ++k;
  }
  const double fullness = seg->Fullness();
  pool->allocator().Free(seg);
  return fullness;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  std::printf("# fig11_load_factor_seg: max load factor of one segment\n");
  std::printf("%-20s", "technique");
  const uint32_t sizes_kb[] = {1, 8, 16, 32, 64, 128};
  for (uint32_t kb : sizes_kb) std::printf(" %7uKB", kb);
  std::printf("\n");

  struct Config {
    const char* name;
    bool probing, balanced, displacement;
    uint32_t stash;
  };
  const Config rows[] = {
      {"bucketized", false, false, false, 0},
      {"+probing", true, false, false, 0},
      {"+balanced_insert", true, true, false, 0},
      {"+displacement", true, true, true, 0},
      {"+2_stash", true, true, true, 2},
      {"+4_stash", true, true, true, 4},
  };

  pmem::PmPool::Options pool_options;
  pool_options.pool_size = 1ull << 30;
  const std::string path = config.pool_dir + "/dash_fig11_" +
                           std::to_string(getpid());
  std::remove(path.c_str());
  auto pool = pmem::PmPool::Create(path, pool_options);
  if (pool == nullptr) return 1;

  for (const Config& row : rows) {
    std::printf("%-20s", row.name);
    for (uint32_t kb : sizes_kb) {
      DashOptions opts;
      opts.buckets_per_segment = kb * 1024 / 256;  // 256-byte buckets
      opts.stash_buckets = row.stash;
      opts.use_probing_bucket = row.probing;
      opts.use_balanced_insert = row.balanced;
      opts.use_displacement = row.displacement;
      std::printf(" %9.3f", MaxSegmentLoadFactor(pool.get(), opts));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  pool->CloseClean();
  std::remove(path.c_str());
  return 0;
}
