// Figure 10: effect of the overflow metadata (overflow fingerprints +
// counters) with two (left) and four (right) stash buckets per segment.
//
// Expected shape: without the metadata, negative searches must probe every
// stash bucket, so throughput drops as stash count grows; with it, the
// early-stop check keeps performance flat.

#include <thread>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig10_overflow_metadata");
  const int threads = config.thread_counts.back();
  const uint64_t preload = config.Preload();
  const uint64_t ops = config.Scaled(190'000'000) / 4;

  for (uint32_t stash : {2u, 4u}) {
    for (bool metadata : {false, true}) {
      DashOptions opts;
      opts.stash_buckets = stash;
      opts.use_overflow_metadata = metadata;
      const std::string tag = std::string(metadata ? "with_md" : "no_md") +
                              "_s" + std::to_string(stash);

      TableHandle h = MakeTable(api::IndexKind::kDashEH, config, opts);
      Preload(h.table.get(), preload);
      PrintRow("fig10", tag, "insert", threads,
               InsertPhase(h.table.get(), preload, ops, threads));
      PrintRow("fig10", tag, "pos_search", threads,
               PositiveSearchPhase(h.table.get(), preload, ops, threads));
      PrintRow("fig10", tag, "neg_search", threads,
               NegativeSearchPhase(h.table.get(), preload, ops, threads));
      PrintRow("fig10", tag, "delete", threads,
               DeletePhase(h.table.get(), std::min(preload, ops), threads));
    }
  }
  return 0;
}
