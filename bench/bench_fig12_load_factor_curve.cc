// Figure 12: table-wide load factor as records are inserted, for
// Dash-EH(2 stash), Dash-EH(4 stash), Dash-LH(2 stash), CCEH and Level
// hashing.
//
// Expected shape: CCEH oscillates in the 35-43% band (pre-mature splits);
// Dash-EH(2) peaks near 80%, Dash-EH(4) and Level hashing reach ~90%;
// "dips" mark splits/rehashes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

namespace {

struct Series {
  std::string name;
  api::IndexKind kind;
  DashOptions opts;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  // Paper x-axis: 0..240k records; we keep that size (it is already small).
  const uint64_t max_records = config.Scaled(240'000) < 24'000
                                   ? 240'000
                                   : config.Scaled(240'000);
  const uint64_t step = max_records / 60;

  std::vector<Series> series;
  {
    Series s{"dash-eh(2)", api::IndexKind::kDashEH, {}};
    s.opts.stash_buckets = 2;
    series.push_back(s);
  }
  {
    Series s{"dash-eh(4)", api::IndexKind::kDashEH, {}};
    s.opts.stash_buckets = 4;
    series.push_back(s);
  }
  {
    Series s{"dash-lh(2)", api::IndexKind::kDashLH, {}};
    s.opts.stash_buckets = 2;
    s.opts.lh_base_segments = 4;
    s.opts.lh_stride = 4;
    series.push_back(s);
  }
  series.push_back(Series{"cceh", api::IndexKind::kCCEH, {}});
  series.push_back(Series{"level", api::IndexKind::kLevel, {}});

  std::printf("# fig12_load_factor_curve: load factor vs records inserted\n");
  std::printf("%-12s", "records");
  for (const Series& s : series) std::printf(" %12s", s.name.c_str());
  std::printf("\n");

  std::vector<TableHandle> tables;
  tables.reserve(series.size());
  for (const Series& s : series) {
    tables.push_back(MakeTable(s.kind, config, s.opts));
  }

  for (uint64_t n = step; n <= max_records; n += step) {
    std::printf("%-12lu", static_cast<unsigned long>(n));
    for (size_t i = 0; i < series.size(); ++i) {
      for (uint64_t k = n - step + 1; k <= n; ++k) {
        tables[i].table->Insert(k, k);
      }
      std::printf(" %12.4f", tables[i].table->Stats().load_factor);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
