// Shared benchmark driver (paper §6.2 methodology).
//
// The paper preloads 10 M records and then runs 190 M operations per phase
// on a 24-core machine. Sizes here are scaled by --scale (default 0.02 →
// 200 k preload / 3.8 M ops) so every figure regenerates in CI time; pass
// --scale=1 for paper-sized runs. Threads are pinned to cores. Each phase
// reports throughput (Mops/s) plus PM access counters per operation, so
// the bandwidth arguments of the paper are directly visible.
//
// Optional PM latency emulation: set DASH_PM_FLUSH_NS / DASH_PM_READ_NS
// (e.g., 100 / 300) to model DCPMM access costs on DRAM.

#ifndef DASH_PM_BENCH_BENCH_COMMON_H_
#define DASH_PM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/kv_index.h"
#include "api/sharded_store.h"
#include "epoch/epoch_manager.h"
#include "pmem/pool.h"
#include "pmem/stats.h"

namespace dash::bench {

struct BenchConfig {
  double scale = 0.02;           // fraction of paper-sized workloads
  std::vector<int> thread_counts = {1, 2, 4};
  size_t pool_gb = 4;
  std::string pool_dir;          // default: /dev/shm or /tmp
  // > 0 switches supporting benches (tab1_recovery, fig14) into sharded
  // mode: an N-shard ShardedStore is crashed and reopened, reporting the
  // parallel-recovery timings as JSON instead of the per-table matrix.
  size_t shards = 0;

  // Paper-sized phases, scaled.
  uint64_t Preload() const { return Scaled(10'000'000); }
  uint64_t Ops() const { return Scaled(190'000'000); }
  uint64_t Scaled(uint64_t paper_n) const {
    const double n = static_cast<double>(paper_n) * scale;
    return n < 1 ? 1 : static_cast<uint64_t>(n);
  }
};

// Parses --scale=X, --threads=a,b,c, --pool-gb=N, --shards=N; ignores
// unknown flags.
BenchConfig ParseArgs(int argc, char** argv);

// Cheap uniform stride walk over the preloaded key space [1, preloaded].
// Single-op and batched phases must draw from this one definition so their
// key streams stay byte-identical.
inline uint64_t UniformKey(uint64_t i, uint64_t preloaded) {
  return (i * 2654435761u) % preloaded + 1;
}

// A freshly created pool + table of `kind`, at a unique temp path.
struct TableHandle {
  std::unique_ptr<pmem::PmPool> pool;
  std::unique_ptr<epoch::EpochManager> epochs;
  std::unique_ptr<api::KvIndex> table;
  std::string path;

  TableHandle() = default;
  TableHandle(TableHandle&&) = default;
  TableHandle& operator=(TableHandle&&) = default;
  ~TableHandle();
};

TableHandle MakeTable(api::IndexKind kind, const BenchConfig& config,
                      const DashOptions& options);

// A freshly created ShardedStore over `shards` pools at unique temp
// paths; the per-shard pool size divides config.pool_gb. Closed cleanly
// and unlinked on destruction.
struct StoreHandle {
  std::unique_ptr<api::ShardedStore> store;
  std::string prefix;
  size_t shards = 0;

  StoreHandle() = default;
  // Moves must disarm the source (its destructor would otherwise remove
  // `.shard<i>` files at whatever path its moved-from prefix holds), and
  // move-assignment must first close and unlink whatever the target
  // currently owns.
  StoreHandle(StoreHandle&& other) noexcept
      : store(std::move(other.store)),
        prefix(std::move(other.prefix)),
        shards(other.shards) {
    other.prefix.clear();
    other.shards = 0;
  }
  StoreHandle& operator=(StoreHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      store = std::move(other.store);
      prefix = std::move(other.prefix);
      shards = other.shards;
      other.prefix.clear();
      other.shards = 0;
    }
    return *this;
  }
  ~StoreHandle();

 private:
  // Closes the store cleanly and unlinks the shard pools + manifest.
  void Reset();
};

// `async` selects the execution mode behind the store's batch surface:
// the default enables the per-shard worker threads; pass
// {.workers = false} for the sequential caller-thread baseline.
StoreHandle MakeShardedStore(api::IndexKind kind, size_t shards,
                             const BenchConfig& config,
                             const DashOptions& options,
                             const api::AsyncOptions& async = {});

// Phase result: throughput and PM counters per op.
struct PhaseResult {
  double mops = 0;
  double seconds = 0;
  double clwb_per_op = 0;
  double reads_per_op = 0;
  double lockwrites_per_op = 0;
};

// Runs `fn(thread_id, begin, end)` over [0, total_ops) partitioned across
// `threads` pinned threads; returns wall-clock based throughput and the PM
// counter deltas.
PhaseResult RunParallel(
    int threads, uint64_t total_ops,
    const std::function<void(int, uint64_t, uint64_t)>& fn);

// Standard phases over a KvIndex with keys in [1, n] preloaded.
// `key_base` offsets the key space (insert phases use fresh keys).
void Preload(api::KvIndex* table, uint64_t n, int threads = 4);
PhaseResult InsertPhase(api::KvIndex* table, uint64_t base, uint64_t n,
                        int threads);
PhaseResult PositiveSearchPhase(api::KvIndex* table, uint64_t preloaded,
                                uint64_t ops, int threads);
PhaseResult NegativeSearchPhase(api::KvIndex* table, uint64_t preloaded,
                                uint64_t ops, int threads);
PhaseResult DeletePhase(api::KvIndex* table, uint64_t n, int threads);
// 20% insert / 80% search (paper §6.4 mixed workload).
PhaseResult MixedPhase(api::KvIndex* table, uint64_t preloaded, uint64_t ops,
                       int threads);

// Prints a row: bench, table, op, threads, Mops, counters.
void PrintHeader(const std::string& bench);
void PrintRow(const std::string& bench, const std::string& table,
              const std::string& op, int threads, const PhaseResult& result);

}  // namespace dash::bench

#endif  // DASH_PM_BENCH_BENCH_COMMON_H_
