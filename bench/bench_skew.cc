// Skewed-workload extension (paper §6.2): the paper notes that under
// Zipfian key distributions "all operations achieved better performance
// benefitting from the higher cache hit ratios on hot keys, and contention
// is rare" (hash values stay uniform). This driver verifies that claim
// across all four tables: search throughput under increasing skew.

#include "bench_common.h"
#include "util/zipf.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("skew_extension");
  const uint64_t preload = config.Preload();
  const uint64_t ops = config.Scaled(190'000'000) / 4;
  const int threads = config.thread_counts.back();

  const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kLevel};
  const double thetas[] = {0.0, 0.5, 0.9, 0.99};  // 0 = uniform

  for (api::IndexKind kind : kinds) {
    DashOptions opts;
    TableHandle h = MakeTable(kind, config, opts);
    Preload(h.table.get(), preload);
    for (double theta : thetas) {
      api::KvIndex* table = h.table.get();
      const PhaseResult r = RunParallel(
          threads, ops,
          [table, preload, theta](int tid, uint64_t begin, uint64_t end) {
            uint64_t value;
            if (theta == 0.0) {
              util::Xoshiro256 rng(tid + 1);
              for (uint64_t i = begin; i < end; ++i) {
                table->Search(rng.NextBounded(preload) + 1, &value);
              }
            } else {
              util::ZipfGenerator zipf(preload, theta, tid * 131 + 7);
              for (uint64_t i = begin; i < end; ++i) {
                table->Search(zipf.Next() + 1, &value);
              }
            }
          });
      char tag[32];
      std::snprintf(tag, sizeof(tag), "theta=%.2f", theta);
      PrintRow("skew", api::IndexKindName(kind), tag, threads, r);
    }
  }
  return 0;
}
