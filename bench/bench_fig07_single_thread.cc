// Figure 7: single-thread performance of all four tables under fixed-
// length keys (left panel) and variable-length keys (right panel), for
// insert / positive search / negative search / delete.
//
// Expected shape (paper): Dash-EH ≈ Dash-LH > CCEH > Level for searches
// (fingerprints avoid PM reads); Dash ≈ CCEH > Level for inserts; the gaps
// widen dramatically under variable-length keys (pointer dereferences).

#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

namespace {

// Variable-length key workload over the VarKvIndex interface.
struct VarTableHandle {
  std::unique_ptr<pmem::PmPool> pool;
  std::unique_ptr<epoch::EpochManager> epochs;
  std::unique_ptr<api::VarKvIndex> table;
  std::string path;

  VarTableHandle() = default;
  VarTableHandle(VarTableHandle&&) = default;
  VarTableHandle& operator=(VarTableHandle&&) = default;
  ~VarTableHandle() {
    if (table != nullptr) table->CloseClean();
    table.reset();
    if (pool != nullptr) pool->CloseClean();
    pool.reset();
    if (!path.empty()) std::remove(path.c_str());
  }
};

VarTableHandle MakeVarTable(api::IndexKind kind, const BenchConfig& config) {
  VarTableHandle handle;
  static int counter = 0;
  handle.path = config.pool_dir + "/dash_bench_var_" +
                std::to_string(getpid()) + "_" + std::to_string(counter++);
  std::remove(handle.path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;
  handle.pool = pmem::PmPool::Create(handle.path, pool_options);
  if (handle.pool == nullptr) std::exit(1);
  handle.epochs = std::make_unique<epoch::EpochManager>();
  DashOptions opts;
  handle.table = api::CreateVarKvIndex(kind, handle.pool.get(),
                                       handle.epochs.get(), opts);
  return handle;
}

// 16-byte keys (paper §6.2 variable-length configuration).
void VarKeyOf(uint64_t i, char out[17]) {
  std::snprintf(out, 17, "k%015llu",
                static_cast<unsigned long long>(i % 1'000'000'000'000'000ull));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig07_single_thread");
  const uint64_t preload = config.Preload();
  const uint64_t ops = config.Scaled(190'000'000) / 4;  // per-op budget

  const api::IndexKind kinds[] = {api::IndexKind::kLevel,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH};

  // --- fixed-length keys ---
  for (api::IndexKind kind : kinds) {
    DashOptions opts;
    TableHandle h = MakeTable(kind, config, opts);
    Preload(h.table.get(), preload);
    PrintRow("fig07_fixed", api::IndexKindName(kind), "insert", 1,
             InsertPhase(h.table.get(), preload, ops, 1));
    PrintRow("fig07_fixed", api::IndexKindName(kind), "pos_search", 1,
             PositiveSearchPhase(h.table.get(), preload, ops, 1));
    PrintRow("fig07_fixed", api::IndexKindName(kind), "neg_search", 1,
             NegativeSearchPhase(h.table.get(), preload, ops, 1));
    PrintRow("fig07_fixed", api::IndexKindName(kind), "delete", 1,
             DeletePhase(h.table.get(), std::min(preload, ops), 1));
  }

  // --- variable-length (16-byte) keys ---
  for (api::IndexKind kind : kinds) {
    VarTableHandle h = MakeVarTable(kind, config);
    api::VarKvIndex* table = h.table.get();
    char key[17];
    for (uint64_t i = 1; i <= preload; ++i) {
      VarKeyOf(i, key);
      table->Insert(std::string_view(key, 16), i);
    }
    {
      const PhaseResult r = RunParallel(
          1, ops, [&](int, uint64_t begin, uint64_t end) {
            char k[17];
            for (uint64_t i = begin; i < end; ++i) {
              VarKeyOf(preload + i + 1, k);
              table->Insert(std::string_view(k, 16), i);
            }
          });
      PrintRow("fig07_var", api::IndexKindName(kind), "insert", 1, r);
    }
    {
      const PhaseResult r = RunParallel(
          1, ops, [&](int, uint64_t begin, uint64_t end) {
            char k[17];
            uint64_t value;
            for (uint64_t i = begin; i < end; ++i) {
              VarKeyOf((i * 2654435761u) % preload + 1, k);
              table->Search(std::string_view(k, 16), &value);
            }
          });
      PrintRow("fig07_var", api::IndexKindName(kind), "pos_search", 1, r);
    }
    {
      const PhaseResult r = RunParallel(
          1, ops, [&](int, uint64_t begin, uint64_t end) {
            char k[17];
            uint64_t value;
            for (uint64_t i = begin; i < end; ++i) {
              VarKeyOf(100'000'000'000ull + i, k);
              table->Search(std::string_view(k, 16), &value);
            }
          });
      PrintRow("fig07_var", api::IndexKindName(kind), "neg_search", 1, r);
    }
    {
      const uint64_t deletes = std::min(preload, ops);
      const PhaseResult r = RunParallel(
          1, deletes, [&](int, uint64_t begin, uint64_t end) {
            char k[17];
            for (uint64_t i = begin; i < end; ++i) {
              VarKeyOf(i + 1, k);
              table->Delete(std::string_view(k, 16));
            }
          });
      PrintRow("fig07_var", api::IndexKindName(kind), "delete", 1, r);
    }
  }
  return 0;
}
