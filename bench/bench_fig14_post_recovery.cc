// Figure 14: throughput over time immediately after an instant-recovery
// restart (Dash-EH and Dash-LH), single-threaded and multi-threaded.
//
// Expected shape: throughput starts low (every first touch of a segment
// pays the lazy recovery pass: lock clearing, dedup, overflow-metadata
// rebuild) and returns to normal; more threads recover segments in
// parallel and normalize sooner.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/rand.h"

using namespace dash;
using namespace dash::bench;

namespace {

void RunSeries(api::IndexKind kind, const BenchConfig& config, int threads) {
  DashOptions opts;
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_fig14_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;
  const uint64_t preload = config.Scaled(40'000'000);

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
    RunParallel(4, preload, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) table->Insert(i + 1, i + 1);
    });
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // kill while "running"
  }

  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);

  // Positive searches; sample throughput in fixed windows.
  constexpr int kWindows = 24;
  const auto window = std::chrono::milliseconds(50);
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      uint64_t value;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = rng.NextBounded(preload) + 1;
        table->Search(key, &value);
        if ((++local & 0xFF) == 0) {
          ops.fetch_add(256, std::memory_order_relaxed);
        }
      }
    });
  }

  std::printf("# fig14 %s threads=%d (window=50ms)\n",
              api::IndexKindName(kind), threads);
  std::printf("%-12s %12s\n", "time_ms", "Mops/s");
  uint64_t prev = 0;
  for (int w = 1; w <= kWindows; ++w) {
    std::this_thread::sleep_for(window);
    const uint64_t now = ops.load(std::memory_order_relaxed);
    std::printf("%-12d %12.3f\n", w * 50,
                static_cast<double>(now - prev) / 0.05 / 1e6);
    prev = now;
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  table->CloseClean();
  table.reset();
  pool->CloseClean();
  std::remove(path.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  for (api::IndexKind kind :
       {api::IndexKind::kDashEH, api::IndexKind::kDashLH}) {
    RunSeries(kind, config, 1);
    RunSeries(kind, config, config.thread_counts.back());
  }
  return 0;
}
