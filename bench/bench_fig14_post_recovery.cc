// Figure 14: throughput over time immediately after an instant-recovery
// restart (Dash-EH and Dash-LH), single-threaded and multi-threaded.
//
// Expected shape: throughput starts low (every first touch of a segment
// pays the lazy recovery pass: lock clearing, dedup, overflow-metadata
// rebuild) and returns to normal; more threads recover segments in
// parallel and normalize sooner.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/rand.h"

using namespace dash;
using namespace dash::bench;

namespace {

void RunSeries(api::IndexKind kind, const BenchConfig& config, int threads) {
  DashOptions opts;
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_fig14_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;
  const uint64_t preload = config.Scaled(40'000'000);

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
    RunParallel(4, preload, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) table->Insert(i + 1, i + 1);
    });
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // kill while "running"
  }

  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);

  // Positive searches; sample throughput in fixed windows.
  constexpr int kWindows = 24;
  const auto window = std::chrono::milliseconds(50);
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      uint64_t value;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = rng.NextBounded(preload) + 1;
        table->Search(key, &value);
        if ((++local & 0xFF) == 0) {
          ops.fetch_add(256, std::memory_order_relaxed);
        }
      }
    });
  }

  std::printf("# fig14 %s threads=%d (window=50ms)\n",
              api::IndexKindName(kind), threads);
  std::printf("%-12s %12s\n", "time_ms", "Mops/s");
  uint64_t prev = 0;
  for (int w = 1; w <= kWindows; ++w) {
    std::this_thread::sleep_for(window);
    const uint64_t now = ops.load(std::memory_order_relaxed);
    std::printf("%-12d %12.3f\n", w * 50,
                static_cast<double>(now - prev) / 0.05 / 1e6);
    prev = now;
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  table->CloseClean();
  table.reset();
  pool->CloseClean();
  std::remove(path.c_str());
  std::fflush(stdout);
}

// Sharded mode (--shards=N): crash an N-shard store, reopen it with
// parallel recovery, then sample post-recovery search throughput in fixed
// windows — one JSON line per kind with the open timings and the ramp.
void RunShardedSeries(api::IndexKind kind, const BenchConfig& config) {
  static int counter = 0;
  const std::string prefix = config.pool_dir + "/dash_fig14_sharded_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter++);
  const uint64_t preload = config.Scaled(40'000'000);

  api::ShardedStoreOptions options;
  options.kind = kind;
  options.shards = config.shards;
  options.path_prefix = prefix;
  options.shard_pool_size = std::max<size_t>(
      (config.pool_gb << 30) / config.shards, 64ull << 20);
  options.recovery_threads = config.shards;  // parallel reopen below
  {
    auto store = api::ShardedStore::Open(options);
    if (store == nullptr) std::exit(1);
    RunParallel(4, preload, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) store->Insert(i + 1, i + 1);
    });
    // Destroyed without CloseClean: dirty pools, as a power failure.
  }

  auto store = api::ShardedStore::Open(options);
  if (store == nullptr) std::exit(1);
  const api::RecoveryReport& report = store->recovery_report();

  constexpr int kWindows = 24;
  const auto window = std::chrono::milliseconds(50);
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  const int threads = config.thread_counts.back();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      uint64_t value;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = rng.NextBounded(preload) + 1;
        store->Search(key, &value);
        if ((++local & 0xFF) == 0) {
          ops.fetch_add(256, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<double> mops;
  uint64_t prev = 0;
  for (int w = 1; w <= kWindows; ++w) {
    std::this_thread::sleep_for(window);
    const uint64_t now = ops.load(std::memory_order_relaxed);
    mops.push_back(static_cast<double>(now - prev) / 0.05 / 1e6);
    prev = now;
  }
  stop.store(true);
  for (auto& w : workers) w.join();

  std::printf("{\"bench\":\"fig14_sharded\",\"kind\":\"%s\",\"shards\":%zu,"
              "\"records\":%lu,\"recovery_threads\":%zu,"
              "\"open_total_ms\":%.3f,\"shard_ms\":[",
              api::IndexKindName(kind), config.shards,
              static_cast<unsigned long>(preload), report.threads,
              report.total_ms);
  for (size_t i = 0; i < report.shard_ms.size(); ++i) {
    std::printf("%s%.3f", i == 0 ? "" : ",", report.shard_ms[i]);
  }
  std::printf("],\"window_ms\":50,\"threads\":%d,\"windows_mops\":[",
              threads);
  for (size_t i = 0; i < mops.size(); ++i) {
    std::printf("%s%.3f", i == 0 ? "" : ",", mops[i]);
  }
  std::printf("]}\n");
  std::fflush(stdout);

  store->CloseClean();
  store.reset();
  for (size_t i = 0; i < config.shards; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  if (config.shards > 0) {
    for (api::IndexKind kind :
         {api::IndexKind::kDashEH, api::IndexKind::kDashLH}) {
      RunShardedSeries(kind, config);
    }
    return 0;
  }
  for (api::IndexKind kind :
       {api::IndexKind::kDashEH, api::IndexKind::kDashLH}) {
    RunSeries(kind, config, 1);
    RunSeries(kind, config, config.thread_counts.back());
  }
  return 0;
}
