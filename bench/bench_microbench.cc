// Google-benchmark microbenchmarks: per-operation cost of the four tables
// and of the PM substrate primitives. Complements the figure drivers with
// statistically robust single-op numbers.

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "api/kv_index.h"
#include "bench_common.h"
#include "pmem/persist.h"
#include "util/hash.h"
#include "util/rand.h"

using namespace dash;
using namespace dash::bench;

namespace {

BenchConfig GlobalConfig() {
  BenchConfig config;
  config.pool_dir = access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
  config.pool_gb = 2;
  return config;
}

api::IndexKind KindOf(int64_t i) {
  switch (i) {
    case 0: return api::IndexKind::kDashEH;
    case 1: return api::IndexKind::kDashLH;
    case 2: return api::IndexKind::kCCEH;
    default: return api::IndexKind::kLevel;
  }
}

void BM_Insert(benchmark::State& state) {
  const BenchConfig config = GlobalConfig();
  DashOptions opts;
  TableHandle h = MakeTable(KindOf(state.range(0)), config, opts);
  uint64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.table->Insert(key, key));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(api::IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_Insert)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

void BM_PositiveSearch(benchmark::State& state) {
  const BenchConfig config = GlobalConfig();
  DashOptions opts;
  TableHandle h = MakeTable(KindOf(state.range(0)), config, opts);
  constexpr uint64_t kPreload = 200'000;
  for (uint64_t k = 1; k <= kPreload; ++k) h.table->Insert(k, k);
  util::Xoshiro256 rng(7);
  uint64_t value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.table->Search(rng.NextBounded(kPreload) + 1, &value));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(api::IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_PositiveSearch)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

void BM_NegativeSearch(benchmark::State& state) {
  const BenchConfig config = GlobalConfig();
  DashOptions opts;
  TableHandle h = MakeTable(KindOf(state.range(0)), config, opts);
  constexpr uint64_t kPreload = 200'000;
  for (uint64_t k = 1; k <= kPreload; ++k) h.table->Insert(k, k);
  uint64_t absent = 1'000'000'000ull;
  uint64_t value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.table->Search(absent++, &value));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(api::IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_NegativeSearch)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

void BM_HashInt64(benchmark::State& state) {
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::HashInt64(++k));
  }
}
BENCHMARK(BM_HashInt64);

void BM_PersistLine(benchmark::State& state) {
  alignas(64) static char line[64];
  for (auto _ : state) {
    pmem::Persist(line, sizeof(line));
  }
}
BENCHMARK(BM_PersistLine);

}  // namespace

BENCHMARK_MAIN();
