// Figure 13: optimistic locking vs pessimistic reader-writer spinlocks in
// Dash-EH, under positive and negative search, across thread counts.
//
// Expected shape: optimistic locking scales near-linearly (readers never
// write); the spinlock variant flattens — every search performs PM writes
// to acquire/release the bucket read locks (visible in the lockwr/op
// column).

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig13_concurrency");
  const uint64_t preload = config.Preload() + config.Ops();

  for (ConcurrencyMode mode :
       {ConcurrencyMode::kOptimistic, ConcurrencyMode::kRwLock}) {
    const char* tag =
        mode == ConcurrencyMode::kOptimistic ? "optimistic" : "spinlock";
    DashOptions opts;
    opts.concurrency = mode;
    TableHandle h = MakeTable(api::IndexKind::kDashEH, config, opts);
    Preload(h.table.get(), preload);
    for (int threads : config.thread_counts) {
      PrintRow("fig13", tag, "pos_search", threads,
               PositiveSearchPhase(h.table.get(), preload, config.Ops(),
                                   threads));
      PrintRow("fig13", tag, "neg_search", threads,
               NegativeSearchPhase(h.table.get(), preload, config.Ops(),
                                   threads));
    }
  }
  return 0;
}
