// Table 1: time until the table can serve requests after a crash, as a
// function of indexed data size.
//
// Expected shape: Dash-EH / Dash-LH / Level hashing are constant (open the
// pool, read/bump one byte); CCEH grows linearly with data size because it
// must scan the whole directory before serving.
// Paper sizes (40M-1280M records) are scaled by --scale.

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

namespace {

double MeasureRecoveryMs(api::IndexKind kind, const BenchConfig& config,
                         uint64_t records) {
  DashOptions opts;
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_tab1_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records,
                [&](int, uint64_t begin, uint64_t end) {
                  for (uint64_t i = begin; i < end; ++i) {
                    table->Insert(i + 1, i + 1);
                  }
                });
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // simulated power failure
  }

  // Time-to-ready: open the pool and construct the table (for CCEH this
  // includes the directory scan; for Dash/Level it is constant work).
  const auto start = std::chrono::steady_clock::now();
  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
  // First request serviceable here.
  uint64_t value;
  table->Search(1, &value);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  table.reset();
  pool->CloseClean();
  std::remove(path.c_str());
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             elapsed)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  std::printf("# tab1_recovery: time (ms) until first request, vs records\n");
  const uint64_t paper_sizes[] = {40'000'000, 80'000'000, 160'000'000,
                                  320'000'000};
  std::printf("%-10s", "table");
  for (uint64_t s : paper_sizes) {
    std::printf(" %11luM", static_cast<unsigned long>(s / 1'000'000));
  }
  std::printf("\n");

  const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kLevel};
  for (api::IndexKind kind : kinds) {
    std::printf("%-10s", api::IndexKindName(kind));
    for (uint64_t paper_n : paper_sizes) {
      const uint64_t records = config.Scaled(paper_n);
      std::printf(" %12.2f", MeasureRecoveryMs(kind, config, records));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
