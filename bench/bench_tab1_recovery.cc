// Table 1: time until the table can serve requests after a crash, as a
// function of indexed data size.
//
// Expected shape: Dash-EH / Dash-LH / Level hashing are constant (open the
// pool, read/bump one byte); CCEH grows linearly with data size because it
// must scan the whole directory before serving.
// Paper sizes (40M-1280M records) are scaled by --scale.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

namespace {

double MeasureRecoveryMs(api::IndexKind kind, const BenchConfig& config,
                         uint64_t records) {
  DashOptions opts;
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_tab1_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records,
                [&](int, uint64_t begin, uint64_t end) {
                  for (uint64_t i = begin; i < end; ++i) {
                    table->Insert(i + 1, i + 1);
                  }
                });
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // simulated power failure
  }

  // Time-to-ready: open the pool and construct the table (for CCEH this
  // includes the directory scan; for Dash/Level it is constant work).
  const auto start = std::chrono::steady_clock::now();
  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
  // First request serviceable here.
  uint64_t value;
  table->Search(1, &value);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  table.reset();
  pool->CloseClean();
  std::remove(path.c_str());
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             elapsed)
      .count();
}

// ---- sharded mode (--shards=N): parallel recovery speedup ----

api::ShardedStoreOptions ShardedOptions(api::IndexKind kind,
                                        const BenchConfig& config,
                                        const std::string& prefix,
                                        size_t recovery_threads) {
  api::ShardedStoreOptions options;
  options.kind = kind;
  options.shards = config.shards;
  options.path_prefix = prefix;
  options.shard_pool_size = std::max<size_t>(
      (config.pool_gb << 30) / config.shards, 64ull << 20);
  options.async.workers = false;  // isolate recovery from worker spawn
  options.recovery_threads = recovery_threads;
  return options;
}

void PrintShardMs(const std::vector<double>& shard_ms) {
  std::printf("[");
  for (size_t i = 0; i < shard_ms.size(); ++i) {
    std::printf("%s%.3f", i == 0 ? "" : ",", shard_ms[i]);
  }
  std::printf("]");
}

// Crash-reopen an N-shard store with 1 recovery thread, then again with
// one thread per shard, and report the wall-clock speedup plus per-shard
// open+verify times as one JSON line per table kind.
void RunSharded(api::IndexKind kind, const BenchConfig& config) {
  static int counter = 0;
  const std::string prefix = config.pool_dir + "/dash_tab1_sharded_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter++);
  const uint64_t records = config.Scaled(40'000'000);

  {
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 0));
    if (store == nullptr) std::exit(1);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        store->Insert(i + 1, i + 1);
      }
    });
    // Destroyed without CloseClean: every shard pool closes dirty — the
    // same on-disk image a power failure leaves.
  }
  {
    // Throwaway open: settles the one-time crash roll-forward so the two
    // timed runs below verify comparable images. Left dirty again.
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 0));
    if (store == nullptr) std::exit(1);
  }

  api::RecoveryReport serial;
  {
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 1));
    if (store == nullptr) std::exit(1);
    serial = store->recovery_report();
    // Dirty again for the parallel run.
  }
  api::RecoveryReport parallel;
  {
    // One recovery thread per shard, requested explicitly so the bench
    // exercises the parallel path even when the host caps the default
    // (recovery_threads=0 uses min(shards, hardware_concurrency)).
    auto store = api::ShardedStore::Open(
        ShardedOptions(kind, config, prefix, config.shards));
    if (store == nullptr) std::exit(1);
    parallel = store->recovery_report();
    store->CloseClean();
  }
  for (size_t i = 0; i < config.shards; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());

  std::printf("{\"bench\":\"tab1_recovery_sharded\",\"kind\":\"%s\","
              "\"shards\":%zu,\"records\":%lu,"
              "\"serial_total_ms\":%.3f,\"parallel_threads\":%zu,"
              "\"parallel_total_ms\":%.3f,\"speedup\":%.2f,"
              "\"serial_shard_ms\":",
              api::IndexKindName(kind), config.shards,
              static_cast<unsigned long>(records), serial.total_ms,
              parallel.threads, parallel.total_ms,
              parallel.total_ms > 0 ? serial.total_ms / parallel.total_ms
                                    : 0.0);
  PrintShardMs(serial.shard_ms);
  std::printf(",\"parallel_shard_ms\":");
  PrintShardMs(parallel.shard_ms);
  std::printf("}\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  if (config.shards > 0) {
    const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                    api::IndexKind::kDashLH,
                                    api::IndexKind::kCCEH,
                                    api::IndexKind::kLevel};
    for (api::IndexKind kind : kinds) RunSharded(kind, config);
    return 0;
  }
  std::printf("# tab1_recovery: time (ms) until first request, vs records\n");
  const uint64_t paper_sizes[] = {40'000'000, 80'000'000, 160'000'000,
                                  320'000'000};
  std::printf("%-10s", "table");
  for (uint64_t s : paper_sizes) {
    std::printf(" %11luM", static_cast<unsigned long>(s / 1'000'000));
  }
  std::printf("\n");

  const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kLevel};
  for (api::IndexKind kind : kinds) {
    std::printf("%-10s", api::IndexKindName(kind));
    for (uint64_t paper_n : paper_sizes) {
      const uint64_t records = config.Scaled(paper_n);
      std::printf(" %12.2f", MeasureRecoveryMs(kind, config, records));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
