// Table 1: time until the table can serve requests after a crash, as a
// function of indexed data size.
//
// Expected shape: Dash-EH / Dash-LH / Level hashing are constant (open the
// pool, read/bump one byte); CCEH grows linearly with data size because it
// must scan the whole directory before serving.
// Paper sizes (40M-1280M records) are scaled by --scale.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "pmem/index_persist.h"

using namespace dash;
using namespace dash::bench;

namespace {

double MeasureRecoveryMs(api::IndexKind kind, const BenchConfig& config,
                         uint64_t records) {
  DashOptions opts;
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_tab1_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records,
                [&](int, uint64_t begin, uint64_t end) {
                  for (uint64_t i = begin; i < end; ++i) {
                    table->Insert(i + 1, i + 1);
                  }
                });
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // simulated power failure
  }

  // Time-to-ready: open the pool and construct the table (for CCEH this
  // includes the directory scan; for Dash/Level it is constant work).
  const auto start = std::chrono::steady_clock::now();
  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);
  // First request serviceable here.
  uint64_t value;
  table->Search(1, &value);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  table.reset();
  pool->CloseClean();
  std::remove(path.c_str());
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             elapsed)
      .count();
}

// ---- sharded mode (--shards=N): parallel recovery speedup ----

api::ShardedStoreOptions ShardedOptions(api::IndexKind kind,
                                        const BenchConfig& config,
                                        const std::string& prefix,
                                        size_t recovery_threads) {
  api::ShardedStoreOptions options;
  options.kind = kind;
  options.shards = config.shards;
  options.path_prefix = prefix;
  options.shard_pool_size = std::max<size_t>(
      (config.pool_gb << 30) / config.shards, 64ull << 20);
  options.async.workers = false;  // isolate recovery from worker spawn
  options.recovery_threads = recovery_threads;
  return options;
}

void PrintShardMs(const std::vector<double>& shard_ms) {
  std::printf("[");
  for (size_t i = 0; i < shard_ms.size(); ++i) {
    std::printf("%s%.3f", i == 0 ? "" : ",", shard_ms[i]);
  }
  std::printf("]");
}

// Crash-reopen an N-shard store with 1 recovery thread, then again with
// one thread per shard, and report the wall-clock speedup plus per-shard
// open+verify times as one JSON line per table kind.
void RunSharded(api::IndexKind kind, const BenchConfig& config) {
  static int counter = 0;
  const std::string prefix = config.pool_dir + "/dash_tab1_sharded_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter++);
  const uint64_t records = config.Scaled(40'000'000);

  {
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 0));
    if (store == nullptr) std::exit(1);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        store->Insert(i + 1, i + 1);
      }
    });
    // Destroyed without CloseClean: every shard pool closes dirty — the
    // same on-disk image a power failure leaves.
  }
  {
    // Throwaway open: settles the one-time crash roll-forward so the two
    // timed runs below verify comparable images. Left dirty again.
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 0));
    if (store == nullptr) std::exit(1);
  }

  api::RecoveryReport serial;
  {
    auto store =
        api::ShardedStore::Open(ShardedOptions(kind, config, prefix, 1));
    if (store == nullptr) std::exit(1);
    serial = store->recovery_report();
    // Dirty again for the parallel run.
  }
  api::RecoveryReport parallel;
  {
    // One recovery thread per shard, requested explicitly so the bench
    // exercises the parallel path even when the host caps the default
    // (recovery_threads=0 uses min(shards, hardware_concurrency)).
    auto store = api::ShardedStore::Open(
        ShardedOptions(kind, config, prefix, config.shards));
    if (store == nullptr) std::exit(1);
    parallel = store->recovery_report();
    store->CloseClean();
  }
  for (size_t i = 0; i < config.shards; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());

  std::printf("{\"bench\":\"tab1_recovery_sharded\",\"kind\":\"%s\","
              "\"shards\":%zu,\"records\":%lu,"
              "\"serial_total_ms\":%.3f,\"parallel_threads\":%zu,"
              "\"parallel_total_ms\":%.3f,\"speedup\":%.2f,"
              "\"serial_shard_ms\":",
              api::IndexKindName(kind), config.shards,
              static_cast<unsigned long>(records), serial.total_ms,
              parallel.threads, parallel.total_ms,
              parallel.total_ms > 0 ? serial.total_ms / parallel.total_ms
                                    : 0.0);
  PrintShardMs(serial.shard_ms);
  std::printf(",\"parallel_shard_ms\":");
  PrintShardMs(parallel.shard_ms);
  std::printf("}\n");
  std::fflush(stdout);
}

// ---- checkpoint mode (--checkpoint): restart is a load, not a rebuild ----
//
// A/B over the same crashed pool image: reopen the hybrid tier from a
// fresh checkpoint (load + empty tail replay) vs from the full log scan.
// The scan leg runs second — on a warmer page cache — so the reported
// speedup is conservative. The CI recovery-SLO gate parses the single-
// table JSON line and fails if checkpoint_open_ms > 0.5 * scan_open_ms.

struct TimedOpen {
  double ms = 0.0;
  api::IndexStats stats;
};

// Time-to-first-request for a hybrid table at `path`; leaves the pool
// dirty so the next open sees the same crash image.
TimedOpen TimedHybridOpen(const std::string& path, const DashOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) std::exit(1);
  epoch::EpochManager epochs;
  auto table =
      api::CreateKvIndex(api::IndexKind::kHybrid, pool.get(), &epochs, opts);
  uint64_t value;
  table->Search(1, &value);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  TimedOpen out;
  out.ms = std::chrono::duration<double, std::milli>(elapsed).count();
  out.stats = table->Stats();
  epochs.DiscardAll();
  table.reset();
  pool->CloseDirty();
  return out;
}

void RunCheckpointSingle(const BenchConfig& config) {
  static int counter = 0;
  const std::string path = config.pool_dir + "/dash_tab1_ckpt_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
  std::remove(path.c_str());
  const uint64_t records = config.Scaled(50'000'000);  // 1M at --scale=0.02
  DashOptions opts;
  opts.checkpoint_path = path + ".ckpt";
  pmem::RemoveCheckpointFile(opts.checkpoint_path);
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = config.pool_gb << 30;

  {
    auto pool = pmem::PmPool::Create(path, pool_options);
    if (pool == nullptr) std::exit(1);
    epoch::EpochManager epochs;
    auto table = api::CreateKvIndex(api::IndexKind::kHybrid, pool.get(),
                                    &epochs, opts);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        table->Insert(i + 1, i + 1);
      }
    });
    if (!table->WriteCheckpoint()) std::exit(1);
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // power failure with a fresh checkpoint on disk
  }

  // B: checkpoint load + (empty) tail replay. Must run first — the
  // checkpoint is stamped with the writer run's generation, and every
  // open bumps it.
  const TimedOpen ckpt = TimedHybridOpen(path, opts);
  // A: full log scan over the same image (checkpoint removed, no path
  // configured so the fallback is silent).
  pmem::RemoveCheckpointFile(opts.checkpoint_path);
  const TimedOpen scan = TimedHybridOpen(path, DashOptions{});
  std::remove(path.c_str());

  std::printf(
      "{\"bench\":\"tab1_recovery_checkpoint\",\"kind\":\"hybrid\","
      "\"records\":%lu,\"checkpoint_open_ms\":%.3f,\"scan_open_ms\":%.3f,"
      "\"speedup\":%.2f,\"checkpoint_source\":\"%s\","
      "\"scan_source\":\"%s\",\"replayed\":%lu,\"staleness\":%lu}\n",
      static_cast<unsigned long>(records), ckpt.ms, scan.ms,
      ckpt.ms > 0 ? scan.ms / ckpt.ms : 0.0,
      RecoverySourceName(ckpt.stats.recovery_source),
      RecoverySourceName(scan.stats.recovery_source),
      static_cast<unsigned long>(ckpt.stats.recovery_replayed),
      static_cast<unsigned long>(ckpt.stats.recovery_staleness));
  std::fflush(stdout);
}

// Sharded A/B at --shards=N: crash-reopen an N-shard hybrid store with
// per-shard checkpoints on disk vs after removing them (pure scan).
// verify_on_open is disabled so both legs time index construction alone.
void RunCheckpointSharded(const BenchConfig& config) {
  static int counter = 0;
  const std::string prefix = config.pool_dir + "/dash_tab1_ckpt_sharded_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter++);
  const uint64_t records = config.Scaled(50'000'000);
  auto options =
      ShardedOptions(api::IndexKind::kHybrid, config, prefix, 0);
  options.verify_on_open = false;

  {
    auto store = api::ShardedStore::Open(options);
    if (store == nullptr) std::exit(1);
    const int threads = config.thread_counts.back();
    RunParallel(threads, records, [&](int, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        store->Insert(i + 1, i + 1);
      }
    });
    for (size_t s = 0; s < config.shards; ++s) {
      if (!store->shard(s)->WriteCheckpoint()) std::exit(1);
    }
    // Destroyed without CloseClean: dirty pools + fresh checkpoints.
  }
  api::RecoveryReport with_ckpt;
  {
    auto store = api::ShardedStore::Open(options);
    if (store == nullptr) std::exit(1);
    with_ckpt = store->recovery_report();
    // Dirty again for the scan leg.
  }
  for (size_t s = 0; s < config.shards; ++s) {
    pmem::RemoveCheckpointFile(prefix + ".shard" + std::to_string(s) +
                               ".ckpt");
  }
  options.checkpoints = false;  // no per-shard path: pure scan reopen
  api::RecoveryReport without_ckpt;
  {
    auto store = api::ShardedStore::Open(options);
    if (store == nullptr) std::exit(1);
    without_ckpt = store->recovery_report();
    store->CloseClean();
  }
  for (size_t s = 0; s < config.shards; ++s) {
    std::remove((prefix + ".shard" + std::to_string(s)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());

  uint64_t replayed = 0;
  for (uint64_t r : with_ckpt.shard_replayed) replayed += r;
  std::printf(
      "{\"bench\":\"tab1_recovery_checkpoint_sharded\",\"kind\":\"hybrid\","
      "\"shards\":%zu,\"records\":%lu,\"checkpoint_total_ms\":%.3f,"
      "\"scan_total_ms\":%.3f,\"speedup\":%.2f,\"shard_source\":[",
      config.shards, static_cast<unsigned long>(records),
      with_ckpt.total_ms, without_ckpt.total_ms,
      with_ckpt.total_ms > 0 ? without_ckpt.total_ms / with_ckpt.total_ms
                             : 0.0);
  for (size_t s = 0; s < with_ckpt.shard_source.size(); ++s) {
    std::printf("%s\"%s\"", s == 0 ? "" : ",",
                with_ckpt.shard_source[s].c_str());
  }
  std::printf("],\"replayed\":%lu,\"checkpoint_shard_ms\":",
              static_cast<unsigned long>(replayed));
  PrintShardMs(with_ckpt.shard_ms);
  std::printf(",\"scan_shard_ms\":");
  PrintShardMs(without_ckpt.shard_ms);
  std::printf("}\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  bool checkpoint_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint") == 0) checkpoint_mode = true;
  }
  if (checkpoint_mode) {
    RunCheckpointSingle(config);
    if (config.shards > 0) RunCheckpointSharded(config);
    return 0;
  }
  if (config.shards > 0) {
    const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                    api::IndexKind::kDashLH,
                                    api::IndexKind::kCCEH,
                                    api::IndexKind::kLevel};
    for (api::IndexKind kind : kinds) RunSharded(kind, config);
    return 0;
  }
  std::printf("# tab1_recovery: time (ms) until first request, vs records\n");
  const uint64_t paper_sizes[] = {40'000'000, 80'000'000, 160'000'000,
                                  320'000'000};
  std::printf("%-10s", "table");
  for (uint64_t s : paper_sizes) {
    std::printf(" %11luM", static_cast<unsigned long>(s / 1'000'000));
  }
  std::printf("\n");

  const api::IndexKind kinds[] = {api::IndexKind::kDashEH,
                                  api::IndexKind::kDashLH,
                                  api::IndexKind::kCCEH,
                                  api::IndexKind::kLevel};
  for (api::IndexKind kind : kinds) {
    std::printf("%-10s", api::IndexKindName(kind));
    for (uint64_t paper_n : paper_sizes) {
      const uint64_t records = config.Scaled(paper_n);
      std::printf(" %12.2f", MeasureRecoveryMs(kind, config, records));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
