// Figure 15: impact of the PM software infrastructure (allocator and OS
// paging) on insert scalability for Dash-EH and Dash-LH.
//
// The paper compares the PMDK allocator against a custom pre-faulting
// allocator across two kernel versions (a paging bug made large PM
// allocations fall back to 4 KB pages). Kernels cannot be swapped here, so
// we reproduce the controllable half of the experiment: demand-faulted
// pool pages (every fresh segment allocation page-faults, like the buggy
// kernel) vs a fully pre-faulted pool (like the custom allocator).
//
// Expected shape: pre-faulting helps the allocation-heavy insert path,
// with Dash-LH benefiting more than Dash-EH (its splits contend on
// allocation, §6.9).

#include <cstdio>

#include "bench_common.h"

using namespace dash;
using namespace dash::bench;

namespace {

void PrefaultPool(pmem::PmPool* pool) {
  volatile char* base = pool->FromOffset<volatile char>(0);
  const uint64_t size = pool->header()->pool_size;
  for (uint64_t off = 0; off < size; off += 4096) {
    base[off] = base[off];  // touch every page (read-write fault)
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("fig15_allocator");

  for (api::IndexKind kind :
       {api::IndexKind::kDashEH, api::IndexKind::kDashLH}) {
    for (bool prefault : {false, true}) {
      const char* tag = prefault ? "prefault" : "demand_fault";
      for (int threads : config.thread_counts) {
        DashOptions opts;
        TableHandle h = MakeTable(kind, config, opts);
        if (prefault) PrefaultPool(h.pool.get());
        Preload(h.table.get(), config.Preload());
        char row[64];
        std::snprintf(row, sizeof(row), "%s/%s", api::IndexKindName(kind),
                      tag);
        PrintRow("fig15", row, "insert", threads,
                 InsertPhase(h.table.get(), config.Preload(), config.Ops(),
                             threads));
      }
    }
  }
  return 0;
}
