// Closed-loop multi-client serving benchmark against KvServer.
//
// Spins up an in-process ShardedStore + KvServer (UDS by default,
// --transport=tcp for loopback TCP), preloads the key space, then drives
// it with --clients closed-loop client threads. Each client keeps
// --window request frames of --batch ops pipelined on its own
// connection and measures per-request latency from the send() to the
// matching response (correlated by request id, which arrives in
// completion order). Results: one JSON line with aggregate Mops and
// p50/p99/p999 request latency.
//
// --workload={a,b,c,d,f} picks the YCSB mix (same semantics as
// bench_batch: a=50/50 read/update, b=95/5, c=100/0, d=95/5
// read-latest/insert, f=50/50 read/RMW where an RMW is a Search+Update
// pair in one frame — MultiExecute runs the read group first).
//
// Exit status is nonzero on any protocol error (dropped connection,
// malformed response, unknown request id): the CI smoke job relies on
// that plus the JSON line.
//
// Flags: --clients=N --shards=N --workload=X --batch=B --window=W
//        --duration=Ns --preload=N --transport={uds,tcp} --kind=TABLE
//        (in-process store's index kind, e.g. dash-eh or hybrid)
//        --tenant-weights=a,b,... (round-robin across clients)
//        --connect=<uds path | host:port> drives an external server
//        (e.g. the kv_server example) instead of the in-process one;
//        preload then happens over the wire.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/kv_client.h"
#include "net/kv_server.h"
#include "util/rand.h"
#include "util/zipf.h"

namespace dash::bench {
namespace {

constexpr size_t kMaxBatch = 256;  // matches the adapter chunk size

struct ServingConfig {
  int clients = 4;
  size_t shards = 4;
  std::string workload = "b";
  size_t batch = 16;
  int window = 4;
  double duration_s = 5.0;
  uint64_t preload = 200'000;
  std::string transport = "uds";
  // Index kind for the in-process store (ignored with --connect).
  std::string kind = "dash-eh";
  // Nonempty: drive an external server instead of an in-process one.
  // "host:port" means TCP, anything else is a UDS path.
  std::string connect;
  std::vector<uint32_t> tenant_weights = {1};
};

// Resolved server address (in-process or --connect).
struct Endpoint {
  bool tcp = false;
  std::string host;
  uint16_t port = 0;
  std::string uds_path;
};

bool ParseServingFlags(int argc, char** argv, ServingConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--clients=")) {
      config->clients = std::atoi(v);
    } else if (const char* v = value("--shards=")) {
      config->shards = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--workload=")) {
      config->workload = v;
    } else if (const char* v = value("--batch=")) {
      config->batch = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--window=")) {
      config->window = std::atoi(v);
    } else if (const char* v = value("--duration=")) {
      config->duration_s = std::atof(v);  // trailing "s" ignored by atof
    } else if (const char* v = value("--preload=")) {
      config->preload = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--transport=")) {
      config->transport = v;
    } else if (const char* v = value("--kind=")) {
      config->kind = v;
    } else if (const char* v = value("--connect=")) {
      config->connect = v;
    } else if (const char* v = value("--tenant-weights=")) {
      config->tenant_weights.clear();
      for (const char* p = v; *p != '\0';) {
        config->tenant_weights.push_back(
            static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (config->tenant_weights.empty()) {
        config->tenant_weights = {1};
      }
    }
  }
  if (config->clients < 1 || config->shards < 1 || config->batch < 1 ||
      config->batch > kMaxBatch || config->window < 1 ||
      config->duration_s <= 0 || config->preload < 1) {
    std::fprintf(stderr, "bad serving flags\n");
    return false;
  }
  if (config->transport != "uds" && config->transport != "tcp") {
    std::fprintf(stderr, "unknown --transport=%s (uds|tcp)\n",
                 config->transport.c_str());
    return false;
  }
  return true;
}

// The per-client YCSB stream: mirrors bench_batch's workload semantics.
struct Mix {
  int read_pct = 50;
  bool read_latest = false;
  bool rmw = false;
};

bool ResolveMix(const std::string& workload, Mix* mix) {
  if (workload == "a") {
    mix->read_pct = 50;
  } else if (workload == "b") {
    mix->read_pct = 95;
  } else if (workload == "c") {
    mix->read_pct = 100;
  } else if (workload == "d") {
    mix->read_pct = 95;
    mix->read_latest = true;
  } else if (workload == "f") {
    mix->read_pct = 50;
    mix->rmw = true;
  } else {
    return false;
  }
  return true;
}

// Fills `ops` with up to `batch` descriptors of the mix (an RMW pair
// counts two); returns the number written.
size_t FillBatch(const Mix& mix, size_t batch, util::ZipfGenerator* zipf,
                 util::Xoshiro256* rng, std::atomic<uint64_t>* max_key,
                 api::Op* ops) {
  size_t n = 0;
  while (n < batch) {
    const bool is_read =
        rng->NextBounded(100) < static_cast<uint64_t>(mix.read_pct);
    if (mix.read_latest) {
      if (is_read) {
        const uint64_t hi = max_key->load(std::memory_order_relaxed);
        const uint64_t rank = zipf->Next();
        ops[n++] = api::Op::Search(hi > rank ? hi - rank : 1);
      } else {
        const uint64_t key =
            max_key->fetch_add(1, std::memory_order_relaxed) + 1;
        ops[n++] = api::Op::Insert(key, key);
      }
      continue;
    }
    const uint64_t key = zipf->Next() + 1;
    if (is_read) {
      ops[n++] = api::Op::Search(key);
    } else if (mix.rmw) {
      if (n + 2 > batch) break;
      ops[n++] = api::Op::Search(key);
      ops[n++] = api::Op::Update(key, key + 1);
    } else {
      ops[n++] = api::Op::Update(key, key);
    }
  }
  return n;
}

struct ClientResult {
  uint64_t requests = 0;
  uint64_t ops = 0;
  uint64_t retry_responses = 0;
  uint64_t protocol_errors = 0;
  std::vector<uint64_t> latencies_us;
};

// One closed-loop client: keeps `window` requests pipelined, stamps each
// send, matches responses by id, records request latency.
ClientResult RunClient(const ServingConfig& config, const Mix& mix,
                       const Endpoint& endpoint, int client_id,
                       const util::ZipfGenerator& zipf_proto,
                       std::atomic<uint64_t>* max_key,
                       const std::atomic<bool>& stop_flag) {
  using Clock = std::chrono::steady_clock;
  ClientResult result;
  net::KvClient client;
  const uint32_t weight =
      config.tenant_weights[static_cast<size_t>(client_id) %
                            config.tenant_weights.size()];
  std::string error;
  const bool connected =
      endpoint.tcp ? client.ConnectTcp(endpoint.host, endpoint.port,
                                       static_cast<uint64_t>(client_id),
                                       weight, &error)
                   : client.ConnectUds(endpoint.uds_path,
                                       static_cast<uint64_t>(client_id),
                                       weight, &error);
  if (!connected) {
    std::fprintf(stderr, "client %d connect failed: %s\n", client_id,
                 error.c_str());
    result.protocol_errors = 1;
    return result;
  }

  util::ZipfGenerator zipf(zipf_proto, 42 + client_id);
  util::Xoshiro256 rng(1000 + static_cast<uint64_t>(client_id));
  std::vector<api::Op> ops(config.batch);
  std::map<uint64_t, Clock::time_point> in_flight;  // id -> send stamp
  result.latencies_us.reserve(1 << 16);

  const auto send_one = [&]() -> bool {
    const size_t n = FillBatch(mix, config.batch, &zipf, &rng, max_key,
                               ops.data());
    uint64_t id = 0;
    if (!client.Send(ops.data(), n, /*deadline_us=*/0, &id)) return false;
    in_flight.emplace(id, Clock::now());
    return true;
  };
  const auto receive_one = [&]() -> bool {
    net::ClientResponse response;
    if (!client.Receive(&response)) return false;
    const auto now = Clock::now();
    const auto it = in_flight.find(response.request_id);
    if (it == in_flight.end()) return false;  // unknown id
    result.latencies_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              it->second)
            .count()));
    in_flight.erase(it);
    ++result.requests;
    result.ops += response.statuses.size();
    if (response.retry_after_us != 0) ++result.retry_responses;
    return true;
  };

  // Closed loop until the timer thread raises the stop flag.
  while (!stop_flag.load(std::memory_order_acquire)) {
    while (in_flight.size() < static_cast<size_t>(config.window)) {
      if (!send_one()) {
        ++result.protocol_errors;
        return result;
      }
    }
    if (!receive_one()) {
      ++result.protocol_errors;
      return result;
    }
  }
  // Drain what is still pipelined so the server sees a clean close.
  while (!in_flight.empty()) {
    if (!receive_one()) {
      ++result.protocol_errors;
      break;
    }
  }
  return result;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

int Run(int argc, char** argv) {
  ServingConfig config;
  if (!ParseServingFlags(argc, argv, &config)) return 2;
  Mix mix;
  if (!ResolveMix(config.workload, &mix)) {
    std::fprintf(stderr, "unknown --workload=%s (a|b|c|d|f)\n",
                 config.workload.c_str());
    return 2;
  }

  Endpoint endpoint;
  StoreHandle handle;
  std::unique_ptr<net::KvServer> server;
  if (config.connect.empty()) {
    // In-process store + server. Bounded submit backoff so saturation
    // surfaces as retry-after responses instead of a blocked event loop.
    BenchConfig bench_config = ParseArgs(argc, argv);
    api::AsyncOptions async;
    async.workers = true;
    async.inline_single_shard = false;
    async.submit_retries = 8;
    api::IndexKind kind = api::IndexKind::kDashEH;
    if (!api::ParseIndexKind(config.kind, &kind)) {
      std::fprintf(stderr, "unknown --kind=%s\n", config.kind.c_str());
      return 2;
    }
    handle = MakeShardedStore(kind, config.shards, bench_config,
                              DashOptions{}, async);
    if (handle.store == nullptr) {
      std::fprintf(stderr, "store open failed\n");
      return 2;
    }
    net::ServerOptions server_options;
    if (config.transport == "tcp") {
      server_options.tcp = true;
    } else {
      server_options.uds_path = handle.prefix + ".sock";
    }
    server = std::make_unique<net::KvServer>(handle.store.get(),
                                             server_options);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 2;
    }
    endpoint.tcp = config.transport == "tcp";
    endpoint.host = "127.0.0.1";
    endpoint.port = server->tcp_port();
    endpoint.uds_path = server->uds_path();
    for (uint64_t i = 0; i < config.preload; ++i) {
      handle.store->Insert(i + 1, i + 1);
    }
  } else {
    // External server: "host:port" is TCP, anything else a UDS path.
    const size_t colon = config.connect.rfind(':');
    if (colon != std::string::npos &&
        config.connect.find('/') == std::string::npos) {
      endpoint.tcp = true;
      endpoint.host = config.connect.substr(0, colon);
      endpoint.port = static_cast<uint16_t>(
          std::atoi(config.connect.c_str() + colon + 1));
    } else {
      endpoint.uds_path = config.connect;
    }
    // Preload over the wire in kMaxBatch-op frames.
    net::KvClient loader;
    std::string error;
    const bool ok =
        endpoint.tcp
            ? loader.ConnectTcp(endpoint.host, endpoint.port, 0, 1, &error)
            : loader.ConnectUds(endpoint.uds_path, 0, 1, &error);
    if (!ok) {
      std::fprintf(stderr, "preload connect failed: %s\n", error.c_str());
      return 2;
    }
    std::vector<api::Op> load_ops(kMaxBatch);
    for (uint64_t at = 0; at < config.preload;) {
      const size_t n = std::min<uint64_t>(kMaxBatch, config.preload - at);
      for (size_t i = 0; i < n; ++i) {
        load_ops[i] = api::Op::Insert(at + i + 1, at + i + 1);
      }
      net::ClientResponse response;
      if (!loader.Execute(load_ops.data(), n, 0, &response)) {
        std::fprintf(stderr, "preload failed at key %llu\n",
                     static_cast<unsigned long long>(at));
        return 2;
      }
      at += n;
    }
  }
  const util::ZipfGenerator zipf_proto(config.preload, 0.99, 0);
  std::atomic<uint64_t> max_key{config.preload};
  std::atomic<bool> stop_flag{false};

  std::vector<ClientResult> results(
      static_cast<size_t>(config.clients));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      results[static_cast<size_t>(c)] =
          RunClient(config, mix, endpoint, c, zipf_proto, &max_key,
                    stop_flag);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.duration_s));
  stop_flag.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  uint64_t requests = 0, total_ops = 0, retries = 0, errors = 0;
  std::vector<uint64_t> latencies;
  for (const ClientResult& r : results) {
    requests += r.requests;
    total_ops += r.ops;
    retries += r.retry_responses;
    errors += r.protocol_errors;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double mops =
      static_cast<double>(total_ops) / elapsed / 1e6;
  const net::ServerStats server_stats =
      server != nullptr ? server->stats() : net::ServerStats{};

  const std::string transport =
      config.connect.empty() ? config.transport
                             : (endpoint.tcp ? "tcp" : "uds");
  std::printf(
      "{\"bench\":\"bench_serving\",\"workload\":\"%s\",\"kind\":\"%s\","
      "\"transport\":\"%s\",\"clients\":%d,\"shards\":%zu,\"batch\":%zu,"
      "\"window\":%d,\"duration_s\":%.2f,\"requests\":%llu,"
      "\"ops\":%llu,\"mops\":%.4f,\"p50_us\":%llu,\"p99_us\":%llu,"
      "\"p999_us\":%llu,\"retry_responses\":%llu,"
      "\"protocol_errors\":%llu,\"server\":{\"requests\":%llu,"
      "\"responses\":%llu,\"bad_frames\":%llu,\"pipeline_rejects\":%llu}"
      "}\n",
      config.workload.c_str(),
      config.connect.empty() ? config.kind.c_str() : "external",
      transport.c_str(), config.clients,
      config.shards, config.batch, config.window, elapsed,
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(total_ops), mops,
      static_cast<unsigned long long>(Percentile(latencies, 0.50)),
      static_cast<unsigned long long>(Percentile(latencies, 0.99)),
      static_cast<unsigned long long>(Percentile(latencies, 0.999)),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(server_stats.requests),
      static_cast<unsigned long long>(server_stats.responses),
      static_cast<unsigned long long>(server_stats.frames_bad),
      static_cast<unsigned long long>(server_stats.pipeline_rejects));
  std::fflush(stdout);

  if (server != nullptr) server->Stop();
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dash::bench

int main(int argc, char** argv) { return dash::bench::Run(argc, argv); }
