// CCEH baseline (Nam et al., FAST '19) as characterized in the paper
// (§2.3, §6): cacheline-conscious extendible hashing with
//
//  * 16 KB segments of 64-byte buckets (4 records each),
//  * linear probing bounded to four cachelines,
//  * MSB segment addressing with a persistent directory,
//  * recovery by scanning the directory on open (Table 1: recovery time
//    grows linearly with data size),
//  * a reserved key value (0) marks empty slots (§6.3 notes this CCEH
//    restriction; Dash avoids it via its allocation bitmap).
//
// The segment-split leak the paper found in the original CCEH is fixed the
// same way Dash's own splits are made safe: allocate-activate through the
// side-link plus a mini-transaction commit (§6.1 "we fixed this problem
// using PMDK transaction").
//
// Locking. The original port used a pessimistic reader-writer lock per
// segment (the paper ports CCEH to PMDK rw-locks, §6.1): every search
// *wrote* the PM-resident lock word, which Fig. 8a identifies as a primary
// PM bottleneck. The segment lock is now a Dash-style version lock (§4.4):
// writers still acquire it exclusively (one PM lock-word write per write
// op, as before), but searches are lock-free — snapshot the version,
// probe, revalidate, retry on conflict. A split bumps the version on
// release, so an in-flight reader of a stale segment fails revalidation
// (or the pattern coverage check) and retries through the directory.

#ifndef DASH_PM_CCEH_CCEH_H_
#define DASH_PM_CCEH_CCEH_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/op_status.h"
#include "epoch/epoch_manager.h"
#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/amac.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash::cceh {

// Reserved empty-slot marker (CCEH design restriction).
inline constexpr uint64_t kEmptyKey = 0;
// Tombstone for deleted variable-length keys (pointer mode): slots freed by
// deletion become immediately reusable.
inline constexpr uint64_t kSlotsPerBucket = 4;   // 64-byte bucket
inline constexpr uint64_t kProbeBuckets = 4;     // probe <= 4 cachelines

struct CcehSlot {
  uint64_t key;
  uint64_t value;

  // Optimistic readers probe slots without the segment lock, so every
  // access that can race a writer goes through 8-byte atomics (the
  // snapshot/revalidate protocol discards torn *logical* states; these
  // keep the individual loads/stores untorn and TSan-clean).
  uint64_t LoadKeyAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&key)->load(
        std::memory_order_acquire);
  }
  uint64_t LoadValueAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&value)->load(
        std::memory_order_acquire);
  }
  // Value stores are ordered before the key's atomic publication
  // (pmem::AtomicPersist64), so relaxed is enough here.
  void StoreValueRelaxed(uint64_t v) {
    reinterpret_cast<std::atomic<uint64_t>*>(&value)->store(
        v, std::memory_order_relaxed);
  }
};

struct CcehBucket {
  CcehSlot slots[kSlotsPerBucket];
};
static_assert(sizeof(CcehBucket) == 64);

struct CcehSegment {
  static constexpr uint32_t kClean = 0;
  static constexpr uint32_t kSplitting = 1;
  static constexpr uint32_t kNew = 2;

  // persistent header
  std::atomic<uint64_t> side_link{0};
  std::atomic<uint64_t> depth_state{0};  // [local_depth:32 | state:32]
  uint64_t pattern = 0;
  uint32_t num_buckets = 0;
  uint32_t pad = 0;
  // PM-resident version lock: writers acquire exclusively (and still pay
  // the PM lock-word write); searches snapshot/revalidate and never write.
  util::VersionLock lock;
  uint8_t pad2[28] = {};

  static size_t AllocSize(uint32_t num_buckets) {
    return sizeof(CcehSegment) + num_buckets * sizeof(CcehBucket);
  }
  CcehBucket* bucket(uint32_t i) {
    return reinterpret_cast<CcehBucket*>(this + 1) + i;
  }
  uint32_t local_depth() const {
    return static_cast<uint32_t>(
        depth_state.load(std::memory_order_acquire) >> 32);
  }
  uint32_t state() const {
    return static_cast<uint32_t>(depth_state.load(std::memory_order_acquire));
  }
  void SetDepthState(uint32_t depth, uint32_t state) {
    depth_state.store((static_cast<uint64_t>(depth) << 32) | state,
                      std::memory_order_release);
    pmem::Persist(&depth_state, sizeof(depth_state));
  }
  uint64_t* depth_state_word() {
    return reinterpret_cast<uint64_t*>(&depth_state);
  }
  // Pattern accessors for the paths that race optimistic readers: the
  // split's coverage handoff (FinishSplit) stores it atomically and the
  // lock-free search loads it atomically. Lock-holding code may keep
  // reading the plain field (no writer can run concurrently).
  uint64_t PatternAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&pattern)->load(
        std::memory_order_acquire);
  }
  void StorePatternRelease(uint64_t p) {
    reinterpret_cast<std::atomic<uint64_t>*>(&pattern)->store(
        p, std::memory_order_release);
  }
  CcehSegment* side() const {
    return reinterpret_cast<CcehSegment*>(
        side_link.load(std::memory_order_acquire));
  }
  uint64_t* side_link_word() { return reinterpret_cast<uint64_t*>(&side_link); }

  static uint32_t BucketIndex(uint64_t hash, uint32_t num_buckets) {
    return static_cast<uint32_t>((hash >> 8) & (num_buckets - 1));
  }
};
static_assert(sizeof(CcehSegment) == 64);

struct CcehDirectory {
  uint64_t global_depth;
  static size_t AllocSize(uint64_t depth) {
    return sizeof(CcehDirectory) + (1ull << depth) * sizeof(uint64_t);
  }
  std::atomic<uint64_t>* entries() {
    return reinterpret_cast<std::atomic<uint64_t>*>(this + 1);
  }
  CcehSegment* entry(uint64_t i) {
    return reinterpret_cast<CcehSegment*>(
        entries()[i].load(std::memory_order_acquire));
  }
  void SetEntry(uint64_t i, CcehSegment* seg) {
    entries()[i].store(reinterpret_cast<uint64_t>(seg),
                       std::memory_order_release);
  }
};

struct CcehRoot {
  uint64_t directory;
  uint64_t initialized;
  uint8_t clean;
  uint8_t pad[7];
  uint32_t buckets_per_segment;
  uint32_t initial_depth;
};

struct CcehOptions {
  uint32_t buckets_per_segment = 256;  // 256 x 64 B = 16 KB segments
  uint32_t initial_depth = 1;
  // Batch engine behind Multi* (see dash::BatchPipeline).
  BatchPipeline batch_pipeline = BatchPipeline::kAmac;
};

// Aggregate statistics, mirroring DashTableStats.
struct CcehStats {
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  double load_factor = 0.0;
  // Read-path concurrency telemetry (cumulative since table open): how
  // often optimistic searches retried, how often they observed a writer
  // holding the segment lock, and how many exclusive (PM-writing) lock
  // acquisitions the write paths performed.
  uint64_t opt_retries = 0;
  uint64_t version_conflicts = 0;
  uint64_t write_locks = 0;
};

template <typename KP = IntKeyPolicy>
class CCEH {
 public:
  using KeyArg = typename KP::KeyArg;

  CCEH(pmem::PmPool* pool, epoch::EpochManager* epochs,
       const CcehOptions& options)
      : pool_(pool),
        alloc_(&pool->allocator()),
        epochs_(epochs),
        opts_(options),
        root_(static_cast<CcehRoot*>(pool->root())) {
    if (root_->initialized == 0) {
      CreateNew();
    } else {
      OpenExisting();
    }
  }

  CCEH(const CCEH&) = delete;
  CCEH& operator=(const CCEH&) = delete;

  void CloseClean() {
    epochs_->DrainAll();
    root_->clean = 1;
    pmem::Persist(&root_->clean, 1);
  }

  // Returns kOk, kExists, or kOutOfMemory (split could not allocate).
  OpStatus Insert(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return InsertWithHash(key, value, h);
  }

  // Returns kOk or kNotFound.
  OpStatus Search(KeyArg key, uint64_t* out) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return SearchWithHash(key, h, out);
  }

  // Returns kOk or kNotFound.
  OpStatus Delete(KeyArg key) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return DeleteWithHash(key, h);
  }

  // In-place payload update; returns kOk or kNotFound.
  OpStatus Update(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return UpdateWithHash(key, value, h);
  }

  // ---- batched operations ----
  //
  // Two engines (opts_.batch_pipeline). kGroup is the PR-1 three-stage
  // pipeline: hash + directory-entry prefetch, segment resolution +
  // prefetch, then the ordinary per-op logic with one epoch guard per
  // group. kAmac runs per-op state machines (util/amac.h). Searches are
  // lock-free (optimistic versioned probes), so their machine suspends at
  // the execute-stage probe: resolve + prefetch the header for *read*
  // plus the 4-cacheline probe window, yield, then probe over warm lines
  // and revalidate; version conflicts re-resolve through the directory in
  // a dedicated Retry pass over freshly prefetched lines. Write ops keep
  // the fixed locked schedule (prefetch-for-ownership, then the exclusive
  // body in one pass visit — see the suspension constraint in
  // util/amac.h).

  void MultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacMultiSearch(keys, count, values, statuses);
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/false,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = SearchWithHash(key, h, &values[i]);
                 });
  }

  void MultiInsert(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = InsertWithHash(key, values[i], h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = InsertWithHash(key, values[i], h);
                 });
  }

  void MultiUpdate(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = UpdateWithHash(key, values[i], h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = UpdateWithHash(key, values[i], h);
                 });
  }

  void MultiDelete(const KeyArg* keys, size_t count, OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = DeleteWithHash(key, h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = DeleteWithHash(key, h);
                 });
  }

  // Batch-engine selector (A/B testing hook; volatile).
  void set_batch_pipeline(BatchPipeline p) { opts_.batch_pipeline = p; }

  // Runs only the prefetch stages of the batch pipeline (pure hint; see
  // DashEH::PrefetchBatch). Searches are optimistic and fetch the header
  // for read; write batches fetch it for ownership.
  void PrefetchBatch(const KeyArg* keys, size_t count, bool for_write) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
    }
  }

 private:
  // Batch scaffold: per group of
  // kBatchGroupWidth operations run the prefetch stages and invoke
  // exec(global_index, key, hash) for each. `for_write` selects how the
  // segment header is prefetched: write ops take the exclusive lock (a PM
  // lock-word write), searches only read it (version snapshot).
  template <typename ExecFn>
  void ForEachGroup(const KeyArg* keys, size_t count, bool for_write,
                    ExecFn exec) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      // One guard per group: amortizes the seq-cst epoch pin over
      // kBatchGroupWidth ops without stalling reclamation for the whole
      // (unbounded) batch.
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
      for (size_t i = 0; i < n; ++i) {
        exec(base + i, keys[base + i], hashes[i]);
      }
    }
  }

  // ---- state-machine (AMAC) engine ----

  struct AmacOp {
    uint64_t hash;
    CcehSegment* seg;
  };

  // Lock-free search machine: Hash pass (hash + directory-entry
  // prefetch) -> DirProbe pass (resolve the segment, prefetch its header
  // for *read* and the bounded 4-cacheline probe window) -> Execute pass
  // (optimistic snapshot/probe/revalidate over warm lines). Ops whose
  // snapshot conflicted with a writer or whose segment went stale under a
  // split re-resolve through the live directory, prefetch the fresh
  // segment, and suspend once more (the Retry pass), finishing with the
  // single-op retry loop over warm lines. Because the probe takes no
  // lock, the machine may suspend at the execute stage — the capability
  // the pessimistic segment lock used to rule out.
  void AmacMultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                       OpStatus* statuses) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    AmacOp ops[util::kBatchGroupWidth];
    const uint32_t mask = opts_.buckets_per_segment - 1;
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      // One directory snapshot per group (a stale entry fails the
      // optimistic coverage check and lands in the Retry pass).
      CcehDirectory* dir = Dir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        ops[i].hash = KP::Hash(keys[base + i]);
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        util::PrefetchRead(&entries[idx]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        ops[i].seg = reinterpret_cast<CcehSegment*>(
            entries[idx].load(std::memory_order_acquire));
        util::PrefetchRead(ops[i].seg);  // header: version / depth / pattern
        const uint32_t y =
            CcehSegment::BucketIndex(ops[i].hash, opts_.buckets_per_segment);
        for (uint64_t p = 0; p < kProbeBuckets; ++p) {
          util::PrefetchRead(ops[i].seg->bucket((y + p) & mask));
        }
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      util::AmacReadyList retry_pending;
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const OpStatus status = SearchSegmentOptimistic(
            ops[i].seg, keys[base + i], ops[i].hash, &values[base + i]);
        if (status != OpStatus::kRetry) {
          statuses[base + i] = status;
          continue;
        }
        // Conflict or stale segment: re-resolve through the live
        // directory, put the fresh lines in flight, resume next pass.
        ops[i].seg = Lookup(ops[i].hash);
        util::PrefetchRead(ops[i].seg);
        const uint32_t y =
            CcehSegment::BucketIndex(ops[i].hash, opts_.buckets_per_segment);
        for (uint64_t p = 0; p < kProbeBuckets; ++p) {
          util::PrefetchRead(ops[i].seg->bucket((y + p) & mask));
        }
        retry_pending.Push(i);
        ctr.Suspend(util::AmacState::kRetry);
      }
      for (size_t j = 0; j < retry_pending.count; ++j) {
        const size_t i = retry_pending.idx[j];
        ++ctr.steps;
        // Revalidate-and-finish over warm lines; the single-op loop keeps
        // retrying if writers stay ahead of us.
        statuses[base + i] =
            SearchWithHash(keys[base + i], ops[i].hash, &values[base + i]);
      }
      ctr.FlushTo(tele);
    }
  }

  // Write machine: Hash -> DirProbe (resolve entry, prefetch header for
  // ownership + the probe window) -> Execute (the ordinary locked per-op
  // body). Fixed schedule — the whole write body runs under the
  // segment's exclusive lock, so there is no variable-length continuation
  // for the round-robin scheduler to interleave (see util/amac.h). Two
  // plain passes realize the same memory schedule without the scheduler's
  // bookkeeping.
  template <typename ExecFn>
  void AmacForEach(const KeyArg* keys, size_t count, ExecFn exec) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    AmacOp ops[util::kBatchGroupWidth];
    const uint32_t mask = opts_.buckets_per_segment - 1;
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      // One directory snapshot per group (a stale entry is re-validated
      // by the execute body under the segment lock).
      CcehDirectory* dir = Dir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        ops[i].hash = KP::Hash(keys[base + i]);
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        util::PrefetchRead(&entries[idx]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        auto* seg = reinterpret_cast<CcehSegment*>(
            entries[idx].load(std::memory_order_acquire));
        util::PrefetchWrite(seg);  // header line holds the version lock
        const uint32_t y =
            CcehSegment::BucketIndex(ops[i].hash, opts_.buckets_per_segment);
        for (uint64_t p = 0; p < kProbeBuckets; ++p) {
          util::PrefetchRead(seg->bucket((y + p) & mask));
        }
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        // The body revalidates under the segment lock, so a directory
        // gone stale since resolution costs one warm retry.
        exec(base + i, keys[base + i], ops[i].hash);
      }
      ctr.FlushTo(tele);
    }
  }

  // ---- per-op bodies (caller holds an epoch guard) ----

  OpStatus InsertWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      CcehSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      const uint32_t y = CcehSegment::BucketIndex(h, seg->num_buckets);
      // Uniqueness check over the probe window.
      if (FindSlot(seg, y, key) != nullptr) {
        seg->lock.Unlock();
        return OpStatus::kExists;
      }
      CcehSlot* free_slot = FindEmpty(seg, y);
      if (free_slot != nullptr) {
        const uint64_t stored = KP::MakeStored(key, alloc_);
        free_slot->StoreValueRelaxed(value);
        pmem::Persist(&free_slot->value, sizeof(uint64_t));
        // Publishing the key is the atomic commit of the insert.
        pmem::AtomicPersist64(&free_slot->key, stored);
        seg->lock.Unlock();
        return OpStatus::kOk;
      }
      seg->lock.Unlock();
      if (!Split(seg, h)) return OpStatus::kOutOfMemory;
    }
  }

  // Optimistic probe of one segment view (§4.4 applied to CCEH): snapshot
  // the version, check the segment still covers `h` (a completed split
  // moves coverage to the child and is detected here), probe the bounded
  // window, then revalidate. Returns kOk/kNotFound on a verified probe,
  // kRetry when the caller must re-resolve through the directory (writer
  // active, version moved, or stale coverage). Never writes the
  // PM-resident lock word.
  OpStatus SearchSegmentOptimistic(CcehSegment* seg, KeyArg key, uint64_t h,
                                   uint64_t* out) {
    const uint32_t snap = seg->lock.Snapshot();
    if (util::VersionLock::IsLocked(snap)) {
      lock_stats_.CountConflict();
      return OpStatus::kRetry;
    }
    // Coverage check under the snapshot: after a split this segment's
    // pattern no longer matches keys routed to the new child, so a reader
    // holding a stale directory entry retries against the live directory.
    const uint32_t ld = seg->local_depth();
    if (ld != 0 && (h >> (64 - ld)) != seg->PatternAcquire()) {
      lock_stats_.CountRetry();
      return OpStatus::kRetry;
    }
    const uint32_t y = CcehSegment::BucketIndex(h, seg->num_buckets);
    const CcehSlot* slot = FindSlot(seg, y, key);
    const bool found = slot != nullptr;
    const uint64_t value = found ? slot->LoadValueAcquire() : 0;
    if (!seg->lock.Verify(snap)) {
      lock_stats_.CountRetry();
      return OpStatus::kRetry;
    }
    if (found) *out = value;
    return found ? OpStatus::kOk : OpStatus::kNotFound;
  }

  OpStatus SearchWithHash(KeyArg key, uint64_t h, uint64_t* out) {
    // Lock-free search: the pessimistic shared lock (a PM write per
    // acquisition/release — the bottleneck the paper identifies in
    // Fig. 8b/c and Fig. 13) is gone; conflicts retry via the directory.
    util::SpinBackoff backoff;
    for (;;) {
      CcehSegment* seg = Lookup(h);
      const OpStatus status = SearchSegmentOptimistic(seg, key, h, out);
      if (status != OpStatus::kRetry) return status;
      backoff.Pause();
    }
  }

  OpStatus DeleteWithHash(KeyArg key, uint64_t h) {
    for (;;) {
      CcehSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      const uint32_t y = CcehSegment::BucketIndex(h, seg->num_buckets);
      CcehSlot* slot = FindSlot(seg, y, key);
      const bool found = slot != nullptr;
      if (found) {
        KP::FreeStored(slot->key, alloc_);
        pmem::AtomicPersist64(&slot->key, kEmptyKey);
      }
      seg->lock.Unlock();
      return found ? OpStatus::kOk : OpStatus::kNotFound;
    }
  }

  OpStatus UpdateWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      CcehSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      const uint32_t y = CcehSegment::BucketIndex(h, seg->num_buckets);
      CcehSlot* slot = FindSlot(seg, y, key);
      const bool found = slot != nullptr;
      if (found) pmem::AtomicPersist64(&slot->value, value);
      seg->lock.Unlock();
      return found ? OpStatus::kOk : OpStatus::kNotFound;
    }
  }

  // Stages 1-2 of the batch pipeline: hash the group and prefetch each
  // directory entry, then resolve the segments and prefetch the header
  // (for ownership only on write batches — searches never write it) plus
  // the bounded linear-probe window around the target bucket. The
  // directory snapshot may go stale; the execute stage revalidates (under
  // the segment lock for writes, via snapshot/verify for searches).
  void PrefetchGroup(const KeyArg* keys, size_t n, uint64_t* hashes,
                     bool for_write) {
    CcehDirectory* dir = Dir();
    const uint64_t gd = dir->global_depth;
    std::atomic<uint64_t>* entries = dir->entries();
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = KP::Hash(keys[i]);
      const uint64_t idx = gd == 0 ? 0 : (hashes[i] >> (64 - gd));
      util::PrefetchRead(&entries[idx]);
    }
    const uint32_t mask = opts_.buckets_per_segment - 1;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t idx = gd == 0 ? 0 : (hashes[i] >> (64 - gd));
      CcehSegment* seg = dir->entry(idx);
      if (for_write) {
        util::PrefetchWrite(seg);  // header line holds the PM-resident lock
      } else {
        util::PrefetchRead(seg);
      }
      const uint32_t y =
          CcehSegment::BucketIndex(hashes[i], opts_.buckets_per_segment);
      for (uint64_t p = 0; p < kProbeBuckets; ++p) {
        util::PrefetchRead(seg->bucket((y + p) & mask));
      }
    }
  }

 public:
  uint64_t global_depth() const { return Dir()->global_depth; }

  template <typename Fn>
  void ForEachSegment(Fn fn) const {
    CcehDirectory* dir = Dir();
    const uint64_t n = 1ull << dir->global_depth;
    uint64_t i = 0;
    while (i < n) {
      CcehSegment* seg = dir->entry(i);
      fn(seg);
      i += 1ull << (dir->global_depth - seg->local_depth());
    }
  }

  CcehStats Stats() const {
    CcehStats stats;
    ForEachSegment([&](CcehSegment* seg) {
      ++stats.segments;
      stats.capacity_slots +=
          static_cast<uint64_t>(seg->num_buckets) * kSlotsPerBucket;
      for (uint32_t b = 0; b < seg->num_buckets; ++b) {
        for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
          if (seg->bucket(b)->slots[s].LoadKeyAcquire() != kEmptyKey) {
            ++stats.records;
          }
        }
      }
    });
    stats.load_factor = stats.capacity_slots == 0
                            ? 0.0
                            : static_cast<double>(stats.records) /
                                  static_cast<double>(stats.capacity_slots);
    stats.opt_retries = lock_stats_.TotalRetries();
    stats.version_conflicts = lock_stats_.TotalConflicts();
    stats.write_locks = lock_stats_.TotalWriteLocks();
    return stats;
  }

  uint64_t Size() const { return Stats().records; }
  double LoadFactor() const { return Stats().load_factor; }

  // Structural invariant check, for use at a quiescent point (after open
  // recovery): the directory and every segment live inside the pool, the
  // directory covers each segment with a correctly aligned run of
  // duplicate entries, local depths never exceed the global depth, the
  // stored pattern matches the directory position, and no segment is left
  // mid-split. Read-only.
  bool VerifyStructure() const {
    CcehDirectory* dir = Dir();
    if (dir == nullptr || !pool_->Contains(dir)) return false;
    const uint64_t gd = dir->global_depth;
    if (gd > 48) return false;
    const uint64_t n = 1ull << gd;
    uint64_t i = 0;
    while (i < n) {
      CcehSegment* seg = dir->entry(i);
      if (seg == nullptr || !pool_->Contains(seg)) return false;
      const uint32_t ld = seg->local_depth();
      if (ld > gd) return false;
      if (seg->num_buckets == 0 ||
          (seg->num_buckets & (seg->num_buckets - 1)) != 0) {
        return false;
      }
      if (seg->state() != CcehSegment::kClean) return false;
      const uint64_t run = 1ull << (gd - ld);
      if ((i & (run - 1)) != 0) return false;        // run misaligned
      if (ld > 0 && seg->pattern != (i >> (gd - ld))) return false;
      for (uint64_t j = i + 1; j < i + run; ++j) {
        if (dir->entry(j) != seg) return false;      // torn coverage run
      }
      i += run;
    }
    return true;
  }

 private:
  void CreateNew() {
    if (root_->directory == 0) {
      root_->buckets_per_segment = opts_.buckets_per_segment;
      root_->initial_depth = opts_.initial_depth;
      root_->clean = 0;
      pmem::Persist(root_, sizeof(*root_));
      auto r = alloc_->Reserve(CcehDirectory::AllocSize(opts_.initial_depth));
      assert(r.valid());
      auto* dir = static_cast<CcehDirectory*>(r.ptr);
      dir->global_depth = opts_.initial_depth;
      pmem::PersistObject(&dir->global_depth);
      alloc_->Activate(r, &root_->directory);
    }
    CcehDirectory* dir = Dir();
    const uint64_t n = 1ull << dir->global_depth;
    for (uint64_t i = 0; i < n; ++i) {
      if (dir->entry(i) != nullptr) continue;
      auto r = alloc_->Reserve(
          CcehSegment::AllocSize(opts_.buckets_per_segment));
      assert(r.valid());
      auto* seg = static_cast<CcehSegment*>(r.ptr);
      InitSegment(seg, dir->global_depth, i, CcehSegment::kClean);
      alloc_->Activate(r, reinterpret_cast<uint64_t*>(&dir->entries()[i]));
    }
    root_->initialized = 1;
    pmem::PersistObject(&root_->initialized);
  }

  void InitSegment(CcehSegment* seg, uint32_t depth, uint64_t pattern,
                   uint32_t state) {
    seg->num_buckets = opts_.buckets_per_segment;
    seg->pattern = pattern;
    seg->side_link.store(0, std::memory_order_relaxed);
    seg->depth_state.store((static_cast<uint64_t>(depth) << 32) | state,
                           std::memory_order_relaxed);
    seg->lock.Reset();
    pmem::Persist(seg, CcehSegment::AllocSize(seg->num_buckets));
  }

  void OpenExisting() {
    opts_.buckets_per_segment = root_->buckets_per_segment;
    opts_.initial_depth = root_->initial_depth;
    const bool crashed = root_->clean == 0;
    root_->clean = 0;
    pmem::Persist(&root_->clean, 1);
    if (crashed) RecoverByDirectoryScan();
  }

  // CCEH recovery: a full directory scan (Table 1 — time scales with the
  // directory, i.e., with data size). Clears locks and finishes or rolls
  // back interrupted splits.
  void RecoverByDirectoryScan() {
    CcehDirectory* dir = Dir();
    const uint64_t n = 1ull << dir->global_depth;
    uint64_t i = 0;
    while (i < n) {
      CcehSegment* seg = dir->entry(i);
      pmem::ReadProbe(seg);  // touching each segment header costs PM reads
      seg->lock.Reset();
      if (seg->state() == CcehSegment::kSplitting) {
        CcehSegment* child = seg->side();
        if (child != nullptr && child->state() == CcehSegment::kNew) {
          child->lock.Reset();
          RehashToChild(seg, child, seg->local_depth(),
                        /*check_unique=*/true);
          FinishSplit(seg, child, seg->local_depth());
        } else {
          seg->SetDepthState(seg->local_depth(), CcehSegment::kClean);
        }
      }
      i += 1ull << (dir->global_depth - seg->local_depth());
    }
  }

  CcehDirectory* Dir() const {
    return reinterpret_cast<CcehDirectory*>(
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->directory)
            ->load(std::memory_order_acquire));
  }

  CcehSegment* Lookup(uint64_t h) const {
    CcehDirectory* dir = Dir();
    const uint64_t idx =
        dir->global_depth == 0 ? 0 : (h >> (64 - dir->global_depth));
    return dir->entry(idx);
  }

  // Exclusive segment acquisition for the write paths: the lock CAS is
  // the PM lock-word write searches no longer pay.
  void LockSegment(CcehSegment* seg) {
    seg->lock.Lock();
    pmem::WriteHint(&seg->lock);
    lock_stats_.CountWriteLock();
  }

  bool Valid(CcehSegment* seg, uint64_t h) const {
    if (Lookup(h) != seg) return false;
    const uint32_t ld = seg->local_depth();
    if (ld == 0) return true;
    return (h >> (64 - ld)) == seg->pattern;
  }

  // Probes the bounded linear-probe window (4 buckets = 4 cachelines).
  // Shared by the locked write bodies and the lock-free search, so keys
  // are loaded atomically (a concurrent publish/delete is an atomic store
  // on the writer side; the search's version check discards stale hits).
  CcehSlot* FindSlot(CcehSegment* seg, uint32_t y, KeyArg key) const {
    const uint32_t mask = seg->num_buckets - 1;
    for (uint64_t p = 0; p < kProbeBuckets; ++p) {
      CcehBucket* bucket = seg->bucket((y + p) & mask);
      pmem::ReadProbe(bucket);  // one cacheline per probed bucket
      for (auto& slot : bucket->slots) {
        const uint64_t stored = slot.LoadKeyAcquire();
        if (stored == kEmptyKey) continue;
        if (KP::EqualStored(stored, key)) return &slot;
      }
    }
    return nullptr;
  }

  CcehSlot* FindEmpty(CcehSegment* seg, uint32_t y) const {
    const uint32_t mask = seg->num_buckets - 1;
    for (uint64_t p = 0; p < kProbeBuckets; ++p) {
      CcehBucket* bucket = seg->bucket((y + p) & mask);
      for (auto& slot : bucket->slots) {
        if (slot.key == kEmptyKey) return &slot;
      }
    }
    return nullptr;
  }

  // Returns false only when the split could not make progress because the
  // pool is out of memory (the insert path surfaces kOutOfMemory instead
  // of retrying forever).
  bool Split(CcehSegment* seg, uint64_t h) {
    LockSegment(seg);
    if (!Valid(seg, h)) {
      seg->lock.Unlock();
      return true;  // someone else already split; caller retries
    }
    const uint32_t old_depth = seg->local_depth();
    while (Dir()->global_depth == old_depth) {
      if (!DoubleDirectory()) {
        seg->lock.Unlock();
        return false;
      }
    }
    seg->SetDepthState(old_depth, CcehSegment::kSplitting);
    CRASH_POINT("cceh_split_after_mark");
    auto r = alloc_->Reserve(CcehSegment::AllocSize(seg->num_buckets));
    if (!r.valid()) {
      seg->SetDepthState(old_depth, CcehSegment::kClean);
      seg->lock.Unlock();
      return false;
    }
    auto* child = static_cast<CcehSegment*>(r.ptr);
    InitSegment(child, old_depth + 1, (seg->pattern << 1) | 1,
                CcehSegment::kNew);
    child->side_link.store(seg->side_link.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    pmem::Persist(child, sizeof(CcehSegment));
    alloc_->Activate(r, seg->side_link_word());
    CRASH_POINT("cceh_split_after_activate");

    RehashToChild(seg, child, old_depth, /*check_unique=*/false);
    CRASH_POINT("cceh_split_after_rehash");
    FinishSplit(seg, child, old_depth);
    seg->lock.Unlock();
    return true;
  }

  void RehashToChild(CcehSegment* seg, CcehSegment* child, uint32_t old_depth,
                     bool check_unique) {
    const uint32_t shift = 64 - (old_depth + 1);
    const uint32_t mask = child->num_buckets - 1;
    for (uint32_t b = 0; b < seg->num_buckets; ++b) {
      for (auto& slot : seg->bucket(b)->slots) {
        if (slot.key == kEmptyKey) continue;
        const uint64_t rh = KP::HashStored(slot.key);
        if (((rh >> shift) & 1) == 0) continue;
        const uint32_t y = CcehSegment::BucketIndex(rh, child->num_buckets);
        bool placed = check_unique && FindStoredInChild(child, y, slot.key);
        if (!placed) {
          for (uint64_t p = 0; p < kProbeBuckets && !placed; ++p) {
            for (auto& dst : child->bucket((y + p) & mask)->slots) {
              if (dst.key == kEmptyKey) {
                dst.StoreValueRelaxed(slot.value);
                pmem::Persist(&dst.value, sizeof(uint64_t));
                pmem::AtomicPersist64(&dst.key, slot.key);
                placed = true;
                break;
              }
            }
          }
        }
        // CCEH's pre-mature splits guarantee the child has room: only the
        // probe window around y can be occupied, and it was just created.
        assert(placed && "CCEH child overflow during split");
        pmem::AtomicPersist64(&slot.key, kEmptyKey);
      }
    }
  }

  bool FindStoredInChild(CcehSegment* child, uint32_t y, uint64_t stored) {
    const uint32_t mask = child->num_buckets - 1;
    for (uint64_t p = 0; p < kProbeBuckets; ++p) {
      for (auto& slot : child->bucket((y + p) & mask)->slots) {
        if (slot.key == stored) return true;
      }
    }
    return false;
  }

  void FinishSplit(CcehSegment* seg, CcehSegment* child, uint32_t old_depth) {
    // Atomic store: optimistic readers load the pattern for their
    // coverage check while this handoff runs (their version snapshot
    // invalidates the result either way).
    seg->StorePatternRelease(child->pattern & ~1ull);
    pmem::Persist(&seg->pattern, sizeof(seg->pattern));
    dir_lock_.LockShared();
    CcehDirectory* dir = Dir();
    const uint64_t gd = dir->global_depth;
    const uint64_t chunk = 1ull << (gd - old_depth);
    const uint64_t base = (child->pattern >> 1) << (gd - old_depth);
    for (uint64_t i = base + chunk / 2; i < base + chunk; ++i) {
      dir->SetEntry(i, child);
    }
    pmem::Persist(&dir->entries()[base + chunk / 2],
                  (chunk / 2) * sizeof(uint64_t));
    dir_lock_.UnlockShared();
    CRASH_POINT("cceh_split_after_dir_update");
    pmem::MiniTx tx(pool_);
    tx.Stage(child->depth_state_word(),
             (static_cast<uint64_t>(old_depth + 1) << 32) |
                 CcehSegment::kClean);
    tx.Stage(seg->depth_state_word(),
             (static_cast<uint64_t>(old_depth + 1) << 32) |
                 CcehSegment::kClean);
    tx.Commit();
  }

  bool DoubleDirectory() {
    dir_lock_.Lock();
    CcehDirectory* old_dir = Dir();
    const uint64_t gd = old_dir->global_depth;
    auto r = alloc_->Reserve(CcehDirectory::AllocSize(gd + 1));
    if (!r.valid()) {
      dir_lock_.Unlock();
      return false;
    }
    auto* new_dir = static_cast<CcehDirectory*>(r.ptr);
    new_dir->global_depth = gd + 1;
    for (uint64_t i = 0; i < (1ull << gd); ++i) {
      CcehSegment* seg = old_dir->entry(i);
      new_dir->SetEntry(2 * i, seg);
      new_dir->SetEntry(2 * i + 1, seg);
    }
    pmem::Persist(new_dir, CcehDirectory::AllocSize(gd + 1));
    CRASH_POINT("cceh_double_after_alloc");
    pmem::MiniTx tx(pool_);
    tx.Stage(&root_->directory, reinterpret_cast<uint64_t>(new_dir));
    const size_t retire_slot = pool_->StageRetire(&tx, old_dir);
    tx.Stage(pool_->FromOffset<uint64_t>(
                 alloc_->ReservationSlotBlockOffset(r)),
             0);
    tx.Commit();
    CRASH_POINT("cceh_double_after_commit");
    dir_lock_.Unlock();
    pmem::PmPool* pool = pool_;
    epochs_->Retire([pool, retire_slot] { pool->CompleteRetire(retire_slot); });
    return true;
  }

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  epoch::EpochManager* epochs_;
  CcehOptions opts_;
  CcehRoot* root_;
  util::RwSpinLock dir_lock_;
  // Read-path concurrency telemetry, sharded per thread so concurrent
  // writers do not bounce a shared counter cacheline; Stats() sums.
  alignas(64) mutable util::ShardedOptimisticLockStats lock_stats_;
};

}  // namespace dash::cceh

#endif  // DASH_PM_CCEH_CCEH_H_
