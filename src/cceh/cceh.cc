#include "cceh/cceh.h"

namespace dash::cceh {

template class CCEH<IntKeyPolicy>;
template class CCEH<VarKeyPolicy>;

}  // namespace dash::cceh
