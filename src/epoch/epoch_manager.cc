#include "epoch/epoch_manager.h"

#include <algorithm>
#include <cassert>

namespace dash::epoch {

EpochManager::~EpochManager() {
  // Best effort: run everything that is still pending. At destruction time
  // no guards may be active.
  DrainAll();
}

void EpochManager::Enter() {
  ThreadSlot& slot = slots_[util::ThreadId()];
  const uint32_t nesting =
      slot.nesting.fetch_add(1, std::memory_order_relaxed);
  if (nesting == 0) {
    // Publish the pinned epoch; the seq_cst exchange orders the pin against
    // subsequent reads of table structures.
    slot.pinned.store(global_epoch_.load(std::memory_order_acquire),
                      std::memory_order_seq_cst);
  }
}

void EpochManager::Exit() {
  ThreadSlot& slot = slots_[util::ThreadId()];
  const uint32_t nesting =
      slot.nesting.fetch_sub(1, std::memory_order_relaxed);
  assert(nesting >= 1);
  if (nesting == 1) {
    slot.pinned.store(kIdle, std::memory_order_release);
  }
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = kIdle;
  for (const ThreadSlot& slot : slots_) {
    const uint64_t pinned = slot.pinned.load(std::memory_order_acquire);
    min_epoch = std::min(min_epoch, pinned);
  }
  return min_epoch;
}

void EpochManager::Retire(RetireFn reclaim) {
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(
        Retired{global_epoch_.load(std::memory_order_acquire),
                std::move(reclaim)});
  }
  retire_count_.fetch_add(1, std::memory_order_relaxed);
  TryAdvanceAndReclaim();
}

void EpochManager::TryAdvanceAndReclaim() {
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t min_active = MinActiveEpoch();

  std::vector<Retired> due;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    auto it = std::partition(retired_.begin(), retired_.end(),
                             [min_active](const Retired& r) {
                               // Safe once every active thread pinned an
                               // epoch strictly later than the retirement.
                               return r.epoch >= min_active;
                             });
    due.assign(std::make_move_iterator(it),
               std::make_move_iterator(retired_.end()));
    retired_.erase(it, retired_.end());
  }
  for (Retired& r : due) r.reclaim();
}

void EpochManager::DrainAll() {
  std::vector<Retired> all;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    all = std::move(retired_);
    retired_.clear();
  }
  for (Retired& r : all) r.reclaim();
}

void EpochManager::DiscardAll() {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  retired_.clear();
}

void EpochManager::ReleaseCurrentThreadSlot() {
  ThreadSlot& slot = slots_[util::ThreadId()];
  assert(slot.nesting.load(std::memory_order_relaxed) == 0 &&
         "releasing an epoch slot while a guard is active");
  slot.nesting.store(0, std::memory_order_relaxed);
  slot.pinned.store(kIdle, std::memory_order_release);
}

size_t EpochManager::PendingCount() {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_.size();
}

}  // namespace dash::epoch
