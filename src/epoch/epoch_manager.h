// Epoch-based memory reclamation (paper §4.4, §6.1).
//
// Dash readers probe buckets without holding locks, so a segment (or a
// replaced directory) must not be returned to the allocator while a reader
// might still dereference it. The classic three-epoch scheme is used:
//
//  * Each thread entering a table operation pins the current global epoch
//    (Guard RAII).
//  * Retired blocks are stamped with the epoch at retirement.
//  * A block is reclaimed once the global epoch has advanced at least two
//    steps past its retirement epoch, which implies no active reader can
//    still observe it.
//
// Reclamation runs a user callback (e.g., PmAllocator::Free + retire-buffer
// clear), so the manager is agnostic to what is being reclaimed.

#ifndef DASH_PM_EPOCH_EPOCH_MANAGER_H_
#define DASH_PM_EPOCH_EPOCH_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_id.h"

namespace dash::epoch {

// Move-only callable for retirement callbacks. The table SMOs retire with
// tiny trivially-copyable lambdas ({pool, slot} captures), which are stored
// inline — no heap allocation on the delete/SMO hot path, unlike
// std::function. Larger or non-trivial callables fall back to the heap.
class RetireFn {
 public:
  static constexpr size_t kInlineBytes = 32;

  RetireFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RetireFn>>>
  RetireFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      destroy_ = [](void* target) { delete static_cast<Fn*>(target); };
    }
  }

  RetireFn(RetireFn&& other) noexcept { MoveFrom(other); }
  RetireFn& operator=(RetireFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  RetireFn(const RetireFn&) = delete;
  RetireFn& operator=(const RetireFn&) = delete;

  ~RetireFn() { Reset(); }

  void operator()() { invoke_(heap_ != nullptr ? heap_ : storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void MoveFrom(RetireFn& other) {
    // Inline callables are trivially copyable by construction, so a byte
    // copy of the storage is a valid move.
    for (size_t i = 0; i < kInlineBytes; ++i) storage_[i] = other.storage_[i];
    heap_ = other.heap_;
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    other.heap_ = nullptr;
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  void Reset() {
    if (destroy_ != nullptr) destroy_(heap_);
    heap_ = nullptr;
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;  // set only for heap-allocated callables
};

class EpochManager {
 public:
  EpochManager() = default;
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII epoch pin. Cheap: one acquire load + one release store each way.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr) : mgr_(mgr) {
      mgr_.Enter();
    }
    ~Guard() { mgr_.Exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
  };

  // Schedules `reclaim` to run once no epoch pinned at or before the current
  // epoch remains active. Small trivially-copyable callables are stored
  // inline (see RetireFn) — the SMO/delete hot path does not allocate.
  void Retire(RetireFn reclaim);

  // Attempts to advance the global epoch and run due reclamations. Called
  // opportunistically (e.g., by Retire and by tests).
  void TryAdvanceAndReclaim();

  // Drains all pending reclamations; callable only when no guards are held.
  void DrainAll();

  // Drops all pending reclamations WITHOUT running them. Used when the
  // underlying pool is closed dirty (simulated crash): the persistent
  // retire buffer is recovered at the next pool open instead.
  void DiscardAll();

  // Called by a long-lived worker thread (ShardedStore executor workers)
  // immediately before it exits and returns its dense thread id to the
  // pool (util::ReleaseThreadId): asserts the thread holds no guard and
  // resets its slot so the id's next owner starts from a clean pin state.
  void ReleaseCurrentThreadSlot();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Number of retirements not yet reclaimed (test/diagnostic hook).
  size_t PendingCount();

 private:
  struct ThreadSlot {
    // Epoch pinned by this thread, or kIdle when not inside a guard.
    std::atomic<uint64_t> pinned{kIdle};
    std::atomic<uint32_t> nesting{0};
    char padding[48];  // avoid false sharing
  };
  static constexpr uint64_t kIdle = ~0ull;

  struct Retired {
    uint64_t epoch;
    RetireFn reclaim;
  };

  void Enter();
  void Exit();
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_{1};
  ThreadSlot slots_[util::kMaxThreadId];

  std::mutex retired_mutex_;
  std::vector<Retired> retired_;
  std::atomic<uint64_t> retire_count_{0};
};

}  // namespace dash::epoch

#endif  // DASH_PM_EPOCH_EPOCH_MANAGER_H_
