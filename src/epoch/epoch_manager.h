// Epoch-based memory reclamation (paper §4.4, §6.1).
//
// Dash readers probe buckets without holding locks, so a segment (or a
// replaced directory) must not be returned to the allocator while a reader
// might still dereference it. The classic three-epoch scheme is used:
//
//  * Each thread entering a table operation pins the current global epoch
//    (Guard RAII).
//  * Retired blocks are stamped with the epoch at retirement.
//  * A block is reclaimed once the global epoch has advanced at least two
//    steps past its retirement epoch, which implies no active reader can
//    still observe it.
//
// Reclamation runs a user callback (e.g., PmAllocator::Free + retire-buffer
// clear), so the manager is agnostic to what is being reclaimed.

#ifndef DASH_PM_EPOCH_EPOCH_MANAGER_H_
#define DASH_PM_EPOCH_EPOCH_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/thread_id.h"

namespace dash::epoch {

class EpochManager {
 public:
  EpochManager() = default;
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII epoch pin. Cheap: one acquire load + one release store each way.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr) : mgr_(mgr) {
      mgr_.Enter();
    }
    ~Guard() { mgr_.Exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
  };

  // Schedules `reclaim` to run once no epoch pinned at or before the current
  // epoch remains active.
  void Retire(std::function<void()> reclaim);

  // Attempts to advance the global epoch and run due reclamations. Called
  // opportunistically (e.g., by Retire and by tests).
  void TryAdvanceAndReclaim();

  // Drains all pending reclamations; callable only when no guards are held.
  void DrainAll();

  // Drops all pending reclamations WITHOUT running them. Used when the
  // underlying pool is closed dirty (simulated crash): the persistent
  // retire buffer is recovered at the next pool open instead.
  void DiscardAll();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Number of retirements not yet reclaimed (test/diagnostic hook).
  size_t PendingCount();

 private:
  struct ThreadSlot {
    // Epoch pinned by this thread, or kIdle when not inside a guard.
    std::atomic<uint64_t> pinned{kIdle};
    std::atomic<uint32_t> nesting{0};
    char padding[48];  // avoid false sharing
  };
  static constexpr uint64_t kIdle = ~0ull;

  struct Retired {
    uint64_t epoch;
    std::function<void()> reclaim;
  };

  void Enter();
  void Exit();
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_{1};
  ThreadSlot slots_[util::kMaxThreadId];

  std::mutex retired_mutex_;
  std::vector<Retired> retired_;
  std::atomic<uint64_t> retire_count_{0};
};

}  // namespace dash::epoch

#endif  // DASH_PM_EPOCH_EPOCH_MANAGER_H_
