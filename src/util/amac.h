// AMAC (Asynchronous Memory Access Chaining) scheduler for the batched
// operation pipeline.
//
// The PR-1 group pipeline overlapped only the *prefetch* stages: hash and
// prefetch every directory entry, resolve and prefetch every bucket, then
// execute each operation serially. Misses taken *inside* the execute stage
// — stash probes, Dash-LH's extra address-resolution walk, Level hashing's
// bottom-level reprobe, SMO-triggered re-reads — still stalled the core
// once per operation.
//
// This engine instead keeps up to kBatchGroupWidth in-flight per-operation
// state machines: whenever one operation is about to dereference a cold
// cacheline it issues a software prefetch for that line, records its
// continuation, and yields, so the miss resolves while the other
// operations make progress.
//
// Scheduling. The machines' states are monotonic (an op never moves to an
// earlier state, except via the explicit kRetry restart), so a fair
// round-robin over them unrolls into *state passes*: pass k visits, in
// submission order, exactly the ops still suspended at state k — one ring
// lap per state, with completed ops dropping out. The tables implement
// the passes directly (plain loops plus an AmacReadyList of suspended
// continuations) rather than through a generic per-step dispatcher:
// measured on the fixed-schedule common path, per-step dispatch costs
// ~5 % of the whole operation, which is the difference between beating
// the PR-1 group pipeline and losing to it. The shared pieces here are
// the state vocabulary, the ready-list, and the suspend/resume telemetry
// surfaced by bench_batch.
//
// Scheduling constraint: a state machine must never yield while holding a
// lock another operation in the same group could need — the scheduler is
// single-threaded, so the holder would never resume and the waiter would
// spin forever. All suspend points therefore sit at lock-free program
// points; lock-protected regions (write ops, pessimistic probes) run to
// completion within a single pass visit. Since the optimistic-locking
// conversion of CCEH and Level (versioned snapshot/revalidate searches),
// every table's *search* path is lock-free end to end, so all four
// tables suspend at the execute-stage probe; ops whose revalidation
// fails against a concurrent SMO re-arm their prefetches and resume in
// the kRetry state instead of stalling cold.

#ifndef DASH_PM_UTIL_AMAC_H_
#define DASH_PM_UTIL_AMAC_H_

#include <cstddef>
#include <cstdint>

#include "util/prefetch.h"

namespace dash::util {

// Canonical stage names for the per-op state machines. Tables reuse the
// subset that applies to their layout (Level hashing has no directory;
// CCEH's bounded-window probe covers kBucketProbe and kExecute in one
// optimistic step).
enum class AmacState : uint8_t {
  kHash = 0,        // key hashed, directory/candidate lines prefetched
  kDirProbe = 1,    // directory entry read, segment header prefetched
  kSegResolve = 2,  // header validated, probe cachelines prefetched
  kBucketProbe = 3, // bucket pair probed, stash plan prefetched
  kExecute = 4,     // execute-stage continuation (stash scan / locked body)
  kRetry = 5,       // restarted after kRetry (concurrent SMO / recovery)
};
inline constexpr size_t kAmacStateCount = 6;

inline const char* AmacStateName(AmacState s) {
  switch (s) {
    case AmacState::kHash: return "hash";
    case AmacState::kDirProbe: return "dir_probe";
    case AmacState::kSegResolve: return "seg_resolve";
    case AmacState::kBucketProbe: return "bucket_probe";
    case AmacState::kExecute: return "execute";
    case AmacState::kRetry: return "retry";
  }
  return "?";
}

// Per-thread suspend/resume counters. Tables bump the thread-local
// instance on the hot path (plain stores, no atomics); bench_batch drains
// the aggregate between phases. DrainAll() must only be called while no
// other thread is executing a batch (the benchmark joins its workers
// first) — the counters are deliberately unsynchronized.
struct AmacTelemetry {
  uint64_t suspends[kAmacStateCount] = {};  // yields leaving each state
  uint64_t steps = 0;                       // state-machine step invocations
  uint64_t ops = 0;                         // operations run through the engine
  uint64_t groups = 0;                      // groups scheduled

  void Suspend(AmacState s) { ++suspends[static_cast<size_t>(s)]; }

  uint64_t TotalSuspends() const {
    uint64_t t = 0;
    for (size_t i = 0; i < kAmacStateCount; ++i) t += suspends[i];
    return t;
  }

  // The calling thread's counters (registered on first use; the entry
  // outlives the thread so DrainAll can read it after a join).
  static AmacTelemetry& Local();
  // Sums and resets every registered thread's counters.
  static AmacTelemetry DrainAll();
};

// Stack-local accumulator flushed into the thread's AmacTelemetry once
// per group: the per-step increments stay on the stack (register-
// allocatable) instead of read-modify-writing a heap line inside the
// scheduler's hot loop.
struct AmacGroupCounters {
  uint64_t suspends[kAmacStateCount] = {};
  uint64_t steps = 0;

  void Suspend(AmacState s) { ++suspends[static_cast<size_t>(s)]; }

  void FlushTo(AmacTelemetry& t) const {
    for (size_t i = 0; i < kAmacStateCount; ++i) {
      t.suspends[i] += suspends[i];
    }
    t.steps += steps;
  }
};

// The set of operations suspended at one state: a state pass drains the
// previous state's list in submission order (one round-robin lap), and an
// op that suspends again is pushed onto the next state's list. Keeping
// submission order end to end is also what lets the write engines keep
// the batch API's same-type ordering guarantee.
struct AmacReadyList {
  size_t idx[kBatchGroupWidth];
  size_t count = 0;

  void Push(size_t i) { idx[count++] = i; }
};

}  // namespace dash::util

#endif  // DASH_PM_UTIL_AMAC_H_
