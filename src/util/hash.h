// Hash functions used throughout the library.
//
// The paper uses GCC's std::_Hash_bytes (MurmurHash-based) as the hash
// function for all tables; we provide a from-scratch MurmurHash2 64A
// implementation with identical statistical behaviour, plus a cheap 64-bit
// integer mixer for inline keys.

#ifndef DASH_PM_UTIL_HASH_H_
#define DASH_PM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dash::util {

// MurmurHash2, 64-bit version for 64-bit platforms (Austin Appleby,
// public domain). Hashes `len` bytes starting at `key`.
uint64_t Murmur2_64A(const void* key, size_t len, uint64_t seed = 0xc70f6907ULL);

// Hashes a 64-bit integer key. Specialized fast path equivalent to
// Murmur2_64A over the 8-byte little-endian representation.
uint64_t HashInt64(uint64_t key, uint64_t seed = 0xc70f6907ULL);

// Finalization-style 64-bit mixer (splitmix64). Used where a cheap,
// high-quality scramble of an integer is needed (e.g., workload generation).
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace dash::util

#endif  // DASH_PM_UTIL_HASH_H_
