#include "util/zipf.h"

#include <cmath>

namespace dash::util {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zeta_n_ = Zeta(n, theta);
  zeta_theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta_theta_ / zeta_n_);
}

ZipfGenerator::ZipfGenerator(const ZipfGenerator& base, uint64_t seed)
    : n_(base.n_),
      theta_(base.theta_),
      alpha_(base.alpha_),
      zeta_n_(base.zeta_n_),
      eta_(base.eta_),
      zeta_theta_(base.zeta_theta_),
      rng_(seed) {}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace dash::util
