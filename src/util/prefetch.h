// Software-prefetch portability shim for the batched operation pipeline.
//
// The batch entry points (KvIndex::MultiSearch & friends) stage each group
// of operations AMAC-style: hash everything, prefetch the directory
// entries for the whole group, then the target bucket metadata lines, and
// only then execute the probes — so one operation's memory stall overlaps
// the next operation's prefetch. These helpers wrap __builtin_prefetch so
// table code stays compiler-portable.

#ifndef DASH_PM_UTIL_PREFETCH_H_
#define DASH_PM_UTIL_PREFETCH_H_

#include <cstddef>
#include <cstdint>

namespace dash::util {

inline constexpr size_t kPrefetchLineSize = 64;

// Number of operations staged together by the batch pipeline. Large enough
// to cover DRAM/PM latency with overlapping misses, small enough that the
// prefetched lines are still resident when the execute stage reaches them.
inline constexpr size_t kBatchGroupWidth = 16;

inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

// For lines the operation will write (bucket metadata on insert/delete,
// PM-resident lock words): fetch in exclusive state to skip the later
// read-for-ownership transition.
inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

// Prefetches every cacheline of [addr, addr + bytes).
inline void PrefetchRange(const void* addr, size_t bytes, bool for_write = false) {
  const auto start = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t first = start & ~(kPrefetchLineSize - 1);
  const uintptr_t last = (start + bytes - 1) & ~(kPrefetchLineSize - 1);
  for (uintptr_t line = first; line <= last; line += kPrefetchLineSize) {
    if (for_write) {
      PrefetchWrite(reinterpret_cast<const void*>(line));
    } else {
      PrefetchRead(reinterpret_cast<const void*>(line));
    }
  }
}

}  // namespace dash::util

#endif  // DASH_PM_UTIL_PREFETCH_H_
