// Fast pseudo-random number generation for workload drivers and tests.

#ifndef DASH_PM_UTIL_RAND_H_
#define DASH_PM_UTIL_RAND_H_

#include <cstdint>

namespace dash::util {

// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
// Not cryptographically secure; intended for benchmarks and tests.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  // Returns the next 64-bit pseudo-random value.
  uint64_t Next();

  // Returns a uniformly distributed value in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Returns a uniformly distributed double in [0, 1).
  double NextDouble();

 private:
  uint64_t s_[4];
};

}  // namespace dash::util

#endif  // DASH_PM_UTIL_RAND_H_
