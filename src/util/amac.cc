#include "util/amac.h"

#include <memory>
#include <mutex>
#include <vector>

namespace dash::util {

namespace {

// Registry of per-thread counter blocks. Entries are heap-owned and never
// freed, so DrainAll can still read a thread's counters after it exits
// (benchmark worker threads are joined before the drain). Bounded by the
// number of distinct threads the process ever runs batches on.
std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::unique_ptr<AmacTelemetry>>& Registry() {
  static std::vector<std::unique_ptr<AmacTelemetry>> entries;
  return entries;
}

}  // namespace

AmacTelemetry& AmacTelemetry::Local() {
  thread_local AmacTelemetry* local = [] {
    auto entry = std::make_unique<AmacTelemetry>();
    AmacTelemetry* ptr = entry.get();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Registry().push_back(std::move(entry));
    return ptr;
  }();
  return *local;
}

AmacTelemetry AmacTelemetry::DrainAll() {
  AmacTelemetry sum;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& entry : Registry()) {
    for (size_t i = 0; i < kAmacStateCount; ++i) {
      sum.suspends[i] += entry->suspends[i];
    }
    sum.steps += entry->steps;
    sum.ops += entry->ops;
    sum.groups += entry->groups;
    *entry = AmacTelemetry{};
  }
  return sum;
}

}  // namespace dash::util
