// Process-wide small dense thread ids, used to index per-thread persistent
// structures (allocator reservation slots, tx logs) and epoch slots.
//
// Ids are assigned on a thread's first call and can be explicitly returned
// to a free pool by long-lived worker threads right before they exit
// (ShardedStore's per-shard executor workers do this), so bounded worker
// churn — a server opening and closing many stores — does not exhaust the
// kMaxThreadId id space. An id may only be released once its owner is
// fully quiesced: the next thread adopting the id inherits the per-id
// slots (allocator reservation, tx log, epoch pin) exactly as the previous
// owner left them, which is only safe when they were left idle.

#ifndef DASH_PM_UTIL_THREAD_ID_H_
#define DASH_PM_UTIL_THREAD_ID_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dash::util {

inline constexpr uint32_t kMaxThreadId = 256;

namespace detail {

struct ThreadIdPool {
  std::mutex mu;
  std::vector<uint32_t> freed;
  uint32_t next = 0;
};

inline ThreadIdPool& GetThreadIdPool() {
  static ThreadIdPool pool;
  return pool;
}

struct ThreadIdSlot {
  uint32_t id = 0;
  bool assigned = false;
};

inline thread_local ThreadIdSlot tls_thread_id;

}  // namespace detail

// Returns this thread's dense id in [0, kMaxThreadId), assigning one on
// first call (preferring a released id over a fresh one). A process must
// not have more than kMaxThreadId *concurrent* threads touching PM
// structures.
inline uint32_t ThreadId() {
  detail::ThreadIdSlot& slot = detail::tls_thread_id;
  if (!slot.assigned) {
    detail::ThreadIdPool& pool = detail::GetThreadIdPool();
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.freed.empty()) {
      slot.id = pool.freed.back();
      pool.freed.pop_back();
    } else {
      slot.id = pool.next++;
    }
    slot.assigned = true;
  }
  assert(slot.id < kMaxThreadId &&
         "too many threads for per-thread PM slots");
  return slot.id;
}

// Returns the calling thread's id to the free pool for adoption by a later
// thread. Only valid when this thread will never again touch PM
// structures, epochs, or allocator slots under the old id (in practice:
// immediately before thread exit, with no operation in flight). A
// subsequent ThreadId() call on the same thread assigns a fresh id.
inline void ReleaseThreadId() {
  detail::ThreadIdSlot& slot = detail::tls_thread_id;
  if (!slot.assigned) return;
  detail::ThreadIdPool& pool = detail::GetThreadIdPool();
  std::lock_guard<std::mutex> lock(pool.mu);
  pool.freed.push_back(slot.id);
  slot.assigned = false;
}

}  // namespace dash::util

#endif  // DASH_PM_UTIL_THREAD_ID_H_
