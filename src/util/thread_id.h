// Process-wide small dense thread ids, used to index per-thread persistent
// structures (allocator reservation slots, tx logs) and epoch slots.

#ifndef DASH_PM_UTIL_THREAD_ID_H_
#define DASH_PM_UTIL_THREAD_ID_H_

#include <atomic>
#include <cassert>
#include <cstdint>

namespace dash::util {

inline constexpr uint32_t kMaxThreadId = 256;

// Returns this thread's dense id in [0, kMaxThreadId). Ids are assigned on
// first call and never recycled; a process must not create more than
// kMaxThreadId distinct threads that touch PM structures.
inline uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  assert(id < kMaxThreadId && "too many threads for per-thread PM slots");
  return id;
}

}  // namespace dash::util

#endif  // DASH_PM_UTIL_THREAD_ID_H_
