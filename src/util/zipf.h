// Zipfian key-distribution generator for skewed workloads (paper §6.2
// mentions Zipfian runs; we include them in the harness as an extension).

#ifndef DASH_PM_UTIL_ZIPF_H_
#define DASH_PM_UTIL_ZIPF_H_

#include <cstdint>

#include "util/rand.h"

namespace dash::util {

// Generates Zipf-distributed values in [0, n) with skew parameter `theta`
// (0 < theta < 1; YCSB uses 0.99). Uses the Gray et al. rejection-free
// method, O(1) per draw after O(1) setup.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  // Derives a generator with `base`'s distribution but its own stream:
  // reuses the O(n) zeta computation, reseeds the rng. Benchmarks build
  // one prototype outside the timed region and derive per thread.
  ZipfGenerator(const ZipfGenerator& base, uint64_t seed);

  // Returns the next Zipf-distributed rank in [0, n). Rank 0 is the hottest.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zeta_n_;
  double eta_;
  double zeta_theta_;  // zeta(2, theta)
  Xoshiro256 rng_;
};

}  // namespace dash::util

#endif  // DASH_PM_UTIL_ZIPF_H_
