// Concurrency primitives used by the hash tables.
//
// Three flavours are provided, mirroring the designs the paper compares:
//  * SpinLock          — plain test-and-set lock (infrastructure, SMO paths).
//  * RwSpinLock        — reader-writer spinlock; the "pessimistic" baseline
//                        used by CCEH / Level hashing (Fig. 13 ablation).
//                        Acquiring even a read lock writes the lock word,
//                        which on PM costs write bandwidth.
//  * VersionLock       — Dash's optimistic bucket lock (§4.4): one lock bit
//                        plus a version counter. Readers never write.

#ifndef DASH_PM_UTIL_LOCK_H_
#define DASH_PM_UTIL_LOCK_H_

#include <sched.h>

#include <atomic>
#include <cstdint>

namespace dash::util {

// Busy-wait pause hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded-spin backoff: pause for short waits, yield the CPU once the
// owner is clearly descheduled (essential on machines with fewer cores
// than contending threads — a pure spin burns the owner's quantum).
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ < kSpinLimit) {
      CpuRelax();
    } else {
      sched_yield();
    }
  }

 private:
  static constexpr uint32_t kSpinLimit = 128;
  uint32_t spins_ = 0;
};

// Plain test-and-set spinlock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    SpinBackoff backoff;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) backoff.Pause();
    }
  }

  bool TryLock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

// Reader-writer spinlock packed in a single 32-bit word:
// bit 31 = writer bit; bits 0..30 = reader count.
// This is the pessimistic locking style the paper's baselines use; on PM,
// every reader acquisition is a PM write.
class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  void LockShared() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if ((v & kWriterBit) == 0 &&
          word_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  void UnlockShared() { word_.fetch_sub(1, std::memory_order_release); }

  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if (v == 0 &&
          word_.compare_exchange_weak(v, kWriterBit,
                                      std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  bool TryLock() {
    uint32_t v = 0;
    return word_.compare_exchange_strong(v, kWriterBit,
                                         std::memory_order_acquire);
  }

  void Unlock() { word_.store(0, std::memory_order_release); }

  // Forcibly clears the lock word; used by recovery (locks held at the
  // moment of a crash must be released before the structure is reused).
  void Reset() { word_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;
  std::atomic<uint32_t> word_{0};
};

// Dash's optimistic version lock (§4.4). Layout of the 32-bit word:
// bit 31 = lock bit; bits 0..30 = version counter. Writers CAS the lock bit
// and bump the version on release (single atomic store). Readers snapshot
// the word, do their reads, and verify the word is unchanged and unlocked.
class VersionLock {
 public:
  VersionLock() = default;

  static constexpr uint32_t kLockBit = 1u << 31;

  // Acquires the exclusive lock, spinning until available.
  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockBit) == 0 &&
          word_.compare_exchange_weak(v, v | kLockBit,
                                      std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  bool TryLock() {
    uint32_t v = word_.load(std::memory_order_relaxed);
    return (v & kLockBit) == 0 &&
           word_.compare_exchange_strong(v, v | kLockBit,
                                         std::memory_order_acquire);
  }

  // Releases the lock and increments the version in one atomic store.
  void Unlock() {
    const uint32_t v = word_.load(std::memory_order_relaxed);
    word_.store((v & ~kLockBit) + 1, std::memory_order_release);
  }

  // Returns a snapshot for optimistic reads. The caller should retry if
  // IsLocked(snapshot) or a later Verify(snapshot) fails.
  uint32_t Snapshot() const { return word_.load(std::memory_order_acquire); }

  static bool IsLocked(uint32_t snapshot) { return snapshot & kLockBit; }

  // True iff no writer completed (or is active) since `snapshot` was taken.
  bool Verify(uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_acquire) == snapshot;
  }

  // Forcibly clears lock state; used by crash recovery.
  void Reset() { word_.store(0, std::memory_order_relaxed); }

  bool IsLockedNow() const {
    return word_.load(std::memory_order_acquire) & kLockBit;
  }

 private:
  std::atomic<uint32_t> word_{0};
};

static_assert(sizeof(VersionLock) == 4, "VersionLock must stay 4 bytes");

}  // namespace dash::util

#endif  // DASH_PM_UTIL_LOCK_H_
