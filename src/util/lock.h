// Concurrency primitives used by the hash tables.
//
// Three flavours are provided, mirroring the designs the paper compares:
//  * SpinLock          — plain test-and-set lock (infrastructure, SMO paths).
//  * RwSpinLock        — reader-writer spinlock; the "pessimistic" baseline
//                        used by CCEH / Level hashing (Fig. 13 ablation).
//                        Acquiring even a read lock writes the lock word,
//                        which on PM costs write bandwidth.
//  * VersionLock       — Dash's optimistic bucket lock (§4.4): one lock bit
//                        plus a version counter. Readers never write.

#ifndef DASH_PM_UTIL_LOCK_H_
#define DASH_PM_UTIL_LOCK_H_

#include <sched.h>

#include <atomic>
#include <cstdint>

#include "util/thread_id.h"

namespace dash::util {

// Busy-wait pause hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded-spin backoff: pause for short waits, yield the CPU once the
// owner is clearly descheduled (essential on machines with fewer cores
// than contending threads — a pure spin burns the owner's quantum).
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ < kSpinLimit) {
      CpuRelax();
    } else {
      sched_yield();
    }
  }

 private:
  static constexpr uint32_t kSpinLimit = 128;
  uint32_t spins_ = 0;
};

// Plain test-and-set spinlock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    SpinBackoff backoff;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) backoff.Pause();
    }
  }

  bool TryLock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

// Reader-writer spinlock packed in a single 32-bit word:
// bit 31 = writer bit; bits 0..30 = reader count.
// This is the pessimistic locking style the paper's baselines use; on PM,
// every reader acquisition is a PM write.
class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  void LockShared() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if ((v & kWriterBit) == 0 &&
          word_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  void UnlockShared() { word_.fetch_sub(1, std::memory_order_release); }

  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if (v == 0 &&
          word_.compare_exchange_weak(v, kWriterBit,
                                      std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  bool TryLock() {
    uint32_t v = 0;
    return word_.compare_exchange_strong(v, kWriterBit,
                                         std::memory_order_acquire);
  }

  void Unlock() { word_.store(0, std::memory_order_release); }

  // Forcibly clears the lock word; used by recovery (locks held at the
  // moment of a crash must be released before the structure is reused).
  void Reset() { word_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;
  std::atomic<uint32_t> word_{0};
};

// Dash's optimistic version lock (§4.4). Layout of the 32-bit word:
// bit 31 = lock bit; bits 0..30 = version counter. Writers CAS the lock bit
// and bump the version on release (single atomic store). Readers snapshot
// the word, do their reads, and verify the word is unchanged and unlocked.
class VersionLock {
 public:
  VersionLock() = default;

  static constexpr uint32_t kLockBit = 1u << 31;

  // Acquires the exclusive lock, spinning until available.
  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockBit) == 0 &&
          word_.compare_exchange_weak(v, v | kLockBit,
                                      std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  bool TryLock() {
    uint32_t v = word_.load(std::memory_order_relaxed);
    return (v & kLockBit) == 0 &&
           word_.compare_exchange_strong(v, v | kLockBit,
                                         std::memory_order_acquire);
  }

  // Releases the lock and increments the version in one atomic store.
  void Unlock() {
    const uint32_t v = word_.load(std::memory_order_relaxed);
    word_.store((v & ~kLockBit) + 1, std::memory_order_release);
  }

  // Returns a snapshot for optimistic reads. The caller should retry if
  // IsLocked(snapshot) or a later Verify(snapshot) fails.
  uint32_t Snapshot() const { return word_.load(std::memory_order_acquire); }

  static bool IsLocked(uint32_t snapshot) { return snapshot & kLockBit; }

  // True iff no writer completed (or is active) since `snapshot` was taken.
  bool Verify(uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_acquire) == snapshot;
  }

  // Forcibly clears lock state; used by crash recovery.
  void Reset() { word_.store(0, std::memory_order_relaxed); }

  bool IsLockedNow() const {
    return word_.load(std::memory_order_acquire) & kLockBit;
  }

 private:
  std::atomic<uint32_t> word_{0};
};

static_assert(sizeof(VersionLock) == 4, "VersionLock must stay 4 bytes");

// Read-path concurrency telemetry for tables with optimistic (versioned)
// search paths. The counters make "searches no longer write the lock word"
// observable: in a search-only phase `write_locks` stays zero while
// `version_conflicts` / `opt_retries` record how often readers had to
// retry against writers. Increments are relaxed; reads are snapshots.
struct OptimisticLockStats {
  std::atomic<uint64_t> opt_retries{0};        // probe restarts (failed Verify)
  std::atomic<uint64_t> version_conflicts{0};  // snapshots that saw a writer
  std::atomic<uint64_t> write_locks{0};        // exclusive lock acquisitions

  void CountConflict() {
    version_conflicts.fetch_add(1, std::memory_order_relaxed);
  }
  void CountRetry() { opt_retries.fetch_add(1, std::memory_order_relaxed); }
  void CountWriteLock() {
    write_locks.fetch_add(1, std::memory_order_relaxed);
  }
};

// Write-path telemetry for Dash's per-bucket locks (BucketLock in
// dash/bucket.h). The lock words themselves are PM-resident and must stay
// 4 bytes, so the counters live in the owning table (DRAM) and reach the
// lock methods through DashOptions::lock_stats. `acquisitions` counts
// successful exclusive acquisitions (one per locked bucket, so a
// displacing insert that locks two buckets counts twice); a plain counter
// of how much bucket-level locking the write path performs.
// `contended_spins` counts backoff pauses spent waiting for a holder —
// zero under no contention, and the growth rate under load is the
// observable form of bucket-lock contention. Increments are relaxed.
struct BucketLockStats {
  std::atomic<uint64_t> acquisitions{0};
  std::atomic<uint64_t> contended_spins{0};

  void CountAcquisition() {
    acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  void CountSpin() {
    contended_spins.fetch_add(1, std::memory_order_relaxed);
  }
};

// Per-thread sharded variants of the telemetry above. The shared-atomic
// versions bounce one cacheline across every writer thread — measurable
// on multi-thread write benches where each op counts a lock acquisition.
// Here each thread increments its own cacheline-padded shard (indexed by
// the dense util::ThreadId) and Stats()-time readers sum the shards.
// Totals are racy snapshots, same contract as before. Cost: 16 KB per
// instance (kMaxThreadId x 64 B) — noise next to a table's buckets.
struct ShardedOptimisticLockStats {
  struct alignas(64) Shard {
    std::atomic<uint64_t> opt_retries{0};
    std::atomic<uint64_t> version_conflicts{0};
    std::atomic<uint64_t> write_locks{0};
  };
  Shard shards[kMaxThreadId];

  void CountConflict() {
    shards[ThreadId()].version_conflicts.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  void CountRetry() {
    shards[ThreadId()].opt_retries.fetch_add(1, std::memory_order_relaxed);
  }
  void CountWriteLock() {
    shards[ThreadId()].write_locks.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t TotalRetries() const {
    uint64_t sum = 0;
    for (const Shard& s : shards) {
      sum += s.opt_retries.load(std::memory_order_relaxed);
    }
    return sum;
  }
  uint64_t TotalConflicts() const {
    uint64_t sum = 0;
    for (const Shard& s : shards) {
      sum += s.version_conflicts.load(std::memory_order_relaxed);
    }
    return sum;
  }
  uint64_t TotalWriteLocks() const {
    uint64_t sum = 0;
    for (const Shard& s : shards) {
      sum += s.write_locks.load(std::memory_order_relaxed);
    }
    return sum;
  }
};

struct ShardedBucketLockStats {
  struct alignas(64) Shard {
    std::atomic<uint64_t> acquisitions{0};
    std::atomic<uint64_t> contended_spins{0};
  };
  Shard shards[kMaxThreadId];

  void CountAcquisition() {
    shards[ThreadId()].acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  void CountSpin() {
    shards[ThreadId()].contended_spins.fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  uint64_t TotalAcquisitions() const {
    uint64_t sum = 0;
    for (const Shard& s : shards) {
      sum += s.acquisitions.load(std::memory_order_relaxed);
    }
    return sum;
  }
  uint64_t TotalSpins() const {
    uint64_t sum = 0;
    for (const Shard& s : shards) {
      sum += s.contended_spins.load(std::memory_order_relaxed);
    }
    return sum;
  }
};

// Reader-writer lock with an additional *optimistic* read side: a seqlock
// version word layered on the RwSpinLock. Three access modes:
//
//  * Lock()/Unlock()            — exclusive (writers, SMOs). Entry and exit
//                                 each bump the version, so the version is
//                                 odd exactly while an exclusive holder is
//                                 active (seqlock parity).
//  * LockShared()/UnlockShared()— pessimistic shared; excludes writers but
//                                 not other shared holders and does NOT
//                                 affect the version. Used by operations
//                                 that must block the exclusive path but
//                                 are themselves revalidated elsewhere
//                                 (e.g., Level inserts vs. the resize).
//  * Snapshot()/Verify()        — optimistic read: snapshot the version,
//                                 read, verify it is unchanged. Shared
//                                 holders are invisible to readers; only a
//                                 completed or in-flight exclusive section
//                                 invalidates a snapshot. Readers never
//                                 write.
class OptimisticRwLock {
 public:
  OptimisticRwLock() = default;
  OptimisticRwLock(const OptimisticRwLock&) = delete;
  OptimisticRwLock& operator=(const OptimisticRwLock&) = delete;

  void LockShared() { rw_.LockShared(); }
  void UnlockShared() { rw_.UnlockShared(); }

  void Lock() {
    rw_.Lock();
    // Entry bump *after* exclusivity, *before* any protected write: a
    // reader that snapshots mid-section sees an odd version and bails.
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  void Unlock() {
    version_.fetch_add(1, std::memory_order_release);
    rw_.Unlock();
  }

  // Version snapshot for optimistic reads. Odd means an exclusive holder
  // is active — the caller must treat that as a conflict and retry.
  uint32_t Snapshot() const {
    return version_.load(std::memory_order_acquire);
  }

  static bool SnapshotValid(uint32_t snapshot) {
    return (snapshot & 1) == 0;
  }

  // True iff no exclusive section started or completed since `snapshot`.
  bool Verify(uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == snapshot;
  }

  // Crash recovery: clears both the rw word and the version parity.
  void Reset() {
    rw_.Reset();
    version_.store(0, std::memory_order_relaxed);
  }

 private:
  RwSpinLock rw_;
  std::atomic<uint32_t> version_{0};
};

}  // namespace dash::util

#endif  // DASH_PM_UTIL_LOCK_H_
