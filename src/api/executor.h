// Per-shard execution subsystem behind ShardedStore's async submission
// API: one worker thread per shard, each owning a bounded MPSC request
// queue. Submitters (any number of client threads) enqueue work items;
// the shard's worker drains them in FIFO order through that shard's AMAC
// batch pipeline. This is what turns ShardedStore from a facade that
// time-slices shards on the caller's thread into a concurrent service
// whose throughput scales with the shard count.
//
// Ordering contract: items enqueued on one shard execute in submission
// order (per-shard FIFO); items on different shards are unordered with
// respect to each other. A full queue blocks the submitter (backpressure)
// rather than dropping or unboundedly buffering requests.
//
// Worker threads pin the shard's epochs from their own dense thread id
// (util::ThreadId) exactly like any client thread would; on exit — after
// Stop() has drained their queue — they release their epoch slot and
// return the id for reuse, so worker churn across many store open/close
// cycles cannot exhaust the process-wide id space.

#ifndef DASH_PM_API_EXECUTOR_H_
#define DASH_PM_API_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/batch_future.h"
#include "api/kv_index.h"
#include "epoch/epoch_manager.h"

namespace dash::api {

struct ExecutorOptions {
  // Maximum work items buffered per shard queue; submitters block while
  // their target queue is full.
  size_t queue_depth = 128;
  // Pin worker i to core i (mod hardware concurrency). Off by default:
  // pinning helps steady-state serving but hurts when clients and workers
  // oversubscribe a small machine.
  bool pin_workers = false;
  // When non-zero, each shard's worker refreshes its index checkpoint
  // from the idle path at most every this-many milliseconds (see
  // KvIndex::WriteCheckpoint — a no-op for PM-native tables). The
  // checkpoint runs on the worker thread between queued batches, never
  // in the middle of one.
  uint32_t checkpoint_interval_ms = 0;
  // When non-zero, each shard's worker runs one log-compaction pass from
  // the idle path at most every this-many milliseconds (see
  // KvIndex::Compact — a no-op unless DashOptions::compaction_trigger is
  // set and a lane's dead ratio crosses it). Same discipline as the
  // checkpoint refresh: between queued batches, never mid-batch.
  uint32_t compaction_interval_ms = 0;
};

class ShardExecutor {
 public:
  struct ShardCtx {
    KvIndex* index = nullptr;
    epoch::EpochManager* epochs = nullptr;
  };

  // One queued request for one shard.
  struct WorkItem {
    enum class Kind : uint8_t {
      kBatch,  // run batch->RunShard(shard, index)
      kStats,  // snapshot index->Stats() into stats->per_shard[shard]
    };
    Kind kind = Kind::kBatch;
    uint32_t shard = 0;
    std::shared_ptr<internal::BatchState> batch;
    std::shared_ptr<internal::StatsState> stats;
  };

  // Spawns one worker per shard. The ShardCtx pointees must outlive the
  // executor.
  ShardExecutor(std::vector<ShardCtx> shards, const ExecutorOptions& options);
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;
  ~ShardExecutor();  // Stop()

  // Enqueues `item` on its shard's queue, blocking while the queue is
  // full. Returns false only when the executor has been stopped (the item
  // is then not enqueued and the caller owns its completion).
  bool Submit(WorkItem item);

  // Non-blocking submission attempt, for the bounded backoff-and-retry
  // path: kFull means the queue was at capacity (the caller may back off
  // and retry), kStopped that the executor is shut down. The item is only
  // enqueued on kQueued.
  enum class SubmitResult : uint8_t { kQueued, kFull, kStopped };
  SubmitResult TrySubmit(WorkItem item);

  // Swaps the index a shard's worker executes against (release store; the
  // worker loads it per item). ShardedStore::RecoverShard uses this to
  // point the worker at the freshly recovered table.
  void SetIndex(size_t shard, KvIndex* index);

  // Marks every queue stopped, drains all queued work, and joins the
  // workers. Safe to call more than once. Submissions that lost the race
  // and arrived after Stop() return false from Submit.
  void Stop();

  size_t shard_count() const { return shards_.size(); }
  size_t queue_depth() const { return options_.queue_depth; }

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<WorkItem> items;
    bool stopped = false;
  };

  // Internal per-shard context: the index pointer is atomic so
  // RecoverShard can swap it while the worker runs (the worker loads it
  // acquire per work item); epochs never changes after construction.
  struct Slot {
    std::atomic<KvIndex*> index{nullptr};
    epoch::EpochManager* epochs = nullptr;
  };

  void WorkerLoop(size_t s);
  void Execute(WorkItem& item, size_t s);

  ExecutorOptions options_;
  std::vector<std::unique_ptr<Slot>> shards_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
};

}  // namespace dash::api

#endif  // DASH_PM_API_EXECUTOR_H_
