// ShardedStore: N hash-partitioned KvIndex instances behind one Status-
// based facade — the first concrete step toward the ROADMAP's per-shard
// serving queues. Each shard owns its own PM pool and epoch manager, so
// shards never contend on allocator or epoch state; a mixed-op batch is
// scattered to its shards, regrouped into one contiguous sub-batch per
// shard (which the shard's adapter type-partitions and runs through the
// table's AMAC prefetch pipeline), and the results are gathered back in
// caller order.
//
// Shard routing re-mixes the table hash (splitmix64 over HashInt64) so a
// shard's key population stays uniform in every hash-bit range the tables
// consume (MSB directory bits, bucket bits, fingerprint bits) — routing
// on raw hash bits would starve one of those ranges inside each shard.
//
// The pool mapper supports a bounded number of concurrently mapped pools
// (16 fixed base addresses, see pmem/pool.cc); keep `shards` well under
// that. The shard count and table kind decide key routing, so they are
// recorded in a `<path_prefix>.manifest` file at creation; Open refuses a
// mismatched configuration instead of silently misrouting keys.

#ifndef DASH_PM_API_SHARDED_STORE_H_
#define DASH_PM_API_SHARDED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/kv_index.h"
#include "api/status.h"
#include "dash/config.h"
#include "epoch/epoch_manager.h"
#include "pmem/pool.h"

namespace dash::api {

struct ShardedStoreOptions {
  IndexKind kind = IndexKind::kDashEH;
  // Number of shards (>= 1). Pool files are `<path_prefix>.shard<i>`.
  size_t shards = 4;
  std::string path_prefix;
  size_t shard_pool_size = 1ull << 30;  // per shard
  DashOptions table;
};

struct ShardedStats {
  // records / capacity_slots / bytes_used summed over shards;
  // load_factor recomputed from the sums.
  IndexStats totals;
  size_t shard_count = 0;
  // Load-factor spread across shards: a wide gap means the routing hash
  // is skewed for this workload.
  double min_shard_load_factor = 0.0;
  double max_shard_load_factor = 0.0;
};

class ShardedStore {
 public:
  // Opens (or creates) every shard pool. Returns nullptr if any pool or
  // index fails to open, or if an existing manifest disagrees with the
  // requested shard count / kind; already-opened shards are released.
  static std::unique_ptr<ShardedStore> Open(
      const ShardedStoreOptions& options);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ~ShardedStore() = default;

  // Single operations route to the owning shard. Thread-safe.
  Status Insert(uint64_t key, uint64_t value);
  Status Search(uint64_t key, uint64_t* value);
  Status Update(uint64_t key, uint64_t value);
  Status Delete(uint64_t key);

  // Homogeneous batches (same contract as the KvIndex counterparts):
  // keys are scattered per shard, each shard's contiguous sub-batch runs
  // through its native prefetch pipeline (with cross-shard prefetch
  // priming), and results are gathered back in caller order.
  void MultiSearch(const uint64_t* keys, size_t count, uint64_t* values,
                   Status* statuses);
  void MultiInsert(const uint64_t* keys, const uint64_t* values,
                   size_t count, Status* statuses);
  void MultiUpdate(const uint64_t* keys, const uint64_t* values,
                   size_t count, Status* statuses);
  void MultiDelete(const uint64_t* keys, size_t count, Status* statuses);

  // Mixed-op batch with scatter/regroup/gather: same per-op semantics as
  // KvIndex::MultiExecute, with shard partitioning layered on top (ops
  // for one shard form one contiguous sub-batch in original relative
  // order). Search results land in ops[i].value. Ordering is weaker than
  // KvIndex's chunk-bounded contract: the regroup can bring ops from
  // anywhere in the batch into one adapter chunk, so ops of *different*
  // types on the same key may be reordered across the whole batch
  // (same-type ops still keep their relative order — the scatter is
  // stable). Split batches at cross-type same-key dependencies.
  void MultiExecute(Op* ops, size_t count, Status* statuses);

  // Sums shard stats and reports the shard load-factor spread.
  ShardedStats Stats();

  // Clean shutdown of every shard (table marker, epoch drain, pool). The
  // store must not be used afterwards.
  void CloseClean();

  size_t shard_count() const { return shards_.size(); }
  // The shard index `key` routes to (stable across runs).
  size_t ShardOf(uint64_t key) const;
  // Direct access for tests / introspection.
  KvIndex* shard(size_t i) { return shards_[i].index.get(); }

 private:
  struct Shard {
    std::unique_ptr<pmem::PmPool> pool;
    std::unique_ptr<epoch::EpochManager> epochs;
    std::unique_ptr<KvIndex> index;
  };

  ShardedStore() = default;

  void ExecuteScattered(Op* ops, size_t count, Status* statuses,
                        uint32_t* shard_of, size_t* start, uint32_t* origin,
                        Op* sub, Status* sub_status, size_t* cursor);

  enum class BatchKind { kSearch, kInsert, kUpdate, kDelete };

  // Stable bucket sort of `count` items by shard. `key_at(i)` returns the
  // routing key of caller slot i; afterwards shard s owns regrouped slots
  // [start[s], start[s+1]) and origin[j] is the caller index of slot j.
  // Scratch spans: shard_of/origin hold `count`, start holds shards+1,
  // cursor holds shards.
  template <typename KeyAt>
  void PlanScatter(size_t count, KeyAt key_at, uint32_t* shard_of,
                   size_t* start, size_t* cursor, uint32_t* origin) {
    const size_t num_shards = shards_.size();
    for (size_t s = 0; s <= num_shards; ++s) start[s] = 0;
    for (size_t i = 0; i < count; ++i) {
      shard_of[i] = static_cast<uint32_t>(ShardOf(key_at(i)));
      ++start[shard_of[i] + 1];
    }
    for (size_t s = 0; s < num_shards; ++s) {
      start[s + 1] += start[s];
      cursor[s] = start[s];
    }
    for (size_t i = 0; i < count; ++i) {
      origin[cursor[shard_of[i]]++] = static_cast<uint32_t>(i);
    }
  }

  // Shared scatter/prime/dispatch/gather loop behind the homogeneous
  // Multi* entry points. `values_in` feeds insert/update payloads;
  // `values_out` receives search results; either may be null.
  void MultiUniform(BatchKind kind, const uint64_t* keys,
                    const uint64_t* values_in, uint64_t* values_out,
                    size_t count, Status* statuses);

  std::vector<Shard> shards_;
};

}  // namespace dash::api

#endif  // DASH_PM_API_SHARDED_STORE_H_
