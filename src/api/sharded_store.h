// ShardedStore: N hash-partitioned KvIndex instances behind one Status-
// based serving surface. Each shard owns its own PM pool, epoch manager,
// and — by default — a dedicated worker thread with a bounded request
// queue (see executor.h), so a cross-shard batch genuinely runs in
// parallel: the caller scatters and enqueues, N workers execute their
// contiguous sub-batches through their shard's AMAC pipeline, and the
// results are gathered back into the caller's arrays as each shard
// completes.
//
// Submission surface:
//   * Submit{Execute,Search,Insert,Update,Delete} enqueue a batch and
//     return a BatchFuture immediately; the caller's op/status/value
//     arrays must stay alive and unread until the future is ready.
//   * The synchronous Multi* entry points are thin submit+wait wrappers
//     (identical per-op semantics to the PR2 facade), so existing callers
//     keep working unchanged.
//   * Single-op Insert/Search/Update/Delete route directly to the owning
//     shard on the caller's thread, bypassing the queues.
//
// Ordering contract: batches submitted to the same shard execute in
// submission order (per-shard FIFO); sub-batches on different shards are
// unordered relative to each other. Two ops on the same key always route
// to the same shard, so a single submitter that never overlaps dependent
// batches observes serial semantics. Single-op calls bypass the queues
// and may overtake queued batches.
//
// Shard routing re-mixes the table hash (splitmix64 over HashInt64) so a
// shard's key population stays uniform in every hash-bit range the tables
// consume (MSB directory bits, bucket bits, fingerprint bits) — routing
// on raw hash bits would starve one of those ranges inside each shard.
//
// The pool mapper supports a bounded number of concurrently mapped pools
// (16 fixed base addresses, see pmem/pool.cc); keep `shards` well under
// that. The shard count and table kind decide key routing, so they are
// recorded in a `<path_prefix>.manifest` file at creation; Open refuses a
// mismatched configuration instead of silently misrouting keys. The
// manifest (v2) carries an epoch and a checksum and is replaced via
// write-to-temp + rename, so a crash mid-write leaves either the old or
// the new manifest — a torn one is detected and rejected.
//
// Fault isolation: shards are recovered in parallel at Open, each
// followed by a structural verify when the pool was dirty. A shard whose
// pool fails to open, whose identity tag mismatches (swapped files), or
// whose verify fails is *quarantined* instead of failing the whole store:
// ops routed to it return kUnavailable while every other shard keeps
// serving. RecoverShard() re-attempts recovery and re-admits the shard
// on success.

#ifndef DASH_PM_API_SHARDED_STORE_H_
#define DASH_PM_API_SHARDED_STORE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/batch_future.h"
#include "api/executor.h"
#include "api/kv_index.h"
#include "api/status.h"
#include "dash/config.h"
#include "epoch/epoch_manager.h"
#include "pmem/pool.h"

namespace dash::api {

// Knobs of the per-shard worker subsystem.
struct AsyncOptions {
  // Spawn one worker thread + bounded queue per shard. When false, Submit*
  // executes inline on the caller's thread (the future is born ready) and
  // Multi* keep the sequential scatter/execute/gather path — useful as a
  // baseline and on single-core machines.
  bool workers = true;
  // Per-shard queue depth; submitters block while their shard's queue is
  // full (backpressure).
  size_t queue_depth = 128;
  // Pin worker i to core i (mod hardware concurrency).
  bool pin_workers = false;
  // A 1-shard store skips the executor even when workers == true: there
  // is no cross-shard parallelism to win, only a thread hop to pay.
  bool inline_single_shard = true;
  // Opt-in bounded backoff on a full shard queue (replacing the
  // unconditional block): a submission that finds a queue at capacity
  // retries up to `submit_retries` times with exponential backoff
  // (backoff_initial_us, doubling, capped at backoff_cap_us); when the
  // retries are exhausted the shard's slots complete with kUnavailable
  // instead of stalling the submitter forever. 0 keeps the blocking
  // behaviour.
  size_t submit_retries = 0;
  uint32_t backoff_initial_us = 1;
  uint32_t backoff_cap_us = 1024;
};

// Per-submission knobs (defaulted trailing parameter of every Submit*).
struct SubmitOptions {
  // Relative deadline for the whole batch; zero = none. A shard worker
  // that dequeues a sub-batch after the deadline has passed completes its
  // slots with kTimeout instead of executing them, so a stuck shard
  // cannot hold the future hostage; WaitFor() then observes completion.
  std::chrono::nanoseconds deadline{0};
};

struct ShardedStoreOptions {
  IndexKind kind = IndexKind::kDashEH;
  // Number of shards (>= 1). Pool files are `<path_prefix>.shard<i>`.
  size_t shards = 4;
  std::string path_prefix;
  size_t shard_pool_size = 1ull << 30;  // per shard
  DashOptions table;
  AsyncOptions async;
  // Threads used to open/recover the shards in parallel; 0 = one per
  // shard, capped at the hardware concurrency. 1 recovers serially.
  size_t recovery_threads = 0;
  // Quarantine a pre-existing shard that fails open, tag check, or verify
  // instead of failing the whole store. A shard that fails *creation*
  // always fails the open (there is no data to degrade around). When
  // false, any shard failure fails the open (pre-PR behaviour).
  bool quarantine_failed_shards = true;
  // Run the index's structural verify on every shard whose pool was not
  // cleanly shut down (crash recovery).
  bool verify_on_open = true;
  // Derive a per-shard checkpoint path (`<path_prefix>.shard<i>.ckpt`)
  // for tables with a DRAM-resident index (hybrid), so a reopen loads the
  // index instead of rebuilding it from a full log scan. PM-native tables
  // ignore the path (their restart is already a load). When false, the
  // table config's own checkpoint_path (normally empty) is used verbatim.
  bool checkpoints = true;
  // Ask each shard's worker to refresh its checkpoint from the idle path
  // every this-many milliseconds (0 = only at CloseClean). Requires the
  // async executor; inline stores checkpoint only at CloseClean.
  uint32_t checkpoint_interval_ms = 0;
  // Ask each shard's worker to run a log-compaction pass from the idle
  // path every this-many milliseconds (0 = never; compaction also needs
  // table.compaction_trigger > 0 or every pass is a no-op). Requires the
  // async executor; inline stores compact only via explicit Compact()
  // calls on the underlying index.
  uint32_t compaction_interval_ms = 0;
};

struct ShardedStats {
  // records / capacity_slots / bytes_used summed over *healthy* shards;
  // load_factor recomputed from the sums.
  IndexStats totals;
  size_t shard_count = 0;
  // Load-factor spread across healthy shards: a wide gap means the
  // routing hash is skewed for this workload.
  double min_shard_load_factor = 0.0;
  double max_shard_load_factor = 0.0;
  // Degradation: shards currently quarantined (excluded from totals; ops
  // routed to them return kUnavailable).
  size_t quarantined_count = 0;
  std::vector<size_t> quarantined_shards;
};

// How the last Open recovered the shards (timing + quarantine outcome);
// bench_tab1_recovery's --shards mode reports these numbers.
struct RecoveryReport {
  size_t threads = 0;           // recovery thread count actually used
  double total_ms = 0.0;        // wall time of the parallel open phase
  std::vector<double> shard_ms;        // per-shard open+verify time
  std::vector<bool> shard_recovered;   // pool was dirty -> recovery ran
  std::vector<size_t> quarantined;     // shards quarantined at open
  // Recovery provenance per shard: "fresh" / "native" / "scan" /
  // "checkpoint" (RecoverySourceName), "quarantined" when the shard
  // failed open. Replayed = log records applied past the checkpoint's
  // watermarks; staleness = log sequence numbers the checkpoint was
  // behind the tail at open (both 0 unless source == "checkpoint").
  std::vector<std::string> shard_source;
  std::vector<uint64_t> shard_replayed;
  std::vector<uint64_t> shard_staleness;
};

class ShardedStore {
 public:
  // Opens (or creates) every shard pool and, unless configured inline,
  // starts the per-shard workers. Returns nullptr if any pool or index
  // fails to open, or if an existing manifest disagrees with the
  // requested shard count / kind; already-opened shards are released.
  static std::unique_ptr<ShardedStore> Open(
      const ShardedStoreOptions& options);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ~ShardedStore();

  // Single operations route to the owning shard on the caller's thread.
  // Thread-safe; not ordered against queued batches. Ops routed to a
  // quarantined shard return kUnavailable.
  Status Insert(uint64_t key, uint64_t value);
  Status Search(uint64_t key, uint64_t* value);
  Status Update(uint64_t key, uint64_t value);
  Status Delete(uint64_t key);

  // ---- degraded-mode management ----

  // Whether shard i is quarantined (failed open/verify; ops to it return
  // kUnavailable while the rest of the store serves).
  bool IsQuarantined(size_t i) const {
    return i < shards_.size() &&
           quarantined_[i].load(std::memory_order_acquire);
  }
  size_t QuarantinedCount() const {
    size_t n = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (IsQuarantined(i)) ++n;
    }
    return n;
  }

  // Re-attempts recovery of a quarantined shard (reopen pool + index +
  // verify) and re-admits it on success. kOk: the shard is healthy (also
  // when it never was quarantined). kUnavailable: recovery failed, the
  // shard stays quarantined (e.g. the pool file is still corrupt — the
  // operator may delete it and call again to start the shard empty).
  // kInvalidArgument: bad index or closed store. Serialized against
  // CloseClean and concurrent RecoverShard calls; ops on other shards
  // keep running.
  Status RecoverShard(size_t i);

  // Timing and quarantine outcome of the parallel open (stable after
  // Open returns).
  const RecoveryReport& recovery_report() const { return recovery_; }

  // ---- asynchronous submission ----
  //
  // Scatters the batch by shard on the caller's thread, enqueues one work
  // item per touched shard, and returns a completion token. The caller's
  // arrays (ops/keys/values/statuses) must stay alive — and result slots
  // unread — until the returned future is ready. After CloseClean, every
  // Submit* rejects: the future is born ready with submit_status() ==
  // kInvalidArgument and every status slot set to kInvalidArgument.

  // Mixed-op batch; same per-op semantics as KvIndex::MultiExecute with
  // shard partitioning on top. Search results land in ops[i].value. Ops
  // of different types on the same key may be reordered within the batch
  // (same-type ops keep their relative order); split batches at
  // cross-type same-key dependencies. Slots routed to a quarantined
  // shard complete immediately with kUnavailable; slots whose shard
  // dequeues them after `submit.deadline` complete with kTimeout.
  BatchFuture SubmitExecute(Op* ops, size_t count, Status* statuses,
                            const SubmitOptions& submit = {});

  // Homogeneous variants (contract of the KvIndex counterparts).
  BatchFuture SubmitSearch(const uint64_t* keys, size_t count,
                           uint64_t* values, Status* statuses,
                           const SubmitOptions& submit = {});
  BatchFuture SubmitInsert(const uint64_t* keys, const uint64_t* values,
                           size_t count, Status* statuses,
                           const SubmitOptions& submit = {});
  BatchFuture SubmitUpdate(const uint64_t* keys, const uint64_t* values,
                           size_t count, Status* statuses,
                           const SubmitOptions& submit = {});
  BatchFuture SubmitDelete(const uint64_t* keys, size_t count,
                           Status* statuses,
                           const SubmitOptions& submit = {});

  // ---- synchronous wrappers (submit + wait) ----

  void MultiSearch(const uint64_t* keys, size_t count, uint64_t* values,
                   Status* statuses);
  void MultiInsert(const uint64_t* keys, const uint64_t* values,
                   size_t count, Status* statuses);
  void MultiUpdate(const uint64_t* keys, const uint64_t* values,
                   size_t count, Status* statuses);
  void MultiDelete(const uint64_t* keys, size_t count, Status* statuses);
  void MultiExecute(Op* ops, size_t count, Status* statuses);

  // Sums shard stats and reports the shard load-factor spread. With
  // workers, the snapshot is routed through the shard queues, so each
  // shard's numbers reflect a point between two queued batches — never
  // the middle of one. Returns zeros after CloseClean.
  ShardedStats Stats();

  // Clean shutdown: stops accepting submissions (subsequent Submit*/
  // Multi* reject with kInvalidArgument), drains every queued batch,
  // joins the workers, then closes every shard (table marker, epoch
  // drain, pool). Idempotent; single-op calls are invalid afterwards.
  void CloseClean();

  size_t shard_count() const { return shards_.size(); }
  // Whether per-shard workers are running (false for inline stores).
  bool async_enabled() const { return executor_ != nullptr; }
  // The shard index `key` routes to (stable across runs).
  size_t ShardOf(uint64_t key) const;
  // Direct access for tests / introspection.
  KvIndex* shard(size_t i) { return shards_[i].index.get(); }

 private:
  struct Shard {
    std::unique_ptr<pmem::PmPool> pool;
    std::unique_ptr<epoch::EpochManager> epochs;
    std::unique_ptr<KvIndex> index;
  };

  ShardedStore() = default;

  void ExecuteScattered(Op* ops, size_t count, Status* statuses,
                        uint32_t* shard_of, size_t* start, uint32_t* origin,
                        Op* sub, Status* sub_status, size_t* cursor);

  enum class BatchKind { kSearch, kInsert, kUpdate, kDelete };

  // Stable bucket sort of `count` items by shard. `key_at(i)` returns the
  // routing key of caller slot i; afterwards shard s owns regrouped slots
  // [start[s], start[s+1]) and origin[j] is the caller index of slot j.
  // Scratch spans: shard_of/origin hold `count`, start holds shards+1,
  // cursor holds shards.
  template <typename KeyAt>
  void PlanScatter(size_t count, KeyAt key_at, uint32_t* shard_of,
                   size_t* start, size_t* cursor, uint32_t* origin) {
    const size_t num_shards = shards_.size();
    for (size_t s = 0; s <= num_shards; ++s) start[s] = 0;
    for (size_t i = 0; i < count; ++i) {
      shard_of[i] = static_cast<uint32_t>(ShardOf(key_at(i)));
      ++start[shard_of[i] + 1];
    }
    for (size_t s = 0; s < num_shards; ++s) {
      start[s + 1] += start[s];
      cursor[s] = start[s];
    }
    for (size_t i = 0; i < count; ++i) {
      origin[cursor[shard_of[i]]++] = static_cast<uint32_t>(i);
    }
  }

  // When the store is closed, fills every status slot with
  // kInvalidArgument and returns true. Authoritative when the caller
  // holds the relevant gates; used gate-free only as a fast-path check
  // (the gated re-check follows).
  bool RejectClosed(Status* statuses, size_t count) const {
    if (accepting_.load(std::memory_order_acquire)) return false;
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Status::kInvalidArgument;
    }
    return true;
  }

  // Shared submission path: scatter into `state`, then enqueue (or run
  // inline when no executor). `key_at(i)` returns caller slot i's routing
  // key (cheap, called during the scatter); `make_op(i)` materializes its
  // full descriptor once for the regrouped copy; `run_direct(index)`
  // executes the batch natively out of the caller's arrays — used by the
  // single-shard inline fast path, which needs no scatter state at all.
  template <typename KeyAt, typename MakeOp, typename RunDirect>
  BatchFuture SubmitScattered(std::shared_ptr<internal::BatchState> state,
                              size_t count, KeyAt key_at, MakeOp make_op,
                              RunDirect run_direct);

  // Sequential scatter/prime/dispatch/gather loop behind the homogeneous
  // Multi* entry points when no executor is running. `values_in` feeds
  // insert/update payloads; `values_out` receives search results; either
  // may be null.
  void MultiUniform(BatchKind kind, const uint64_t* keys,
                    const uint64_t* values_in, uint64_t* values_out,
                    size_t count, Status* statuses);

  static ShardedStats Aggregate(const IndexStats* per_shard, size_t count);

  // Per-shard table config: the store-wide DashOptions with the shard's
  // derived checkpoint path (see ShardedStoreOptions::checkpoints).
  DashOptions ShardTableOptions(size_t i) const {
    DashOptions table = options_.table;
    if (options_.checkpoints) {
      table.checkpoint_path =
          options_.path_prefix + ".shard" + std::to_string(i) + ".ckpt";
    }
    return table;
  }

  std::vector<Shard> shards_;

  // quarantined_[i]: shard i failed open/tag-check/verify and is excluded
  // from serving until RecoverShard re-admits it. Read with acquire on
  // every routing decision; flipped with release only by Open (before the
  // store is visible) and RecoverShard (under close_mu_ + the shard's
  // exclusive gate).
  std::unique_ptr<std::atomic<bool>[]> quarantined_;
  RecoveryReport recovery_;
  // Retained for RecoverShard (pool path, sizes, table config).
  ShardedStoreOptions options_;

  // Per-shard close gates (replacing the PR-3 store-wide shared_mutex):
  // each shard owns one cacheline-padded gate; a single op holds only its
  // own shard's gate shared for the duration of the probe, and a batch
  // holds the gates of exactly the shards it touches (acquired in
  // ascending shard order — the same order CloseClean sweeps — so the
  // two can never deadlock). The old design made every single op take a
  // shared-mode CAS on one store-wide cacheline, which bounced between
  // every core serving traffic; gates keep that line per shard.
  //
  // CloseClean flips `accepting_` and then locks/unlocks every gate
  // exclusively once, in order. The sweep (a) waits out every in-flight
  // holder that read accepting_ == true, and (b) forms a release/acquire
  // edge through each gate, so any later holder of that gate observes
  // accepting_ == false and backs off before touching the shard.
  struct alignas(64) ShardGate {
    std::shared_mutex mu;
  };

  // RAII shared hold on a set of gates, ascending. Either every gate
  // (`LockAll`) or the shards a scatter touched (`LockTouched`, where
  // start[s + 1] > start[s] marks shard s as touched).
  class GateSpan {
   public:
    GateSpan() = default;
    GateSpan(const GateSpan&) = delete;
    GateSpan& operator=(const GateSpan&) = delete;
    ~GateSpan() { Release(); }

    void LockAll(ShardGate* gates, size_t n) {
      gates_ = gates;
      n_ = n;
      start_ = nullptr;
      for (size_t s = 0; s < n; ++s) gates[s].mu.lock_shared();
    }
    void LockTouched(ShardGate* gates, const size_t* start, size_t n) {
      gates_ = gates;
      n_ = n;
      start_ = start;
      for (size_t s = 0; s < n; ++s) {
        if (start[s + 1] > start[s]) gates[s].mu.lock_shared();
      }
    }
    void Release() {
      if (gates_ == nullptr) return;
      for (size_t s = 0; s < n_; ++s) {
        if (start_ == nullptr || start_[s + 1] > start_[s]) {
          gates_[s].mu.unlock_shared();
        }
      }
      gates_ = nullptr;
    }

   private:
    ShardGate* gates_ = nullptr;
    const size_t* start_ = nullptr;
    size_t n_ = 0;
  };

  std::unique_ptr<ShardGate[]> gates_;
  // Idempotency latch and fast-path reject flag; authoritative only when
  // read under a gate (see ShardGate comment). `close_mu_` serializes
  // whole CloseClean calls, so a concurrent second caller blocks until
  // the first close (drain + shard teardown) has fully finished instead
  // of returning mid-close.
  std::mutex close_mu_;
  std::atomic<bool> accepting_{true};

  // Declared last: destroyed first, which joins the workers before the
  // shards they execute on go away.
  std::unique_ptr<ShardExecutor> executor_;
};

}  // namespace dash::api

#endif  // DASH_PM_API_SHARDED_STORE_H_
