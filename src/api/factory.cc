#include "api/kv_index.h"

#include <cstring>

#include "cceh/cceh.h"
#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "level/level_hashing.h"

namespace dash::api {

namespace {

// Maps the shared structural options onto baseline parameters so all four
// tables start with comparable capacity.
cceh::CcehOptions ToCcehOptions(const DashOptions& o) {
  cceh::CcehOptions c;
  // Match total segment bytes: Dash 64 x 256 B buckets == CCEH 256 x 64 B.
  c.buckets_per_segment = o.buckets_per_segment * 4;
  c.initial_depth = o.initial_depth;
  return c;
}

level::LevelOptions ToLevelOptions(const DashOptions& o) {
  level::LevelOptions l;
  // Match initial slot capacity roughly: segments * buckets * 14 slots over
  // 7-slot 128-byte buckets.
  const uint64_t slots = (1ull << o.initial_depth) *
                         static_cast<uint64_t>(o.buckets_per_segment) * 14;
  uint64_t buckets = 16;
  while (buckets * level::kSlotsPerBucket * 3 / 2 < slots) buckets *= 2;
  l.initial_top_buckets = buckets;
  return l;
}

template <typename Table, typename Key, IndexKind Kind, typename Base>
class IndexAdapter : public Base {
 public:
  template <typename Options>
  IndexAdapter(pmem::PmPool* pool, epoch::EpochManager* epochs,
               const Options& options)
      : table_(pool, epochs, options) {}

  bool Insert(Key key, uint64_t value) override {
    if constexpr (requires(Table& t) {
                    { t.Insert(key, value) } -> std::same_as<OpStatus>;
                  }) {
      return table_.Insert(key, value) == OpStatus::kOk;
    } else {
      return table_.Insert(key, value);
    }
  }
  bool Search(Key key, uint64_t* value) override {
    if constexpr (requires(Table& t) {
                    { t.Search(key, value) } -> std::same_as<OpStatus>;
                  }) {
      return table_.Search(key, value) == OpStatus::kOk;
    } else {
      return table_.Search(key, value);
    }
  }
  bool Update(Key key, uint64_t value) override {
    if constexpr (requires(Table& t) {
                    { t.Update(key, value) } -> std::same_as<OpStatus>;
                  }) {
      return table_.Update(key, value) == OpStatus::kOk;
    } else {
      return table_.Update(key, value);
    }
  }
  bool Delete(Key key) override {
    if constexpr (requires(Table& t) {
                    { t.Delete(key) } -> std::same_as<OpStatus>;
                  }) {
      return table_.Delete(key) == OpStatus::kOk;
    } else {
      return table_.Delete(key);
    }
  }
  // Batch entry points: forward to the table's native prefetch pipeline
  // when it has one; otherwise fall back to the generic per-op loop from
  // the interface defaults.
  void MultiSearch(const Key* keys, size_t count, uint64_t* values,
                   bool* found) override {
    if constexpr (requires(Table& t) {
                    t.MultiSearch(keys, count, values, found);
                  }) {
      table_.MultiSearch(keys, count, values, found);
    } else {
      Base::MultiSearch(keys, count, values, found);
    }
  }
  void MultiInsert(const Key* keys, const uint64_t* values, size_t count,
                   bool* inserted) override {
    if constexpr (requires(Table& t) {
                    t.MultiInsert(keys, values, count, inserted);
                  }) {
      table_.MultiInsert(keys, values, count, inserted);
    } else {
      Base::MultiInsert(keys, values, count, inserted);
    }
  }
  void MultiDelete(const Key* keys, size_t count, bool* deleted) override {
    if constexpr (requires(Table& t) {
                    t.MultiDelete(keys, count, deleted);
                  }) {
      table_.MultiDelete(keys, count, deleted);
    } else {
      Base::MultiDelete(keys, count, deleted);
    }
  }

  void CloseClean() override { table_.CloseClean(); }
  IndexStats Stats() override {
    const auto s = table_.Stats();
    IndexStats out;
    out.records = s.records;
    out.capacity_slots = s.capacity_slots;
    out.load_factor = s.load_factor;
    return out;
  }
  IndexKind kind() const override { return Kind; }

  Table& table() { return table_; }

 private:
  Table table_;
};

template <typename KP, typename Key, typename Base>
std::unique_ptr<Base> Make(IndexKind kind, pmem::PmPool* pool,
                           epoch::EpochManager* epochs,
                           const DashOptions& options) {
  switch (kind) {
    case IndexKind::kDashEH:
      return std::make_unique<
          IndexAdapter<DashEH<KP>, Key, IndexKind::kDashEH, Base>>(
          pool, epochs, options);
    case IndexKind::kDashLH:
      return std::make_unique<
          IndexAdapter<DashLH<KP>, Key, IndexKind::kDashLH, Base>>(
          pool, epochs, options);
    case IndexKind::kCCEH:
      return std::make_unique<
          IndexAdapter<cceh::CCEH<KP>, Key, IndexKind::kCCEH, Base>>(
          pool, epochs, ToCcehOptions(options));
    case IndexKind::kLevel:
      return std::make_unique<
          IndexAdapter<level::LevelHashing<KP>, Key, IndexKind::kLevel,
                       Base>>(pool, epochs, ToLevelOptions(options));
  }
  return nullptr;
}

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDashEH: return "dash-eh";
    case IndexKind::kDashLH: return "dash-lh";
    case IndexKind::kCCEH: return "cceh";
    case IndexKind::kLevel: return "level";
  }
  return "unknown";
}

bool ParseIndexKind(std::string_view name, IndexKind* kind) {
  if (name == "dash-eh") {
    *kind = IndexKind::kDashEH;
  } else if (name == "dash-lh") {
    *kind = IndexKind::kDashLH;
  } else if (name == "cceh") {
    *kind = IndexKind::kCCEH;
  } else if (name == "level") {
    *kind = IndexKind::kLevel;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<KvIndex> CreateKvIndex(IndexKind kind, pmem::PmPool* pool,
                                       epoch::EpochManager* epochs,
                                       const DashOptions& options) {
  return Make<IntKeyPolicy, uint64_t, KvIndex>(kind, pool, epochs, options);
}

std::unique_ptr<VarKvIndex> CreateVarKvIndex(IndexKind kind,
                                             pmem::PmPool* pool,
                                             epoch::EpochManager* epochs,
                                             const DashOptions& options) {
  return Make<VarKeyPolicy, std::string_view, VarKvIndex>(kind, pool, epochs,
                                                          options);
}

}  // namespace dash::api
