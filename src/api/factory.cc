#include <algorithm>
#include <concepts>
#include <cstring>

#include "api/kv_index.h"
#include "cceh/cceh.h"
#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "hybrid/hybrid_table.h"
#include "level/level_hashing.h"
#include "pmem/allocator.h"

namespace dash::api {

namespace {

// Maps the shared structural options onto baseline parameters so all four
// tables start with comparable capacity.
cceh::CcehOptions ToCcehOptions(const DashOptions& o) {
  cceh::CcehOptions c;
  // Match total segment bytes: Dash 64 x 256 B buckets == CCEH 256 x 64 B.
  c.buckets_per_segment = o.buckets_per_segment * 4;
  c.initial_depth = o.initial_depth;
  c.batch_pipeline = o.batch_pipeline;
  return c;
}

level::LevelOptions ToLevelOptions(const DashOptions& o) {
  level::LevelOptions l;
  // Match initial slot capacity roughly: segments * buckets * 14 slots over
  // 7-slot 128-byte buckets.
  const uint64_t slots = (1ull << o.initial_depth) *
                         static_cast<uint64_t>(o.buckets_per_segment) * 14;
  uint64_t buckets = 16;
  while (buckets * level::kSlotsPerBucket * 3 / 2 < slots) buckets *= 2;
  l.initial_top_buckets = buckets;
  l.batch_pipeline = o.batch_pipeline;
  return l;
}

hybrid::HybridOptions ToHybridOptions(const DashOptions& o) {
  hybrid::HybridOptions h;
  // Match capacity with Dash-EH at the same option set: Dash's 64-bucket
  // segment holds 64 x 14 + stash slots; the hybrid 8-slot DRAM buckets
  // get the same bucket count plus a flat stash array.
  h.buckets_per_segment = o.buckets_per_segment;
  h.stash_slots = o.stash_buckets * 8;
  h.initial_depth = o.initial_depth;
  h.batch_pipeline = o.batch_pipeline;
  h.checkpoint_path = o.checkpoint_path;
  h.rebuild_threads = o.rebuild_threads;
  h.compaction_trigger = o.compaction_trigger;
  return h;
}

// Batch processing window of the adapter layer: bounds the stack arrays
// used for reserved-key compaction and mixed-op type partitioning, and is
// the reordering window MultiExecute documents. A multiple of the tables'
// prefetch group width so chunking never truncates a pipeline group.
constexpr size_t kAdapterChunk = 256;

template <typename Table, typename Key, IndexKind Kind, typename Base>
class IndexAdapter : public Base {
 public:
  using OpDesc = typename Base::OpDesc;

  template <typename Options>
  IndexAdapter(pmem::PmPool* pool, epoch::EpochManager* epochs,
               const Options& options)
      : pool_(pool), table_(pool, epochs, options) {}

  Status Insert(Key key, uint64_t value) override {
    if (IsReservedKey(key)) return Status::kInvalidArgument;
    return FromOpStatus(table_.Insert(key, value));
  }
  Status Search(Key key, uint64_t* value) override {
    if (IsReservedKey(key)) return Status::kInvalidArgument;
    return FromOpStatus(table_.Search(key, value));
  }
  Status Update(Key key, uint64_t value) override {
    if (IsReservedKey(key)) return Status::kInvalidArgument;
    return FromOpStatus(table_.Update(key, value));
  }
  Status Delete(Key key) override {
    if (IsReservedKey(key)) return Status::kInvalidArgument;
    return FromOpStatus(table_.Delete(key));
  }

  // Batch entry points: forward to the table's native prefetch pipeline
  // when it has one, otherwise loop the single-op bodies. Reserved keys
  // are compacted out per chunk (they get kInvalidArgument and never
  // reach the table); the common no-reserved-key chunk dispatches on the
  // caller's arrays with zero copying. ForEachValidChunk owns that
  // protocol; each entry point only supplies the native dispatch and how
  // to scatter value outputs.

  void MultiSearch(const Key* keys, size_t count, uint64_t* values,
                   Status* statuses) override {
    ForEachValidChunk(
        keys, count, statuses,
        [&](const Key* k, const uint32_t* idx, size_t n, size_t base) {
          OpStatus raw[kAdapterChunk];
          if (idx == nullptr) {
            NativeMultiSearch(k, n, values + base, raw);
            ConvertStatuses(raw, n, statuses + base);
          } else {
            uint64_t cvals[kAdapterChunk];
            NativeMultiSearch(k, n, cvals, raw);
            for (size_t j = 0; j < n; ++j) {
              statuses[base + idx[j]] = FromOpStatus(raw[j]);
              if (raw[j] == OpStatus::kOk) values[base + idx[j]] = cvals[j];
            }
          }
        });
  }

  void MultiInsert(const Key* keys, const uint64_t* values, size_t count,
                   Status* statuses) override {
    MultiWrite(keys, values, count, statuses, [this](const Key* k,
                                                     const uint64_t* v,
                                                     size_t n, OpStatus* out) {
      NativeMultiInsert(k, v, n, out);
    });
  }

  void MultiUpdate(const Key* keys, const uint64_t* values, size_t count,
                   Status* statuses) override {
    MultiWrite(keys, values, count, statuses, [this](const Key* k,
                                                     const uint64_t* v,
                                                     size_t n, OpStatus* out) {
      NativeMultiUpdate(k, v, n, out);
    });
  }

  void MultiDelete(const Key* keys, size_t count,
                   Status* statuses) override {
    ForEachValidChunk(
        keys, count, statuses,
        [&](const Key* k, const uint32_t* idx, size_t n, size_t base) {
          OpStatus raw[kAdapterChunk];
          NativeMultiDelete(k, n, raw);
          if (idx == nullptr) {
            ConvertStatuses(raw, n, statuses + base);
          } else {
            for (size_t j = 0; j < n; ++j) {
              statuses[base + idx[j]] = FromOpStatus(raw[j]);
            }
          }
        });
  }

  // Mixed-operation batch (API v2 tentpole): each chunk is stably
  // partitioned by op type and every type group runs through the table's
  // native batch pipeline, so a heterogeneous batch gets the same
  // prefetch overlap as four homogeneous ones. Results are scattered back
  // to the caller's descriptor order.
  void MultiExecute(OpDesc* ops, size_t count, Status* statuses) override {
    for (size_t base = 0; base < count; base += kAdapterChunk) {
      const size_t n = std::min(kAdapterChunk, count - base);
      ExecuteChunk(ops + base, n, statuses + base);
    }
  }

  void PrefetchBatch(const Key* keys, size_t count,
                     bool for_write) override {
    if constexpr (requires(Table& t) {
                    t.PrefetchBatch(keys, count, for_write);
                  }) {
      table_.PrefetchBatch(keys, count, for_write);
    }
  }

  void SetBatchPipeline(BatchPipeline pipeline) override {
    table_.set_batch_pipeline(pipeline);
  }

  bool Verify() override {
    if constexpr (requires(const Table& t) {
                    { t.VerifyStructure() } -> std::same_as<bool>;
                  }) {
      return table_.VerifyStructure();
    } else {
      return true;
    }
  }

  bool WriteCheckpoint() override {
    if constexpr (requires(Table& t) {
                    { t.WriteCheckpoint() } -> std::same_as<bool>;
                  }) {
      return table_.WriteCheckpoint();
    } else {
      return false;  // PM-native index: restart is already a load
    }
  }

  bool Compact() override {
    if constexpr (requires(Table& t) {
                    { t.Compact() } -> std::same_as<bool>;
                  }) {
      return table_.Compact();
    } else {
      return false;  // PM-native index: no value log to compact
    }
  }

  void CloseClean() override { table_.CloseClean(); }
  IndexStats Stats() override {
    const auto s = table_.Stats();
    IndexStats out;
    out.records = s.records;
    out.capacity_slots = s.capacity_slots;
    out.load_factor = s.load_factor;
    out.bytes_used = pool_->allocator().bytes_in_use();
    out.pool_page_bytes = pool_->MappedPageBytes();
    // Optimistic read-path telemetry, where the table reports it (CCEH
    // and Level; the Dash tables predate the counters).
    if constexpr (requires { s.opt_retries; }) {
      out.opt_retries = s.opt_retries;
      out.version_conflicts = s.version_conflicts;
      out.write_locks = s.write_locks;
    }
    // Bucket-lock write-path telemetry (Dash tables only).
    if constexpr (requires { s.bucket_lock_acquisitions; }) {
      out.bucket_lock_acquisitions = s.bucket_lock_acquisitions;
      out.bucket_lock_contended_spins = s.bucket_lock_contended_spins;
    }
    // Recovery provenance (hybrid; PM-native tables keep the kNative
    // default — their structure never left PM).
    if constexpr (requires { s.recovery_source; }) {
      out.recovery_source = s.recovery_source;
      out.recovery_replayed = s.recovery_replayed;
      out.recovery_staleness = s.recovery_staleness;
    }
    // Log-compaction telemetry (hybrid only).
    if constexpr (requires { s.compactions; }) {
      out.log_dead_slots = s.log_dead_slots;
      out.compaction_dead_ratio = s.compaction_dead_ratio;
      out.compactions = s.compactions;
      out.compaction_chunks_reclaimed = s.compaction_chunks_reclaimed;
      out.compaction_bytes_rewritten = s.compaction_bytes_rewritten;
      out.log_chunks = s.log_chunks;
      out.log_chunk_bytes = s.log_chunk_bytes;
    }
    return out;
  }
  IndexKind kind() const override { return Kind; }

  Table& table() { return table_; }

 private:
  // Writes kInvalidArgument for reserved slots and records the original
  // position of every valid slot in `idx`; returns the valid count.
  static size_t CompactReserved(const Key* keys, size_t n, Status* statuses,
                                uint32_t* idx) {
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      if (IsReservedKey(keys[i])) {
        statuses[i] = Status::kInvalidArgument;
      } else {
        idx[m++] = static_cast<uint32_t>(i);
      }
    }
    return m;
  }

  static void ConvertStatuses(const OpStatus* raw, size_t n,
                              Status* statuses) {
    for (size_t i = 0; i < n; ++i) statuses[i] = FromOpStatus(raw[i]);
  }

  // Chunking + reserved-key compaction protocol shared by every Multi*
  // entry point. `run(keys, idx, n, base)` executes n valid ops: when
  // `idx` is null they are the caller's slots [base, base + n) in order
  // (zero-copy fast path); otherwise op j corresponds to caller slot
  // base + idx[j] and `keys` is the compacted key array. `run` writes the
  // converted statuses (and any values) for those slots itself.
  template <typename Run>
  void ForEachValidChunk(const Key* keys, size_t count, Status* statuses,
                         Run run) {
    uint32_t idx[kAdapterChunk];
    for (size_t base = 0; base < count; base += kAdapterChunk) {
      const size_t n = std::min(kAdapterChunk, count - base);
      const size_t m = CompactReserved(keys + base, n, statuses + base, idx);
      if (m == n) {
        run(keys + base, nullptr, n, base);
      } else if (m > 0) {
        Key ckeys[kAdapterChunk];
        for (size_t j = 0; j < m; ++j) ckeys[j] = keys[base + idx[j]];
        run(ckeys, idx, m, base);
      }
    }
  }

  // Key+value write batches on top of ForEachValidChunk (the values are
  // gathered alongside the compacted keys).
  template <typename Dispatch>
  void MultiWrite(const Key* keys, const uint64_t* values, size_t count,
                  Status* statuses, Dispatch dispatch) {
    ForEachValidChunk(
        keys, count, statuses,
        [&](const Key* k, const uint32_t* idx, size_t n, size_t base) {
          OpStatus raw[kAdapterChunk];
          if (idx == nullptr) {
            dispatch(k, values + base, n, raw);
            ConvertStatuses(raw, n, statuses + base);
          } else {
            uint64_t cvals[kAdapterChunk];
            for (size_t j = 0; j < n; ++j) cvals[j] = values[base + idx[j]];
            dispatch(k, cvals, n, raw);
            for (size_t j = 0; j < n; ++j) {
              statuses[base + idx[j]] = FromOpStatus(raw[j]);
            }
          }
        });
  }

  // One bounded chunk of a mixed batch: stable type partition, one native
  // batch dispatch per type group, scatter in caller order.
  void ExecuteChunk(OpDesc* ops, size_t n, Status* statuses) {
    uint32_t groups[4][kAdapterChunk];
    size_t sizes[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < n; ++i) {
      const auto t = static_cast<size_t>(ops[i].type);
      if (t > static_cast<size_t>(OpType::kDelete) ||
          IsReservedKey(ops[i].key)) {
        statuses[i] = Status::kInvalidArgument;
        continue;
      }
      groups[t][sizes[t]++] = static_cast<uint32_t>(i);
    }

    Key keys[kAdapterChunk];
    uint64_t vals[kAdapterChunk];
    OpStatus raw[kAdapterChunk];

    // Type groups run in OpType declaration order.
    for (size_t t = 0; t < 4; ++t) {
      const uint32_t* idx = groups[t];
      const size_t m = sizes[t];
      if (m == 0) continue;
      for (size_t j = 0; j < m; ++j) keys[j] = ops[idx[j]].key;
      switch (static_cast<OpType>(t)) {
        case OpType::kSearch:
          NativeMultiSearch(keys, m, vals, raw);
          for (size_t j = 0; j < m; ++j) {
            statuses[idx[j]] = FromOpStatus(raw[j]);
            if (raw[j] == OpStatus::kOk) ops[idx[j]].value = vals[j];
          }
          break;
        case OpType::kInsert:
          for (size_t j = 0; j < m; ++j) vals[j] = ops[idx[j]].value;
          NativeMultiInsert(keys, vals, m, raw);
          for (size_t j = 0; j < m; ++j) {
            statuses[idx[j]] = FromOpStatus(raw[j]);
          }
          break;
        case OpType::kUpdate:
          for (size_t j = 0; j < m; ++j) vals[j] = ops[idx[j]].value;
          NativeMultiUpdate(keys, vals, m, raw);
          for (size_t j = 0; j < m; ++j) {
            statuses[idx[j]] = FromOpStatus(raw[j]);
          }
          break;
        case OpType::kDelete:
          NativeMultiDelete(keys, m, raw);
          for (size_t j = 0; j < m; ++j) {
            statuses[idx[j]] = FromOpStatus(raw[j]);
          }
          break;
      }
    }
  }

  // Native pipeline dispatch, gated on the table actually providing the
  // batch entry point; the loop fallback reuses the single-op bodies.

  void NativeMultiSearch(const Key* keys, size_t n, uint64_t* values,
                         OpStatus* out) {
    if constexpr (requires(Table& t) {
                    t.MultiSearch(keys, n, values, out);
                  }) {
      table_.MultiSearch(keys, n, values, out);
    } else {
      for (size_t i = 0; i < n; ++i) out[i] = table_.Search(keys[i], &values[i]);
    }
  }
  void NativeMultiInsert(const Key* keys, const uint64_t* values, size_t n,
                         OpStatus* out) {
    if constexpr (requires(Table& t) {
                    t.MultiInsert(keys, values, n, out);
                  }) {
      table_.MultiInsert(keys, values, n, out);
    } else {
      for (size_t i = 0; i < n; ++i) out[i] = table_.Insert(keys[i], values[i]);
    }
  }
  void NativeMultiUpdate(const Key* keys, const uint64_t* values, size_t n,
                         OpStatus* out) {
    if constexpr (requires(Table& t) {
                    t.MultiUpdate(keys, values, n, out);
                  }) {
      table_.MultiUpdate(keys, values, n, out);
    } else {
      for (size_t i = 0; i < n; ++i) out[i] = table_.Update(keys[i], values[i]);
    }
  }
  void NativeMultiDelete(const Key* keys, size_t n, OpStatus* out) {
    if constexpr (requires(Table& t) { t.MultiDelete(keys, n, out); }) {
      table_.MultiDelete(keys, n, out);
    } else {
      for (size_t i = 0; i < n; ++i) out[i] = table_.Delete(keys[i]);
    }
  }

  pmem::PmPool* pool_;
  Table table_;
};

template <typename KP, typename Key, typename Base>
std::unique_ptr<Base> Make(IndexKind kind, pmem::PmPool* pool,
                           epoch::EpochManager* epochs,
                           const DashOptions& options) {
  switch (kind) {
    case IndexKind::kDashEH:
      return std::make_unique<
          IndexAdapter<DashEH<KP>, Key, IndexKind::kDashEH, Base>>(
          pool, epochs, options);
    case IndexKind::kDashLH:
      return std::make_unique<
          IndexAdapter<DashLH<KP>, Key, IndexKind::kDashLH, Base>>(
          pool, epochs, options);
    case IndexKind::kCCEH:
      return std::make_unique<
          IndexAdapter<cceh::CCEH<KP>, Key, IndexKind::kCCEH, Base>>(
          pool, epochs, ToCcehOptions(options));
    case IndexKind::kLevel:
      return std::make_unique<
          IndexAdapter<level::LevelHashing<KP>, Key, IndexKind::kLevel,
                       Base>>(pool, epochs, ToLevelOptions(options));
    case IndexKind::kHybrid:
      return std::make_unique<
          IndexAdapter<hybrid::HybridTable<KP>, Key, IndexKind::kHybrid,
                       Base>>(pool, epochs, ToHybridOptions(options));
  }
  return nullptr;
}

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDashEH: return "dash-eh";
    case IndexKind::kDashLH: return "dash-lh";
    case IndexKind::kCCEH: return "cceh";
    case IndexKind::kLevel: return "level";
    case IndexKind::kHybrid: return "hybrid";
  }
  return "unknown";
}

bool ParseIndexKind(std::string_view name, IndexKind* kind) {
  if (name == "dash-eh") {
    *kind = IndexKind::kDashEH;
  } else if (name == "dash-lh") {
    *kind = IndexKind::kDashLH;
  } else if (name == "cceh") {
    *kind = IndexKind::kCCEH;
  } else if (name == "level") {
    *kind = IndexKind::kLevel;
  } else if (name == "hybrid") {
    *kind = IndexKind::kHybrid;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<KvIndex> CreateKvIndex(IndexKind kind, pmem::PmPool* pool,
                                       epoch::EpochManager* epochs,
                                       const DashOptions& options) {
  return Make<IntKeyPolicy, uint64_t, KvIndex>(kind, pool, epochs, options);
}

std::unique_ptr<VarKvIndex> CreateVarKvIndex(IndexKind kind,
                                             pmem::PmPool* pool,
                                             epoch::EpochManager* epochs,
                                             const DashOptions& options) {
  return Make<VarKeyPolicy, std::string_view, VarKvIndex>(kind, pool, epochs,
                                                          options);
}

}  // namespace dash::api
