// API v2 status codes and operation descriptors.
//
// Every public entry point of KvIndex / VarKvIndex / ShardedStore returns
// a Status instead of a bool, so callers can distinguish "key already
// exists" from "pool out of space" from "you passed the reserved key".
// The Op descriptor is the unit of the mixed-operation batch API
// (MultiExecute): a serving frontend can gather heterogeneous requests
// into one array and push them through the tables' AMAC prefetch
// pipelines in a single call.

#ifndef DASH_PM_API_STATUS_H_
#define DASH_PM_API_STATUS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dash/op_status.h"

namespace dash::api {

enum class Status : uint8_t {
  kOk = 0,
  kNotFound,         // search/update/delete: key absent
  kExists,           // insert: key already present
  kInvalidArgument,  // reserved key (0 / empty var-key) or malformed op
  kOutOfSpace,       // the pool (or table growth) cannot make room
  kInternal,         // a table leaked a private state (bug if ever seen)
  kUnavailable,      // shard quarantined (failed recovery) or queue full
  kTimeout,          // per-submit deadline expired before the op ran
};

constexpr bool IsOk(Status s) { return s == Status::kOk; }

constexpr const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kExists: return "EXISTS";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kOutOfSpace: return "OUT_OF_SPACE";
    case Status::kInternal: return "INTERNAL";
    case Status::kUnavailable: return "UNAVAILABLE";
    case Status::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

// Maps a table-internal OpStatus onto the public Status. kNeedSplit and
// kRetry are consumed by the tables' retry loops and must never reach the
// API boundary; they map to kInternal so a leak is visible, not silent.
constexpr Status FromOpStatus(OpStatus s) {
  switch (s) {
    case OpStatus::kOk: return Status::kOk;
    case OpStatus::kExists: return Status::kExists;
    case OpStatus::kNotFound: return Status::kNotFound;
    case OpStatus::kOutOfMemory: return Status::kOutOfSpace;
    case OpStatus::kNeedSplit:
    case OpStatus::kRetry: return Status::kInternal;
  }
  return Status::kInternal;
}

// Operation type of a batch descriptor. MultiExecute runs the type groups
// of a batch in this declaration order (searches, then inserts, updates,
// deletes); within one type, ops keep their relative order.
enum class OpType : uint8_t {
  kSearch = 0,
  kInsert,
  kUpdate,
  kDelete,
};

constexpr const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kSearch: return "search";
    case OpType::kInsert: return "insert";
    case OpType::kUpdate: return "update";
    case OpType::kDelete: return "delete";
  }
  return "unknown";
}

// One fixed-key operation. `value` is an input for kInsert/kUpdate and an
// output for kSearch (written only when the search status is kOk); it is
// ignored by kDelete.
struct Op {
  OpType type = OpType::kSearch;
  uint64_t key = 0;
  uint64_t value = 0;

  static Op Search(uint64_t key) { return {OpType::kSearch, key, 0}; }
  static Op Insert(uint64_t key, uint64_t value) {
    return {OpType::kInsert, key, value};
  }
  static Op Update(uint64_t key, uint64_t value) {
    return {OpType::kUpdate, key, value};
  }
  static Op Delete(uint64_t key) { return {OpType::kDelete, key, 0}; }
};

// Variable-length-key counterpart. The string_view must stay valid for the
// duration of the MultiExecute call; the store copies the bytes on insert.
struct VarOp {
  OpType type = OpType::kSearch;
  std::string_view key;
  uint64_t value = 0;

  static VarOp Search(std::string_view key) {
    return {OpType::kSearch, key, 0};
  }
  static VarOp Insert(std::string_view key, uint64_t value) {
    return {OpType::kInsert, key, value};
  }
  static VarOp Update(std::string_view key, uint64_t value) {
    return {OpType::kUpdate, key, value};
  }
  static VarOp Delete(std::string_view key) {
    return {OpType::kDelete, key, 0};
  }
};

// Reserved keys, rejected with kInvalidArgument at the API boundary: key 0
// is the CCEH empty-slot marker (§6.3) and the empty var-key maps to a
// zero-length blob whose stored pointer is indistinguishable from "slot
// free" in pointer mode. Enforced uniformly across all four tables so a
// workload never depends on which table it happens to run against.
constexpr bool IsReservedKey(uint64_t key) { return key == 0; }
inline bool IsReservedKey(std::string_view key) { return key.empty(); }

}  // namespace dash::api

#endif  // DASH_PM_API_STATUS_H_
