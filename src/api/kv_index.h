// Unified key-value index interface over all four hash tables (Dash-EH,
// Dash-LH, CCEH, Level hashing), for fixed 8-byte keys and for
// variable-length keys. The benchmark harness, examples and integration
// tests are written against this interface so every experiment runs
// table-generically.
//
// API v2: every operation reports a Status (status.h) instead of a bool,
// the batch surface gains MultiUpdate, and MultiExecute accepts a mixed
// Search/Insert/Update/Delete descriptor batch that the factory adapters
// type-partition and dispatch through each table's AMAC prefetch
// pipeline. Key 0 (and the empty var-key) is reserved and rejected with
// Status::kInvalidArgument at this boundary.

#ifndef DASH_PM_API_KV_INDEX_H_
#define DASH_PM_API_KV_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "api/status.h"
#include "dash/config.h"
#include "epoch/epoch_manager.h"
#include "pmem/pool.h"

namespace dash::api {

enum class IndexKind {
  kDashEH,
  kDashLH,
  kCCEH,
  kLevel,
  // Hybrid DRAM-PM tier (src/hybrid/): hash structure in DRAM, values in
  // a per-thread PM log; recovery rebuilds the DRAM index from the log.
  kHybrid,
};

// Returns a short stable name ("dash-eh", "cceh", ...).
const char* IndexKindName(IndexKind kind);
// Parses the name back; returns false on unknown names.
bool ParseIndexKind(std::string_view name, IndexKind* kind);

struct IndexStats {
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  double load_factor = 0.0;
  // Heap bytes the index's pool has handed out (bump high-water mark:
  // includes blocks awaiting epoch reclamation, so an upper bound).
  uint64_t bytes_used = 0;
  // Page size backing the pool mapping (4096, or 2 MB when the pool got
  // huge pages — hugetlbfs or transparent huge pages). Software
  // prefetches only survive a DTLB miss when the TLB can hold the working
  // set, so this is the knob that decides whether the batch pipeline's
  // extra prefetches actually land.
  uint64_t pool_page_bytes = 4096;
  // Read-path concurrency telemetry (cumulative since table open), for
  // tables with optimistic versioned search paths (CCEH, Level): how
  // often optimistic reads retried after a failed revalidation, how often
  // a snapshot observed an active writer, and how many exclusive
  // (lock-word-writing) acquisitions the write paths performed. In a
  // search-only phase `write_locks` staying zero is the observable form
  // of "searches perform no lock-word writes". Dash tables' optimistic
  // buckets predate these counters and report zeros.
  uint64_t opt_retries = 0;
  uint64_t version_conflicts = 0;
  uint64_t write_locks = 0;
  // Write-path bucket-lock telemetry (cumulative since table open) for
  // the Dash tables: exclusive BucketLock acquisitions and backoff pauses
  // spent contended behind a holder. CCEH/Level have no per-bucket locks
  // and report zeros (their write-path locking shows up in write_locks).
  uint64_t bucket_lock_acquisitions = 0;
  uint64_t bucket_lock_contended_spins = 0;
  // Recovery provenance of this open. PM-native tables report kNative
  // (their structure never left PM — restart is already a load); the
  // hybrid tier reports kFresh, kScan (full log-scan rebuild), or
  // kCheckpoint (checkpoint load + tail replay). With kCheckpoint,
  // `recovery_replayed` counts the tail records applied on top of the
  // checkpoint and `recovery_staleness` the committed seqs past the
  // checkpoint frontier (0 after a quiesced clean close).
  RecoverySource recovery_source = RecoverySource::kNative;
  uint64_t recovery_replayed = 0;
  uint64_t recovery_staleness = 0;
  // Hybrid log compaction telemetry (cumulative since open; zeros for
  // PM-native tables). `log_dead_slots` counts recycled-then-freed record
  // slots across lanes; `compaction_dead_ratio` is the worst per-lane
  // dead/capacity ratio — the value Compact() weighs against
  // DashOptions::compaction_trigger.
  uint64_t log_dead_slots = 0;
  double compaction_dead_ratio = 0.0;
  uint64_t compactions = 0;
  uint64_t compaction_chunks_reclaimed = 0;
  uint64_t compaction_bytes_rewritten = 0;
  // Value-log footprint (hybrid tier): chunks currently linked across all
  // lanes and the bytes they pin. log_chunk_bytes / (records * 32) is the
  // live-space amplification the churn bench gates on.
  uint64_t log_chunks = 0;
  uint64_t log_chunk_bytes = 0;
};

// Fixed-length (8-byte) key index. All operations are thread-safe.
// Key 0 is reserved (the CCEH baseline uses it as the empty-slot marker)
// and every entry point rejects it with Status::kInvalidArgument.
class KvIndex {
 public:
  using OpDesc = Op;
  using Key = uint64_t;

  virtual ~KvIndex() = default;

  // Inserts key -> value. kOk, kExists, kOutOfSpace, kInvalidArgument.
  virtual Status Insert(uint64_t key, uint64_t value) = 0;
  // Looks up key; writes *value on kOk. kOk, kNotFound, kInvalidArgument.
  virtual Status Search(uint64_t key, uint64_t* value) = 0;
  // Replaces the payload of an existing key. kOk, kNotFound,
  // kInvalidArgument.
  virtual Status Update(uint64_t key, uint64_t value) = 0;
  // Deletes key. kOk, kNotFound, kInvalidArgument.
  virtual Status Delete(uint64_t key) = 0;

  // ---- batched operations ----
  //
  // Semantically identical to looping the single-op calls over the spans,
  // with per-slot statuses written to the output array (all arrays hold
  // `count` entries). The native table implementations run each group of
  // operations through a software-prefetching pipeline and amortize one
  // epoch guard per group; these defaults are the generic loop fallback
  // used when a table has no native batch path.

  // statuses[i] = Search(keys[i], &values[i]).
  virtual void MultiSearch(const uint64_t* keys, size_t count,
                           uint64_t* values, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Search(keys[i], &values[i]);
    }
  }
  // statuses[i] = Insert(keys[i], values[i]).
  virtual void MultiInsert(const uint64_t* keys, const uint64_t* values,
                           size_t count, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Insert(keys[i], values[i]);
    }
  }
  // statuses[i] = Update(keys[i], values[i]).
  virtual void MultiUpdate(const uint64_t* keys, const uint64_t* values,
                           size_t count, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Update(keys[i], values[i]);
    }
  }
  // statuses[i] = Delete(keys[i]).
  virtual void MultiDelete(const uint64_t* keys, size_t count,
                           Status* statuses) {
    for (size_t i = 0; i < count; ++i) statuses[i] = Delete(keys[i]);
  }

  // Mixed-operation batch: executes `count` descriptors and writes one
  // Status per descriptor; search results land in ops[i].value.
  //
  // Ordering contract: the batch is processed in bounded chunks; each
  // chunk is stably partitioned by op type and the type groups run in
  // OpType declaration order (search, insert, update, delete). Ops of the
  // same type always keep their relative order; ops of *different* types
  // on the same key may be reordered within a chunk, so batches needing a
  // serial left-to-right guarantee across types must split at the
  // dependency. The native implementations dispatch each type group
  // through the table's prefetch pipeline, which is what makes a
  // heterogeneous batch as fast as four homogeneous ones.
  virtual void MultiExecute(Op* ops, size_t count, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      switch (ops[i].type) {
        case OpType::kSearch:
          statuses[i] = Search(ops[i].key, &ops[i].value);
          break;
        case OpType::kInsert:
          statuses[i] = Insert(ops[i].key, ops[i].value);
          break;
        case OpType::kUpdate:
          statuses[i] = Update(ops[i].key, ops[i].value);
          break;
        case OpType::kDelete:
          statuses[i] = Delete(ops[i].key);
          break;
        default:  // malformed descriptor (type byte out of range)
          statuses[i] = Status::kInvalidArgument;
          break;
      }
    }
  }

  // Warms the cache lines the given keys' probes will touch by running
  // only the prefetch stages of the table's batch pipeline. A pure hint
  // with no semantic effect (the default is a no-op); ShardedStore uses
  // it to overlap one shard's memory stalls with another shard's
  // execution.
  virtual void PrefetchBatch(const uint64_t* keys, size_t count,
                             bool for_write) {
    (void)keys;
    (void)count;
    (void)for_write;
  }

  // Selects the batch execution engine behind the Multi* entry points
  // (A/B hook for bench_batch; see dash::BatchPipeline). Default no-op
  // for implementations without a native pipeline.
  virtual void SetBatchPipeline(BatchPipeline pipeline) { (void)pipeline; }

  // Structural self-check, run after crash recovery: directory pointers
  // inside the pool, depths consistent, bucket metadata sane. Returns
  // false when the recovered image is structurally corrupt — ShardedStore
  // quarantines such a shard instead of serving from it. Read-only and
  // O(directory + buckets); the default accepts everything (for
  // implementations without a native check).
  virtual bool Verify() { return true; }

  // Writes a crash-consistent checkpoint of the index's DRAM-resident
  // state (hybrid tier), so the next open is a load plus a bounded tail
  // replay instead of a full scan. Safe under concurrent operations;
  // returns false when the index has nothing to checkpoint (PM-native
  // tables), checkpointing is disabled (no path configured), or the
  // attempt was abandoned (racing splits / I/O error) — failure never
  // affects correctness, only the speed of the next open. The shard
  // workers' idle path and CloseClean call this.
  virtual bool WriteCheckpoint() { return false; }

  // Runs one online log-compaction pass (hybrid tier): lanes whose
  // dead-slot ratio exceeds DashOptions::compaction_trigger get their
  // oldest chunk rewritten — live records copied to the tail, the
  // drained chunk returned to the pool. Safe under concurrent
  // operations; returns false when nothing qualified, compaction is
  // disabled (trigger 0), or the index has no log (PM-native tables).
  // The shard workers' idle path calls this on a timer.
  virtual bool Compact() { return false; }

  // Marks a clean shutdown (before closing the pool).
  virtual void CloseClean() = 0;
  virtual IndexStats Stats() = 0;
  virtual IndexKind kind() const = 0;
};

// Variable-length key index (§4.5 pointer mode). The empty key is
// reserved; every entry point rejects it with Status::kInvalidArgument.
class VarKvIndex {
 public:
  using OpDesc = VarOp;
  using Key = std::string_view;

  virtual ~VarKvIndex() = default;

  virtual Status Insert(std::string_view key, uint64_t value) = 0;
  virtual Status Search(std::string_view key, uint64_t* value) = 0;
  virtual Status Update(std::string_view key, uint64_t value) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // Batched operations; same contract as KvIndex.
  virtual void MultiSearch(const std::string_view* keys, size_t count,
                           uint64_t* values, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Search(keys[i], &values[i]);
    }
  }
  virtual void MultiInsert(const std::string_view* keys,
                           const uint64_t* values, size_t count,
                           Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Insert(keys[i], values[i]);
    }
  }
  virtual void MultiUpdate(const std::string_view* keys,
                           const uint64_t* values, size_t count,
                           Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      statuses[i] = Update(keys[i], values[i]);
    }
  }
  virtual void MultiDelete(const std::string_view* keys, size_t count,
                           Status* statuses) {
    for (size_t i = 0; i < count; ++i) statuses[i] = Delete(keys[i]);
  }

  // Mixed-operation batch; same ordering contract as KvIndex.
  virtual void MultiExecute(VarOp* ops, size_t count, Status* statuses) {
    for (size_t i = 0; i < count; ++i) {
      switch (ops[i].type) {
        case OpType::kSearch:
          statuses[i] = Search(ops[i].key, &ops[i].value);
          break;
        case OpType::kInsert:
          statuses[i] = Insert(ops[i].key, ops[i].value);
          break;
        case OpType::kUpdate:
          statuses[i] = Update(ops[i].key, ops[i].value);
          break;
        case OpType::kDelete:
          statuses[i] = Delete(ops[i].key);
          break;
        default:  // malformed descriptor (type byte out of range)
          statuses[i] = Status::kInvalidArgument;
          break;
      }
    }
  }

  // Prefetch-only hint; same contract as KvIndex::PrefetchBatch.
  virtual void PrefetchBatch(const std::string_view* keys, size_t count,
                             bool for_write) {
    (void)keys;
    (void)count;
    (void)for_write;
  }

  // Batch-engine selector; same contract as KvIndex::SetBatchPipeline.
  virtual void SetBatchPipeline(BatchPipeline pipeline) { (void)pipeline; }

  // Structural self-check; same contract as KvIndex::Verify.
  virtual bool Verify() { return true; }

  // Checkpoint hook; same contract as KvIndex::WriteCheckpoint.
  virtual bool WriteCheckpoint() { return false; }

  // Compaction hook; same contract as KvIndex::Compact.
  virtual bool Compact() { return false; }

  virtual void CloseClean() = 0;
  virtual IndexStats Stats() = 0;
  virtual IndexKind kind() const = 0;
};

// Creates (or re-opens, if the pool already holds one) an index of `kind`
// in `pool`'s root area. `options` supplies Dash knobs; baselines map the
// structural fields onto their own parameters.
std::unique_ptr<KvIndex> CreateKvIndex(IndexKind kind, pmem::PmPool* pool,
                                       epoch::EpochManager* epochs,
                                       const DashOptions& options);

std::unique_ptr<VarKvIndex> CreateVarKvIndex(IndexKind kind,
                                             pmem::PmPool* pool,
                                             epoch::EpochManager* epochs,
                                             const DashOptions& options);

}  // namespace dash::api

#endif  // DASH_PM_API_KV_INDEX_H_
