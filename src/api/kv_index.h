// Unified key-value index interface over all four hash tables (Dash-EH,
// Dash-LH, CCEH, Level hashing), for fixed 8-byte keys and for
// variable-length keys. The benchmark harness, examples and integration
// tests are written against this interface so every experiment runs
// table-generically.

#ifndef DASH_PM_API_KV_INDEX_H_
#define DASH_PM_API_KV_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "dash/config.h"
#include "epoch/epoch_manager.h"
#include "pmem/pool.h"

namespace dash::api {

enum class IndexKind {
  kDashEH,
  kDashLH,
  kCCEH,
  kLevel,
};

// Returns a short stable name ("dash-eh", "cceh", ...).
const char* IndexKindName(IndexKind kind);
// Parses the name back; returns false on unknown names.
bool ParseIndexKind(std::string_view name, IndexKind* kind);

struct IndexStats {
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  double load_factor = 0.0;
};

// Fixed-length (8-byte) key index. All operations are thread-safe.
// Note: key 0 is reserved (the CCEH baseline uses it as the empty-slot
// marker); workloads must use non-zero keys for cross-table comparisons.
class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Inserts key -> value; returns false if the key already exists.
  virtual bool Insert(uint64_t key, uint64_t value) = 0;
  // Looks up key; returns false if absent.
  virtual bool Search(uint64_t key, uint64_t* value) = 0;
  // Replaces the payload of an existing key; returns false if absent.
  virtual bool Update(uint64_t key, uint64_t value) = 0;
  // Deletes key; returns false if absent.
  virtual bool Delete(uint64_t key) = 0;

  // ---- batched operations ----
  //
  // Semantically identical to looping the single-op calls over the spans,
  // with per-slot results written to the output arrays (all arrays hold
  // `count` entries). The native table implementations run each group of
  // operations through a software-prefetching pipeline and amortize one
  // epoch guard per group; these defaults are the generic loop fallback
  // used when a table has no native batch path.

  // found[i] = Search(keys[i], &values[i]).
  virtual void MultiSearch(const uint64_t* keys, size_t count,
                           uint64_t* values, bool* found) {
    for (size_t i = 0; i < count; ++i) found[i] = Search(keys[i], &values[i]);
  }
  // inserted[i] = Insert(keys[i], values[i]).
  virtual void MultiInsert(const uint64_t* keys, const uint64_t* values,
                           size_t count, bool* inserted) {
    for (size_t i = 0; i < count; ++i) {
      inserted[i] = Insert(keys[i], values[i]);
    }
  }
  // deleted[i] = Delete(keys[i]).
  virtual void MultiDelete(const uint64_t* keys, size_t count, bool* deleted) {
    for (size_t i = 0; i < count; ++i) deleted[i] = Delete(keys[i]);
  }

  // Marks a clean shutdown (before closing the pool).
  virtual void CloseClean() = 0;
  virtual IndexStats Stats() = 0;
  virtual IndexKind kind() const = 0;
};

// Variable-length key index (§4.5 pointer mode).
class VarKvIndex {
 public:
  virtual ~VarKvIndex() = default;

  virtual bool Insert(std::string_view key, uint64_t value) = 0;
  virtual bool Search(std::string_view key, uint64_t* value) = 0;
  virtual bool Update(std::string_view key, uint64_t value) = 0;
  virtual bool Delete(std::string_view key) = 0;

  // Batched operations; same contract as KvIndex.
  virtual void MultiSearch(const std::string_view* keys, size_t count,
                           uint64_t* values, bool* found) {
    for (size_t i = 0; i < count; ++i) found[i] = Search(keys[i], &values[i]);
  }
  virtual void MultiInsert(const std::string_view* keys,
                           const uint64_t* values, size_t count,
                           bool* inserted) {
    for (size_t i = 0; i < count; ++i) {
      inserted[i] = Insert(keys[i], values[i]);
    }
  }
  virtual void MultiDelete(const std::string_view* keys, size_t count,
                           bool* deleted) {
    for (size_t i = 0; i < count; ++i) deleted[i] = Delete(keys[i]);
  }

  virtual void CloseClean() = 0;
  virtual IndexStats Stats() = 0;
  virtual IndexKind kind() const = 0;
};

// Creates (or re-opens, if the pool already holds one) an index of `kind`
// in `pool`'s root area. `options` supplies Dash knobs; baselines map the
// structural fields onto their own parameters.
std::unique_ptr<KvIndex> CreateKvIndex(IndexKind kind, pmem::PmPool* pool,
                                       epoch::EpochManager* epochs,
                                       const DashOptions& options);

std::unique_ptr<VarKvIndex> CreateVarKvIndex(IndexKind kind,
                                             pmem::PmPool* pool,
                                             epoch::EpochManager* epochs,
                                             const DashOptions& options);

}  // namespace dash::api

#endif  // DASH_PM_API_KV_INDEX_H_
