// Completion tokens for the asynchronous submission API.
//
// ShardedStore::Submit* scatters a batch on the caller thread, enqueues one
// work item per touched shard on that shard's worker queue, and returns a
// BatchFuture. Each worker executes its contiguous sub-range through the
// shard's AMAC pipeline, writes results straight back into the caller's
// arrays (the gather is distributed — every regrouped slot maps to a
// distinct caller slot, so writers never overlap), and signals one shard
// completion. The future becomes ready when the last shard completes; the
// release-decrement / acquire-load pair on the pending count is what makes
// the caller's reads of its result arrays safe after Wait()/Ready().

#ifndef DASH_PM_API_BATCH_FUTURE_H_
#define DASH_PM_API_BATCH_FUTURE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "api/kv_index.h"
#include "api/status.h"

namespace dash::api {

namespace internal {

// Shared shard-completion counting. `pending` is the number of shard work
// items still outstanding; the last CompleteOne wakes every waiter and
// fires the completion callback, if one was registered.
struct CompletionState {
  std::atomic<uint32_t> pending{0};

  bool Ready() const {
    return pending.load(std::memory_order_acquire) == 0;
  }

  void Wait() {
    if (Ready()) return;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return Ready(); });
  }

  // Bounded wait: returns Ready() after at most `timeout`. A false return
  // means the batch is still in flight — the caller's arrays are NOT yet
  // safe to read; Wait() (or another WaitFor) must still complete before
  // they are touched or freed.
  bool WaitFor(std::chrono::nanoseconds timeout) {
    if (Ready()) return true;
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, timeout, [this] { return Ready(); });
  }

  void CompleteOne() {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::function<void()> cb;
      {
        // The lock orders the notify against a waiter that observed
        // pending != 0 but has not started waiting yet, and arbitrates
        // the callback handoff against a racing OnReady.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
        cb = std::move(callback);
        callback = nullptr;
      }
      if (cb) cb();  // outside the lock: the callback may Wait()/resubmit
    }
  }

  // Registers the completion callback. If the batch is already complete,
  // `fn` runs synchronously on the calling thread before OnReady returns;
  // otherwise it runs exactly once on the thread that completes the last
  // shard. At most one callback is held: a second registration before
  // completion replaces the first (which is then never invoked).
  //
  // The callback-vs-completion race resolves under `mu`: either the
  // registration lands before the final CompleteOne takes the lock (the
  // completer finds and fires it), or it observes Ready() under the lock
  // and fires on the registering thread — never both, never neither.
  void OnReady(std::function<void()> fn) {
    if (!fn) return;
    {
      std::unique_lock<std::mutex> lock(mu);
      if (!Ready()) {
        callback = std::move(fn);
        return;
      }
    }
    fn();
  }

 protected:
  std::mutex mu;
  std::condition_variable cv;
  std::function<void()> callback;
};

// One submitted batch. Owns the regrouped copy of the operations (shard s
// holds the contiguous range [start[s], start[s+1])) so the request stays
// valid while it sits in queues; the caller's output arrays must outlive
// the future's completion. Serving-sized batches live entirely in the
// inline storage below — one make_shared allocation per request instead
// of a handful of vector allocations on the hot submission path.
struct BatchState : CompletionState {
  static constexpr size_t kInlineOps = 256;
  static constexpr size_t kInlineShards = 64;

  // Spans set up by ShardedStore::SubmitScattered: into the inline
  // arrays when count <= kInlineOps and shards <= kInlineShards, into
  // the heap vectors beyond.
  Op* sub = nullptr;           // regrouped descriptors
  Status* sub_status = nullptr;
  uint32_t* origin = nullptr;  // regrouped slot -> caller slot
  size_t* start = nullptr;     // per-shard offsets, size shards + 1

  // Caller-owned result arrays.
  Status* statuses = nullptr;
  Op* caller_ops = nullptr;       // mixed batch: search results
  uint64_t* values_out = nullptr;  // homogeneous search: search results

  // kOk when the batch was accepted; kInvalidArgument when the store had
  // already been closed (the future is then born ready and every caller
  // status slot holds kInvalidArgument).
  Status submit_status = Status::kOk;

  // Optional per-submit deadline (AsyncOptions / SubmitOptions). A shard
  // worker that dequeues this batch after the deadline has passed fails
  // the shard's slots with kTimeout instead of executing them, so a
  // stuck or overloaded shard cannot hold the whole batch hostage.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // Runs shard s's sub-range against `index`, writes statuses (and search
  // results) back to the caller slots, and signals the shard completion.
  // Defined in executor.cc.
  void RunShard(size_t s, KvIndex* index);

  // Completes shard s without executing it: every caller slot of the
  // shard's sub-range gets `st` (kTimeout for an expired deadline,
  // kUnavailable for a quarantined shard or exhausted queue retries).
  void FailShard(size_t s, Status st) {
    const size_t begin = start[s];
    const size_t end = start[s + 1];
    for (size_t j = begin; j < end; ++j) statuses[origin[j]] = st;
    CompleteOne();
  }

  // Points the spans at the inline arrays or, beyond their capacity, at
  // freshly sized heap vectors.
  void ReserveSlots(size_t count, size_t shards) {
    if (count <= kInlineOps && shards <= kInlineShards) {
      sub = inline_sub_;
      sub_status = inline_status_;
      origin = inline_origin_;
      start = inline_start_;
    } else {
      heap_sub_.resize(count);
      heap_status_.resize(count);
      heap_origin_.resize(count);
      heap_start_.resize(shards + 1);
      sub = heap_sub_.data();
      sub_status = heap_status_.data();
      origin = heap_origin_.data();
      start = heap_start_.data();
    }
  }

 private:
  Op inline_sub_[kInlineOps];
  Status inline_status_[kInlineOps];
  uint32_t inline_origin_[kInlineOps];
  size_t inline_start_[kInlineShards + 1];
  std::vector<Op> heap_sub_;
  std::vector<Status> heap_status_;
  std::vector<uint32_t> heap_origin_;
  std::vector<size_t> heap_start_;
};

// One Stats snapshot routed through the shard queues: shard s's worker
// fills per_shard[s] at its queue position, i.e. after every batch that
// was enqueued before the snapshot request.
struct StatsState : CompletionState {
  std::vector<IndexStats> per_shard;
};

}  // namespace internal

// Completion token of one submitted batch. Copyable (shares the underlying
// state); default-constructed futures are invalid. The submitting caller
// must keep its operation/status arrays alive and unread until the future
// is ready.
class BatchFuture {
 public:
  BatchFuture() = default;

  bool valid() const { return state_ != nullptr; }

  // Whether the submission was accepted (kOk) or rejected because the
  // store was closed (kInvalidArgument). Invalid futures report
  // kInvalidArgument.
  Status submit_status() const {
    return state_ == nullptr ? Status::kInvalidArgument
                             : state_->submit_status;
  }

  // Non-blocking completion poll. Invalid futures are trivially ready.
  bool Ready() const { return state_ == nullptr || state_->Ready(); }

  // Blocks until every shard of the batch has completed. After Wait()
  // returns, the caller's status/value arrays are fully written and safe
  // to read. No-op on invalid futures.
  void Wait() {
    if (state_ != nullptr) state_->Wait();
  }

  // Bounded wait: blocks until the batch completes or `timeout` elapses,
  // returning whether it completed. On false the batch is still running
  // and the caller's arrays remain off-limits (and must outlive it) until
  // a later Wait()/WaitFor() returns true. Invalid futures return true.
  bool WaitFor(std::chrono::nanoseconds timeout) {
    return state_ == nullptr || state_->WaitFor(timeout);
  }

  // Registers a completion callback, the serving path's alternative to
  // parking a thread in Wait(): the last shard's gather fires `fn` exactly
  // once on the completing thread (a shard worker — keep the callback
  // short and never block it on another future of the same store). If the
  // batch is already complete — including invalid and born-ready futures —
  // `fn` runs synchronously before OnReady returns. After the callback
  // begins, the caller's status/value arrays are fully written (the same
  // release/acquire edge Wait() relies on). At most one callback per
  // future: registering again before completion replaces the previous fn.
  // Wait()/WaitFor() semantics are unchanged and compose with OnReady.
  void OnReady(std::function<void()> fn) {
    if (state_ == nullptr) {
      if (fn) fn();
      return;
    }
    state_->OnReady(std::move(fn));
  }

  // Number of shard sub-batches still outstanding (0 once ready).
  uint32_t pending_shards() const {
    return state_ == nullptr
               ? 0
               : state_->pending.load(std::memory_order_acquire);
  }

 private:
  friend class ShardedStore;
  explicit BatchFuture(std::shared_ptr<internal::BatchState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::BatchState> state_;
};

}  // namespace dash::api

#endif  // DASH_PM_API_BATCH_FUTURE_H_
