#include "api/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/thread_id.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dash::api {

namespace internal {

void BatchState::RunShard(size_t s, KvIndex* index) {
  const size_t begin = start[s];
  const size_t end = start[s + 1];
  index->MultiExecute(sub + begin, end - begin, sub_status + begin);
  // Distributed gather: every regrouped slot maps to a distinct caller
  // slot, so shards write the caller's arrays concurrently without
  // overlap; the release decrement in CompleteOne publishes the writes.
  for (size_t j = begin; j < end; ++j) {
    statuses[origin[j]] = sub_status[j];
    if (sub[j].type == OpType::kSearch && IsOk(sub_status[j])) {
      if (caller_ops != nullptr) {
        caller_ops[origin[j]].value = sub[j].value;
      } else if (values_out != nullptr) {
        values_out[origin[j]] = sub[j].value;
      }
    }
  }
  CompleteOne();
}

}  // namespace internal

namespace {

void PinToCore(size_t core) {
#if defined(__linux__)
  const unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % n), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

ShardExecutor::ShardExecutor(std::vector<ShardCtx> shards,
                             const ExecutorOptions& options)
    : options_(options) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  shards_.reserve(shards.size());
  queues_.reserve(shards.size());
  for (const ShardCtx& ctx : shards) {
    auto slot = std::make_unique<Slot>();
    slot->index.store(ctx.index, std::memory_order_relaxed);
    slot->epochs = ctx.epochs;
    shards_.push_back(std::move(slot));
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardExecutor::~ShardExecutor() { Stop(); }

bool ShardExecutor::Submit(WorkItem item) {
  assert(item.shard < queues_.size());
  Queue& queue = *queues_[item.shard];
  {
    std::unique_lock<std::mutex> lock(queue.mu);
    queue.not_full.wait(lock, [&] {
      return queue.items.size() < options_.queue_depth || queue.stopped;
    });
    if (queue.stopped) return false;
    queue.items.push_back(std::move(item));
  }
  queue.not_empty.notify_one();
  return true;
}

ShardExecutor::SubmitResult ShardExecutor::TrySubmit(WorkItem item) {
  assert(item.shard < queues_.size());
  Queue& queue = *queues_[item.shard];
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.stopped) return SubmitResult::kStopped;
    if (queue.items.size() >= options_.queue_depth) {
      return SubmitResult::kFull;
    }
    queue.items.push_back(std::move(item));
  }
  queue.not_empty.notify_one();
  return SubmitResult::kQueued;
}

void ShardExecutor::SetIndex(size_t shard, KvIndex* index) {
  assert(shard < shards_.size());
  shards_[shard]->index.store(index, std::memory_order_release);
}

void ShardExecutor::Stop() {
  for (auto& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mu);
    queue->stopped = true;
  }
  for (auto& queue : queues_) {
    queue->not_empty.notify_all();
    queue->not_full.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ShardExecutor::WorkerLoop(size_t s) {
  if (options_.pin_workers) PinToCore(s);
  Queue& queue = *queues_[s];
  epoch::EpochManager* epochs = shards_[s]->epochs;
  const auto ckpt_interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  const auto compact_interval =
      std::chrono::milliseconds(options_.compaction_interval_ms);
  auto last_ckpt = std::chrono::steady_clock::now();
  auto last_compact = last_ckpt;
  const bool timed_idle = options_.checkpoint_interval_ms != 0 ||
                          options_.compaction_interval_ms != 0;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue.mu);
      if (queue.items.empty() && !queue.stopped) {
        // Going idle: advance the shard's epoch and reclaim retired
        // blocks, so garbage does not sit pinned until the next Retire.
        lock.unlock();
        epochs->TryAdvanceAndReclaim();
        // Periodic background maintenance, from the idle path only:
        // checkpoint refresh and log compaction each run between queued
        // batches (never mid-batch) and at most once per their interval.
        // Quarantined shards carry a null index — skip.
        if (options_.checkpoint_interval_ms != 0 &&
            std::chrono::steady_clock::now() - last_ckpt >= ckpt_interval) {
          KvIndex* index =
              shards_[s]->index.load(std::memory_order_acquire);
          if (index != nullptr) index->WriteCheckpoint();
          last_ckpt = std::chrono::steady_clock::now();
        }
        if (options_.compaction_interval_ms != 0 &&
            std::chrono::steady_clock::now() - last_compact >=
                compact_interval) {
          KvIndex* index =
              shards_[s]->index.load(std::memory_order_acquire);
          if (index != nullptr) index->Compact();
          last_compact = std::chrono::steady_clock::now();
        }
        lock.lock();
        if (!timed_idle) {
          queue.not_empty.wait(
              lock, [&] { return !queue.items.empty() || queue.stopped; });
        } else {
          // Timed wait (nearest of the two timers) so a shard that stays
          // idle still runs its maintenance on schedule (the wake loops
          // back to the idle block above, which decides which interval
          // elapsed).
          auto deadline = std::chrono::steady_clock::time_point::max();
          if (options_.checkpoint_interval_ms != 0) {
            deadline = std::min(deadline, last_ckpt + ckpt_interval);
          }
          if (options_.compaction_interval_ms != 0) {
            deadline = std::min(deadline, last_compact + compact_interval);
          }
          queue.not_empty.wait_until(
              lock, deadline,
              [&] { return !queue.items.empty() || queue.stopped; });
          if (queue.items.empty() && !queue.stopped) continue;
        }
      }
      if (queue.items.empty()) break;  // stopped and fully drained
      item = std::move(queue.items.front());
      queue.items.pop_front();
    }
    queue.not_full.notify_one();
    Execute(item, s);
  }
  // Quiesced for good: hand the epoch slot and the dense thread id back
  // so future worker threads (or client threads) can adopt them.
  epochs->ReleaseCurrentThreadSlot();
  util::ReleaseThreadId();
}

void ShardExecutor::Execute(WorkItem& item, size_t s) {
  KvIndex* index = shards_[s]->index.load(std::memory_order_acquire);
  switch (item.kind) {
    case WorkItem::Kind::kBatch:
      // Deadline check at dequeue time: a batch that waited out its
      // deadline in the queue completes with kTimeout instead of running,
      // so one overloaded shard cannot stall the whole future.
      if (item.batch->has_deadline &&
          std::chrono::steady_clock::now() > item.batch->deadline) {
        item.batch->FailShard(s, Status::kTimeout);
        break;
      }
      item.batch->RunShard(s, index);
      break;
    case WorkItem::Kind::kStats:
      item.stats->per_shard[s] = index->Stats();
      item.stats->CompleteOne();
      break;
  }
}

}  // namespace dash::api
