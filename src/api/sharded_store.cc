#include "api/sharded_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "pmem/crash_point.h"
#include "util/hash.h"
#include "util/thread_id.h"

namespace dash::api {

namespace {

// The shard count and table kind decide key routing, so they are written
// to a tiny manifest next to the pools *before* any pool is created and
// checked on every open — a mismatched configuration fails loudly
// instead of silently routing keys to the wrong shard, and a crash or
// partial failure mid-creation still leaves the manifest pinning the
// configuration the existing pool files were laid out with.
//
// Format (v2): "v2 <shards> <kind> <epoch> <checksum-hex>". The checksum
// covers every other field, so a torn write (crash mid-write on a
// filesystem that does not make small writes atomic) is detected and the
// open fails instead of trusting a half-written configuration. The file
// is replaced via write-to-temp + rename — after any crash the path holds
// either the complete old manifest or the complete new one. The epoch
// counts manifest rewrites (diagnostics). Legacy v1 manifests
// ("<shards> <kind>") are accepted and upgraded in place.

uint64_t ManifestChecksum(size_t shards, const std::string& kind_name,
                          uint64_t epoch) {
  uint64_t h = util::Mix64(0x9e3779b97f4a7c15ull ^ shards);
  h = util::Mix64(h ^ epoch);
  for (char c : kind_name) {
    h = util::Mix64(h ^ static_cast<unsigned char>(c));
  }
  return h;
}

bool WriteManifestV2(const std::string& path, size_t shards, IndexKind kind,
                     uint64_t epoch) {
  const std::string kind_name = IndexKindName(kind);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << "v2 " << shards << ' ' << kind_name << ' ' << epoch << ' '
        << std::hex << ManifestChecksum(shards, kind_name, epoch) << '\n';
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  CRASH_POINT("manifest_before_rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  CRASH_POINT("manifest_after_rename");
  return true;
}

// `wrote` reports whether this call created the manifest (vs found a
// matching one); a v1->v2 upgrade of an existing manifest does not count.
bool CheckOrWriteManifest(const ShardedStoreOptions& options, bool* wrote) {
  const std::string path = options.path_prefix + ".manifest";
  *wrote = false;
  // A crash between writing the temp file and the rename leaves a stray
  // .tmp; it was never authoritative — discard it.
  std::remove((path + ".tmp").c_str());
  std::ifstream in(path);
  if (in) {
    std::string first;
    in >> first;
    size_t shards = 0;
    std::string kind_name;
    bool upgrade_v1 = false;
    if (first == "v2") {
      uint64_t epoch = 0;
      std::string sum_hex;
      in >> shards >> kind_name >> epoch >> sum_hex;
      const uint64_t sum = std::strtoull(sum_hex.c_str(), nullptr, 16);
      if (!in || sum != ManifestChecksum(shards, kind_name, epoch)) {
        std::fprintf(stderr,
                     "ShardedStore::Open: manifest %s is torn or corrupt "
                     "(checksum mismatch); refusing to guess the shard "
                     "layout\n",
                     path.c_str());
        return false;
      }
    } else {
      // Legacy v1: "<shards> <kind>".
      char* end = nullptr;
      shards = std::strtoull(first.c_str(), &end, 10);
      in >> kind_name;
      if (first.empty() || end == nullptr || *end != '\0' || !in) {
        std::fprintf(stderr,
                     "ShardedStore::Open: manifest %s is unreadable\n",
                     path.c_str());
        return false;
      }
      upgrade_v1 = true;
    }
    IndexKind kind;
    if (shards != options.shards || !ParseIndexKind(kind_name, &kind) ||
        kind != options.kind) {
      std::fprintf(
          stderr,
          "ShardedStore::Open: %s was created with shards=%zu kind=%s; "
          "reopening with shards=%zu kind=%s would misroute keys\n",
          path.c_str(), shards, kind_name.c_str(), options.shards,
          IndexKindName(options.kind));
      return false;
    }
    if (upgrade_v1) {
      // Best-effort upgrade; a failure leaves the valid v1 file in place.
      WriteManifestV2(path, options.shards, options.kind, /*epoch=*/1);
    }
    return true;
  }
  if (!WriteManifestV2(path, options.shards, options.kind, /*epoch=*/1)) {
    return false;
  }
  *wrote = true;
  return true;
}

// Deterministic per-shard identity tag recorded in the pool header at
// creation: detects a `.shard<i>` file that was swapped, renamed, or
// restored from another store's backup — the keys inside would be ones
// that route to a *different* shard index, silently corrupting lookups.
// Never 0 (0 means "untagged" in the pool header).
uint64_t ShardTag(IndexKind kind, size_t shard) {
  const uint64_t h =
      util::Mix64(0x53686172644b5653ull ^
                  (static_cast<uint64_t>(kind) << 48) ^ shard);
  return h != 0 ? h : 1;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::unique_ptr<ShardedStore> ShardedStore::Open(
    const ShardedStoreOptions& options) {
  if (options.shards == 0 || options.path_prefix.empty()) return nullptr;
  bool wrote_manifest = false;
  if (!CheckOrWriteManifest(options, &wrote_manifest)) return nullptr;
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->options_ = options;
  store->shards_.resize(options.shards);
  store->gates_ = std::make_unique<ShardGate[]>(options.shards);
  store->quarantined_ =
      std::make_unique<std::atomic<bool>[]>(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    store->quarantined_[i].store(false, std::memory_order_relaxed);
  }
  RecoveryReport& report = store->recovery_;
  report.shard_ms.assign(options.shards, 0.0);
  report.shard_recovered.assign(options.shards, false);
  report.shard_source.assign(options.shards, "quarantined");
  report.shard_replayed.assign(options.shards, 0);
  report.shard_staleness.assign(options.shards, 0);

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t threads =
      options.recovery_threads == 0
          ? std::min(options.shards, hw)
          : std::min(options.recovery_threads, options.shards);
  report.threads = threads;

  // Shared open-phase state; `mu` guards everything the workers mutate
  // except their own shard slot (each index is claimed exactly once via
  // the atomic cursor, so distinct workers write distinct slots).
  std::mutex mu;
  std::vector<std::string> created_paths;
  bool any_preexisting = false;
  std::atomic<size_t> next{0};
  std::atomic<bool> hard_fail{false};
  std::exception_ptr first_exception = nullptr;

  // Opens shard i: pool (tagged), epochs, index, then — when the pool was
  // dirty — the structural verify. A pre-existing shard that fails any
  // step is quarantined (policy permitting); a shard that fails creation
  // hard-fails the whole open (there is no data to degrade around).
  auto open_one = [&](size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    Shard& shard = store->shards_[i];
    const std::string path =
        options.path_prefix + ".shard" + std::to_string(i);
    pmem::PmPool::Options pool_options;
    pool_options.pool_size = options.shard_pool_size;
    pool_options.app_tag = ShardTag(options.kind, i);
    bool created = false;
    shard.pool = pmem::PmPool::OpenOrCreate(path, pool_options, &created);
    const bool preexisting = shard.pool != nullptr ? !created
                                                   : FileExists(path);
    {
      std::lock_guard<std::mutex> lock(mu);
      if (created) created_paths.push_back(path);
      if (preexisting) any_preexisting = true;
    }
    // Quarantined shards still get an epoch manager: their executor
    // worker idles on it, and RecoverShard reuses it when re-admitting.
    shard.epochs = std::make_unique<epoch::EpochManager>();
    bool ok = shard.pool != nullptr;
    const char* reason = ok ? nullptr : "pool open failed";
    if (ok && preexisting &&
        shard.pool->app_tag() != pool_options.app_tag) {
      ok = false;
      reason = "identity tag mismatch (swapped or foreign pool file)";
    }
    if (ok) {
      report.shard_recovered[i] = shard.pool->recovered_from_crash();
      shard.index = CreateKvIndex(options.kind, shard.pool.get(),
                                  shard.epochs.get(),
                                  store->ShardTableOptions(i));
      if (shard.index == nullptr) {
        ok = false;
        reason = "index attach failed";
      } else if (options.verify_on_open && report.shard_recovered[i] &&
                 !shard.index->Verify()) {
        ok = false;
        reason = "post-recovery structural verify failed";
      } else {
        // Recovery provenance: did this shard's index come back from a
        // checkpoint, a full log scan, or was it already resident in PM?
        const IndexStats stats = shard.index->Stats();
        report.shard_source[i] = RecoverySourceName(stats.recovery_source);
        report.shard_replayed[i] = stats.recovery_replayed;
        report.shard_staleness[i] = stats.recovery_staleness;
      }
    }
    if (!ok) {
      if (preexisting && options.quarantine_failed_shards) {
        std::fprintf(stderr,
                     "ShardedStore::Open: quarantining shard %zu (%s): "
                     "%s\n",
                     i, path.c_str(), reason);
        shard.index.reset();
        shard.pool.reset();  // dirty close: keeps the recovery marker
        store->quarantined_[i].store(true, std::memory_order_release);
      } else {
        hard_fail.store(true, std::memory_order_release);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    report.shard_ms[i] =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  const auto open_t0 = std::chrono::steady_clock::now();
  auto worker = [&](bool spawned) {
    std::vector<size_t> opened;
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= options.shards) break;
      try {
        open_one(i);
        opened.push_back(i);
      } catch (...) {
        // Crash injection (or any other throw) mid-open: capture and
        // rethrow on the caller thread after the join — an exception
        // escaping a std::thread would terminate the process.
        std::lock_guard<std::mutex> lock(mu);
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
        hard_fail.store(true, std::memory_order_release);
      }
    }
    if (spawned) {
      // Table recovery may have pinned epochs under this thread's dense
      // id; hand the slots and the id back before the thread dies so
      // repeated opens cannot exhaust the id space.
      for (size_t i : opened) {
        if (store->shards_[i].epochs != nullptr) {
          store->shards_[i].epochs->ReleaseCurrentThreadSlot();
        }
      }
      util::ReleaseThreadId();
    }
  };
  if (threads <= 1) {
    worker(/*spawned=*/false);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, /*spawned=*/true);
    }
    for (auto& t : pool) t.join();
  }
  const auto open_t1 = std::chrono::steady_clock::now();
  report.total_ms =
      std::chrono::duration<double, std::milli>(open_t1 - open_t0).count();
  for (size_t i = 0; i < options.shards; ++i) {
    if (store->quarantined_[i].load(std::memory_order_acquire)) {
      report.quarantined.push_back(i);
    }
  }

  if (first_exception != nullptr) {
    // Injected crash: release the mappings but leave every file exactly
    // as the "power failure" left it — that on-disk state is what the
    // recovery tests reopen.
    store.reset();
    std::rethrow_exception(first_exception);
  }
  if (hard_fail.load(std::memory_order_acquire)) {
    // A failed *creation* (nothing pre-existed) must not leave a stray
    // manifest pinning an unusable configuration, nor half-laid-out pool
    // files that a later Open with a different kind would misinterpret.
    // With pre-existing pools, everything stays — the manifest correctly
    // keeps protecting whatever data they hold.
    store.reset();  // unmap before unlinking
    if (wrote_manifest && !any_preexisting) {
      for (const std::string& path : created_paths) {
        std::remove(path.c_str());
      }
      std::remove((options.path_prefix + ".manifest").c_str());
    }
    return nullptr;
  }
  if (options.async.workers &&
      !(options.shards == 1 && options.async.inline_single_shard)) {
    std::vector<ShardExecutor::ShardCtx> ctx;
    ctx.reserve(store->shards_.size());
    for (Shard& shard : store->shards_) {
      // Quarantined shards contribute a null index: nothing is ever
      // enqueued to them until RecoverShard swaps a live index in.
      ctx.push_back({shard.index.get(), shard.epochs.get()});
    }
    ExecutorOptions executor_options;
    executor_options.queue_depth = options.async.queue_depth;
    executor_options.pin_workers = options.async.pin_workers;
    executor_options.checkpoint_interval_ms = options.checkpoint_interval_ms;
    executor_options.compaction_interval_ms = options.compaction_interval_ms;
    store->executor_ =
        std::make_unique<ShardExecutor>(std::move(ctx), executor_options);
  }
  return store;
}

// Workers are joined first (executor_ is the last member), so by the time
// the shards are torn down no thread is executing on them.
ShardedStore::~ShardedStore() = default;

size_t ShardedStore::ShardOf(uint64_t key) const {
  // Second mix decorrelates shard routing from every hash-bit range the
  // tables themselves consume (see header).
  return util::Mix64(util::HashInt64(key)) % shards_.size();
}

Status ShardedStore::RecoverShard(size_t i) {
  if (i >= shards_.size()) return Status::kInvalidArgument;
  // close_mu_ serializes against CloseClean and other RecoverShard calls;
  // ops on other shards never touch it and keep serving.
  std::lock_guard<std::mutex> close_lock(close_mu_);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  if (!quarantined_[i].load(std::memory_order_acquire)) return Status::kOk;
  // Exclusive gate: defensive — routing rejects quarantined shards, so no
  // op should be inside, but the gate makes the swap airtight.
  std::lock_guard<std::shared_mutex> gate(gates_[i].mu);
  Shard& shard = shards_[i];
  shard.index.reset();
  shard.pool.reset();
  const std::string path =
      options_.path_prefix + ".shard" + std::to_string(i);
  pmem::PmPool::Options pool_options;
  pool_options.pool_size = options_.shard_pool_size;
  pool_options.app_tag = ShardTag(options_.kind, i);
  bool created = false;
  auto pool = pmem::PmPool::OpenOrCreate(path, pool_options, &created);
  if (pool == nullptr) return Status::kUnavailable;
  if (!created && pool->app_tag() != pool_options.app_tag) {
    return Status::kUnavailable;  // dtor closes dirty
  }
  auto index = CreateKvIndex(options_.kind, pool.get(), shard.epochs.get(),
                             ShardTableOptions(i));
  // Always verify on re-admission — this shard already failed once.
  if (index == nullptr || !index->Verify()) return Status::kUnavailable;
  shard.pool = std::move(pool);
  shard.index = std::move(index);
  // Refresh this shard's provenance in the report (re-admission is a
  // recovery of its own).
  const IndexStats stats = shard.index->Stats();
  recovery_.shard_source[i] = RecoverySourceName(stats.recovery_source);
  recovery_.shard_replayed[i] = stats.recovery_replayed;
  recovery_.shard_staleness[i] = stats.recovery_staleness;
  if (executor_ != nullptr) executor_->SetIndex(i, shard.index.get());
  quarantined_[i].store(false, std::memory_order_release);
  return Status::kOk;
}

// Single ops hold their own shard's close gate shared for the duration of
// the probe: a CloseClean racing the call waits until the probe is off the
// shard instead of unmapping under it, and the op never touches another
// shard's gate cacheline (the PR-3 store-wide gate made every op on every
// core contend on one shared line).

Status ShardedStore::Insert(uint64_t key, uint64_t value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  if (quarantined_[s].load(std::memory_order_acquire)) {
    return Status::kUnavailable;
  }
  return shards_[s].index->Insert(key, value);
}

Status ShardedStore::Search(uint64_t key, uint64_t* value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  if (quarantined_[s].load(std::memory_order_acquire)) {
    return Status::kUnavailable;
  }
  return shards_[s].index->Search(key, value);
}

Status ShardedStore::Update(uint64_t key, uint64_t value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  if (quarantined_[s].load(std::memory_order_acquire)) {
    return Status::kUnavailable;
  }
  return shards_[s].index->Update(key, value);
}

Status ShardedStore::Delete(uint64_t key) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  if (quarantined_[s].load(std::memory_order_acquire)) {
    return Status::kUnavailable;
  }
  return shards_[s].index->Delete(key);
}

namespace {
// Serving batches are typically small; below this size the scatter uses
// stack scratch instead of heap vectors (the allocations would otherwise
// rival the cost of a 16-op batch). Tied to BatchState's inline storage
// so the stack and inline fast paths cannot silently diverge.
constexpr size_t kStackBatch = internal::BatchState::kInlineOps;
constexpr size_t kMaxShardsOnStack = internal::BatchState::kInlineShards;
}  // namespace

// ---- asynchronous submission ----

template <typename KeyAt, typename MakeOp, typename RunDirect>
BatchFuture ShardedStore::SubmitScattered(
    std::shared_ptr<internal::BatchState> state, size_t count, KeyAt key_at,
    MakeOp make_op, RunDirect run_direct) {
  const size_t num_shards = shards_.size();
  const auto reject = [&state, count] {
    state->submit_status = Status::kInvalidArgument;
    // The scatter may have primed the shard-completion count already;
    // nothing will ever be enqueued, so the future must be born ready.
    state->pending.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < count; ++i) {
      state->statuses[i] = Status::kInvalidArgument;
    }
    return BatchFuture(std::move(state));
  };
  // Fast-path check; the authoritative re-check happens under the gates.
  if (!accepting_.load(std::memory_order_acquire)) return reject();
  if (count == 0) return BatchFuture(std::move(state));

  if (executor_ == nullptr && num_shards == 1) {
    // Inline single-shard fast path: no scatter state, no copies — run
    // the shard's native batch entry point straight off the caller's
    // arrays; the future is born ready.
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (!accepting_.load(std::memory_order_acquire)) return reject();
    if (quarantined_[0].load(std::memory_order_acquire)) {
      for (size_t i = 0; i < count; ++i) {
        state->statuses[i] = Status::kUnavailable;
      }
      return BatchFuture(std::move(state));
    }
    run_direct(shards_[0].index.get());
    return BatchFuture(std::move(state));
  }

  state->ReserveSlots(count, num_shards);

  uint32_t stack_shard_of[kStackBatch];
  size_t stack_cursor[kMaxShardsOnStack];
  std::vector<uint32_t> heap_shard_of;
  std::vector<size_t> heap_cursor;
  uint32_t* shard_of = stack_shard_of;
  size_t* cursor = stack_cursor;
  if (count > kStackBatch || num_shards > kMaxShardsOnStack) {
    heap_shard_of.resize(count);
    heap_cursor.resize(num_shards);
    shard_of = heap_shard_of.data();
    cursor = heap_cursor.data();
  }
  PlanScatter(count, key_at, shard_of, state->start, cursor,
              state->origin);
  for (size_t j = 0; j < count; ++j) {
    state->sub[j] = make_op(state->origin[j]);
  }

  // Hold the touched shards' gates across the whole enqueue so the batch
  // is never half-enqueued across a shutdown: a CloseClean that flipped
  // `accepting_` blocks on the first touched gate until every sub-batch
  // is in its queue (the executor drain then completes them all).
  GateSpan gates;
  gates.LockTouched(gates_.get(), state->start, num_shards);
  if (!accepting_.load(std::memory_order_acquire)) return reject();

  // Only after the gated accept: a rejected batch must stay at pending
  // == 0 so its future is born ready. Slots routed to a quarantined
  // shard complete right here with kUnavailable (the future has not been
  // handed out yet) and the shard is excluded from the pending count.
  // `cursor` is dead after PlanScatter; reuse it as the skip marker so
  // the decision is stable across the enqueue loop even if the shard is
  // re-admitted concurrently.
  uint32_t touched = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    cursor[s] = 0;
    if (state->start[s + 1] == state->start[s]) continue;
    if (quarantined_[s].load(std::memory_order_acquire)) {
      for (size_t j = state->start[s]; j < state->start[s + 1]; ++j) {
        state->statuses[state->origin[j]] = Status::kUnavailable;
      }
      cursor[s] = 1;
      continue;
    }
    ++touched;
  }
  state->pending.store(touched, std::memory_order_relaxed);

  BatchFuture future(state);
  const size_t retries = options_.async.submit_retries;
  for (size_t s = 0; s < num_shards; ++s) {
    if (state->start[s + 1] == state->start[s]) continue;
    if (cursor[s] != 0) continue;  // quarantined, completed above
    if (executor_ != nullptr) {
      if (retries == 0) {
        ShardExecutor::WorkItem item;
        item.kind = ShardExecutor::WorkItem::Kind::kBatch;
        item.shard = static_cast<uint32_t>(s);
        item.batch = state;
        if (executor_->Submit(std::move(item))) continue;
        // The executor only refuses after Stop(), which the gates rule
        // out here; complete inline defensively all the same.
      } else {
        // Bounded backoff-and-retry instead of blocking on a full queue:
        // the submitter sleeps (exponential, capped) between attempts
        // and, once the retries are exhausted, fails the shard's slots
        // with kUnavailable so an overloaded shard sheds load instead of
        // stalling every client. Sleeping holds the touched gates shared
        // — CloseClean waits at most the bounded backoff total.
        auto result = ShardExecutor::SubmitResult::kFull;
        uint64_t delay_us = options_.async.backoff_initial_us;
        for (size_t attempt = 0; attempt <= retries; ++attempt) {
          ShardExecutor::WorkItem item;  // rebuilt: moved-from on failure
          item.kind = ShardExecutor::WorkItem::Kind::kBatch;
          item.shard = static_cast<uint32_t>(s);
          item.batch = state;
          result = executor_->TrySubmit(std::move(item));
          if (result != ShardExecutor::SubmitResult::kFull) break;
          if (attempt == retries) break;
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
          delay_us = std::min<uint64_t>(delay_us * 2,
                                        options_.async.backoff_cap_us);
        }
        if (result == ShardExecutor::SubmitResult::kQueued) continue;
        if (result == ShardExecutor::SubmitResult::kFull) {
          state->FailShard(s, Status::kUnavailable);
          continue;
        }
        // kStopped: defensive inline fallback below.
      }
    }
    state->RunShard(s, shards_[s].index.get());
  }
  return future;
}

namespace {
// Stamps the optional per-submit deadline before the batch reaches any
// queue; workers check it at dequeue time (see executor.cc).
void StampDeadline(internal::BatchState* state,
                   const SubmitOptions& submit) {
  if (submit.deadline.count() > 0) {
    state->has_deadline = true;
    state->deadline = std::chrono::steady_clock::now() + submit.deadline;
  }
}
}  // namespace

BatchFuture ShardedStore::SubmitExecute(Op* ops, size_t count,
                                        Status* statuses,
                                        const SubmitOptions& submit) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  state->caller_ops = ops;
  StampDeadline(state.get(), submit);
  return SubmitScattered(
      std::move(state), count, [ops](size_t i) { return ops[i].key; },
      [ops](size_t i) { return ops[i]; },
      [=](KvIndex* index) { index->MultiExecute(ops, count, statuses); });
}

BatchFuture ShardedStore::SubmitSearch(const uint64_t* keys, size_t count,
                                       uint64_t* values, Status* statuses,
                                       const SubmitOptions& submit) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  state->values_out = values;
  StampDeadline(state.get(), submit);
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys](size_t i) { return Op::Search(keys[i]); },
      [=](KvIndex* index) {
        index->MultiSearch(keys, count, values, statuses);
      });
}

BatchFuture ShardedStore::SubmitInsert(const uint64_t* keys,
                                       const uint64_t* values, size_t count,
                                       Status* statuses,
                                       const SubmitOptions& submit) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  StampDeadline(state.get(), submit);
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys, values](size_t i) { return Op::Insert(keys[i], values[i]); },
      [=](KvIndex* index) {
        index->MultiInsert(keys, values, count, statuses);
      });
}

BatchFuture ShardedStore::SubmitUpdate(const uint64_t* keys,
                                       const uint64_t* values, size_t count,
                                       Status* statuses,
                                       const SubmitOptions& submit) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  StampDeadline(state.get(), submit);
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys, values](size_t i) { return Op::Update(keys[i], values[i]); },
      [=](KvIndex* index) {
        index->MultiUpdate(keys, values, count, statuses);
      });
}

BatchFuture ShardedStore::SubmitDelete(const uint64_t* keys, size_t count,
                                       Status* statuses,
                                       const SubmitOptions& submit) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  StampDeadline(state.get(), submit);
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys](size_t i) { return Op::Delete(keys[i]); },
      [=](KvIndex* index) { index->MultiDelete(keys, count, statuses); });
}

// ---- synchronous wrappers ----

void ShardedStore::MultiSearch(const uint64_t* keys, size_t count,
                               uint64_t* values, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitSearch(keys, count, values, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kSearch, keys, nullptr, values, count, statuses);
}

void ShardedStore::MultiInsert(const uint64_t* keys, const uint64_t* values,
                               size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitInsert(keys, values, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kInsert, keys, values, nullptr, count, statuses);
}

void ShardedStore::MultiUpdate(const uint64_t* keys, const uint64_t* values,
                               size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitUpdate(keys, values, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kUpdate, keys, values, nullptr, count, statuses);
}

void ShardedStore::MultiDelete(const uint64_t* keys, size_t count,
                               Status* statuses) {
  if (executor_ != nullptr) {
    SubmitDelete(keys, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kDelete, keys, nullptr, nullptr, count, statuses);
}

void ShardedStore::MultiExecute(Op* ops, size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitExecute(ops, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (RejectClosed(statuses, count)) return;
    if (quarantined_[0].load(std::memory_order_acquire)) {
      for (size_t i = 0; i < count; ++i) {
        statuses[i] = Status::kUnavailable;
      }
      return;
    }
    shards_[0].index->MultiExecute(ops, count, statuses);
    return;
  }
  if (count <= kStackBatch && num_shards <= kMaxShardsOnStack) {
    uint32_t shard_of[kStackBatch];
    size_t start[kMaxShardsOnStack + 1];
    uint32_t origin[kStackBatch];
    Op sub[kStackBatch];
    Status sub_status[kStackBatch];
    size_t cursor[kMaxShardsOnStack];
    ExecuteScattered(ops, count, statuses, shard_of, start, origin, sub,
                     sub_status, cursor);
    return;
  }
  std::vector<uint32_t> shard_of(count);
  std::vector<size_t> start(num_shards + 1);
  std::vector<uint32_t> origin(count);
  std::vector<Op> sub(count);
  std::vector<Status> sub_status(count);
  std::vector<size_t> cursor(num_shards);
  ExecuteScattered(ops, count, statuses, shard_of.data(), start.data(),
                   origin.data(), sub.data(), sub_status.data(),
                   cursor.data());
}

// ---- sequential (inline) execution paths ----

void ShardedStore::MultiUniform(BatchKind kind, const uint64_t* keys,
                                const uint64_t* values_in,
                                uint64_t* values_out, size_t count,
                                Status* statuses) {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (RejectClosed(statuses, count)) return;
    if (quarantined_[0].load(std::memory_order_acquire)) {
      for (size_t i = 0; i < count; ++i) {
        statuses[i] = Status::kUnavailable;
      }
      return;
    }
    KvIndex* first = shards_[0].index.get();
    switch (kind) {
      case BatchKind::kSearch:
        first->MultiSearch(keys, count, values_out, statuses);
        return;
      case BatchKind::kInsert:
        first->MultiInsert(keys, values_in, count, statuses);
        return;
      case BatchKind::kUpdate:
        first->MultiUpdate(keys, values_in, count, statuses);
        return;
      case BatchKind::kDelete:
        first->MultiDelete(keys, count, statuses);
        return;
    }
  }

  // Scratch: stack for serving-sized batches, heap beyond.
  uint32_t stack_shard_of[kStackBatch];
  size_t stack_start[kMaxShardsOnStack + 1];
  uint32_t stack_origin[kStackBatch];
  uint64_t stack_keys[kStackBatch];
  uint64_t stack_vals[kStackBatch];
  Status stack_status[kStackBatch];
  size_t stack_cursor[kMaxShardsOnStack];
  std::vector<uint32_t> heap_shard_of, heap_origin;
  std::vector<size_t> heap_start, heap_cursor;
  std::vector<uint64_t> heap_keys, heap_vals;
  std::vector<Status> heap_status;
  const bool on_stack =
      count <= kStackBatch && num_shards <= kMaxShardsOnStack;
  uint32_t* shard_of = stack_shard_of;
  size_t* start = stack_start;
  uint32_t* origin = stack_origin;
  uint64_t* sub_keys = stack_keys;
  uint64_t* sub_vals = stack_vals;
  Status* sub_status = stack_status;
  size_t* cursor = stack_cursor;
  if (!on_stack) {
    heap_shard_of.resize(count);
    heap_start.resize(num_shards + 1);
    heap_origin.resize(count);
    heap_keys.resize(count);
    heap_vals.resize(count);
    heap_status.resize(count);
    heap_cursor.resize(num_shards);
    shard_of = heap_shard_of.data();
    start = heap_start.data();
    origin = heap_origin.data();
    sub_keys = heap_keys.data();
    sub_vals = heap_vals.data();
    sub_status = heap_status.data();
    cursor = heap_cursor.data();
  }

  PlanScatter(count, [&](size_t i) { return keys[i]; }, shard_of, start,
              cursor, origin);
  const bool copy_values =
      kind == BatchKind::kInsert || kind == BatchKind::kUpdate;
  for (size_t j = 0; j < count; ++j) {
    sub_keys[j] = keys[origin[j]];
    if (copy_values) sub_vals[j] = values_in[origin[j]];
  }

  // Gates of the touched shards, held across prime + dispatch.
  GateSpan gates;
  gates.LockTouched(gates_.get(), start, num_shards);
  if (RejectClosed(statuses, count)) return;

  // Cross-shard prefetch priming (see ExecuteScattered). Quarantined
  // shards have no index to prime — their ranges fail below.
  if (count <= kStackBatch) {
    const bool for_write = kind != BatchKind::kSearch;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = start[s + 1] - start[s];
      if (len == 0) continue;
      if (quarantined_[s].load(std::memory_order_acquire)) continue;
      shards_[s].index->PrefetchBatch(sub_keys + start[s], len, for_write);
    }
  }

  // Dispatch every shard's contiguous sub-batch through its pipeline.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t len = start[s + 1] - start[s];
    if (len == 0) continue;
    if (quarantined_[s].load(std::memory_order_acquire)) {
      for (size_t j = start[s]; j < start[s + 1]; ++j) {
        sub_status[j] = Status::kUnavailable;
      }
      continue;
    }
    KvIndex* index = shards_[s].index.get();
    switch (kind) {
      case BatchKind::kSearch:
        index->MultiSearch(sub_keys + start[s], len, sub_vals + start[s],
                           sub_status + start[s]);
        break;
      case BatchKind::kInsert:
        index->MultiInsert(sub_keys + start[s], sub_vals + start[s], len,
                           sub_status + start[s]);
        break;
      case BatchKind::kUpdate:
        index->MultiUpdate(sub_keys + start[s], sub_vals + start[s], len,
                           sub_status + start[s]);
        break;
      case BatchKind::kDelete:
        index->MultiDelete(sub_keys + start[s], len, sub_status + start[s]);
        break;
    }
  }
  gates.Release();

  // Gather in caller order.
  for (size_t j = 0; j < count; ++j) {
    statuses[origin[j]] = sub_status[j];
    if (kind == BatchKind::kSearch && IsOk(sub_status[j])) {
      values_out[origin[j]] = sub_vals[j];
    }
  }
}

// Scatter: bucket-sort descriptor indices by shard (two passes, stable,
// O(count + shards)), regrouping each shard's ops into one contiguous
// sub-batch so the shard's adapter can type-partition and pipeline it;
// then gather results back in caller order. All scratch spans hold
// `count` entries except `start` (shards + 1) and `cursor` (shards).
void ShardedStore::ExecuteScattered(Op* ops, size_t count, Status* statuses,
                                    uint32_t* shard_of, size_t* start,
                                    uint32_t* origin, Op* sub,
                                    Status* sub_status, size_t* cursor) {
  const size_t num_shards = shards_.size();
  PlanScatter(count, [&](size_t i) { return ops[i].key; }, shard_of, start,
              cursor, origin);
  for (size_t j = 0; j < count; ++j) sub[j] = ops[origin[j]];

  // Gates of the touched shards, held across prime + dispatch.
  GateSpan gates;
  gates.LockTouched(gates_.get(), start, num_shards);
  if (RejectClosed(statuses, count)) return;

  // Cross-shard prefetch priming: run every shard's prefetch stages
  // before any shard executes, so shard B's cache lines are already in
  // flight while shard A runs its ops. Splitting a batch across shards
  // narrows each shard's pipeline group (a 16-op batch on 2 shards gives
  // 8-wide groups, which no longer cover a DRAM miss chain); priming
  // restores the full batch-wide overlap. Bounded to small batches —
  // lines primed thousands of ops ahead would be evicted before use.
  if (count <= kStackBatch) {
    uint64_t keys[kStackBatch];
    for (size_t j = 0; j < count; ++j) keys[j] = sub[j].key;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = start[s + 1] - start[s];
      if (len == 0) continue;
      if (quarantined_[s].load(std::memory_order_acquire)) continue;
      bool for_write = false;
      for (size_t j = start[s]; j < start[s + 1] && !for_write; ++j) {
        for_write = sub[j].type != OpType::kSearch;
      }
      shards_[s].index->PrefetchBatch(keys + start[s], len, for_write);
    }
  }

  // Run every shard's sub-batch through its native pipeline; quarantined
  // shards fail their range with kUnavailable.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t len = start[s + 1] - start[s];
    if (len == 0) continue;
    if (quarantined_[s].load(std::memory_order_acquire)) {
      for (size_t j = start[s]; j < start[s + 1]; ++j) {
        sub_status[j] = Status::kUnavailable;
      }
      continue;
    }
    shards_[s].index->MultiExecute(sub + start[s], len,
                                   sub_status + start[s]);
  }
  gates.Release();

  // Gather: write statuses (and search results) back in caller order.
  for (size_t j = 0; j < count; ++j) {
    statuses[origin[j]] = sub_status[j];
    if (sub[j].type == OpType::kSearch && IsOk(sub_status[j])) {
      ops[origin[j]].value = sub[j].value;
    }
  }
}

// ---- stats & shutdown ----

ShardedStats ShardedStore::Aggregate(const IndexStats* per_shard,
                                     size_t count) {
  ShardedStats out;
  out.shard_count = count;
  for (size_t i = 0; i < count; ++i) {
    const IndexStats& s = per_shard[i];
    out.totals.records += s.records;
    out.totals.capacity_slots += s.capacity_slots;
    out.totals.bytes_used += s.bytes_used;
    out.totals.opt_retries += s.opt_retries;
    out.totals.version_conflicts += s.version_conflicts;
    out.totals.write_locks += s.write_locks;
    // Conservative: report the smallest page size any shard got (one
    // 4K-backed shard is enough to reintroduce its DTLB misses).
    out.totals.pool_page_bytes =
        i == 0 ? s.pool_page_bytes
               : std::min(out.totals.pool_page_bytes, s.pool_page_bytes);
    out.min_shard_load_factor =
        i == 0 ? s.load_factor
               : std::min(out.min_shard_load_factor, s.load_factor);
    out.max_shard_load_factor =
        std::max(out.max_shard_load_factor, s.load_factor);
  }
  out.totals.load_factor =
      out.totals.capacity_slots == 0
          ? 0.0
          : static_cast<double>(out.totals.records) /
                static_cast<double>(out.totals.capacity_slots);
  return out;
}

ShardedStats ShardedStore::Stats() {
  const size_t num_shards = shards_.size();
  // Degradation snapshot first: totals cover the healthy shards only, so
  // the quarantined list is taken alongside the same pass.
  std::vector<size_t> quarantined;
  for (size_t s = 0; s < num_shards; ++s) {
    if (quarantined_[s].load(std::memory_order_acquire)) {
      quarantined.push_back(s);
    }
  }
  const auto is_quarantined = [&](size_t s) {
    return std::find(quarantined.begin(), quarantined.end(), s) !=
           quarantined.end();
  };
  const auto finish = [&](const std::vector<IndexStats>& healthy) {
    ShardedStats out = Aggregate(healthy.data(), healthy.size());
    out.shard_count = num_shards;
    out.quarantined_count = quarantined.size();
    out.quarantined_shards = quarantined;
    return out;
  };
  if (executor_ != nullptr) {
    // Route the snapshot through the shard queues: each shard's numbers
    // are taken by its worker at the snapshot's queue position — after
    // every batch enqueued before this call, never mid-batch.
    auto state = std::make_shared<internal::StatsState>();
    state->per_shard.resize(num_shards);
    {
      GateSpan gates;
      gates.LockAll(gates_.get(), num_shards);
      if (!accepting_.load(std::memory_order_acquire)) {
        return ShardedStats{};
      }
      state->pending.store(
          static_cast<uint32_t>(num_shards - quarantined.size()),
          std::memory_order_relaxed);
      for (size_t s = 0; s < num_shards; ++s) {
        if (is_quarantined(s)) continue;
        ShardExecutor::WorkItem item;
        item.kind = ShardExecutor::WorkItem::Kind::kStats;
        item.shard = static_cast<uint32_t>(s);
        item.stats = state;
        if (!executor_->Submit(std::move(item))) {
          state->per_shard[s] = shards_[s].index->Stats();
          state->CompleteOne();
        }
      }
    }
    state->Wait();
    std::vector<IndexStats> healthy;
    healthy.reserve(num_shards - quarantined.size());
    for (size_t s = 0; s < num_shards; ++s) {
      if (!is_quarantined(s)) healthy.push_back(state->per_shard[s]);
    }
    return finish(healthy);
  }
  GateSpan gates;
  gates.LockAll(gates_.get(), num_shards);
  if (!accepting_.load(std::memory_order_acquire)) return ShardedStats{};
  std::vector<IndexStats> healthy;
  healthy.reserve(num_shards - quarantined.size());
  for (size_t s = 0; s < num_shards; ++s) {
    if (!is_quarantined(s)) healthy.push_back(shards_[s].index->Stats());
  }
  return finish(healthy);
}

void ShardedStore::CloseClean() {
  // Serializes concurrent CloseClean calls: the loser blocks until the
  // winner's drain + teardown completes, then early-returns, so "after
  // CloseClean returned" always means "fully closed".
  std::lock_guard<std::mutex> close_lock(close_mu_);
  if (!accepting_.exchange(false, std::memory_order_acq_rel)) {
    return;  // already closed
  }
  // Sweep every gate exclusively once, in the same ascending order every
  // holder acquires in: this waits out each in-flight op/batch that read
  // accepting_ == true, and the release/acquire through each gate makes
  // every later holder observe the flip and back off.
  for (size_t s = 0; s < shards_.size(); ++s) {
    gates_[s].mu.lock();
    gates_[s].mu.unlock();
  }
  // Drain every queued batch and join the workers before touching the
  // shards: every future handed out before the close becomes ready.
  if (executor_ != nullptr) executor_->Stop();
  // Quarantined shards hold no index/pool — nothing to close; their pool
  // files keep their dirty marker for the next recovery attempt.
  for (auto& shard : shards_) {
    if (shard.index != nullptr) shard.index->CloseClean();
    if (shard.pool != nullptr) shard.pool->CloseClean();
  }
}

}  // namespace dash::api
