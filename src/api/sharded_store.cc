#include "api/sharded_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "util/hash.h"

namespace dash::api {

namespace {

// The shard count and table kind decide key routing, so they are written
// to a tiny manifest next to the pools *before* any pool is created and
// checked on every open — a mismatched configuration fails loudly
// instead of silently routing keys to the wrong shard, and a crash or
// partial failure mid-creation still leaves the manifest pinning the
// configuration the existing pool files were laid out with.
// `wrote` reports whether this call created the manifest (vs found a
// matching one).
bool CheckOrWriteManifest(const ShardedStoreOptions& options, bool* wrote) {
  const std::string path = options.path_prefix + ".manifest";
  *wrote = false;
  {
    std::ifstream in(path);
    if (in) {
      size_t shards = 0;
      std::string kind_name;
      in >> shards >> kind_name;
      IndexKind kind;
      if (shards == options.shards && ParseIndexKind(kind_name, &kind) &&
          kind == options.kind) {
        return true;
      }
      std::fprintf(
          stderr,
          "ShardedStore::Open: %s was created with shards=%zu kind=%s; "
          "reopening with shards=%zu kind=%s would misroute keys\n",
          path.c_str(), shards, kind_name.c_str(), options.shards,
          IndexKindName(options.kind));
      return false;
    }
  }
  std::ofstream out(path);
  out << options.shards << ' ' << IndexKindName(options.kind) << '\n';
  *wrote = true;
  return static_cast<bool>(out);
}

}  // namespace

std::unique_ptr<ShardedStore> ShardedStore::Open(
    const ShardedStoreOptions& options) {
  if (options.shards == 0 || options.path_prefix.empty()) return nullptr;
  bool wrote_manifest = false;
  if (!CheckOrWriteManifest(options, &wrote_manifest)) return nullptr;
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->shards_.reserve(options.shards);
  store->gates_ = std::make_unique<ShardGate[]>(options.shards);
  bool any_preexisting = false;
  std::vector<std::string> created_paths;
  bool failed = false;
  for (size_t i = 0; i < options.shards; ++i) {
    Shard shard;
    pmem::PmPool::Options pool_options;
    pool_options.pool_size = options.shard_pool_size;
    const std::string path =
        options.path_prefix + ".shard" + std::to_string(i);
    bool created = false;
    shard.pool = pmem::PmPool::OpenOrCreate(path, pool_options, &created);
    if (created) {
      created_paths.push_back(path);
    } else if (shard.pool != nullptr) {
      any_preexisting = true;
    }
    if (shard.pool == nullptr) {
      failed = true;
      break;
    }
    shard.epochs = std::make_unique<epoch::EpochManager>();
    shard.index = CreateKvIndex(options.kind, shard.pool.get(),
                                shard.epochs.get(), options.table);
    if (shard.index == nullptr) {
      failed = true;
      break;
    }
    store->shards_.push_back(std::move(shard));
  }
  if (failed) {
    // A failed *creation* (nothing pre-existed) must not leave a stray
    // manifest pinning an unusable configuration, nor half-laid-out pool
    // files that a later Open with a different kind would misinterpret.
    // With pre-existing pools, everything stays — the manifest correctly
    // keeps protecting whatever data they hold.
    store.reset();  // unmap before unlinking
    if (wrote_manifest && !any_preexisting) {
      for (const std::string& path : created_paths) {
        std::remove(path.c_str());
      }
      std::remove((options.path_prefix + ".manifest").c_str());
    }
    return nullptr;
  }
  if (options.async.workers &&
      !(options.shards == 1 && options.async.inline_single_shard)) {
    std::vector<ShardExecutor::ShardCtx> ctx;
    ctx.reserve(store->shards_.size());
    for (Shard& shard : store->shards_) {
      ctx.push_back({shard.index.get(), shard.epochs.get()});
    }
    ExecutorOptions executor_options;
    executor_options.queue_depth = options.async.queue_depth;
    executor_options.pin_workers = options.async.pin_workers;
    store->executor_ =
        std::make_unique<ShardExecutor>(std::move(ctx), executor_options);
  }
  return store;
}

// Workers are joined first (executor_ is the last member), so by the time
// the shards are torn down no thread is executing on them.
ShardedStore::~ShardedStore() = default;

size_t ShardedStore::ShardOf(uint64_t key) const {
  // Second mix decorrelates shard routing from every hash-bit range the
  // tables themselves consume (see header).
  return util::Mix64(util::HashInt64(key)) % shards_.size();
}

// Single ops hold their own shard's close gate shared for the duration of
// the probe: a CloseClean racing the call waits until the probe is off the
// shard instead of unmapping under it, and the op never touches another
// shard's gate cacheline (the PR-3 store-wide gate made every op on every
// core contend on one shared line).

Status ShardedStore::Insert(uint64_t key, uint64_t value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  return shards_[s].index->Insert(key, value);
}

Status ShardedStore::Search(uint64_t key, uint64_t* value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  return shards_[s].index->Search(key, value);
}

Status ShardedStore::Update(uint64_t key, uint64_t value) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  return shards_[s].index->Update(key, value);
}

Status ShardedStore::Delete(uint64_t key) {
  if (IsReservedKey(key)) return Status::kInvalidArgument;
  const size_t s = ShardOf(key);
  std::shared_lock<std::shared_mutex> gate(gates_[s].mu);
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::kInvalidArgument;
  }
  return shards_[s].index->Delete(key);
}

namespace {
// Serving batches are typically small; below this size the scatter uses
// stack scratch instead of heap vectors (the allocations would otherwise
// rival the cost of a 16-op batch). Tied to BatchState's inline storage
// so the stack and inline fast paths cannot silently diverge.
constexpr size_t kStackBatch = internal::BatchState::kInlineOps;
constexpr size_t kMaxShardsOnStack = internal::BatchState::kInlineShards;
}  // namespace

// ---- asynchronous submission ----

template <typename KeyAt, typename MakeOp, typename RunDirect>
BatchFuture ShardedStore::SubmitScattered(
    std::shared_ptr<internal::BatchState> state, size_t count, KeyAt key_at,
    MakeOp make_op, RunDirect run_direct) {
  const size_t num_shards = shards_.size();
  const auto reject = [&state, count] {
    state->submit_status = Status::kInvalidArgument;
    // The scatter may have primed the shard-completion count already;
    // nothing will ever be enqueued, so the future must be born ready.
    state->pending.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < count; ++i) {
      state->statuses[i] = Status::kInvalidArgument;
    }
    return BatchFuture(std::move(state));
  };
  // Fast-path check; the authoritative re-check happens under the gates.
  if (!accepting_.load(std::memory_order_acquire)) return reject();
  if (count == 0) return BatchFuture(std::move(state));

  if (executor_ == nullptr && num_shards == 1) {
    // Inline single-shard fast path: no scatter state, no copies — run
    // the shard's native batch entry point straight off the caller's
    // arrays; the future is born ready.
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (!accepting_.load(std::memory_order_acquire)) return reject();
    run_direct(shards_[0].index.get());
    return BatchFuture(std::move(state));
  }

  state->ReserveSlots(count, num_shards);

  uint32_t stack_shard_of[kStackBatch];
  size_t stack_cursor[kMaxShardsOnStack];
  std::vector<uint32_t> heap_shard_of;
  std::vector<size_t> heap_cursor;
  uint32_t* shard_of = stack_shard_of;
  size_t* cursor = stack_cursor;
  if (count > kStackBatch || num_shards > kMaxShardsOnStack) {
    heap_shard_of.resize(count);
    heap_cursor.resize(num_shards);
    shard_of = heap_shard_of.data();
    cursor = heap_cursor.data();
  }
  PlanScatter(count, key_at, shard_of, state->start, cursor,
              state->origin);
  for (size_t j = 0; j < count; ++j) {
    state->sub[j] = make_op(state->origin[j]);
  }

  // Hold the touched shards' gates across the whole enqueue so the batch
  // is never half-enqueued across a shutdown: a CloseClean that flipped
  // `accepting_` blocks on the first touched gate until every sub-batch
  // is in its queue (the executor drain then completes them all).
  GateSpan gates;
  gates.LockTouched(gates_.get(), state->start, num_shards);
  if (!accepting_.load(std::memory_order_acquire)) return reject();

  // Only after the gated accept: a rejected batch must stay at pending
  // == 0 so its future is born ready.
  uint32_t touched = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (state->start[s + 1] > state->start[s]) ++touched;
  }
  state->pending.store(touched, std::memory_order_relaxed);

  BatchFuture future(state);
  for (size_t s = 0; s < num_shards; ++s) {
    if (state->start[s + 1] == state->start[s]) continue;
    if (executor_ != nullptr) {
      ShardExecutor::WorkItem item;
      item.kind = ShardExecutor::WorkItem::Kind::kBatch;
      item.shard = static_cast<uint32_t>(s);
      item.batch = state;
      if (executor_->Submit(std::move(item))) continue;
      // The executor only refuses after Stop(), which the gates rule out
      // here; complete inline defensively all the same.
    }
    state->RunShard(s, shards_[s].index.get());
  }
  return future;
}

BatchFuture ShardedStore::SubmitExecute(Op* ops, size_t count,
                                        Status* statuses) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  state->caller_ops = ops;
  return SubmitScattered(
      std::move(state), count, [ops](size_t i) { return ops[i].key; },
      [ops](size_t i) { return ops[i]; },
      [=](KvIndex* index) { index->MultiExecute(ops, count, statuses); });
}

BatchFuture ShardedStore::SubmitSearch(const uint64_t* keys, size_t count,
                                       uint64_t* values, Status* statuses) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  state->values_out = values;
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys](size_t i) { return Op::Search(keys[i]); },
      [=](KvIndex* index) {
        index->MultiSearch(keys, count, values, statuses);
      });
}

BatchFuture ShardedStore::SubmitInsert(const uint64_t* keys,
                                       const uint64_t* values, size_t count,
                                       Status* statuses) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys, values](size_t i) { return Op::Insert(keys[i], values[i]); },
      [=](KvIndex* index) {
        index->MultiInsert(keys, values, count, statuses);
      });
}

BatchFuture ShardedStore::SubmitUpdate(const uint64_t* keys,
                                       const uint64_t* values, size_t count,
                                       Status* statuses) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys, values](size_t i) { return Op::Update(keys[i], values[i]); },
      [=](KvIndex* index) {
        index->MultiUpdate(keys, values, count, statuses);
      });
}

BatchFuture ShardedStore::SubmitDelete(const uint64_t* keys, size_t count,
                                       Status* statuses) {
  auto state = std::make_shared<internal::BatchState>();
  state->statuses = statuses;
  return SubmitScattered(
      std::move(state), count, [keys](size_t i) { return keys[i]; },
      [keys](size_t i) { return Op::Delete(keys[i]); },
      [=](KvIndex* index) { index->MultiDelete(keys, count, statuses); });
}

// ---- synchronous wrappers ----

void ShardedStore::MultiSearch(const uint64_t* keys, size_t count,
                               uint64_t* values, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitSearch(keys, count, values, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kSearch, keys, nullptr, values, count, statuses);
}

void ShardedStore::MultiInsert(const uint64_t* keys, const uint64_t* values,
                               size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitInsert(keys, values, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kInsert, keys, values, nullptr, count, statuses);
}

void ShardedStore::MultiUpdate(const uint64_t* keys, const uint64_t* values,
                               size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitUpdate(keys, values, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kUpdate, keys, values, nullptr, count, statuses);
}

void ShardedStore::MultiDelete(const uint64_t* keys, size_t count,
                               Status* statuses) {
  if (executor_ != nullptr) {
    SubmitDelete(keys, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  MultiUniform(BatchKind::kDelete, keys, nullptr, nullptr, count, statuses);
}

void ShardedStore::MultiExecute(Op* ops, size_t count, Status* statuses) {
  if (executor_ != nullptr) {
    SubmitExecute(ops, count, statuses).Wait();
    return;
  }
  if (RejectClosed(statuses, count)) return;
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (RejectClosed(statuses, count)) return;
    shards_[0].index->MultiExecute(ops, count, statuses);
    return;
  }
  if (count <= kStackBatch && num_shards <= kMaxShardsOnStack) {
    uint32_t shard_of[kStackBatch];
    size_t start[kMaxShardsOnStack + 1];
    uint32_t origin[kStackBatch];
    Op sub[kStackBatch];
    Status sub_status[kStackBatch];
    size_t cursor[kMaxShardsOnStack];
    ExecuteScattered(ops, count, statuses, shard_of, start, origin, sub,
                     sub_status, cursor);
    return;
  }
  std::vector<uint32_t> shard_of(count);
  std::vector<size_t> start(num_shards + 1);
  std::vector<uint32_t> origin(count);
  std::vector<Op> sub(count);
  std::vector<Status> sub_status(count);
  std::vector<size_t> cursor(num_shards);
  ExecuteScattered(ops, count, statuses, shard_of.data(), start.data(),
                   origin.data(), sub.data(), sub_status.data(),
                   cursor.data());
}

// ---- sequential (inline) execution paths ----

void ShardedStore::MultiUniform(BatchKind kind, const uint64_t* keys,
                                const uint64_t* values_in,
                                uint64_t* values_out, size_t count,
                                Status* statuses) {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock<std::shared_mutex> gate(gates_[0].mu);
    if (RejectClosed(statuses, count)) return;
    KvIndex* first = shards_[0].index.get();
    switch (kind) {
      case BatchKind::kSearch:
        first->MultiSearch(keys, count, values_out, statuses);
        return;
      case BatchKind::kInsert:
        first->MultiInsert(keys, values_in, count, statuses);
        return;
      case BatchKind::kUpdate:
        first->MultiUpdate(keys, values_in, count, statuses);
        return;
      case BatchKind::kDelete:
        first->MultiDelete(keys, count, statuses);
        return;
    }
  }

  // Scratch: stack for serving-sized batches, heap beyond.
  uint32_t stack_shard_of[kStackBatch];
  size_t stack_start[kMaxShardsOnStack + 1];
  uint32_t stack_origin[kStackBatch];
  uint64_t stack_keys[kStackBatch];
  uint64_t stack_vals[kStackBatch];
  Status stack_status[kStackBatch];
  size_t stack_cursor[kMaxShardsOnStack];
  std::vector<uint32_t> heap_shard_of, heap_origin;
  std::vector<size_t> heap_start, heap_cursor;
  std::vector<uint64_t> heap_keys, heap_vals;
  std::vector<Status> heap_status;
  const bool on_stack =
      count <= kStackBatch && num_shards <= kMaxShardsOnStack;
  uint32_t* shard_of = stack_shard_of;
  size_t* start = stack_start;
  uint32_t* origin = stack_origin;
  uint64_t* sub_keys = stack_keys;
  uint64_t* sub_vals = stack_vals;
  Status* sub_status = stack_status;
  size_t* cursor = stack_cursor;
  if (!on_stack) {
    heap_shard_of.resize(count);
    heap_start.resize(num_shards + 1);
    heap_origin.resize(count);
    heap_keys.resize(count);
    heap_vals.resize(count);
    heap_status.resize(count);
    heap_cursor.resize(num_shards);
    shard_of = heap_shard_of.data();
    start = heap_start.data();
    origin = heap_origin.data();
    sub_keys = heap_keys.data();
    sub_vals = heap_vals.data();
    sub_status = heap_status.data();
    cursor = heap_cursor.data();
  }

  PlanScatter(count, [&](size_t i) { return keys[i]; }, shard_of, start,
              cursor, origin);
  const bool copy_values =
      kind == BatchKind::kInsert || kind == BatchKind::kUpdate;
  for (size_t j = 0; j < count; ++j) {
    sub_keys[j] = keys[origin[j]];
    if (copy_values) sub_vals[j] = values_in[origin[j]];
  }

  // Gates of the touched shards, held across prime + dispatch.
  GateSpan gates;
  gates.LockTouched(gates_.get(), start, num_shards);
  if (RejectClosed(statuses, count)) return;

  // Cross-shard prefetch priming (see ExecuteScattered).
  if (count <= kStackBatch) {
    const bool for_write = kind != BatchKind::kSearch;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = start[s + 1] - start[s];
      if (len == 0) continue;
      shards_[s].index->PrefetchBatch(sub_keys + start[s], len, for_write);
    }
  }

  // Dispatch every shard's contiguous sub-batch through its pipeline.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t len = start[s + 1] - start[s];
    if (len == 0) continue;
    KvIndex* index = shards_[s].index.get();
    switch (kind) {
      case BatchKind::kSearch:
        index->MultiSearch(sub_keys + start[s], len, sub_vals + start[s],
                           sub_status + start[s]);
        break;
      case BatchKind::kInsert:
        index->MultiInsert(sub_keys + start[s], sub_vals + start[s], len,
                           sub_status + start[s]);
        break;
      case BatchKind::kUpdate:
        index->MultiUpdate(sub_keys + start[s], sub_vals + start[s], len,
                           sub_status + start[s]);
        break;
      case BatchKind::kDelete:
        index->MultiDelete(sub_keys + start[s], len, sub_status + start[s]);
        break;
    }
  }
  gates.Release();

  // Gather in caller order.
  for (size_t j = 0; j < count; ++j) {
    statuses[origin[j]] = sub_status[j];
    if (kind == BatchKind::kSearch && IsOk(sub_status[j])) {
      values_out[origin[j]] = sub_vals[j];
    }
  }
}

// Scatter: bucket-sort descriptor indices by shard (two passes, stable,
// O(count + shards)), regrouping each shard's ops into one contiguous
// sub-batch so the shard's adapter can type-partition and pipeline it;
// then gather results back in caller order. All scratch spans hold
// `count` entries except `start` (shards + 1) and `cursor` (shards).
void ShardedStore::ExecuteScattered(Op* ops, size_t count, Status* statuses,
                                    uint32_t* shard_of, size_t* start,
                                    uint32_t* origin, Op* sub,
                                    Status* sub_status, size_t* cursor) {
  const size_t num_shards = shards_.size();
  PlanScatter(count, [&](size_t i) { return ops[i].key; }, shard_of, start,
              cursor, origin);
  for (size_t j = 0; j < count; ++j) sub[j] = ops[origin[j]];

  // Gates of the touched shards, held across prime + dispatch.
  GateSpan gates;
  gates.LockTouched(gates_.get(), start, num_shards);
  if (RejectClosed(statuses, count)) return;

  // Cross-shard prefetch priming: run every shard's prefetch stages
  // before any shard executes, so shard B's cache lines are already in
  // flight while shard A runs its ops. Splitting a batch across shards
  // narrows each shard's pipeline group (a 16-op batch on 2 shards gives
  // 8-wide groups, which no longer cover a DRAM miss chain); priming
  // restores the full batch-wide overlap. Bounded to small batches —
  // lines primed thousands of ops ahead would be evicted before use.
  if (count <= kStackBatch) {
    uint64_t keys[kStackBatch];
    for (size_t j = 0; j < count; ++j) keys[j] = sub[j].key;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = start[s + 1] - start[s];
      if (len == 0) continue;
      bool for_write = false;
      for (size_t j = start[s]; j < start[s + 1] && !for_write; ++j) {
        for_write = sub[j].type != OpType::kSearch;
      }
      shards_[s].index->PrefetchBatch(keys + start[s], len, for_write);
    }
  }

  // Run every shard's sub-batch through its native pipeline.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t len = start[s + 1] - start[s];
    if (len == 0) continue;
    shards_[s].index->MultiExecute(sub + start[s], len,
                                   sub_status + start[s]);
  }
  gates.Release();

  // Gather: write statuses (and search results) back in caller order.
  for (size_t j = 0; j < count; ++j) {
    statuses[origin[j]] = sub_status[j];
    if (sub[j].type == OpType::kSearch && IsOk(sub_status[j])) {
      ops[origin[j]].value = sub[j].value;
    }
  }
}

// ---- stats & shutdown ----

ShardedStats ShardedStore::Aggregate(const IndexStats* per_shard,
                                     size_t count) {
  ShardedStats out;
  out.shard_count = count;
  for (size_t i = 0; i < count; ++i) {
    const IndexStats& s = per_shard[i];
    out.totals.records += s.records;
    out.totals.capacity_slots += s.capacity_slots;
    out.totals.bytes_used += s.bytes_used;
    out.totals.opt_retries += s.opt_retries;
    out.totals.version_conflicts += s.version_conflicts;
    out.totals.write_locks += s.write_locks;
    // Conservative: report the smallest page size any shard got (one
    // 4K-backed shard is enough to reintroduce its DTLB misses).
    out.totals.pool_page_bytes =
        i == 0 ? s.pool_page_bytes
               : std::min(out.totals.pool_page_bytes, s.pool_page_bytes);
    out.min_shard_load_factor =
        i == 0 ? s.load_factor
               : std::min(out.min_shard_load_factor, s.load_factor);
    out.max_shard_load_factor =
        std::max(out.max_shard_load_factor, s.load_factor);
  }
  out.totals.load_factor =
      out.totals.capacity_slots == 0
          ? 0.0
          : static_cast<double>(out.totals.records) /
                static_cast<double>(out.totals.capacity_slots);
  return out;
}

ShardedStats ShardedStore::Stats() {
  if (executor_ != nullptr) {
    // Route the snapshot through the shard queues: each shard's numbers
    // are taken by its worker at the snapshot's queue position — after
    // every batch enqueued before this call, never mid-batch.
    auto state = std::make_shared<internal::StatsState>();
    state->per_shard.resize(shards_.size());
    {
      GateSpan gates;
      gates.LockAll(gates_.get(), shards_.size());
      if (!accepting_.load(std::memory_order_acquire)) {
        return ShardedStats{};
      }
      state->pending.store(static_cast<uint32_t>(shards_.size()),
                           std::memory_order_relaxed);
      for (size_t s = 0; s < shards_.size(); ++s) {
        ShardExecutor::WorkItem item;
        item.kind = ShardExecutor::WorkItem::Kind::kStats;
        item.shard = static_cast<uint32_t>(s);
        item.stats = state;
        if (!executor_->Submit(std::move(item))) {
          state->per_shard[s] = shards_[s].index->Stats();
          state->CompleteOne();
        }
      }
    }
    state->Wait();
    return Aggregate(state->per_shard.data(), state->per_shard.size());
  }
  GateSpan gates;
  gates.LockAll(gates_.get(), shards_.size());
  if (!accepting_.load(std::memory_order_acquire)) return ShardedStats{};
  std::vector<IndexStats> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    per_shard[i] = shards_[i].index->Stats();
  }
  return Aggregate(per_shard.data(), per_shard.size());
}

void ShardedStore::CloseClean() {
  // Serializes concurrent CloseClean calls: the loser blocks until the
  // winner's drain + teardown completes, then early-returns, so "after
  // CloseClean returned" always means "fully closed".
  std::lock_guard<std::mutex> close_lock(close_mu_);
  if (!accepting_.exchange(false, std::memory_order_acq_rel)) {
    return;  // already closed
  }
  // Sweep every gate exclusively once, in the same ascending order every
  // holder acquires in: this waits out each in-flight op/batch that read
  // accepting_ == true, and the release/acquire through each gate makes
  // every later holder observe the flip and back off.
  for (size_t s = 0; s < shards_.size(); ++s) {
    gates_[s].mu.lock();
    gates_[s].mu.unlock();
  }
  // Drain every queued batch and join the workers before touching the
  // shards: every future handed out before the close becomes ready.
  if (executor_ != nullptr) executor_->Stop();
  for (auto& shard : shards_) {
    shard.index->CloseClean();
    shard.pool->CloseClean();
  }
}

}  // namespace dash::api
