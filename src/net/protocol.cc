#include "net/protocol.h"

namespace dash::net {

namespace {

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) lookup table,
// built once at first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

// Little-endian scalar writers/readers via memcpy (no alignment
// assumptions on the buffer).
template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
T Get(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

// Serializes `header` (crc field as given) into 24 bytes at `out`.
void PutHeader(uint8_t* out, const FrameHeader& header) {
  std::memcpy(out + 0, &header.magic, 4);
  out[4] = header.version;
  out[5] = header.type;
  std::memcpy(out + 6, &header.flags, 2);
  std::memcpy(out + 8, &header.request_id, 8);
  std::memcpy(out + 16, &header.payload_len, 4);
  std::memcpy(out + 20, &header.crc, 4);
}

// Appends a frame header for `payload_len` bytes and returns the offset
// where the payload starts; FinishFrame computes and patches the CRC
// once the payload is in place.
size_t BeginFrame(std::vector<uint8_t>* out, MsgType type, uint16_t flags,
                  uint64_t request_id, size_t payload_len) {
  FrameHeader header;
  header.type = static_cast<uint8_t>(type);
  header.flags = flags;
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload_len);
  header.crc = 0;
  const size_t at = out->size();
  out->resize(at + kHeaderSize);
  PutHeader(out->data() + at, header);
  return at;
}

void FinishFrame(std::vector<uint8_t>* out, size_t header_at) {
  // CRC over the header with a zeroed crc field, then the payload.
  const uint32_t crc =
      Crc32c(out->data() + header_at, out->size() - header_at);
  std::memcpy(out->data() + header_at + 20, &crc, 4);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Crc32cTable& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

void AppendHello(std::vector<uint8_t>* out, uint64_t tenant_id,
                 uint32_t weight) {
  const size_t at = BeginFrame(out, MsgType::kHello, 0, 0, kHelloPayload);
  Put<uint64_t>(out, tenant_id);
  Put<uint32_t>(out, weight);
  Put<uint32_t>(out, 0);  // reserved
  FinishFrame(out, at);
}

void AppendHelloAck(std::vector<uint8_t>* out, uint32_t shard_count,
                    uint32_t max_ops) {
  const size_t at =
      BeginFrame(out, MsgType::kHelloAck, 0, 0, kHelloAckPayload);
  Put<uint32_t>(out, shard_count);
  Put<uint32_t>(out, max_ops);
  FinishFrame(out, at);
}

void AppendRequest(std::vector<uint8_t>* out, uint64_t request_id,
                   const api::Op* ops, size_t count, uint64_t deadline_us) {
  const size_t payload = 16 + kRequestOpBytes * count;
  const size_t at =
      BeginFrame(out, MsgType::kRequest, 0, request_id, payload);
  Put<uint64_t>(out, deadline_us);
  Put<uint32_t>(out, static_cast<uint32_t>(count));
  Put<uint32_t>(out, 0);  // reserved
  for (size_t i = 0; i < count; ++i) {
    Put<uint8_t>(out, static_cast<uint8_t>(ops[i].type));
    Put<uint64_t>(out, ops[i].key);
    Put<uint64_t>(out, ops[i].value);
  }
  FinishFrame(out, at);
}

void AppendResponse(std::vector<uint8_t>* out, uint64_t request_id,
                    const api::Status* statuses, const uint64_t* values,
                    size_t count, uint32_t retry_after_us) {
  const size_t payload = 8 + kResponseOpBytes * count;
  const uint16_t flags = retry_after_us != 0 ? kFlagRetryAfter : 0;
  const size_t at =
      BeginFrame(out, MsgType::kResponse, flags, request_id, payload);
  Put<uint32_t>(out, retry_after_us);
  Put<uint32_t>(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    Put<uint8_t>(out, static_cast<uint8_t>(statuses[i]));
    Put<uint64_t>(out, values != nullptr ? values[i] : 0);
  }
  FinishFrame(out, at);
}

DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* out,
                         size_t* consumed) {
  if (len < kHeaderSize) return DecodeResult::kNeedMore;
  FrameHeader header;
  header.magic = Get<uint32_t>(data + 0);
  header.version = data[4];
  header.type = data[5];
  header.flags = Get<uint16_t>(data + 6);
  header.request_id = Get<uint64_t>(data + 8);
  header.payload_len = Get<uint32_t>(data + 16);
  header.crc = Get<uint32_t>(data + 20);

  // Header sanity first: a bad magic/version/type/length means the
  // stream is corrupt or hostile — no point waiting for more bytes.
  if (header.magic != kMagic) return DecodeResult::kBad;
  if (header.version != kProtocolVersion) return DecodeResult::kBad;
  if (header.type < static_cast<uint8_t>(MsgType::kHello) ||
      header.type > static_cast<uint8_t>(MsgType::kResponse)) {
    return DecodeResult::kBad;
  }
  if (header.payload_len > kMaxPayload) return DecodeResult::kBad;

  const size_t total = kHeaderSize + header.payload_len;
  if (len < total) return DecodeResult::kNeedMore;

  // CRC over (header with crc zeroed) + payload.
  uint8_t zeroed[kHeaderSize];
  std::memcpy(zeroed, data, kHeaderSize);
  std::memset(zeroed + 20, 0, 4);
  uint32_t crc = Crc32c(zeroed, kHeaderSize);
  crc = Crc32c(data + kHeaderSize, header.payload_len, crc);
  if (crc != header.crc) return DecodeResult::kBad;

  out->header = header;
  out->payload = data + kHeaderSize;
  *consumed = total;
  return DecodeResult::kFrame;
}

bool ParseHello(const Frame& frame, HelloView* out) {
  if (frame.header.type != static_cast<uint8_t>(MsgType::kHello)) {
    return false;
  }
  if (frame.header.payload_len != kHelloPayload) return false;
  out->tenant_id = Get<uint64_t>(frame.payload + 0);
  out->weight = Get<uint32_t>(frame.payload + 8);
  if (out->weight == 0) out->weight = 1;
  return true;
}

bool ParseHelloAck(const Frame& frame, HelloAckView* out) {
  if (frame.header.type != static_cast<uint8_t>(MsgType::kHelloAck)) {
    return false;
  }
  if (frame.header.payload_len != kHelloAckPayload) return false;
  out->shard_count = Get<uint32_t>(frame.payload + 0);
  out->max_ops = Get<uint32_t>(frame.payload + 4);
  return true;
}

bool ParseRequest(const Frame& frame, RequestView* out) {
  if (frame.header.type != static_cast<uint8_t>(MsgType::kRequest)) {
    return false;
  }
  if (frame.header.payload_len < 16) return false;
  out->deadline_us = Get<uint64_t>(frame.payload + 0);
  out->count = Get<uint32_t>(frame.payload + 8);
  if (out->count > kMaxOpsPerRequest) return false;
  if (frame.header.payload_len != 16 + kRequestOpBytes * out->count) {
    return false;
  }
  out->ops = frame.payload + 16;
  return true;
}

bool DecodeRequestOp(const RequestView& request, size_t i, api::Op* out) {
  const uint8_t* p = request.ops + i * kRequestOpBytes;
  const uint8_t type = p[0];
  if (type > static_cast<uint8_t>(api::OpType::kDelete)) return false;
  out->type = static_cast<api::OpType>(type);
  out->key = Get<uint64_t>(p + 1);
  out->value = Get<uint64_t>(p + 9);
  return true;
}

bool ParseResponse(const Frame& frame, ResponseView* out) {
  if (frame.header.type != static_cast<uint8_t>(MsgType::kResponse)) {
    return false;
  }
  if (frame.header.payload_len < 8) return false;
  out->retry_after_us = Get<uint32_t>(frame.payload + 0);
  out->count = Get<uint32_t>(frame.payload + 4);
  if (out->count > kMaxOpsPerRequest) return false;
  if (frame.header.payload_len != 8 + kResponseOpBytes * out->count) {
    return false;
  }
  out->entries = frame.payload + 8;
  return true;
}

bool DecodeResponseEntry(const ResponseView& response, size_t i,
                         api::Status* status, uint64_t* value) {
  const uint8_t* p = response.entries + i * kResponseOpBytes;
  if (p[0] > static_cast<uint8_t>(api::Status::kTimeout)) return false;
  *status = static_cast<api::Status>(p[0]);
  *value = Get<uint64_t>(p + 1);
  return true;
}

}  // namespace dash::net
