#include "net/kv_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace dash::net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// One client connection. The event-loop thread owns every field except
// the outbound buffer (`out`/`out_off`, guarded by out_mu — completion
// callbacks append response bytes from shard-worker threads) and the
// atomic in-flight count.
struct KvServer::Conn {
  int fd = -1;
  bool handshaken = false;
  bool closed = false;      // loop thread: removed from epoll/map
  bool in_drr = false;      // loop thread: queued in drr_ring_
  bool epollout = false;    // loop thread: EPOLLOUT armed
  uint64_t tenant = 0;
  uint32_t weight = 1;
  int64_t deficit = 0;

  // Inbound: accumulated unparsed bytes (loop thread only).
  std::vector<uint8_t> in;
  size_t in_off = 0;

  // Admitted requests awaiting DRR submission (loop thread only).
  std::deque<std::shared_ptr<Request>> admit;
  std::atomic<size_t> in_flight{0};

  std::mutex out_mu;
  std::vector<uint8_t> out;
  size_t out_off = 0;
};

// One admitted request frame: owns the decoded ops and the status slots
// for the whole submit -> complete -> respond lifetime (the caller-array
// contract of SubmitExecute). Holds its connection alive so a response
// for a since-closed connection degrades to an append into a dead buffer.
struct KvServer::Request {
  uint64_t id = 0;
  uint64_t deadline_us = 0;
  std::vector<api::Op> ops;
  std::vector<api::Status> statuses;
  std::shared_ptr<Conn> conn;
};

KvServer::KvServer(api::ShardedStore* store, const ServerOptions& options)
    : store_(store), options_(options) {
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
  if (options_.drr_quantum == 0) options_.drr_quantum = 1;
}

KvServer::~KvServer() { Stop(); }

bool KvServer::ListenUds(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "uds path too long";
    return false;
  }
  std::strncpy(addr.sun_path, options_.uds_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.uds_path.c_str());
  uds_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (uds_fd_ < 0 ||
      ::bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(uds_fd_, 128) != 0) {
    if (error != nullptr) {
      *error = "uds bind/listen failed: " + std::string(strerror(errno));
    }
    return false;
  }
  SetNonBlocking(uds_fd_);
  return true;
}

bool KvServer::ListenTcp(std::string* error) {
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (tcp_fd_ < 0) {
    if (error != nullptr) *error = "tcp socket failed";
    return false;
  }
  int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.tcp_port);
  if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) *error = "bad tcp host";
    return false;
  }
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(tcp_fd_, 128) != 0) {
    if (error != nullptr) {
      *error = "tcp bind/listen failed: " + std::string(strerror(errno));
    }
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_tcp_port_ = ntohs(addr.sin_port);
  SetNonBlocking(tcp_fd_);
  return true;
}

bool KvServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  if (options_.uds_path.empty() && !options_.tcp) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (error != nullptr) *error = "epoll/eventfd failed";
    Stop();
    return false;
  }
  if (!options_.uds_path.empty() && !ListenUds(error)) {
    Stop();
    return false;
  }
  if (options_.tcp && !ListenTcp(error)) {
    Stop();
    return false;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (uds_fd_ >= 0) {
    ev.data.fd = uds_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, uds_fd_, &ev);
  }
  if (tcp_fd_ >= 0) {
    ev.data.fd = tcp_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_fd_, &ev);
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  return true;
}

void KvServer::Stop() {
  if (running_.load(std::memory_order_acquire)) {
    stopping_.store(true, std::memory_order_release);
    Wake();
    loop_.join();
    running_.store(false, std::memory_order_release);
  }
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    ::close(conn->fd);
    conn->closed = true;
  }
  conns_.clear();
  drr_ring_.clear();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_conns_.clear();
  }
  if (uds_fd_ >= 0) {
    ::close(uds_fd_);
    uds_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

ServerStats KvServer::stats() const {
  ServerStats s;
  s.connections_accepted = s_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = s_closed_.load(std::memory_order_relaxed);
  s.frames_bad = s_bad_.load(std::memory_order_relaxed);
  s.requests = s_requests_.load(std::memory_order_relaxed);
  s.ops = s_ops_.load(std::memory_order_relaxed);
  s.responses = s_responses_.load(std::memory_order_relaxed);
  s.retry_responses = s_retry_.load(std::memory_order_relaxed);
  s.pipeline_rejects = s_pipeline_rejects_.load(std::memory_order_relaxed);
  return s;
}

void KvServer::Wake() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void KvServer::LoopThread() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && in_flight_.load(std::memory_order_acquire) == 0) {
      break;
    }
    const int timeout_ms = stopping ? 5 : 100;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;  // woken conns flushed below
      }
      if (fd == uds_fd_ || fd == tcp_fd_) {
        if (!stopping) AcceptFrom(fd);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0 && !stopping) {
        ReadConn(conn);
      }
      if ((events[i].events & EPOLLOUT) != 0 && !conn->closed) {
        FlushConn(conn);
      }
    }
    // Drain the completion handoff: flush every connection a callback
    // touched since the last pass.
    std::vector<std::shared_ptr<Conn>> woken;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      woken.swap(wake_conns_);
    }
    for (const auto& conn : woken) {
      if (!conn->closed) FlushConn(conn);
    }
    if (!stopping) RunAdmission();
  }
  // Final drain: responses whose callbacks landed between the last swap
  // and loop exit.
  std::vector<std::shared_ptr<Conn>> woken;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    woken.swap(wake_conns_);
  }
  for (const auto& conn : woken) {
    if (!conn->closed) FlushConn(conn);
  }
}

void KvServer::AcceptFrom(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or error: nothing more to accept
    if (listen_fd == tcp_fd_) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    s_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void KvServer::ReadConn(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    constexpr size_t kReadChunk = 64 * 1024;
    const size_t at = conn->in.size();
    conn->in.resize(at + kReadChunk);
    const ssize_t n = ::read(conn->fd, conn->in.data() + at, kReadChunk);
    if (n > 0) {
      conn->in.resize(at + static_cast<size_t>(n));
      continue;
    }
    conn->in.resize(at);
    if (n == 0) {  // orderly client close
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }

  // Parse every complete frame in the buffer.
  while (!conn->closed) {
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(conn->in.data() + conn->in_off,
                    conn->in.size() - conn->in_off, &frame, &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kBad || !HandleFrame(conn, frame)) {
      s_bad_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
      return;
    }
    conn->in_off += consumed;
  }
  // Compact the consumed prefix away once it dominates the buffer.
  if (conn->in_off > 0 && conn->in_off * 2 >= conn->in.size()) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(conn->in_off));
    conn->in_off = 0;
  }
}

bool KvServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                           const Frame& frame) {
  if (!conn->handshaken) {
    HelloView hello;
    if (!ParseHello(frame, &hello)) return false;  // hello-first contract
    conn->handshaken = true;
    conn->tenant = hello.tenant_id;
    conn->weight = hello.weight;
    std::vector<uint8_t> ack;
    AppendHelloAck(&ack, static_cast<uint32_t>(store_->shard_count()),
                   kMaxOpsPerRequest);
    QueueResponse(conn, ack.data(), ack.size());
    FlushConn(conn);
    return true;
  }

  RequestView request;
  if (!ParseRequest(frame, &request)) return false;

  // Pipeline cap: admission control before the store ever sees the ops.
  if (conn->admit.size() + conn->in_flight.load(std::memory_order_acquire) >=
      options_.max_pipeline) {
    s_pipeline_rejects_.fetch_add(1, std::memory_order_relaxed);
    RespondAllFailed(conn, frame.header.request_id, request.count,
                     api::Status::kUnavailable);
    return true;
  }

  auto req = std::make_shared<Request>();
  req->id = frame.header.request_id;
  req->deadline_us = request.deadline_us;
  req->conn = conn;
  req->ops.resize(request.count);
  req->statuses.assign(request.count, api::Status::kInternal);
  for (size_t i = 0; i < request.count; ++i) {
    if (!DecodeRequestOp(request, i, &req->ops[i])) return false;
  }
  s_requests_.fetch_add(1, std::memory_order_relaxed);
  s_ops_.fetch_add(request.count, std::memory_order_relaxed);
  conn->admit.push_back(std::move(req));
  if (!conn->in_drr) {
    conn->in_drr = true;
    drr_ring_.push_back(conn);
  }
  return true;
}

// Deficit round robin across connections with admitted requests: each
// visit earns weight x quantum ops of deficit; whole requests are
// submitted while the deficit covers their op count. A connection with
// leftover requests re-queues (deficit carries over); an emptied one
// leaves the ring and forfeits its remaining deficit, so idle tenants
// cannot bank credit.
void KvServer::RunAdmission() {
  size_t rounds_left = drr_ring_.size() * 64 + 64;  // defensive bound
  while (!drr_ring_.empty() && rounds_left-- > 0) {
    std::shared_ptr<Conn> conn = drr_ring_.front();
    drr_ring_.pop_front();
    if (conn->closed || conn->admit.empty()) {
      conn->in_drr = false;
      conn->deficit = 0;
      continue;
    }
    conn->deficit +=
        static_cast<int64_t>(conn->weight) * options_.drr_quantum;
    while (!conn->admit.empty()) {
      const auto& front = conn->admit.front();
      const int64_t cost =
          static_cast<int64_t>(front->ops.empty() ? 1 : front->ops.size());
      if (cost > conn->deficit) break;
      conn->deficit -= cost;
      std::shared_ptr<Request> req = conn->admit.front();
      conn->admit.pop_front();
      SubmitRequest(std::move(req));
    }
    if (conn->admit.empty()) {
      conn->in_drr = false;
      conn->deficit = 0;
    } else {
      drr_ring_.push_back(conn);  // deficit carries to the next round
    }
  }
}

void KvServer::SubmitRequest(std::shared_ptr<Request> request) {
  Request* req = request.get();
  const size_t count = req->ops.size();
  if (count == 0) {
    // Empty batch: answer immediately, nothing to run.
    std::vector<uint8_t> frame;
    AppendResponse(&frame, req->id, nullptr, nullptr, 0, 0);
    s_responses_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(req->conn, frame.data(), frame.size());
    FlushConn(req->conn);
    return;
  }
  req->conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  api::SubmitOptions submit;
  if (req->deadline_us != 0) {
    submit.deadline = std::chrono::microseconds(req->deadline_us);
  }
  api::BatchFuture future = store_->SubmitExecute(
      req->ops.data(), count, req->statuses.data(), submit);
  // Completion-queue delivery: the last shard's gather runs this on its
  // worker thread (or right here when the future is born ready).
  future.OnReady(
      [this, request = std::move(request)] { OnRequestDone(request); });
}

void KvServer::OnRequestDone(const std::shared_ptr<Request>& request) {
  const size_t count = request->ops.size();
  std::vector<uint64_t> values(count);
  bool unavailable = false;
  for (size_t i = 0; i < count; ++i) {
    values[i] = request->ops[i].value;
    if (request->statuses[i] == api::Status::kUnavailable ||
        request->statuses[i] == api::Status::kTimeout) {
      unavailable = true;
    }
  }
  const uint32_t retry_after_us =
      unavailable ? options_.retry_after_us : 0;
  std::vector<uint8_t> frame;
  AppendResponse(&frame, request->id, request->statuses.data(),
                 values.data(), count, retry_after_us);
  s_responses_.fetch_add(1, std::memory_order_relaxed);
  if (retry_after_us != 0) {
    s_retry_.fetch_add(1, std::memory_order_relaxed);
  }
  QueueResponse(request->conn, frame.data(), frame.size());
  NotifyWritable(request->conn);
  request->conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  Wake();
}

void KvServer::RespondAllFailed(const std::shared_ptr<Conn>& conn,
                                uint64_t id, size_t count,
                                api::Status status) {
  std::vector<api::Status> statuses(count, status);
  std::vector<uint8_t> frame;
  AppendResponse(&frame, id, statuses.data(), nullptr, count,
                 options_.retry_after_us);
  s_responses_.fetch_add(1, std::memory_order_relaxed);
  s_retry_.fetch_add(1, std::memory_order_relaxed);
  QueueResponse(conn, frame.data(), frame.size());
  FlushConn(conn);
}

void KvServer::QueueResponse(const std::shared_ptr<Conn>& conn,
                             const uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  conn->out.insert(conn->out.end(), data, data + len);
}

void KvServer::NotifyWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_conns_.push_back(conn);
}

void KvServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  bool blocked = false;
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      blocked = true;
      break;
    }
    // Hard write error: the reader side will observe HUP and close.
    conn->out.clear();
    conn->out_off = 0;
    return;
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  }
  if (blocked != conn->epollout) {
    conn->epollout = blocked;
    epoll_event ev{};
    ev.events = EPOLLIN | (blocked ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void KvServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns_.erase(conn->fd);
  ::close(conn->fd);
  s_closed_.fetch_add(1, std::memory_order_relaxed);
  // Outstanding requests still hold the Conn; their responses land in the
  // dead buffer and are dropped with it.
}

}  // namespace dash::net
