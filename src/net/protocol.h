// Wire protocol of the network serving front end (KvServer / KvClient).
//
// Length-prefixed binary frames over a byte stream (TCP or a Unix-domain
// socket). Every frame is a fixed 24-byte header followed by `payload_len`
// payload bytes:
//
//   offset size field
//   0      4    magic       0x4B565344 — the bytes "DSVK" on the wire
//   4      1    version     kProtocolVersion (1)
//   5      1    type        MsgType
//   6      2    flags       FrameFlags bitset
//   8      8    request_id  echoed verbatim in the response
//   16     4    payload_len bytes following the header (bounded)
//   20     4    crc         CRC32C over the header (crc field zeroed) and
//                           the payload — torn or corrupt frames never
//                           decode
//
// Integers are little-endian (the store targets x86; encode/decode go
// through memcpy, so unaligned access is never performed).
//
// Connection contract:
//   * handshake first: the client sends kHello {tenant_id, weight}; the
//     server answers kHelloAck {shard_count, max_ops}. Any other frame
//     before the handshake is a protocol error.
//   * pipelining: after the handshake the client may keep any number of
//     kRequest frames in flight; the server answers each with exactly one
//     kResponse carrying the same request_id, in *completion* order —
//     responses are matched by id, not by position.
//   * a request's ops map 1:1 onto api::Op / api::Status arrays: the
//     batch runs through ShardedStore::SubmitExecute with the frame's
//     relative deadline, so MultiExecute's ordering contract (same-type
//     order preserved, searches run before writes within a batch) holds
//     per frame.
//   * backpressure is a *response*, never a dropped connection: ops that
//     hit a full shard queue (kUnavailable) or an expired deadline
//     (kTimeout) come back with those statuses, and the response header
//     carries kFlagRetryAfter plus an advisory retry_after_us.
//   * malformed frames (bad magic/version/type, oversized or undersized
//     payload, CRC mismatch) close the connection; there is nothing
//     trustworthy left to resynchronize on in a byte stream.

#ifndef DASH_PM_NET_PROTOCOL_H_
#define DASH_PM_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "api/status.h"

namespace dash::net {

inline constexpr uint32_t kMagic = 0x4B565344u;  // "DSVK"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 24;

// Hard bound on ops per request frame; larger batches gain nothing (the
// adapter chunks at 256) and an attacker-controlled length must not size
// an allocation.
inline constexpr uint32_t kMaxOpsPerRequest = 4096;

enum class MsgType : uint8_t {
  kHello = 1,     // client -> server, first frame on a connection
  kHelloAck = 2,  // server -> client
  kRequest = 3,   // client -> server op batch
  kResponse = 4,  // server -> client, one per request, matched by id
};

// Header flag bits.
inline constexpr uint16_t kFlagRetryAfter = 1u << 0;  // responses only

struct FrameHeader {
  uint32_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

// Payload encodings (all little-endian, packed):
//   kHello:    u64 tenant_id, u32 weight, u32 reserved        (16 bytes)
//   kHelloAck: u32 shard_count, u32 max_ops                   (8 bytes)
//   kRequest:  u64 deadline_us (0 = none), u32 count, u32 reserved,
//              count x { u8 op_type, u64 key, u64 value }     (16 + 17n)
//   kResponse: u32 retry_after_us, u32 count,
//              count x { u8 status, u64 value }               (8 + 9n)
inline constexpr size_t kHelloPayload = 16;
inline constexpr size_t kHelloAckPayload = 8;
inline constexpr size_t kRequestOpBytes = 17;
inline constexpr size_t kResponseOpBytes = 9;
inline constexpr size_t kMaxPayload =
    16 + kRequestOpBytes * static_cast<size_t>(kMaxOpsPerRequest);

// CRC32C (Castagnoli), table-driven software implementation.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// ---- encoding ----
// Appenders serialize one complete frame (header + payload + CRC) onto
// `out`; the buffer can accumulate many frames for one writev-style send.

void AppendHello(std::vector<uint8_t>* out, uint64_t tenant_id,
                 uint32_t weight);
void AppendHelloAck(std::vector<uint8_t>* out, uint32_t shard_count,
                    uint32_t max_ops);
void AppendRequest(std::vector<uint8_t>* out, uint64_t request_id,
                   const api::Op* ops, size_t count, uint64_t deadline_us);
// `values[i]` is returned for searches (taken from ops[i].value after the
// batch ran); statuses map 1:1. retry_after_us != 0 sets kFlagRetryAfter.
void AppendResponse(std::vector<uint8_t>* out, uint64_t request_id,
                    const api::Status* statuses, const uint64_t* values,
                    size_t count, uint32_t retry_after_us);

// ---- decoding ----

enum class DecodeResult : uint8_t {
  kNeedMore,  // the buffer holds a frame prefix; read more bytes
  kFrame,     // one well-formed frame decoded; *consumed bytes eaten
  kBad,       // malformed (magic/version/type/length/CRC) — close the
              // connection
};

// One decoded frame: validated header plus a borrowed payload span into
// the caller's receive buffer (valid until the buffer moves).
struct Frame {
  FrameHeader header;
  const uint8_t* payload = nullptr;
};

// Scans the front of [data, data+len) for one frame. On kFrame sets *out
// and *consumed (header + payload bytes). Validates magic, version, type
// range, payload_len bound, and the frame CRC before reporting kFrame.
DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* out,
                         size_t* consumed);

// Typed payload views. Each Parse* checks the frame type and the exact
// payload size; false means protocol error (close the connection).

struct HelloView {
  uint64_t tenant_id = 0;
  uint32_t weight = 1;
};
bool ParseHello(const Frame& frame, HelloView* out);

struct HelloAckView {
  uint32_t shard_count = 0;
  uint32_t max_ops = 0;
};
bool ParseHelloAck(const Frame& frame, HelloAckView* out);

struct RequestView {
  uint64_t deadline_us = 0;
  uint32_t count = 0;
  const uint8_t* ops = nullptr;  // count x kRequestOpBytes
};
bool ParseRequest(const Frame& frame, RequestView* out);
// Decodes op i of a parsed request. Returns false on an out-of-range op
// type byte (protocol error).
bool DecodeRequestOp(const RequestView& request, size_t i, api::Op* out);

struct ResponseView {
  uint32_t retry_after_us = 0;
  uint32_t count = 0;
  const uint8_t* entries = nullptr;  // count x kResponseOpBytes
};
bool ParseResponse(const Frame& frame, ResponseView* out);
// Decodes entry i. Status bytes beyond the enum range fail (false).
bool DecodeResponseEntry(const ResponseView& response, size_t i,
                         api::Status* status, uint64_t* value);

}  // namespace dash::net

#endif  // DASH_PM_NET_PROTOCOL_H_
