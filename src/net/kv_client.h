// KvClient: blocking client for the KvServer wire protocol.
//
// One KvClient owns one connection (TCP or Unix-domain socket) and is
// intended to be used from one thread at a time — the closed-loop bench
// gives each client thread its own KvClient. Pipelining is explicit:
// Send() enqueues a request frame (flushing the socket), Receive() blocks
// for the next response frame *in completion order* and hands back its
// request id; the caller correlates. Execute() is the depth-1
// convenience wrapper (send one, wait for that id).

#ifndef DASH_PM_NET_KV_CLIENT_H_
#define DASH_PM_NET_KV_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace dash::net {

// One response frame, decoded. statuses/values are parallel to the ops of
// the request with the same id.
struct ClientResponse {
  uint64_t request_id = 0;
  uint32_t retry_after_us = 0;  // nonzero: server asked for backoff
  std::vector<api::Status> statuses;
  std::vector<uint64_t> values;
};

class KvClient {
 public:
  KvClient() = default;
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;
  ~KvClient() { Close(); }

  // Connects and runs the handshake. Exactly one of these per client.
  bool ConnectUds(const std::string& path, uint64_t tenant_id = 0,
                  uint32_t weight = 1, std::string* error = nullptr);
  bool ConnectTcp(const std::string& host, uint16_t port,
                  uint64_t tenant_id = 0, uint32_t weight = 1,
                  std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // From the server's HelloAck.
  uint32_t shard_count() const { return shard_count_; }
  uint32_t max_ops() const { return max_ops_; }

  // Enqueues one request frame and flushes it to the socket. Returns the
  // request id to correlate with Receive(). deadline_us is the relative
  // per-batch deadline (0 = none). ops beyond max_ops() fail.
  bool Send(const api::Op* ops, size_t count, uint64_t deadline_us,
            uint64_t* request_id);

  // Blocks for the next response frame (completion order, any id).
  // Returns false on EOF/protocol error — the connection is closed.
  bool Receive(ClientResponse* out);

  // Send + wait for that specific id; other ids arriving first fail
  // (depth-1 callers never see them).
  //
  // max_retries > 0 opts into honoring the server's backpressure hint:
  // when the response carries retry_after_us and some ops came back
  // kUnavailable, the client sleeps the advised interval and resends
  // just those ops, up to max_retries rounds, merging the outcomes into
  // their original slots. kTimeout ops are never resent (their deadline
  // already expired server-side). After the rounds are exhausted any
  // still-kUnavailable statuses are handed to the caller, so the default
  // (0) is exactly the old immediate-kUnavailable behaviour.
  bool Execute(const api::Op* ops, size_t count, uint64_t deadline_us,
               ClientResponse* out, uint32_t max_retries = 0);

 private:
  bool Handshake(uint64_t tenant_id, uint32_t weight, std::string* error);
  bool WriteAll(const uint8_t* data, size_t len);
  // Reads until one whole frame is buffered; false on EOF/error/bad frame.
  bool ReadFrame(Frame* frame, std::vector<uint8_t>* storage);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint32_t shard_count_ = 0;
  uint32_t max_ops_ = 0;
  std::vector<uint8_t> in_;
  size_t in_off_ = 0;
  std::vector<uint8_t> send_buf_;
};

}  // namespace dash::net

#endif  // DASH_PM_NET_KV_CLIENT_H_
