#include "net/kv_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace dash::net {

bool KvClient::ConnectUds(const std::string& path, uint64_t tenant_id,
                          uint32_t weight, std::string* error) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "uds path too long";
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "uds connect failed: " + std::string(strerror(errno));
    }
    Close();
    return false;
  }
  return Handshake(tenant_id, weight, error);
}

bool KvClient::ConnectTcp(const std::string& host, uint16_t port,
                          uint64_t tenant_id, uint32_t weight,
                          std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "tcp socket failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    if (error != nullptr) {
      *error = "tcp connect failed: " + std::string(strerror(errno));
    }
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Handshake(tenant_id, weight, error);
}

void KvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  in_off_ = 0;
  shard_count_ = 0;
  max_ops_ = 0;
}

bool KvClient::Handshake(uint64_t tenant_id, uint32_t weight,
                         std::string* error) {
  send_buf_.clear();
  AppendHello(&send_buf_, tenant_id, weight);
  if (!WriteAll(send_buf_.data(), send_buf_.size())) {
    if (error != nullptr) *error = "hello write failed";
    Close();
    return false;
  }
  Frame frame;
  std::vector<uint8_t> storage;
  HelloAckView ack;
  if (!ReadFrame(&frame, &storage) || !ParseHelloAck(frame, &ack)) {
    if (error != nullptr) *error = "handshake failed";
    Close();
    return false;
  }
  shard_count_ = ack.shard_count;
  max_ops_ = ack.max_ops;
  return true;
}

bool KvClient::WriteAll(const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool KvClient::ReadFrame(Frame* frame, std::vector<uint8_t>* storage) {
  for (;;) {
    size_t consumed = 0;
    const DecodeResult r = DecodeFrame(in_.data() + in_off_,
                                       in_.size() - in_off_, frame,
                                       &consumed);
    if (r == DecodeResult::kFrame) {
      // Detach the frame bytes so the next read can't move the payload
      // out from under the borrowed span.
      storage->assign(in_.begin() + static_cast<ptrdiff_t>(in_off_),
                      in_.begin() +
                          static_cast<ptrdiff_t>(in_off_ + consumed));
      in_off_ += consumed;
      if (in_off_ == in_.size()) {
        in_.clear();
        in_off_ = 0;
      }
      size_t reparse = 0;
      const DecodeResult check =
          DecodeFrame(storage->data(), storage->size(), frame, &reparse);
      return check == DecodeResult::kFrame;
    }
    if (r == DecodeResult::kBad) {
      Close();
      return false;
    }
    // kNeedMore: pull more bytes off the socket.
    constexpr size_t kReadChunk = 64 * 1024;
    const size_t at = in_.size();
    in_.resize(at + kReadChunk);
    const ssize_t n = ::read(fd_, in_.data() + at, kReadChunk);
    if (n <= 0) {
      in_.resize(at);
      if (n < 0 && errno == EINTR) continue;
      Close();
      return false;
    }
    in_.resize(at + static_cast<size_t>(n));
  }
}

bool KvClient::Send(const api::Op* ops, size_t count, uint64_t deadline_us,
                    uint64_t* request_id) {
  if (fd_ < 0 || count > max_ops_) return false;
  const uint64_t id = next_id_++;
  send_buf_.clear();
  AppendRequest(&send_buf_, id, ops, count, deadline_us);
  if (!WriteAll(send_buf_.data(), send_buf_.size())) {
    Close();
    return false;
  }
  if (request_id != nullptr) *request_id = id;
  return true;
}

bool KvClient::Receive(ClientResponse* out) {
  Frame frame;
  std::vector<uint8_t> storage;
  ResponseView view;
  if (!ReadFrame(&frame, &storage) || !ParseResponse(frame, &view)) {
    Close();
    return false;
  }
  out->request_id = frame.header.request_id;
  out->retry_after_us = view.retry_after_us;
  out->statuses.resize(view.count);
  out->values.resize(view.count);
  for (size_t i = 0; i < view.count; ++i) {
    if (!DecodeResponseEntry(view, i, &out->statuses[i],
                             &out->values[i])) {
      Close();
      return false;
    }
  }
  return true;
}

bool KvClient::Execute(const api::Op* ops, size_t count,
                       uint64_t deadline_us, ClientResponse* out,
                       uint32_t max_retries) {
  uint64_t id = 0;
  if (!Send(ops, count, deadline_us, &id)) return false;
  if (!Receive(out)) return false;
  if (out->request_id != id) return false;

  for (uint32_t round = 0; round < max_retries; ++round) {
    if (out->retry_after_us == 0) break;
    // Resend only the shed ops; anything else (kOk, kTimeout, ...) is a
    // final answer for its slot.
    std::vector<size_t> pending;
    for (size_t i = 0; i < count; ++i) {
      if (out->statuses[i] == api::Status::kUnavailable) pending.push_back(i);
    }
    if (pending.empty()) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(out->retry_after_us));
    std::vector<api::Op> retry_ops;
    retry_ops.reserve(pending.size());
    for (const size_t i : pending) retry_ops.push_back(ops[i]);
    ClientResponse sub;
    if (!Send(retry_ops.data(), retry_ops.size(), deadline_us, &id)) {
      return false;
    }
    if (!Receive(&sub) || sub.request_id != id) return false;
    for (size_t j = 0; j < pending.size(); ++j) {
      out->statuses[pending[j]] = sub.statuses[j];
      out->values[pending[j]] = sub.values[j];
    }
    out->retry_after_us = sub.retry_after_us;
  }
  return true;
}

}  // namespace dash::net
