// KvServer: the network serving front end over the async ShardedStore.
//
// One epoll-driven event-loop thread owns the listeners (TCP and/or
// Unix-domain socket), every connection's reads/writes, and admission.
// Decoded request frames become op batches submitted through
// ShardedStore::SubmitExecute with the frame's relative deadline; the
// server never parks a thread in Wait() — each future's OnReady callback
// (running on the completing shard's worker) serializes the response
// frame, appends it to the connection's outbound buffer, and wakes the
// event loop through an eventfd, which is what delivers pipelined
// responses out of order, in completion order.
//
// Admission control happens at two levels, and both are *responses*,
// never dropped connections:
//   * per-connection pipeline cap (ServerOptions::max_pipeline): a
//     request arriving with the cap's worth of requests already admitted
//     is answered immediately with every status kUnavailable and a
//     retry-after hint;
//   * executor backpressure: when the store's bounded shard queues are
//     full (AsyncOptions::submit_retries exhausted -> kUnavailable) or a
//     deadline expired in queue (kTimeout), those statuses flow back in
//     the response, again flagged retry-after. Open the store with
//     submit_retries > 0; with 0 a full queue blocks the event loop
//     instead of shedding load.
//
// Tenant fairness: the handshake carries a tenant id and weight, and
// admitted-but-unsubmitted requests drain through deficit round robin
// across connections — each round a connection earns weight x drr_quantum
// ops of deficit and submits whole requests it can afford, so a tenant
// with weight 2 sustains twice the admitted op rate of a weight-1 tenant
// when the store is the bottleneck.
//
// Malformed frames (bad magic/version/type/length/CRC, op-type bytes out
// of range, a request before the handshake) close that connection
// cleanly; other connections and the store are unaffected.

#ifndef DASH_PM_NET_KV_SERVER_H_
#define DASH_PM_NET_KV_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/sharded_store.h"
#include "net/protocol.h"

namespace dash::net {

struct ServerOptions {
  // Unix-domain listener path; empty disables UDS. An existing socket
  // file at the path is replaced.
  std::string uds_path;
  // TCP listener (loopback by default); tcp_port 0 binds an ephemeral
  // port, readable from tcp_port() after Start().
  bool tcp = false;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  // Per-connection cap on admitted-but-unfinished requests; beyond it the
  // server answers kUnavailable + retry-after instead of buffering.
  size_t max_pipeline = 256;
  // Advisory client backoff carried in retry-after responses.
  uint32_t retry_after_us = 200;
  // Deficit-round-robin quantum: ops of deficit earned per weight unit
  // per scheduling round.
  uint32_t drr_quantum = 64;
};

// Monotonic counters since Start() (snapshot via stats()).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_bad = 0;        // malformed frames (connection closed)
  uint64_t requests = 0;          // well-formed request frames admitted
  uint64_t ops = 0;               // ops across admitted requests
  uint64_t responses = 0;         // response frames queued
  uint64_t retry_responses = 0;   // responses flagged retry-after
  uint64_t pipeline_rejects = 0;  // requests bounced by max_pipeline
};

class KvServer {
 public:
  // The store must outlive the server and should be opened with
  // AsyncOptions::submit_retries > 0 (see header comment).
  KvServer(api::ShardedStore* store, const ServerOptions& options);
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;
  ~KvServer();  // Stop()

  // Binds the configured listeners and starts the event loop. False on
  // bind/listen failure (*error describes it; no thread is left running).
  bool Start(std::string* error = nullptr);

  // Stops accepting, waits for every submitted batch's completion
  // callback, flushes what can be flushed, closes all connections, and
  // joins the loop. Idempotent.
  void Stop();

  // Bound TCP port (after Start() with tcp enabled).
  uint16_t tcp_port() const { return bound_tcp_port_; }
  const std::string& uds_path() const { return options_.uds_path; }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Request;

  bool ListenUds(std::string* error);
  bool ListenTcp(std::string* error);
  void LoopThread();
  void AcceptFrom(int listen_fd);
  void ReadConn(const std::shared_ptr<Conn>& conn);
  // One decoded frame; false = protocol error, close the connection.
  bool HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void RunAdmission();
  void SubmitRequest(std::shared_ptr<Request> request);
  void OnRequestDone(const std::shared_ptr<Request>& request);
  // Immediate failure response without touching the store (pipeline cap).
  void RespondAllFailed(const std::shared_ptr<Conn>& conn, uint64_t id,
                        size_t count, api::Status status);
  void QueueResponse(const std::shared_ptr<Conn>& conn,
                     const uint8_t* data, size_t len);
  void NotifyWritable(const std::shared_ptr<Conn>& conn);
  // Event-loop thread only: writes as much of conn->out as the socket
  // accepts, arming EPOLLOUT on a partial write.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void Wake();

  api::ShardedStore* store_;
  ServerOptions options_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  uint16_t bound_tcp_port_ = 0;

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Batches submitted whose completion callback has not finished yet;
  // Stop() drains to zero before tearing the connections down.
  std::atomic<uint64_t> in_flight_{0};

  // Event-loop-private state (no locking): fd -> connection, plus the
  // DRR ring of connections with admitted-but-unsubmitted requests.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::deque<std::shared_ptr<Conn>> drr_ring_;

  // Completion-to-loop handoff: callbacks append the connection here and
  // signal wake_fd_; the loop flushes them.
  std::mutex wake_mu_;
  std::vector<std::shared_ptr<Conn>> wake_conns_;

  // stats (relaxed increments, snapshot reads)
  std::atomic<uint64_t> s_accepted_{0}, s_closed_{0}, s_bad_{0},
      s_requests_{0}, s_ops_{0}, s_responses_{0}, s_retry_{0},
      s_pipeline_rejects_{0};
};

}  // namespace dash::net

#endif  // DASH_PM_NET_KV_SERVER_H_
