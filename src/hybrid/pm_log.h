// Per-thread append-only PM value log for the hybrid DRAM-PM tier.
//
// The hybrid index (hybrid_table.h) keeps its entire hash structure —
// directory, segments, fingerprint buckets, stash — in ordinary DRAM and
// stores only the KV payload on PM, following the Halo/HESH hybrid idiom:
// every DRAM slot holds an 8-byte PmOffset handle into this log instead of
// the value itself. The log is therefore the *only* persistent state of
// the index; recovery rebuilds the DRAM structure by scanning it.
//
// Layout. The log is a set of `lanes` (appenders pick a lane by dense
// thread id, so concurrent writers rarely share a lane lock). Each lane is
// a persistent chain of fixed-size chunks hanging off the table root
// (lane_heads[]); a chunk is a 64-byte header plus an array of 32-byte
// records:
//
//   LogRecord { key, value, meta, pad }     meta = (seq << 1) | tombstone
//
// `meta` is the atomic commit word: 0 means the slot is free (or an append
// tore before publication), any non-zero value carries a global sequence
// number that totally orders committed records for the same key across
// lanes. An append writes key+value, persists them, then publishes meta
// with a single 8-byte atomic persist — the same publication discipline as
// CcehSlot. Updates and deletes append a new record (a tombstone for
// deletes) with a higher seq; rebuild keeps the highest-seq record per key
// and a winning tombstone makes the key absent.
//
// Reclamation. Superseded records are zeroed (meta -> 0, crash-atomic) and
// their slots pushed onto a volatile per-lane free list for reuse — but
// only after an epoch grace period, because an optimistic reader may still
// dereference the old handle (the table retires {old, tombstone} pairs via
// the shared EpochManager). Zeroing order matters for delete pairs: the
// superseded record is zeroed strictly before its tombstone, so a crash
// between the two never resurrects the key.
//
// Preallocation. Appends draw slots from the lane free list; the list is
// refilled by linking a fresh chunk when it crosses a low-water mark, so
// the allocator runs once per `records_per_chunk` appends and the common
// append never touches it (the Halo "preallocated allocator" discipline,
// amortized rather than threaded). Chunks are reserved zeroed and
// activated directly into the lane chain (allocator reserve/activate
// protocol), so they are crash-reachable from the moment they hold data
// and never leak.
//
// Compaction. Long-lived update churn strands zeroed slots across old
// chunks, so chains grow even when the live set does not. The table runs
// an online per-lane compaction pass (HybridTable::Compact): it claims the
// oldest chunk of a lane as the *retiring* victim, purges the victim's
// slots from the free list (after which no new append can land there),
// relocates every still-live record to a fresh slot with a new seq, and —
// once every record in the victim is zeroed — unlinks the chunk from the
// chain and returns it to the allocator. The unlink and the persistent
// retire-buffer entry commit in one MiniTx, so a crash at any instant
// leaves the chunk either still linked (its records all free — rebuild
// skips them) or owned by the retire buffer (pool open recovery frees it);
// it is never leaked and never doubly owned.
//
// A stale handle remains safe to dereference even though chunks are now
// freed: a record is only zeroed after an epoch grace period (no reader
// can still hold its handle), the free-list purge means the handle is
// never reissued, and a chunk is only unlinked once *all* of its records
// are zeroed — so by the time a chunk's memory returns to the allocator,
// no optimistic reader can reach it. Readers that lose the race to a
// relocation revalidate and retry exactly as for updates: the handle they
// chased was old-committed or freed, never torn.

#ifndef DASH_PM_HYBRID_PM_LOG_H_
#define DASH_PM_HYBRID_PM_LOG_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/lock.h"
#include "util/thread_id.h"

namespace dash::hybrid {

// Upper bound on log lanes (root-area array size). The actual lane count
// is a creation-time option (power of two <= kMaxLanes).
inline constexpr uint32_t kMaxLanes = 32;

// PmOffset handle format: [lane:6 | pool byte offset:58]. Lane bits let
// the reclaim path route a freed slot back to its owning lane without a
// reverse map; 58 offset bits cover any pool this emulation can map.
inline constexpr uint32_t kLaneShift = 58;
inline constexpr uint64_t kOffsetMask = (1ull << kLaneShift) - 1;

inline uint64_t EncodeHandle(uint32_t lane, uint64_t pool_off) {
  return (static_cast<uint64_t>(lane) << kLaneShift) | pool_off;
}
inline uint32_t HandleLane(uint64_t handle) {
  return static_cast<uint32_t>(handle >> kLaneShift);
}
inline uint64_t HandleOffset(uint64_t handle) { return handle & kOffsetMask; }

// One PM-resident value record. Fields that race optimistic readers are
// accessed through 8-byte atomics (the snapshot/revalidate protocol
// discards stale *logical* states; atomics keep the loads untorn and
// TSan-clean).
struct LogRecord {
  uint64_t key;    // stored key word (inline key or VarKey*); record-owned
  uint64_t value;
  uint64_t meta;   // (seq << 1) | tombstone; 0 = free / unpublished
  uint64_t pad;

  uint64_t LoadKeyAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&key)->load(
        std::memory_order_acquire);
  }
  uint64_t LoadValueAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&value)->load(
        std::memory_order_acquire);
  }
  uint64_t LoadMetaAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&meta)->load(
        std::memory_order_acquire);
  }
  void StoreKeyRelaxed(uint64_t k) {
    reinterpret_cast<std::atomic<uint64_t>*>(&key)->store(
        k, std::memory_order_relaxed);
  }
  void StoreValueRelaxed(uint64_t v) {
    reinterpret_cast<std::atomic<uint64_t>*>(&value)->store(
        v, std::memory_order_relaxed);
  }
  uint64_t* meta_word() { return &meta; }

  static bool IsTombstone(uint64_t meta_word) { return (meta_word & 1) != 0; }
  static uint64_t Seq(uint64_t meta_word) { return meta_word >> 1; }
};
static_assert(sizeof(LogRecord) == 32);

// Chunk header (one cacheline), followed by `num_records` LogRecords.
struct LogChunk {
  // Pointer to the next chunk in the lane (0 = tail), as published by
  // PmAllocator::Activate. Raw pointers are stable across reopens: the
  // pool remaps at the base address recorded in its header, the same
  // idiom as the Dash tables' persisted segment pointers.
  uint64_t next;
  uint32_t num_records;
  uint32_t pad32;
  uint8_t pad[48];

  LogRecord* record(uint32_t i) {
    return reinterpret_cast<LogRecord*>(this + 1) + i;
  }
  const LogRecord* record(uint32_t i) const {
    return reinterpret_cast<const LogRecord*>(this + 1) + i;
  }
  static size_t AllocSize(uint32_t n) {
    return sizeof(LogChunk) + static_cast<size_t>(n) * sizeof(LogRecord);
  }
};
static_assert(sizeof(LogChunk) == 64);

struct LogStats {
  uint64_t chunks = 0;
  uint64_t free_slots = 0;
  uint64_t chunk_bytes = 0;
  // Compaction telemetry: free slots known to be reclaimed garbage (vs.
  // never-used tail slack), the worst per-lane dead ratio, and cumulative
  // compaction work since open.
  uint64_t dead_slots = 0;
  double max_dead_ratio = 0.0;
  uint64_t compactions = 0;        // lane-rewrite rounds begun
  uint64_t chunks_reclaimed = 0;   // drained chunks returned to allocator
  uint64_t bytes_rewritten = 0;    // live-record bytes copied by compaction
};

// Volatile front-end over the persistent lane chains. One instance per
// open hybrid table; `lane_heads` points into the table's root area.
class HybridLog {
 public:
  HybridLog(pmem::PmPool* pool, uint64_t* lane_heads, uint32_t lanes,
            uint32_t records_per_chunk)
      : pool_(pool),
        alloc_(&pool->allocator()),
        lane_heads_(lane_heads),
        lane_mask_(lanes - 1),
        records_per_chunk_(records_per_chunk),
        low_water_(records_per_chunk / 4 < 64 ? records_per_chunk / 4 : 64),
        lanes_(lanes) {}

  HybridLog(const HybridLog&) = delete;
  HybridLog& operator=(const HybridLog&) = delete;

  // Appends a committed record and returns its encoded handle, or 0 when
  // the pool is out of memory. `stored_key` ownership transfers to the
  // record (FreeStored happens when the record is zeroed).
  uint64_t Append(uint64_t stored_key, uint64_t value, bool tombstone) {
    const uint32_t li = util::ThreadId() & lane_mask_;
    Lane& lane = lanes_state_[li];
    uint64_t handle = 0;
    {
      util::SpinLockGuard g(lane.lock);
      // Low-water refill: link the next chunk while slots remain, so the
      // allocator never sits on the append critical path. Exactly-at-mark
      // (not <=) keeps a failed reserve from being retried every append.
      if (lane.free.size() == low_water_ || lane.free.empty()) {
        Refill(li, lane);
      }
      if (lane.free.empty()) return 0;
      handle = PopFree(lane);
      lane.inflight.fetch_add(1, std::memory_order_relaxed);
    }
    LogRecord* rec = Record(handle);
    rec->StoreKeyRelaxed(stored_key);
    rec->StoreValueRelaxed(value);
    pmem::Persist(rec, 2 * sizeof(uint64_t));
    CRASH_POINT("hybrid_append_after_data");
    const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    pmem::AtomicPersist64(rec->meta_word(),
                          (seq << 1) | (tombstone ? 1ull : 0ull));
    // Volatile per-lane high-water mark of committed seqs (CAS max:
    // threads hashing to the same lane publish outside the lane lock).
    // Checkpoints snapshot these as the bounded-staleness frontier.
    uint64_t wm = lane_watermarks_[li].load(std::memory_order_relaxed);
    while (wm < seq && !lane_watermarks_[li].compare_exchange_weak(
                           wm, seq, std::memory_order_release,
                           std::memory_order_relaxed)) {
    }
    // Release pairs with FinishCompactChunk's acquire: once it observes
    // inflight == 0, every published meta store is visible.
    lane.inflight.fetch_sub(1, std::memory_order_release);
    CRASH_POINT("hybrid_append_after_publish");
    return handle;
  }

  // Compaction copy-out: appends an already-committed record's payload to
  // a fresh slot of the *same* lane and returns the new handle (0 = out
  // of memory). Identical publication protocol to Append — the copy gets
  // a fresh seq above every snapshotted checkpoint watermark, which is
  // what keeps the trusted-bitmap replay correct when compaction rewrites
  // a record that sat below a lane watermark.
  uint64_t AppendCompacted(uint32_t li, uint64_t stored_key, uint64_t value) {
    Lane& lane = lanes_state_[li];
    uint64_t handle = 0;
    {
      util::SpinLockGuard g(lane.lock);
      if (lane.free.size() == low_water_ || lane.free.empty()) {
        Refill(li, lane);
      }
      if (lane.free.empty()) return 0;
      handle = PopFree(lane);
      lane.inflight.fetch_add(1, std::memory_order_relaxed);
    }
    CRASH_POINT("hybrid_compact_after_reserve");
    LogRecord* rec = Record(handle);
    rec->StoreKeyRelaxed(stored_key);
    rec->StoreValueRelaxed(value);
    pmem::Persist(rec, 2 * sizeof(uint64_t));
    CRASH_POINT("hybrid_compact_after_copy");
    const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    pmem::AtomicPersist64(rec->meta_word(), seq << 1);
    uint64_t wm = lane_watermarks_[li].load(std::memory_order_relaxed);
    while (wm < seq && !lane_watermarks_[li].compare_exchange_weak(
                           wm, seq, std::memory_order_release,
                           std::memory_order_relaxed)) {
    }
    lane.inflight.fetch_sub(1, std::memory_order_release);
    bytes_rewritten_.fetch_add(sizeof(LogRecord), std::memory_order_relaxed);
    return handle;
  }

  LogRecord* Record(uint64_t handle) const {
    return pool_->FromOffset<LogRecord>(HandleOffset(handle));
  }

  // Crash-atomically un-commits a record (rebuild then treats the slot as
  // free). The caller owns ordering constraints (a delete's superseded
  // record before its tombstone) and key-blob disposal.
  void ZeroRecord(uint64_t handle) {
    pmem::AtomicPersist64(Record(handle)->meta_word(), 0);
  }

  // Returns a zeroed slot to its lane free list. Only call after the
  // epoch grace period (no reader can still hold the handle). Slots that
  // land inside the lane's retiring chunk are *not* pushed back — they
  // evaporate with the chunk once compaction unlinks it. Every recycled
  // slot is tagged dead so the compaction trigger can tell reclaimed
  // garbage from never-used tail slack.
  void ReleaseSlot(uint64_t handle) {
    Lane& lane = lanes_state_[HandleLane(handle)];
    const uint64_t off = HandleOffset(handle);
    util::SpinLockGuard g(lane.lock);
    if (lane.retiring != nullptr && off >= lane.retiring_begin &&
        off < lane.retiring_end) {
      return;
    }
    lane.free.push_back(handle | kFreeDeadMark);
    ++lane.dead;
  }

  // Seeds a lane's dead-slot estimate without free-list entries — the
  // checkpoint-load path reports the untrusted slots it dropped per lane,
  // so a reopen starts with honest ratios instead of zeros. The estimate
  // is clamped to the free-list size wherever it is read, so an
  // over-seeded lane self-corrects as slots are reused.
  void SeedDead(uint32_t li, uint64_t n) {
    Lane& lane = lanes_state_[li];
    util::SpinLockGuard g(lane.lock);
    lane.dead += n;
  }

  // Fraction of a lane's slot capacity that is reclaimed garbage.
  double DeadRatio(uint32_t li) const {
    Lane& lane = lanes_state_[li];
    util::SpinLockGuard g(lane.lock);
    const uint64_t cap = lane.chunks * records_per_chunk_;
    if (cap == 0) return 0.0;
    const uint64_t dead =
        lane.dead < lane.free.size() ? lane.dead : lane.free.size();
    return static_cast<double>(dead) / static_cast<double>(cap);
  }

  // Trigger predicate: compaction needs at least two chunks (the tail is
  // the append frontier and is never the victim) and a dead ratio at or
  // above the configured trigger.
  bool ShouldCompact(uint32_t li, double trigger) const {
    if (trigger <= 0.0) return false;
    {
      util::SpinLockGuard g(lanes_state_[li].lock);
      if (lanes_state_[li].chunks < 2) return false;
    }
    return DeadRatio(li) >= trigger;
  }

  bool HasRetiring(uint32_t li) const {
    Lane& lane = lanes_state_[li];
    util::SpinLockGuard g(lane.lock);
    return lane.retiring != nullptr;
  }

  // The victim chunk's record range (pool offsets; 0/0 when none). Stable
  // while the caller holds the lane's compaction lock, so relocation
  // walks can test handles with plain arithmetic.
  void RetiringRange(uint32_t li, uint64_t* begin, uint64_t* end) const {
    Lane& lane = lanes_state_[li];
    util::SpinLockGuard g(lane.lock);
    *begin = lane.retiring_begin;
    *end = lane.retiring_end;
  }

  // Single-compactor gate per lane: Begin/ForEachRetiring/Finish assume
  // one driver, so concurrent Compact() callers skip a busy lane.
  bool TryLockCompaction(uint32_t li) {
    return !lanes_state_[li].compact_busy.exchange(true,
                                                   std::memory_order_acquire);
  }
  void UnlockCompaction(uint32_t li) {
    lanes_state_[li].compact_busy.store(false, std::memory_order_release);
  }

  // Claims the lane's oldest chunk as the retiring victim (idempotent —
  // returns true while a victim is in flight). Purging the victim's slots
  // from the free list is the step that makes draining monotone: no
  // future append can land in the chunk, so its live-record count only
  // falls. Returns false when the lane has no eligible victim.
  bool BeginCompactChunk(uint32_t li) {
    Lane& lane = lanes_state_[li];
    util::SpinLockGuard g(lane.lock);
    if (lane.retiring != nullptr) return true;
    auto* head = reinterpret_cast<LogChunk*>(LaneHead(li));
    if (head == nullptr || head == lane.tail) return false;
    const uint64_t begin = pool_->ToOffset(head) + sizeof(LogChunk);
    const uint64_t end =
        begin + static_cast<uint64_t>(head->num_records) * sizeof(LogRecord);
    size_t w = 0;
    for (size_t r = 0; r < lane.free.size(); ++r) {
      const uint64_t e = lane.free[r];
      const uint64_t off = HandleOffset(e & ~kFreeDeadMark);
      if (off >= begin && off < end) {
        if ((e & kFreeDeadMark) != 0 && lane.dead > 0) --lane.dead;
        continue;
      }
      lane.free[w++] = e;
    }
    lane.free.resize(w);
    lane.retiring = head;
    lane.retiring_begin = begin;
    lane.retiring_end = end;
    compactions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Unlinks and frees the drained victim (compaction-lock holder only).
  // Returns false while records are still live or an append that popped
  // its slot before the purge is still publishing — retry on a later
  // pass. The unlink and the persistent retire entry commit in one
  // MiniTx; pool open recovery frees the block if we crash before
  // CompleteRetire, so the chunk is never leaked.
  bool FinishCompactChunk(uint32_t li) {
    Lane& lane = lanes_state_[li];
    LogChunk* victim = lane.retiring;
    if (victim == nullptr) return false;
    if (lane.inflight.load(std::memory_order_acquire) != 0) return false;
    for (uint32_t i = 0; i < victim->num_records; ++i) {
      if (victim->record(i)->LoadMetaAcquire() != 0) return false;
    }
    size_t slot;
    {
      util::SpinLockGuard g(lane.lock);
      pmem::MiniTx tx(pool_);
      slot = pool_->StageRetire(&tx, victim);
      if (slot >= pmem::RetireBuffer::kSlots) return false;  // buffer full
      // The victim is still the lane head: only compaction removes head
      // chunks and this lane's compaction is single-threaded.
      tx.Stage(&lane_heads_[li], victim->next);
      tx.Commit();
      lane.retiring = nullptr;
      lane.retiring_begin = lane.retiring_end = 0;
      --lane.chunks;
    }
    CRASH_POINT("hybrid_compact_after_retire");
    pool_->CompleteRetire(slot);
    chunks_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Recovery scan of one lane (at open; lanes are disjoint, so distinct
  // lanes may be scanned by concurrent worker threads): resets the lane's
  // volatile state, walks its chain, rebuilds the free list from meta==0
  // slots, restores the lane watermark, and calls fn(record, handle,
  // meta) for every committed record. Returns the lane's max committed
  // seq; the caller merges and hands the global max to NoteScannedSeq.
  // PM read cost is accounted per record line.
  template <typename Fn>
  uint64_t ScanLane(uint32_t li, Fn fn) {
    Lane& lane = lanes_state_[li];
    lane.free.clear();
    lane.tail = nullptr;
    lane.dead = 0;
    lane.chunks = 0;
    lane.retiring = nullptr;
    lane.retiring_begin = lane.retiring_end = 0;
    lane.inflight.store(0, std::memory_order_relaxed);
    uint64_t max_seq = 0;
    for (auto* chunk = reinterpret_cast<LogChunk*>(LaneHead(li));
         chunk != nullptr;
         chunk = reinterpret_cast<LogChunk*>(chunk->next)) {
      pmem::ReadProbe(chunk,
                      LogChunk::AllocSize(chunk->num_records) / 64);
      lane.tail = chunk;
      ++lane.chunks;
      const uint64_t base = pool_->ToOffset(chunk) + sizeof(LogChunk);
      for (uint32_t i = 0; i < chunk->num_records; ++i) {
        LogRecord* rec = chunk->record(i);
        const uint64_t handle =
            EncodeHandle(li, base + static_cast<uint64_t>(i) *
                                        sizeof(LogRecord));
        const uint64_t meta = rec->meta;
        if (meta == 0) {
          lane.free.push_back(handle);
        } else {
          if (LogRecord::Seq(meta) > max_seq) max_seq = LogRecord::Seq(meta);
          fn(rec, handle, meta);
        }
      }
    }
    lane_watermarks_[li].store(max_seq, std::memory_order_release);
    return max_seq;
  }

  // Single-threaded whole-log scan (the serial recovery path).
  template <typename Fn>
  void Scan(Fn fn) {
    uint64_t max_seq = 0;
    for (uint32_t li = 0; li <= lane_mask_; ++li) {
      const uint64_t lane_max = ScanLane(li, fn);
      if (lane_max > max_seq) max_seq = lane_max;
    }
    NoteScannedSeq(max_seq);
  }

  // Restores the sequence counter after a scan (parallel scans call this
  // once with the merged per-lane max).
  void NoteScannedSeq(uint64_t max_seq) {
    if (max_seq >= next_seq_.load(std::memory_order_relaxed)) {
      next_seq_.store(max_seq + 1, std::memory_order_relaxed);
    }
  }

  // Checkpoint support: the per-lane committed-seq frontier. Taken
  // BEFORE the segment copies — with the globally monotone seq counter,
  // any record published after a copy has a seq above every snapshotted
  // watermark, so "replay everything past the watermarks" cannot lose a
  // record (over-replay of records already copied is idempotent).
  void SnapshotWatermarks(uint64_t out[kMaxLanes]) const {
    for (uint32_t li = 0; li < kMaxLanes; ++li) {
      out[li] = li < lanes_
                    ? lane_watermarks_[li].load(std::memory_order_acquire)
                    : 0;
    }
  }

  uint64_t NextSeqRelaxed() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  LogStats Stats() const {
    LogStats s;
    for (uint32_t li = 0; li <= lane_mask_; ++li) {
      Lane& lane = lanes_state_[li];
      util::SpinLockGuard g(lane.lock);
      s.chunks += lane.chunks;
      s.chunk_bytes += lane.chunks * LogChunk::AllocSize(records_per_chunk_);
      s.free_slots += lane.free.size();
      const uint64_t dead =
          lane.dead < lane.free.size() ? lane.dead : lane.free.size();
      s.dead_slots += dead;
      const uint64_t cap = lane.chunks * records_per_chunk_;
      if (cap != 0) {
        const double ratio =
            static_cast<double>(dead) / static_cast<double>(cap);
        if (ratio > s.max_dead_ratio) s.max_dead_ratio = ratio;
      }
    }
    s.compactions = compactions_.load(std::memory_order_relaxed);
    s.chunks_reclaimed = chunks_reclaimed_.load(std::memory_order_relaxed);
    s.bytes_rewritten = bytes_rewritten_.load(std::memory_order_relaxed);
    return s;
  }

  // Structural sanity of the persistent chains: every chunk lies inside
  // the pool and carries the configured record count. Takes each lane
  // lock for the walk so a concurrent compaction cannot unlink a chunk
  // under the iterator.
  bool VerifyChains() const {
    for (uint32_t li = 0; li <= lane_mask_; ++li) {
      util::SpinLockGuard g(lanes_state_[li].lock);
      uint64_t chunks = 0;
      for (const auto* chunk = reinterpret_cast<const LogChunk*>(LaneHead(li));
           chunk != nullptr;
           chunk = reinterpret_cast<const LogChunk*>(chunk->next)) {
        if (!pool_->Contains(chunk) ||
            !pool_->Contains(reinterpret_cast<const char*>(chunk) +
                             LogChunk::AllocSize(chunk->num_records) - 1)) {
          return false;
        }
        if (chunk->num_records != records_per_chunk_) return false;
        if (++chunks > (1ull << 32)) return false;  // cycle guard
      }
    }
    return true;
  }

  // True when `handle` decodes to a record inside a mapped chunk region.
  bool ContainsHandle(uint64_t handle) const {
    if (HandleLane(handle) > lane_mask_) return false;
    const uint64_t off = HandleOffset(handle);
    if (off == 0) return false;
    const void* p = pool_->FromOffset<void>(off);
    return pool_->Contains(p) &&
           pool_->Contains(static_cast<const char*>(p) + sizeof(LogRecord) - 1);
  }

  uint32_t lanes() const { return lanes_; }
  uint32_t records_per_chunk() const { return records_per_chunk_; }

 private:
  // Tag bit on free-list ENTRIES (never on handles handed out): marks a
  // slot recycled after holding a committed record, as opposed to
  // never-used chunk slack. Bit 57 sits atop the offset field — pools are
  // far smaller than 2^57 bytes, so it cannot collide with a real offset.
  static constexpr uint64_t kFreeDeadMark = 1ull << 57;

  struct Lane {
    util::SpinLock lock;
    std::vector<uint64_t> free;  // encoded handles (| kFreeDeadMark), LIFO
    LogChunk* tail = nullptr;
    // Dead-slot estimate (marked free entries + checkpoint-load seed) and
    // chunk count, both under `lock`.
    uint64_t dead = 0;
    uint64_t chunks = 0;
    // Compaction victim: the chunk being drained and its record range
    // (pool offsets). Non-null means appends skip these slots forever.
    LogChunk* retiring = nullptr;
    uint64_t retiring_begin = 0;
    uint64_t retiring_end = 0;
    // Appends between slot pop and meta publish; FinishCompactChunk
    // waits for zero so a pre-purge pop can't publish into a freed chunk.
    std::atomic<uint32_t> inflight{0};
    std::atomic<bool> compact_busy{false};
  };

  uint64_t LaneHead(uint32_t li) const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&lane_heads_[li])
        ->load(std::memory_order_acquire);
  }

  // Pops a free slot with lane.lock held, folding the dead tag back into
  // the accounting.
  static uint64_t PopFree(Lane& lane) {
    uint64_t handle = lane.free.back();
    lane.free.pop_back();
    if ((handle & kFreeDeadMark) != 0) {
      handle &= ~kFreeDeadMark;
      if (lane.dead > 0) --lane.dead;
    }
    return handle;
  }

  // Links one fresh chunk at the lane tail and refills the free list.
  // Called with lane.lock held; the reserve/activate protocol makes the
  // chunk crash-reachable (or reclaimed by allocator open recovery) at
  // every point.
  bool Refill(uint32_t li, Lane& lane) {
    auto r = alloc_->Reserve(LogChunk::AllocSize(records_per_chunk_));
    if (!r.valid()) return false;
    auto* chunk = static_cast<LogChunk*>(r.ptr);
    chunk->next = 0;
    chunk->num_records = records_per_chunk_;
    pmem::Persist(chunk, sizeof(LogChunk));
    CRASH_POINT("hybrid_chunk_after_reserve");
    uint64_t* dest = lane.tail != nullptr ? &lane.tail->next : &lane_heads_[li];
    alloc_->Activate(r, dest);
    CRASH_POINT("hybrid_chunk_after_activate");
    lane.tail = chunk;
    ++lane.chunks;
    const uint64_t base = pool_->ToOffset(chunk) + sizeof(LogChunk);
    // Reverse push: the LIFO then hands out slots in ascending order.
    for (uint32_t i = records_per_chunk_; i > 0; --i) {
      lane.free.push_back(EncodeHandle(
          li, base + static_cast<uint64_t>(i - 1) * sizeof(LogRecord)));
    }
    return true;
  }

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  uint64_t* lane_heads_;  // root-area array, kMaxLanes entries
  const uint32_t lane_mask_;
  const uint32_t records_per_chunk_;
  const uint32_t low_water_;
  const uint32_t lanes_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> lane_watermarks_[kMaxLanes]{};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> chunks_reclaimed_{0};
  std::atomic<uint64_t> bytes_rewritten_{0};
  mutable Lane lanes_state_[kMaxLanes];  // mutable: Stats() takes lane locks
};

}  // namespace dash::hybrid

#endif  // DASH_PM_HYBRID_PM_LOG_H_
