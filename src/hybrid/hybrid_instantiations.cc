// Explicit instantiations for the two key policies, mirroring cceh.cc.

#include "hybrid/hybrid_table.h"

namespace dash::hybrid {

template class HybridTable<IntKeyPolicy>;
template class HybridTable<VarKeyPolicy>;

}  // namespace dash::hybrid
