// Hybrid DRAM-PM tier (ROADMAP item 1): the entire hash structure —
// directory, segments, fingerprint buckets, stash — lives in ordinary
// DRAM; only the KV payload sits on PM, in the per-thread append-only log
// of pm_log.h, behind an 8-byte PmOffset handle stored in the DRAM slot.
// This is the Halo/HESH hybrid idiom (SNIPPETS.md): a search pays DRAM
// probes plus exactly ONE PM read (the value record), where the
// PM-resident tables (dash-eh/lh, CCEH, level) pay several PM reads per
// probe; writes pay one PM record append (16 bytes of data + an 8-byte
// atomic meta publish) instead of persisting bucket metadata in place.
//
// Concurrency mirrors the Dash §4.4 discipline already used by the other
// tables: one version lock per segment, exclusively held by writers;
// searches are lock-free snapshot/probe/revalidate. Because the structure
// is volatile, splits and directory doubling are pure DRAM operations —
// no mini-transactions, no persistence ordering; crash consistency is
// entirely the log's problem.
//
// Durability contract: an operation is durable when its log record's meta
// word is published (Append returns). Recovery (any open of an existing
// pool — the DRAM index always perished with the process) scans the log
// chains, keeps the highest-seq record per key (a winning tombstone makes
// the key absent), garbage-collects superseded records and spent
// tombstones, and re-inserts the winners. Every acked op was published
// before returning, so the rebuilt table equals the model exactly — the
// same exact-state contract the crash sweep checks for the PM tables.
//
// Reclamation: update/delete garbage (the superseded record, plus the
// tombstone once it is no longer needed for crash-ordering) is retired
// through the shared EpochManager and zeroed + returned to the lane free
// list after the grace period, because lock-free readers may still
// dereference the old handle. A delete zeroes the superseded record
// strictly before its tombstone so a crash between the two never
// resurrects the key.
//
// Compaction: slot recycling alone does not shrink chains — update churn
// strands dead slots across old chunks. Compact() (driven by the shard
// workers' idle path when DashOptions::compaction_trigger > 0) claims the
// oldest chunk of each lane whose dead ratio crosses the trigger, walks
// the index under segment locks and relocates every live record that
// sits in a victim (append a copy with a fresh seq, swing the slot's
// handle exactly like an update, epoch-retire the old record), then
// unlinks and frees the fully drained chunk. Optimistic readers chasing a
// stale handle revalidate and retry exactly as for updates; see pm_log.h
// for why a freed chunk can never be reached by a reader.

#ifndef DASH_PM_HYBRID_HYBRID_TABLE_H_
#define DASH_PM_HYBRID_HYBRID_TABLE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/op_status.h"
#include "epoch/epoch_manager.h"
#include "hybrid/pm_log.h"
#include "pmem/crash_point.h"
#include "pmem/index_persist.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/amac.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash::hybrid {

inline constexpr uint64_t kSlotsPerBucket = 8;
// Empty-slot marker. Key 0 is reserved at the API boundary (IsReservedKey)
// and a null VarKey pointer never names a live blob, so 0 is free in both
// key modes — same convention as CCEH.
inline constexpr uint64_t kEmptyKey = 0;
// Bucket meta bit: some key homed here overflowed to the segment stash.
// Sticky (never cleared on delete) — a false positive costs one extra
// DRAM stash scan, never a wrong answer.
inline constexpr uint64_t kStashHint = 1;

// SWAR fingerprint filter over the packed fps word: XOR against the
// broadcast fingerprint turns matching bytes to zero, then the classic
// has-zero-byte trick ((x - 0x01..) & ~x & 0x80..) lights bit 7 of every
// zero byte — one branch-free pass instead of eight byte extractions.
// The trick can light the byte directly above a match (borrow artifact);
// like any fingerprint collision, the key compare behind the filter
// absorbs that, and matches are never missed.
inline uint64_t MatchFps(uint64_t fps, uint8_t fp) {
  const uint64_t x = fps ^ (0x0101010101010101ull * fp);
  return (x - 0x0101010101010101ull) & ~x & 0x8080808080808080ull;
}

// One DRAM slot: stored key word + PmOffset handle of the live record.
// Invariant: slot.key == Record(slot.off)->key (same word, shared
// ownership of the VarKey blob in pointer mode). Optimistic readers probe
// without the segment lock, so racing fields go through 8-byte atomics.
struct HybridSlot {
  uint64_t key;
  uint64_t off;

  uint64_t LoadKeyAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&key)->load(
        std::memory_order_acquire);
  }
  uint64_t LoadOffAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&off)->load(
        std::memory_order_acquire);
  }
  void StoreKeyRelease(uint64_t k) {
    reinterpret_cast<std::atomic<uint64_t>*>(&key)->store(
        k, std::memory_order_release);
  }
  void StoreOffRelease(uint64_t o) {
    reinterpret_cast<std::atomic<uint64_t>*>(&off)->store(
        o, std::memory_order_release);
  }
};
static_assert(sizeof(HybridSlot) == 16);

// Bucket: one fingerprint byte per slot packed in a word (load once,
// filter eight slots — for pointer keys this is what keeps PM blob derefs
// off the miss path), a meta word for the stash hint, then the slots.
struct HybridBucket {
  uint64_t fps;
  uint64_t meta;
  HybridSlot slots[kSlotsPerBucket];

  uint64_t LoadFpsAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&fps)->load(
        std::memory_order_acquire);
  }
  void StoreFpsRelease(uint64_t f) {
    reinterpret_cast<std::atomic<uint64_t>*>(&fps)->store(
        f, std::memory_order_release);
  }
  uint64_t LoadMetaAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&meta)->load(
        std::memory_order_acquire);
  }
  // Writer-side helpers; callers hold the segment lock, so plain
  // read-modify-write through the atomic view is race-free.
  void SetFp(size_t s, uint8_t fp) {
    const uint64_t shift = 8 * s;
    StoreFpsRelease((LoadFpsAcquire() & ~(0xffull << shift)) |
                    (static_cast<uint64_t>(fp) << shift));
  }
  void SetStashHint() {
    reinterpret_cast<std::atomic<uint64_t>*>(&meta)->store(
        LoadMetaAcquire() | kStashHint, std::memory_order_release);
  }
};
static_assert(sizeof(HybridBucket) == 144);

// DRAM segment: version-locked header + buckets + stash slot array.
struct HybridSegment {
  util::VersionLock lock;  // 4 bytes
  uint32_t num_buckets = 0;
  uint32_t stash_slots = 0;
  uint32_t local_depth_ = 0;
  uint64_t pattern_ = 0;
  uint64_t pad = 0;

  static size_t AllocSize(uint32_t nb, uint32_t ss) {
    return sizeof(HybridSegment) + nb * sizeof(HybridBucket) +
           ss * sizeof(HybridSlot);
  }
  HybridBucket* bucket(uint32_t i) {
    return reinterpret_cast<HybridBucket*>(this + 1) + i;
  }
  HybridSlot* stash(uint32_t i) {
    return reinterpret_cast<HybridSlot*>(bucket(num_buckets)) + i;
  }
  uint32_t local_depth() const {
    return reinterpret_cast<const std::atomic<uint32_t>*>(&local_depth_)
        ->load(std::memory_order_acquire);
  }
  void SetLocalDepth(uint32_t d) {
    reinterpret_cast<std::atomic<uint32_t>*>(&local_depth_)->store(
        d, std::memory_order_release);
  }
  uint64_t PatternAcquire() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&pattern_)->load(
        std::memory_order_acquire);
  }
  void StorePatternRelease(uint64_t p) {
    reinterpret_cast<std::atomic<uint64_t>*>(&pattern_)->store(
        p, std::memory_order_release);
  }

  // Same addressing split as CCEH: MSBs pick the directory entry, bits
  // 8.. pick the bucket, the low byte is the fingerprint.
  static uint32_t BucketIndex(uint64_t hash, uint32_t num_buckets) {
    return static_cast<uint32_t>((hash >> 8) & (num_buckets - 1));
  }
  static uint8_t Fingerprint(uint64_t hash) {
    return static_cast<uint8_t>(hash & 0xff);
  }
};
static_assert(sizeof(HybridSegment) == 32);

// DRAM directory (CcehDirectory shape, minus persistence).
struct HybridDirectory {
  uint64_t global_depth;

  static size_t AllocSize(uint64_t depth) {
    return sizeof(HybridDirectory) + (1ull << depth) * sizeof(uint64_t);
  }
  std::atomic<uint64_t>* entries() {
    return reinterpret_cast<std::atomic<uint64_t>*>(this + 1);
  }
  HybridSegment* entry(uint64_t i) {
    return reinterpret_cast<HybridSegment*>(
        entries()[i].load(std::memory_order_acquire));
  }
  void SetEntry(uint64_t i, HybridSegment* seg) {
    entries()[i].store(reinterpret_cast<uint64_t>(seg),
                       std::memory_order_release);
  }
};

// Preallocated DRAM segment allocator (the Halo "preallocated" idiom
// applied to the volatile half): segments are carved from slabs and
// handed out from a free list, refilled a slab at a time at a low-water
// mark, so a split's allocation is a pop — slab growth is amortized and
// never involves the PM allocator.
class SegmentArena {
 public:
  SegmentArena(size_t seg_bytes, size_t prealloc)
      : seg_bytes_((seg_bytes + 63) & ~size_t{63}) {
    Refill(prealloc > kSlabSegments ? prealloc : kSlabSegments);
  }
  SegmentArena(const SegmentArena&) = delete;
  SegmentArena& operator=(const SegmentArena&) = delete;

  void* Get() {
    util::SpinLockGuard g(lock_);
    if (free_.size() <= kLowWater) Refill(kSlabSegments);
    void* p = free_.back();
    free_.pop_back();
    return p;
  }

 private:
  static constexpr size_t kSlabSegments = 16;
  static constexpr size_t kLowWater = 2;

  void Refill(size_t n) {
    auto slab = std::make_unique<char[]>(n * seg_bytes_ + 63);
    char* base = reinterpret_cast<char*>(
        (reinterpret_cast<uintptr_t>(slab.get()) + 63) & ~uintptr_t{63});
    for (size_t i = 0; i < n; ++i) free_.push_back(base + i * seg_bytes_);
    slabs_.push_back(std::move(slab));
  }

  const size_t seg_bytes_;
  util::SpinLock lock_;
  std::vector<void*> free_;
  std::vector<std::unique_ptr<char[]>> slabs_;
};

// Persistent root: everything recovery needs — the log geometry and the
// lane chain heads. The DRAM structure is deliberately absent.
struct HybridRoot {
  uint64_t initialized;
  uint8_t clean;
  uint8_t pad[7];
  uint32_t log_lanes;
  uint32_t records_per_chunk;
  uint64_t lane_heads[kMaxLanes];
  // Open-generation counter, bumped crash-atomically on every open of an
  // existing pool. A checkpoint is stamped with the generation of the run
  // that wrote it and is valid only while the root still carries that
  // generation: any later run may have recycled log slots the checkpoint
  // references, so its mere existence invalidates older checkpoints.
  // (Pools from before this field read 0 here — no valid checkpoint can
  // match, so they fall back to the scan, which is always correct.)
  uint64_t open_gen;
};

struct HybridOptions {
  uint32_t buckets_per_segment = 64;  // 64 x 144 B + stash ~ 9.5 KB DRAM
  uint32_t stash_slots = 16;
  uint32_t initial_depth = 1;
  uint32_t log_lanes = 16;            // power of two <= kMaxLanes
  uint32_t records_per_chunk = 2048;  // 64 KB PM chunks
  BatchPipeline batch_pipeline = BatchPipeline::kAmac;
  // Checkpoint file path; empty disables checkpoint write and load.
  std::string checkpoint_path;
  // Lane-parallel rebuild workers for the full-scan recovery path.
  uint32_t rebuild_threads = 1;
  // Per-lane dead-slot ratio at which Compact() rewrites a lane's oldest
  // chunk (0 disables compaction entirely).
  double compaction_trigger = 0.0;
};

struct HybridStats {
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  double load_factor = 0.0;
  uint64_t opt_retries = 0;
  uint64_t version_conflicts = 0;
  uint64_t write_locks = 0;
  uint64_t log_chunks = 0;
  uint64_t log_free_slots = 0;
  uint64_t log_chunk_bytes = 0;
  // Compaction telemetry: known-dead free slots, the worst per-lane dead
  // ratio, and cumulative compaction work since open.
  uint64_t log_dead_slots = 0;
  double compaction_dead_ratio = 0.0;
  uint64_t compactions = 0;
  uint64_t compaction_chunks_reclaimed = 0;
  uint64_t compaction_bytes_rewritten = 0;
  // Recovery provenance of this open (see RecoverySource).
  RecoverySource recovery_source = RecoverySource::kFresh;
  // Tail records replayed on top of the loaded checkpoint.
  uint64_t recovery_replayed = 0;
  // Committed seqs past the checkpoint frontier at open (0 when the
  // checkpoint was written at a quiesced close).
  uint64_t recovery_staleness = 0;
};

template <typename KP = IntKeyPolicy>
class HybridTable {
 public:
  using KeyArg = typename KP::KeyArg;

  HybridTable(pmem::PmPool* pool, epoch::EpochManager* epochs,
              const HybridOptions& options)
      : pool_(pool),
        alloc_(&pool->allocator()),
        epochs_(epochs),
        opts_(options),
        root_(static_cast<HybridRoot*>(pool->root())) {
    assert((opts_.buckets_per_segment & (opts_.buckets_per_segment - 1)) == 0);
    assert(opts_.stash_slots <= 64);
    assert(opts_.log_lanes != 0 && opts_.log_lanes <= kMaxLanes &&
           (opts_.log_lanes & (opts_.log_lanes - 1)) == 0);
    if (root_->initialized == 0) {
      CreateNew();
    } else {
      OpenExisting();
    }
  }

  HybridTable(const HybridTable&) = delete;
  HybridTable& operator=(const HybridTable&) = delete;

  ~HybridTable() {
    // Pending retirements capture `this`. A teardown without CloseClean
    // models a crash: drop them un-run (the log still holds the garbage;
    // the next open's rebuild GC collects it) instead of letting the
    // epoch manager's destructor drain into a dead table.
    epochs_->DiscardAll();
  }

  void CloseClean() {
    epochs_->DrainAll();
    // Quiesced checkpoint: the next open loads it and replays an empty
    // tail. Failure is harmless — the open falls back to the scan.
    WriteCheckpoint();
    root_->clean = 1;
    pmem::Persist(&root_->clean, 1);
  }

  // Serializes the DRAM index (directory + raw segment images) plus the
  // per-lane log watermarks into opts_.checkpoint_path, written
  // crash-consistently (temp + checksum + generation + rename). Safe to
  // call concurrently with readers and writers: watermarks are
  // snapshotted before any copy, each segment is copied under its
  // version lock, and a split racing the copy pass is detected via
  // split_epoch_ and retried. Returns false when disabled, when splits
  // kept invalidating the pass, or on I/O failure (the previous
  // checkpoint file, if any, stays intact).
  bool WriteCheckpoint() {
    if (opts_.checkpoint_path.empty()) return false;
    std::string payload;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (!SerializeIndex(&payload)) continue;  // split raced the copy
      pmem::CheckpointMeta meta;
      meta.kind_tag = CheckpointTag();
      meta.generation = root_->open_gen;
      return pmem::WriteCheckpointFile(opts_.checkpoint_path, meta,
                                       payload.data(), payload.size());
    }
    return false;
  }

  RecoverySource recovery_source() const { return recovery_source_; }

  // One bounded online compaction pass (safe to call concurrently with
  // all operations; concurrent passes skip each other's lanes). For every
  // lane whose dead ratio is at or above opts_.compaction_trigger, claims
  // the lane's oldest chunk, relocates its live records (one index walk
  // covers all claimed lanes), runs the epoch manager so the retired
  // originals get zeroed, and frees every chunk that fully drained.
  // Chunks still waiting on reader grace periods stay claimed and finish
  // on a later pass. Returns true when a chunk was reclaimed.
  bool Compact() {
    if (opts_.compaction_trigger <= 0.0) return false;
    bool claimed[kMaxLanes] = {};
    uint64_t begin[kMaxLanes] = {};
    uint64_t end[kMaxLanes] = {};
    uint32_t active = 0;
    for (uint32_t li = 0; li < opts_.log_lanes; ++li) {
      if (!log_->TryLockCompaction(li)) continue;
      if ((log_->HasRetiring(li) ||
           log_->ShouldCompact(li, opts_.compaction_trigger)) &&
          log_->BeginCompactChunk(li)) {
        claimed[li] = true;
        log_->RetiringRange(li, &begin[li], &end[li]);
        ++active;
      } else {
        log_->UnlockCompaction(li);
      }
    }
    if (active == 0) return false;
    RelocateVictims(claimed, begin, end);
    // Drain: the relocations' retired originals zero after a grace
    // period; a few advance attempts usually suffice when no reader is
    // pinned. Whatever stays live finishes on a later pass.
    bool progressed = false;
    for (int attempt = 0; attempt < 4; ++attempt) {
      epochs_->TryAdvanceAndReclaim();
      bool pending = false;
      for (uint32_t li = 0; li < opts_.log_lanes; ++li) {
        if (!claimed[li] || !log_->HasRetiring(li)) continue;
        if (log_->FinishCompactChunk(li)) {
          progressed = true;
        } else {
          pending = true;
        }
      }
      if (!pending) break;
    }
    for (uint32_t li = 0; li < opts_.log_lanes; ++li) {
      if (claimed[li]) log_->UnlockCompaction(li);
    }
    return progressed;
  }

  OpStatus Insert(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return InsertWithHash(key, value, h);
  }

  OpStatus Search(KeyArg key, uint64_t* out) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return SearchWithHash(key, h, out);
  }

  OpStatus Delete(KeyArg key) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return DeleteWithHash(key, h);
  }

  OpStatus Update(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return UpdateWithHash(key, value, h);
  }

  // ---- batched operations (engines mirror CCEH; see cceh.h) ----

  void MultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacMultiSearch(keys, count, values, statuses);
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/false,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = SearchWithHash(key, h, &values[i]);
                 });
  }

  void MultiInsert(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = InsertWithHash(key, values[i], h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = InsertWithHash(key, values[i], h);
                 });
  }

  void MultiUpdate(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = UpdateWithHash(key, values[i], h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = UpdateWithHash(key, values[i], h);
                 });
  }

  void MultiDelete(const KeyArg* keys, size_t count, OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, [&](size_t i, KeyArg key, uint64_t h) {
        statuses[i] = DeleteWithHash(key, h);
      });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = DeleteWithHash(key, h);
                 });
  }

  void set_batch_pipeline(BatchPipeline p) { opts_.batch_pipeline = p; }

  void PrefetchBatch(const KeyArg* keys, size_t count, bool for_write) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
    }
  }

  uint64_t global_depth() const { return Dir()->global_depth; }

  template <typename Fn>
  void ForEachSegment(Fn fn) const {
    HybridDirectory* dir = Dir();
    const uint64_t n = 1ull << dir->global_depth;
    uint64_t i = 0;
    while (i < n) {
      HybridSegment* seg = dir->entry(i);
      fn(seg);
      i += 1ull << (dir->global_depth - seg->local_depth());
    }
  }

  HybridStats Stats() const {
    HybridStats stats;
    ForEachSegment([&](HybridSegment* seg) {
      ++stats.segments;
      stats.capacity_slots +=
          static_cast<uint64_t>(seg->num_buckets) * kSlotsPerBucket +
          seg->stash_slots;
      for (uint32_t b = 0; b < seg->num_buckets; ++b) {
        for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
          if (seg->bucket(b)->slots[s].LoadKeyAcquire() != kEmptyKey) {
            ++stats.records;
          }
        }
      }
      for (uint32_t s = 0; s < seg->stash_slots; ++s) {
        if (seg->stash(s)->LoadKeyAcquire() != kEmptyKey) ++stats.records;
      }
    });
    stats.load_factor = stats.capacity_slots == 0
                            ? 0.0
                            : static_cast<double>(stats.records) /
                                  static_cast<double>(stats.capacity_slots);
    stats.opt_retries = lock_stats_.TotalRetries();
    stats.version_conflicts = lock_stats_.TotalConflicts();
    stats.write_locks = lock_stats_.TotalWriteLocks();
    const LogStats ls = log_->Stats();
    stats.log_chunks = ls.chunks;
    stats.log_free_slots = ls.free_slots;
    stats.log_chunk_bytes = ls.chunk_bytes;
    stats.log_dead_slots = ls.dead_slots;
    stats.compaction_dead_ratio = ls.max_dead_ratio;
    stats.compactions = ls.compactions;
    stats.compaction_chunks_reclaimed = ls.chunks_reclaimed;
    stats.compaction_bytes_rewritten = ls.bytes_rewritten;
    stats.recovery_source = recovery_source_;
    stats.recovery_replayed = replayed_records_;
    stats.recovery_staleness = recovery_staleness_;
    return stats;
  }

  uint64_t Size() const { return Stats().records; }
  double LoadFactor() const { return Stats().load_factor; }

  // Structural invariant check at a quiescent point: directory coverage
  // runs are aligned and patterns match position (as for CCEH), every
  // occupied slot's handle decodes into a mapped log chunk, the record it
  // names is committed, non-tombstone, and carries the same stored key
  // word, the fingerprint byte matches, the home bucket is right, and the
  // persistent lane chains are intact. Read-only.
  bool VerifyStructure() const {
    HybridDirectory* dir = Dir();
    if (dir == nullptr) return false;
    const uint64_t gd = dir->global_depth;
    if (gd > 48) return false;
    const uint64_t n = 1ull << gd;
    uint64_t i = 0;
    while (i < n) {
      HybridSegment* seg = dir->entry(i);
      if (seg == nullptr) return false;
      const uint32_t ld = seg->local_depth();
      if (ld > gd) return false;
      if (seg->num_buckets == 0 ||
          (seg->num_buckets & (seg->num_buckets - 1)) != 0) {
        return false;
      }
      if (seg->lock.IsLockedNow()) return false;
      const uint64_t run = 1ull << (gd - ld);
      if ((i & (run - 1)) != 0) return false;
      if (ld > 0 && seg->PatternAcquire() != (i >> (gd - ld))) return false;
      for (uint64_t j = i + 1; j < i + run; ++j) {
        if (dir->entry(j) != seg) return false;
      }
      if (!VerifySegmentSlots(seg)) return false;
      i += run;
    }
    return log_->VerifyChains();
  }

 private:
  using MapKey = std::conditional_t<KP::kInline, uint64_t, std::string>;

  // ---- lifecycle ----

  void CreateNew() {
    root_->log_lanes = opts_.log_lanes;
    root_->records_per_chunk = opts_.records_per_chunk;
    root_->clean = 0;
    root_->open_gen = 1;
    pmem::Persist(root_, sizeof(*root_));
    InitVolatile();
    root_->initialized = 1;
    pmem::PersistObject(&root_->initialized);
    recovery_source_ = RecoverySource::kFresh;
  }

  void OpenExisting() {
    opts_.log_lanes = root_->log_lanes;
    opts_.records_per_chunk = root_->records_per_chunk;
    root_->clean = 0;
    pmem::Persist(&root_->clean, 1);
    // A checkpoint is valid only if the root still carries the
    // generation it was stamped with. Bump the generation FIRST — before
    // this run can append or recycle anything — so a crash at any later
    // point leaves older checkpoints invalid, as they must be.
    const uint64_t ckpt_gen = root_->open_gen;
    pmem::AtomicPersist64(&root_->open_gen, ckpt_gen + 1);
    InitVolatile();
    // The DRAM index died with the previous process whether or not it
    // closed clean; the open either loads a checkpoint and replays the
    // log tail past its watermarks, or rebuilds from a full scan.
    if (!LoadCheckpoint(ckpt_gen)) {
      recovery_source_ = RecoverySource::kScan;
      Rebuild();
    }
  }

  void InitVolatile() {
    arena_ = std::make_unique<SegmentArena>(
        HybridSegment::AllocSize(opts_.buckets_per_segment, opts_.stash_slots),
        (1ull << opts_.initial_depth) + 4);
    log_ = std::make_unique<HybridLog>(pool_, root_->lane_heads,
                                       opts_.log_lanes,
                                       opts_.records_per_chunk);
    HybridDirectory* dir = NewDirectory(opts_.initial_depth);
    const uint64_t n = 1ull << opts_.initial_depth;
    for (uint64_t i = 0; i < n; ++i) {
      dir->SetEntry(i, NewSegment(opts_.initial_depth, i));
    }
    dir_.store(dir, std::memory_order_release);
  }

  HybridSegment* NewSegment(uint32_t depth, uint64_t pattern) {
    void* raw = arena_->Get();
    std::memset(raw, 0,
                HybridSegment::AllocSize(opts_.buckets_per_segment,
                                         opts_.stash_slots));
    auto* seg = static_cast<HybridSegment*>(raw);
    seg->num_buckets = opts_.buckets_per_segment;
    seg->stash_slots = opts_.stash_slots;
    seg->local_depth_ = depth;
    seg->pattern_ = pattern;
    seg->lock.Reset();
    return seg;
  }

  // Directory buffers are retained until table destruction: a lock-free
  // reader may hold a replaced directory arbitrarily long, and doubling
  // is rare enough that the stale copies are noise.
  HybridDirectory* NewDirectory(uint64_t depth) {
    const size_t bytes = HybridDirectory::AllocSize(depth);
    auto buf = std::make_unique<char[]>(bytes + 63);
    char* base = reinterpret_cast<char*>(
        (reinterpret_cast<uintptr_t>(buf.get()) + 63) & ~uintptr_t{63});
    std::memset(base, 0, bytes);
    auto* dir = reinterpret_cast<HybridDirectory*>(base);
    dir->global_depth = depth;
    retained_dirs_.push_back(std::move(buf));
    return dir;
  }

  // ---- checkpointing ----

  // Checkpoint payload layout (raw host-layout images; the pool remaps
  // at a fixed base, so handles and VarKey pointers in slot words are
  // stable across restarts — the same idiom as the persisted lane
  // chains):
  //   PayloadHeader
  //   num_segments x { SegmentPrefix, bucket array, stash array }
  // in directory-coverage order (position + local depth reconstruct the
  // directory exactly).
  struct PayloadHeader {
    uint64_t checkpoint_seq;            // next_seq at watermark snapshot
    uint64_t watermarks[kMaxLanes];     // per-lane committed-seq frontier
    uint64_t global_depth;
    uint64_t num_segments;
  };
  struct SegmentPrefix {
    uint32_t local_depth;
    uint32_t num_buckets;
    uint32_t stash_slots;
    uint32_t pad;
    uint64_t pattern;
  };

  size_t SegmentImageBytes() const {
    return opts_.buckets_per_segment * sizeof(HybridBucket) +
           opts_.stash_slots * sizeof(HybridSlot);
  }

  // Identifies this table flavour (key mode + geometry): a checkpoint
  // from a different kind or geometry must not parse.
  uint64_t CheckpointTag() const {
    uint64_t t = util::Mix64(0x687962636b7074ull ^ (KP::kInline ? 1 : 2));
    t = util::Mix64(t ^ opts_.buckets_per_segment);
    t = util::Mix64(t ^ opts_.stash_slots);
    t = util::Mix64(t ^ opts_.log_lanes);
    t = util::Mix64(t ^ opts_.records_per_chunk);
    return t;
  }

  // Copies the index into `payload`. Correctness of the bounded-
  // staleness contract: the watermarks are snapshotted BEFORE any
  // segment copy, seqs are allocated by a global monotone counter while
  // the segment lock is held, and each segment is copied under that
  // lock. So for every committed record: either its publishing op ran
  // before its segment's copy (the slot is in the image), or its seq was
  // allocated after the snapshot and exceeds every watermark (replay
  // picks it up). Records in both sets replay idempotently. Returns
  // false if a split or directory doubling raced the pass (split_epoch_
  // changed) or a stale directory view turned inconsistent mid-walk.
  bool SerializeIndex(std::string* payload) {
    payload->clear();
    const uint64_t e1 = split_epoch_.load(std::memory_order_acquire);
    PayloadHeader ph{};
    log_->SnapshotWatermarks(ph.watermarks);
    ph.checkpoint_seq = log_->NextSeqRelaxed();
    HybridDirectory* dir = Dir();
    const uint64_t gd = dir->global_depth;
    if (gd > 48) return false;
    ph.global_depth = gd;
    const size_t seg_bytes = SegmentImageBytes();
    payload->resize(sizeof(PayloadHeader));
    const uint64_t n = 1ull << gd;
    uint64_t i = 0;
    while (i < n) {
      HybridSegment* seg = dir->entry(i);
      seg->lock.Lock();
      const uint32_t ld = seg->local_depth();
      if (ld > gd || seg->num_buckets != opts_.buckets_per_segment ||
          seg->stash_slots != opts_.stash_slots) {
        seg->lock.Unlock();
        return false;  // concurrent split outran this directory view
      }
      SegmentPrefix sp{ld, seg->num_buckets, seg->stash_slots, 0,
                       seg->PatternAcquire()};
      payload->append(reinterpret_cast<const char*>(&sp), sizeof(sp));
      payload->append(reinterpret_cast<const char*>(seg + 1), seg_bytes);
      seg->lock.Unlock();
      ++ph.num_segments;
      i += 1ull << (gd - ld);
    }
    std::memcpy(payload->data(), &ph, sizeof(ph));
    return split_epoch_.load(std::memory_order_acquire) == e1;
  }

  // Loads opts_.checkpoint_path (stamped with generation `ckpt_gen`)
  // and replays the log tail. Returns false — leaving a freshly
  // re-initialized empty structure for Rebuild() — on any rejection:
  // the file layer already logged torn/checksum/stale/kind failures,
  // and a structurally invalid payload is reported here.
  bool LoadCheckpoint(uint64_t ckpt_gen) {
    if (opts_.checkpoint_path.empty()) return false;
    pmem::CheckpointMeta expect;
    expect.kind_tag = CheckpointTag();
    expect.generation = ckpt_gen;
    std::string payload;
    if (pmem::ReadCheckpointFile(opts_.checkpoint_path, expect, &payload) !=
        pmem::CheckpointLoad::kOk) {
      return false;
    }
    if (!InstallCheckpoint(payload)) {
      std::fprintf(stderr,
                   "dash: checkpoint %s structurally invalid; falling back "
                   "to full recovery scan\n",
                   opts_.checkpoint_path.c_str());
      InitVolatile();  // wipe the half-installed structure
      return false;
    }
    recovery_source_ = RecoverySource::kCheckpoint;
    return true;
  }

  bool InstallCheckpoint(const std::string& payload) {
    PayloadHeader ph;
    if (payload.size() < sizeof(ph)) return false;
    std::memcpy(&ph, payload.data(), sizeof(ph));
    if (ph.global_depth > 48) return false;
    const uint64_t n = 1ull << ph.global_depth;
    if (ph.num_segments == 0 || ph.num_segments > n) return false;
    const size_t seg_bytes = SegmentImageBytes();
    const size_t entry_bytes = sizeof(SegmentPrefix) + seg_bytes;
    if (payload.size() !=
        sizeof(ph) + ph.num_segments * entry_bytes) {
      return false;
    }
    HybridDirectory* dir = NewDirectory(ph.global_depth);
    size_t off = sizeof(ph);
    uint64_t pos = 0;
    for (uint64_t s = 0; s < ph.num_segments; ++s) {
      SegmentPrefix sp;
      std::memcpy(&sp, payload.data() + off, sizeof(sp));
      if (sp.local_depth > ph.global_depth ||
          sp.num_buckets != opts_.buckets_per_segment ||
          sp.stash_slots != opts_.stash_slots) {
        return false;
      }
      const uint64_t run = 1ull << (ph.global_depth - sp.local_depth);
      if (pos >= n || (pos & (run - 1)) != 0) return false;
      if (sp.local_depth > 0 &&
          sp.pattern != (pos >> (ph.global_depth - sp.local_depth))) {
        return false;
      }
      HybridSegment* seg = NewSegment(sp.local_depth, sp.pattern);
      std::memcpy(seg + 1, payload.data() + off + sizeof(sp), seg_bytes);
      for (uint64_t j = pos; j < pos + run; ++j) dir->SetEntry(j, seg);
      pos += run;
      off += entry_bytes;
    }
    if (pos != n) return false;
    dir_.store(dir, std::memory_order_release);

    // Scan the chains once (free lists + sequence counter — the scan is
    // unavoidable; what the checkpoint saves is the per-record dedup and
    // re-insert work), collecting the tail: committed records past the
    // recorded watermark of their lane.
    struct Tail {
      uint64_t stored;
      uint64_t handle;
      uint64_t meta;
    };
    std::vector<Tail> tail;
    // Every committed record, for the post-replay garbage sweep below.
    struct Committed {
      uint64_t handle;
      uint64_t meta;
    };
    std::vector<Committed> committed;
    // Trusted-handle bitmap, one bit per pool record slot (byte offset /
    // sizeof(LogRecord)). A record that is committed, non-tombstone, and
    // at or below its lane's watermark cannot have changed since before
    // the segment copies: seqs are globally monotone, so recycling or
    // tombstoning it would have stamped a seq above the watermark. A
    // checkpointed slot referencing a trusted record is therefore still
    // exactly what the copy saw — key match and placement included —
    // and can be kept without touching the record again.
    std::vector<uint64_t> trusted(
        (pool_->size() / sizeof(LogRecord) + 63) / 64);
    uint64_t max_seq = 0;
    for (uint32_t li = 0; li < opts_.log_lanes; ++li) {
      const uint64_t wm = ph.watermarks[li];
      const uint64_t lane_max = log_->ScanLane(
          li, [&](LogRecord* rec, uint64_t handle, uint64_t meta) {
            committed.push_back(Committed{handle, meta});
            if (LogRecord::Seq(meta) > wm) {
              tail.push_back(Tail{rec->key, handle, meta});
            } else if (!LogRecord::IsTombstone(meta)) {
              const uint64_t slot = HandleOffset(handle) / sizeof(LogRecord);
              trusted[slot >> 6] |= 1ull << (slot & 63);
            }
          });
      if (lane_max > max_seq) max_seq = lane_max;
    }
    log_->NoteScannedSeq(max_seq);
    // Clear every slot whose record is not trusted: zeroed, recycled,
    // tombstoned, or superseded past the watermark. Reclamation only
    // runs after a superseding append, so any still-live key among the
    // dropped slots has its true state in the tail. This also keeps
    // var-key replay probes off freed blobs. The per-lane drop counts
    // seed the dead-slot accounting: most dropped slots name records
    // whose reclamation already ran, i.e. dead capacity the compaction
    // trigger should see from the first tick of this run.
    uint64_t dropped[kMaxLanes] = {};
    DropDeadSlots(trusted, dropped);
    for (uint32_t li = 0; li < opts_.log_lanes; ++li) {
      if (dropped[li] != 0) log_->SeedDead(li, dropped[li]);
    }
    CRASH_POINT("hybrid_ckpt_load_after_scan");
    // Ascending seq order makes unconditional last-writer-wins apply
    // exactly log-replay semantics; replay performs no PM writes, so a
    // crash mid-replay trivially re-recovers.
    std::sort(tail.begin(), tail.end(), [](const Tail& a, const Tail& b) {
      return LogRecord::Seq(a.meta) < LogRecord::Seq(b.meta);
    });
    for (const Tail& t : tail) ApplyReplay(t.stored, t.handle, t.meta);
    replayed_records_ = tail.size();
    recovery_staleness_ =
        max_seq + 1 > ph.checkpoint_seq ? max_seq + 1 - ph.checkpoint_seq : 0;
    SweepUnreferenced(committed);
    return true;
  }

  // Collects the committed garbage a checkpoint open would otherwise
  // strand: records superseded within the replay tail, spent tombstones,
  // and pairs whose epoch retirement was lost to the crash. After replay
  // the index references exactly one record per live key, so every
  // committed record no slot points at is garbage — with no concurrent
  // ops at open, that judgement is exact, where the online path must
  // leave non-current records to their pending retirements. Without this
  // sweep such orphans would also pin their chunks against compaction
  // forever. Zeroing order is the delete-pair rule writ large: ALL
  // unreferenced regular records strictly before ANY tombstone. Any
  // record a tombstone supersedes is itself unreferenced (a checkpointed
  // slot for the key would imply the tombstone outran the watermark and
  // replay cleared it), so a crash between the phases can only lose
  // tombstones whose victims are already gone — never resurrect a key.
  template <typename CommittedVec>
  void SweepUnreferenced(const CommittedVec& committed) {
    std::vector<uint64_t> referenced(
        (pool_->size() / sizeof(LogRecord) + 63) / 64);
    ForEachSegment([&](HybridSegment* seg) {
      auto mark = [&](const HybridSlot* slot) {
        if (slot->key == kEmptyKey) return;
        const uint64_t idx = HandleOffset(slot->off) / sizeof(LogRecord);
        referenced[idx >> 6] |= 1ull << (idx & 63);
      };
      for (uint32_t b = 0; b < seg->num_buckets; ++b) {
        for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
          mark(&seg->bucket(b)->slots[s]);
        }
      }
      for (uint32_t s = 0; s < seg->stash_slots; ++s) mark(seg->stash(s));
    });
    auto orphaned = [&](uint64_t handle) {
      const uint64_t idx = HandleOffset(handle) / sizeof(LogRecord);
      return ((referenced[idx >> 6] >> (idx & 63)) & 1) == 0;
    };
    for (const auto& c : committed) {
      if (LogRecord::IsTombstone(c.meta) || !orphaned(c.handle)) continue;
      ReclaimOne(c.handle);
      log_->ReleaseSlot(c.handle);
    }
    for (const auto& c : committed) {
      if (!LogRecord::IsTombstone(c.meta)) continue;
      ReclaimOne(c.handle);
      log_->ReleaseSlot(c.handle);
    }
  }

  // Clears checkpointed slots that reference anything but a trusted
  // record. Key-word equality against the record would not be a valid
  // substitute: with var keys both the record slot and the key blob can
  // be recycled for a *different* key, making the pointers match again
  // while the new content hashes elsewhere. The trusted bitmap closes
  // that hole structurally — a recycled record carries a post-watermark
  // seq and is never trusted — and replaces a random PM probe per slot
  // with an L2-resident bit test.
  void DropDeadSlots(const std::vector<uint64_t>& trusted,
                     uint64_t dropped[kMaxLanes]) {
    auto dead = [&](const HybridSlot* slot) {
      const uint64_t idx = HandleOffset(slot->off) / sizeof(LogRecord);
      return (idx >> 6) >= trusted.size() ||
             ((trusted[idx >> 6] >> (idx & 63)) & 1) == 0;
    };
    auto clear = [&](HybridSlot* slot) {
      ++dropped[HandleLane(slot->off)];
      slot->StoreKeyRelease(kEmptyKey);
      slot->StoreOffRelease(0);
    };
    ForEachSegment([&](HybridSegment* seg) {
      for (uint32_t b = 0; b < seg->num_buckets; ++b) {
        HybridBucket* bucket = seg->bucket(b);
        for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
          HybridSlot* slot = &bucket->slots[s];
          if (slot->key != kEmptyKey && dead(slot)) clear(slot);
        }
      }
      for (uint32_t s = 0; s < seg->stash_slots; ++s) {
        HybridSlot* slot = seg->stash(s);
        if (slot->key != kEmptyKey && dead(slot)) clear(slot);
      }
    });
  }

  KeyArg KeyFromStored(uint64_t stored) const {
    if constexpr (KP::kInline) {
      return stored;
    } else {
      return reinterpret_cast<const VarKey*>(stored)->view();
    }
  }

  // Applies one tail record against the loaded index (single-threaded,
  // at open). Idempotent: re-applying a record the checkpoint already
  // reflects swings the slot to the handle it already holds.
  void ApplyReplay(uint64_t stored, uint64_t handle, uint64_t meta) {
    const uint64_t h = KP::HashStored(stored);
    const KeyArg key = KeyFromStored(stored);
    for (;;) {
      HybridSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      HybridBucket* bucket =
          seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
      bool in_stash = false;
      HybridSlot* slot = ProbeSegment(seg, bucket, h, key, &in_stash);
      if (LogRecord::IsTombstone(meta)) {
        if (slot != nullptr) {
          slot->StoreKeyRelease(kEmptyKey);
          slot->StoreOffRelease(0);
        }
        seg->lock.Unlock();
        return;
      }
      if (slot != nullptr) {
        slot->StoreOffRelease(handle);
        slot->StoreKeyRelease(stored);
        seg->lock.Unlock();
        return;
      }
      slot = FindEmpty(seg, bucket, &in_stash);
      if (slot == nullptr) {
        seg->lock.Unlock();
        const bool ok = Split(seg, h);
        assert(ok && "hybrid replay split failed");
        (void)ok;
        continue;
      }
      PublishSlot(bucket, slot, in_stash, stored, handle, h);
      seg->lock.Unlock();
      return;
    }
  }

  // ---- recovery ----

  // Scans the lane chains, keeps the highest-seq record per key,
  // garbage-collects everything else, and re-inserts the winners.
  // Runs in the ctor. With rebuild_threads > 1 the scan is parallelized
  // by lane (lanes are disjoint: private winner/loser sets per worker, a
  // serial merge keeps the highest seq per key) and the winner
  // re-insertion is parallelized too (InsertRebuilt takes segment
  // locks). GC stays serial: zeroing order — superseded records strictly
  // before the tombstones that beat them — is what makes a crash mid-GC
  // re-rebuild to the same table.
  void Rebuild() {
    struct Winner {
      uint64_t handle;
      uint64_t meta;
    };
    using WinnerMap = std::unordered_map<MapKey, Winner>;
    auto record_key = [](LogRecord* rec) -> MapKey {
      if constexpr (KP::kInline) {
        return rec->key;
      } else {
        const auto* blob = reinterpret_cast<const VarKey*>(rec->key);
        pmem::ReadProbe(blob);
        return MapKey(blob->data, blob->length);
      }
    };
    auto classify = [](WinnerMap& w, std::vector<uint64_t>& l, MapKey&& k,
                       uint64_t handle, uint64_t meta) {
      auto [it, fresh] = w.try_emplace(std::move(k), Winner{handle, meta});
      if (!fresh) {
        if (LogRecord::Seq(meta) > LogRecord::Seq(it->second.meta)) {
          l.push_back(it->second.handle);
          it->second = Winner{handle, meta};
        } else {
          l.push_back(handle);
        }
      }
    };

    const uint32_t threads = RebuildThreads();
    WinnerMap winners;
    std::vector<uint64_t> losers;
    if (threads <= 1) {
      log_->Scan([&](LogRecord* rec, uint64_t handle, uint64_t meta) {
        classify(winners, losers, record_key(rec), handle, meta);
      });
    } else {
      std::vector<WinnerMap> wmaps(threads);
      std::vector<std::vector<uint64_t>> lsets(threads);
      std::vector<uint64_t> lane_max(threads, 0);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([this, t, threads, &wmaps, &lsets, &lane_max,
                              &record_key, &classify] {
          for (uint32_t li = t; li < opts_.log_lanes; li += threads) {
            const uint64_t m = log_->ScanLane(
                li, [&](LogRecord* rec, uint64_t handle, uint64_t meta) {
                  classify(wmaps[t], lsets[t], record_key(rec), handle, meta);
                });
            if (m > lane_max[t]) lane_max[t] = m;
          }
        });
      }
      for (auto& w : workers) w.join();
      uint64_t max_seq = 0;
      for (uint32_t t = 0; t < threads; ++t) {
        if (lane_max[t] > max_seq) max_seq = lane_max[t];
      }
      log_->NoteScannedSeq(max_seq);
      winners = std::move(wmaps[0]);
      losers = std::move(lsets[0]);
      for (uint32_t t = 1; t < threads; ++t) {
        for (auto& kv : wmaps[t]) {
          classify(winners, losers, MapKey(kv.first), kv.second.handle,
                   kv.second.meta);
        }
        losers.insert(losers.end(), lsets[t].begin(), lsets[t].end());
      }
    }
    CRASH_POINT("hybrid_rebuild_after_scan");
    for (uint64_t h : losers) {
      ReclaimOne(h);
      log_->ReleaseSlot(h);
    }
    CRASH_POINT("hybrid_rebuild_after_gc");
    std::vector<std::pair<uint64_t, uint64_t>> live;  // {stored, handle}
    live.reserve(winners.size());
    for (auto& [k, w] : winners) {
      if (LogRecord::IsTombstone(w.meta)) {
        // Spent tombstone: everything it superseded was zeroed above.
        ReclaimOne(w.handle);
        log_->ReleaseSlot(w.handle);
        continue;
      }
      live.emplace_back(log_->Record(w.handle)->key, w.handle);
    }
    if (threads <= 1 || live.size() < 4096) {
      for (const auto& [stored, handle] : live) InsertRebuilt(stored, handle);
    } else {
      const size_t chunk = (live.size() + threads - 1) / threads;
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (uint32_t t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(live.size(), begin + chunk);
        if (begin >= end) break;
        workers.emplace_back([this, &live, begin, end] {
          for (size_t i = begin; i < end; ++i) {
            InsertRebuilt(live[i].first, live[i].second);
          }
        });
      }
      for (auto& w : workers) w.join();
    }
  }

  uint32_t RebuildThreads() const {
    uint32_t t = opts_.rebuild_threads == 0 ? 1 : opts_.rebuild_threads;
    if (t > opts_.log_lanes) t = opts_.log_lanes;
    return t;
  }

  // Places a surviving record into the DRAM index. The record keeps its
  // handle and stored key word (the slot shares the VarKey blob with the
  // record — the same invariant the insert path establishes).
  void InsertRebuilt(uint64_t stored, uint64_t handle) {
    const uint64_t h = KP::HashStored(stored);
    for (;;) {
      HybridSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      HybridBucket* bucket =
          seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
      bool in_stash = false;
      HybridSlot* slot = FindEmpty(seg, bucket, &in_stash);
      if (slot == nullptr) {
        seg->lock.Unlock();
        const bool ok = Split(seg, h);
        assert(ok && "hybrid rebuild split failed");
        (void)ok;
        continue;
      }
      PublishSlot(bucket, slot, in_stash, stored, handle, h);
      seg->lock.Unlock();
      return;
    }
  }

  // ---- reclamation (epoch callbacks) ----

  void ReclaimOne(uint64_t handle) {
    LogRecord* rec = log_->Record(handle);
    const uint64_t stored = rec->key;
    log_->ZeroRecord(handle);
    // Blob free after the zero: a crash between the two leaks the blob
    // (harmless), the reverse order would leave a committed record whose
    // key points at freed PM.
    KP::FreeStored(stored, alloc_);
  }

  void ReclaimPair(uint64_t old_handle, uint64_t tomb_handle) {
    ReclaimOne(old_handle);
    CRASH_POINT("hybrid_reclaim_after_zero");
    if (tomb_handle != 0) ReclaimOne(tomb_handle);
    log_->ReleaseSlot(old_handle);
    if (tomb_handle != 0) log_->ReleaseSlot(tomb_handle);
  }

  // ---- compaction ----

  // Walks the index once and copies every live record that sits in a
  // claimed victim chunk out to a fresh slot of its lane. Done under
  // segment locks, which is what makes it safe: the slot is current by
  // construction (a concurrent supersede needs the same lock), so the
  // record — and in pointer mode the key blob the slot shares with it —
  // cannot be retired under us. Records of a victim that the walk does
  // NOT find are already superseded; their pending epoch retirements
  // zero them. Segments that split mid-walk may carry live victim
  // records past this pass; the chunk then simply fails to drain and a
  // later pass retries — convergence, not correctness, depends on the
  // walk.
  void RelocateVictims(const bool claimed[kMaxLanes],
                       const uint64_t begin[kMaxLanes],
                       const uint64_t end[kMaxLanes]) {
    auto in_victim = [&](uint64_t handle) {
      const uint32_t li = HandleLane(handle);
      const uint64_t off = HandleOffset(handle);
      return claimed[li] && off >= begin[li] && off < end[li];
    };
    HybridDirectory* dir = Dir();
    const uint64_t n = 1ull << dir->global_depth;
    uint64_t i = 0;
    while (i < n) {
      HybridSegment* seg = dir->entry(i);
      LockSegment(seg);
      for (uint32_t b = 0; b < seg->num_buckets; ++b) {
        HybridBucket* bucket = seg->bucket(b);
        for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
          HybridSlot* slot = &bucket->slots[s];
          if (slot->key != kEmptyKey && in_victim(slot->off)) {
            RelocateSlot(slot);
          }
        }
      }
      for (uint32_t s = 0; s < seg->stash_slots; ++s) {
        HybridSlot* slot = seg->stash(s);
        if (slot->key != kEmptyKey && in_victim(slot->off)) {
          RelocateSlot(slot);
        }
      }
      const uint32_t ld = seg->local_depth();
      seg->lock.Unlock();
      i += ld >= dir->global_depth ? 1 : 1ull << (dir->global_depth - ld);
    }
  }

  // Copies one live record out of a victim chunk (segment lock held).
  // The same protocol as an out-of-place update with an unchanged value:
  // fresh stored key word (each record owns its blob — sharing the old
  // blob would let a crash between publish and zero leave two committed
  // records co-owning one blob, and rebuild's loser GC would free it out
  // from under the winner), fresh seq above every snapshotted checkpoint
  // watermark, handle swing, epoch-retire the original. Fingerprint and
  // stash hint are keyed off the key and do not change. An out-of-memory
  // append just leaves the record in place for a later pass.
  void RelocateSlot(HybridSlot* slot) {
    const uint64_t old_handle = slot->LoadOffAcquire();
    const uint64_t value = log_->Record(old_handle)->LoadValueAcquire();
    const uint64_t stored = KP::MakeStored(KeyFromStored(slot->key), alloc_);
    if (!KP::kInline && stored == 0) return;
    const uint64_t handle =
        log_->AppendCompacted(HandleLane(old_handle), stored, value);
    if (handle == 0) {
      KP::FreeStored(stored, alloc_);
      return;
    }
    slot->StoreOffRelease(handle);
    slot->StoreKeyRelease(stored);
    CRASH_POINT("hybrid_compact_after_publish");
    HybridTable* self = this;
    epochs_->Retire([self, old_handle] { self->ReclaimPair(old_handle, 0); });
  }

  // ---- per-op bodies (caller holds an epoch guard) ----

  OpStatus InsertWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      HybridSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      HybridBucket* bucket =
          seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
      bool in_stash = false;
      if (ProbeSegment(seg, bucket, h, key, &in_stash) != nullptr) {
        seg->lock.Unlock();
        return OpStatus::kExists;
      }
      HybridSlot* slot = FindEmpty(seg, bucket, &in_stash);
      if (slot == nullptr) {
        seg->lock.Unlock();
        if (!Split(seg, h)) return OpStatus::kOutOfMemory;
        continue;
      }
      const uint64_t stored = KP::MakeStored(key, alloc_);
      if (!KP::kInline && stored == 0) {
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      // The append (one 16-byte PM write + one atomic meta publish) is
      // the durability point of the insert; the DRAM slot is volatile.
      const uint64_t handle = log_->Append(stored, value, /*tombstone=*/false);
      if (handle == 0) {
        KP::FreeStored(stored, alloc_);
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      PublishSlot(bucket, slot, in_stash, stored, handle, h);
      seg->lock.Unlock();
      return OpStatus::kOk;
    }
  }

  OpStatus UpdateWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      HybridSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      HybridBucket* bucket =
          seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
      bool in_stash = false;
      HybridSlot* slot = ProbeSegment(seg, bucket, h, key, &in_stash);
      if (slot == nullptr) {
        seg->lock.Unlock();
        return OpStatus::kNotFound;
      }
      // Out-of-place update: append a fresh record (its own stored key
      // word — each record owns its blob in pointer mode), swing the
      // handle, retire the superseded record to the epoch manager.
      const uint64_t stored = KP::MakeStored(key, alloc_);
      if (!KP::kInline && stored == 0) {
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      const uint64_t handle = log_->Append(stored, value, /*tombstone=*/false);
      if (handle == 0) {
        KP::FreeStored(stored, alloc_);
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      const uint64_t old_handle = slot->LoadOffAcquire();
      slot->StoreOffRelease(handle);
      slot->StoreKeyRelease(stored);
      seg->lock.Unlock();
      HybridTable* self = this;
      epochs_->Retire(
          [self, old_handle] { self->ReclaimPair(old_handle, 0); });
      return OpStatus::kOk;
    }
  }

  OpStatus DeleteWithHash(KeyArg key, uint64_t h) {
    for (;;) {
      HybridSegment* seg = Lookup(h);
      LockSegment(seg);
      if (!Valid(seg, h)) {
        seg->lock.Unlock();
        continue;
      }
      HybridBucket* bucket =
          seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
      bool in_stash = false;
      HybridSlot* slot = ProbeSegment(seg, bucket, h, key, &in_stash);
      if (slot == nullptr) {
        seg->lock.Unlock();
        return OpStatus::kNotFound;
      }
      // The tombstone append is the durability point of the delete: its
      // higher seq beats the live record at rebuild. Both are retired as
      // a pair; reclamation zeroes the superseded record strictly first.
      const uint64_t tomb_stored = KP::MakeStored(key, alloc_);
      if (!KP::kInline && tomb_stored == 0) {
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      const uint64_t tomb_handle =
          log_->Append(tomb_stored, 0, /*tombstone=*/true);
      if (tomb_handle == 0) {
        KP::FreeStored(tomb_stored, alloc_);
        seg->lock.Unlock();
        return OpStatus::kOutOfMemory;
      }
      const uint64_t old_handle = slot->LoadOffAcquire();
      slot->StoreKeyRelease(kEmptyKey);
      slot->StoreOffRelease(0);
      seg->lock.Unlock();
      HybridTable* self = this;
      epochs_->Retire([self, old_handle, tomb_handle] {
        self->ReclaimPair(old_handle, tomb_handle);
      });
      return OpStatus::kOk;
    }
  }

  // Optimistic probe of one segment view (§4.4): snapshot the version,
  // check coverage, probe DRAM (fingerprint filter, then key compare),
  // dereference the PM record — the ONE PM read of the hybrid search —
  // and revalidate. kRetry sends the caller back through the directory.
  OpStatus SearchSegmentOptimistic(HybridSegment* seg, KeyArg key, uint64_t h,
                                   uint64_t* out) {
    const uint32_t snap = seg->lock.Snapshot();
    if (util::VersionLock::IsLocked(snap)) {
      lock_stats_.CountConflict();
      return OpStatus::kRetry;
    }
    const uint32_t ld = seg->local_depth();
    if (ld != 0 && (h >> (64 - ld)) != seg->PatternAcquire()) {
      lock_stats_.CountRetry();
      return OpStatus::kRetry;
    }
    HybridBucket* bucket =
        seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
    bool in_stash = false;
    HybridSlot* slot = ProbeSegment(seg, bucket, h, key, &in_stash);
    if (slot == nullptr) {
      if (!seg->lock.Verify(snap)) {
        lock_stats_.CountRetry();
        return OpStatus::kRetry;
      }
      return OpStatus::kNotFound;
    }
    const uint64_t handle = slot->LoadOffAcquire();
    if (handle == 0) {  // torn slot view (concurrent delete)
      lock_stats_.CountRetry();
      return OpStatus::kRetry;
    }
    // A stale handle still dereferences safely even though compaction
    // frees drained chunks: a chunk is only unlinked once every record
    // in it was zeroed post-grace and its slots left the free list, so
    // no handle a reader can have observed reaches freed memory (see
    // pm_log.h). Verify discards the stale value either way.
    LogRecord* rec = log_->Record(handle);
    pmem::ReadProbe(rec);
    const uint64_t value = rec->LoadValueAcquire();
    if (!seg->lock.Verify(snap)) {
      lock_stats_.CountRetry();
      return OpStatus::kRetry;
    }
    *out = value;
    return OpStatus::kOk;
  }

  OpStatus SearchWithHash(KeyArg key, uint64_t h, uint64_t* out) {
    util::SpinBackoff backoff;
    for (;;) {
      HybridSegment* seg = Lookup(h);
      const OpStatus status = SearchSegmentOptimistic(seg, key, h, out);
      if (status != OpStatus::kRetry) return status;
      backoff.Pause();
    }
  }

  // ---- probing helpers ----

  // Finds the slot holding `key`, or nullptr. Safe both under the
  // segment lock and optimistically (all acquire loads; the caller's
  // version check discards stale results). Fingerprints keep pointer-key
  // blob dereferences (PM probes in EqualStored) off the miss path.
  HybridSlot* ProbeSegment(HybridSegment* seg, HybridBucket* bucket,
                           uint64_t h, KeyArg key, bool* in_stash) {
    const uint8_t fp = HybridSegment::Fingerprint(h);
    const uint64_t fps = bucket->LoadFpsAcquire();
    for (uint64_t m = MatchFps(fps, fp); m != 0; m &= m - 1) {
      const uint64_t s = static_cast<uint64_t>(__builtin_ctzll(m)) >> 3;
      HybridSlot* slot = &bucket->slots[s];
      const uint64_t stored = slot->LoadKeyAcquire();
      if (stored == kEmptyKey) continue;
      if (KP::EqualStored(stored, key)) {
        *in_stash = false;
        return slot;
      }
    }
    if ((bucket->LoadMetaAcquire() & kStashHint) != 0) {
      for (uint32_t s = 0; s < seg->stash_slots; ++s) {
        HybridSlot* slot = seg->stash(s);
        const uint64_t stored = slot->LoadKeyAcquire();
        if (stored == kEmptyKey) continue;
        if (KP::EqualStored(stored, key)) {
          *in_stash = true;
          return slot;
        }
      }
    }
    return nullptr;
  }

  // Free-slot pick under the segment lock: home bucket first, stash as
  // overflow. Plain (relaxed-equivalent) reads are fine — writers are
  // serialized by the lock.
  HybridSlot* FindEmpty(HybridSegment* seg, HybridBucket* bucket,
                        bool* in_stash) {
    for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
      if (bucket->slots[s].key == kEmptyKey) {
        *in_stash = false;
        return &bucket->slots[s];
      }
    }
    for (uint32_t s = 0; s < seg->stash_slots; ++s) {
      if (seg->stash(s)->key == kEmptyKey) {
        *in_stash = true;
        return seg->stash(s);
      }
    }
    return nullptr;
  }

  // Publishes a slot under the segment lock: handle before key (readers
  // racing the critical section fail version verification regardless;
  // the order just keeps the torn window sane), then the fingerprint or
  // the sticky stash hint on the home bucket.
  void PublishSlot(HybridBucket* home_bucket, HybridSlot* slot, bool in_stash,
                   uint64_t stored, uint64_t handle, uint64_t h) {
    slot->StoreOffRelease(handle);
    slot->StoreKeyRelease(stored);
    if (in_stash) {
      home_bucket->SetStashHint();
    } else {
      home_bucket->SetFp(static_cast<size_t>(slot - home_bucket->slots),
                         HybridSegment::Fingerprint(h));
    }
  }

  // ---- directory / segment management ----

  HybridDirectory* Dir() const {
    return dir_.load(std::memory_order_acquire);
  }

  HybridSegment* Lookup(uint64_t h) const {
    HybridDirectory* dir = Dir();
    const uint64_t idx =
        dir->global_depth == 0 ? 0 : (h >> (64 - dir->global_depth));
    return dir->entry(idx);
  }

  void LockSegment(HybridSegment* seg) {
    seg->lock.Lock();
    lock_stats_.CountWriteLock();
  }

  bool Valid(HybridSegment* seg, uint64_t h) const {
    if (Lookup(h) != seg) return false;
    const uint32_t ld = seg->local_depth();
    if (ld == 0) return true;
    return (h >> (64 - ld)) == seg->PatternAcquire();
  }

  // DRAM-only split: no persistence, no mini-transaction — rebuild
  // derives the structure from the log, so a crash mid-split is
  // irrelevant. Items keep their bucket index (it depends only on hash
  // bits the split doesn't consume) and stash items stay stash, so the
  // child can never overflow. The child is fully built before the
  // directory publishes it; readers holding the parent retry via the
  // pattern check once the parent's version bumps at unlock.
  bool Split(HybridSegment* seg, uint64_t h) {
    LockSegment(seg);
    if (!Valid(seg, h)) {
      seg->lock.Unlock();
      return true;  // someone else already split; caller retries
    }
    const uint32_t old_depth = seg->local_depth();
    while (Dir()->global_depth == old_depth) {
      DoubleDirectory();
    }
    const uint64_t old_pattern = seg->PatternAcquire();
    HybridSegment* child = NewSegment(old_depth + 1, (old_pattern << 1) | 1);
    RehashToChild(seg, child, old_depth);
    seg->StorePatternRelease(old_pattern << 1);
    seg->SetLocalDepth(old_depth + 1);
    dir_lock_.LockShared();
    HybridDirectory* dir = Dir();
    const uint64_t gd = dir->global_depth;
    const uint64_t chunk = 1ull << (gd - old_depth);
    const uint64_t base = old_pattern << (gd - old_depth);
    for (uint64_t i = base + chunk / 2; i < base + chunk; ++i) {
      dir->SetEntry(i, child);
    }
    dir_lock_.UnlockShared();
    // Invalidates any checkpoint copy pass in flight: the checkpointer
    // rereads this counter after its walk and retries on a change.
    split_epoch_.fetch_add(1, std::memory_order_acq_rel);
    seg->lock.Unlock();
    return true;
  }

  void RehashToChild(HybridSegment* seg, HybridSegment* child,
                     uint32_t old_depth) {
    const uint32_t shift = 64 - (old_depth + 1);
    for (uint32_t b = 0; b < seg->num_buckets; ++b) {
      HybridBucket* src = seg->bucket(b);
      HybridBucket* dst = child->bucket(b);
      for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
        HybridSlot* slot = &src->slots[s];
        if (slot->key == kEmptyKey) continue;
        const uint64_t rh = KP::HashStored(slot->key);
        if (((rh >> shift) & 1) == 0) continue;
        // Same bucket index in the child; it starts empty, so the moved
        // subset always fits.
        bool placed = false;
        for (uint64_t d = 0; d < kSlotsPerBucket && !placed; ++d) {
          if (dst->slots[d].key != kEmptyKey) continue;
          dst->slots[d].off = slot->off;
          dst->slots[d].key = slot->key;
          dst->SetFp(d, HybridSegment::Fingerprint(rh));
          placed = true;
        }
        assert(placed && "hybrid child bucket overflow");
        slot->StoreKeyRelease(kEmptyKey);
        slot->StoreOffRelease(0);
      }
    }
    for (uint32_t s = 0; s < seg->stash_slots; ++s) {
      HybridSlot* slot = seg->stash(s);
      if (slot->key == kEmptyKey) continue;
      const uint64_t rh = KP::HashStored(slot->key);
      if (((rh >> shift) & 1) == 0) continue;
      bool placed = false;
      for (uint32_t d = 0; d < child->stash_slots && !placed; ++d) {
        if (child->stash(d)->key != kEmptyKey) continue;
        child->stash(d)->off = slot->off;
        child->stash(d)->key = slot->key;
        child->bucket(HybridSegment::BucketIndex(rh, child->num_buckets))
            ->SetStashHint();
        placed = true;
      }
      assert(placed && "hybrid child stash overflow");
      slot->StoreKeyRelease(kEmptyKey);
      slot->StoreOffRelease(0);
    }
  }

  void DoubleDirectory() {
    dir_lock_.Lock();
    HybridDirectory* old_dir = Dir();
    const uint64_t gd = old_dir->global_depth;
    HybridDirectory* new_dir = NewDirectory(gd + 1);
    for (uint64_t i = 0; i < (1ull << gd); ++i) {
      HybridSegment* seg = old_dir->entry(i);
      new_dir->SetEntry(2 * i, seg);
      new_dir->SetEntry(2 * i + 1, seg);
    }
    dir_.store(new_dir, std::memory_order_release);
    dir_lock_.Unlock();
  }

  // ---- batch scaffolding ----

  template <typename ExecFn>
  void ForEachGroup(const KeyArg* keys, size_t count, bool for_write,
                    ExecFn exec) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
      for (size_t i = 0; i < n; ++i) {
        exec(base + i, keys[base + i], hashes[i]);
      }
    }
  }

  void PrefetchGroup(const KeyArg* keys, size_t n, uint64_t* hashes,
                     bool for_write) {
    HybridDirectory* dir = Dir();
    const uint64_t gd = dir->global_depth;
    std::atomic<uint64_t>* entries = dir->entries();
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = KP::Hash(keys[i]);
      const uint64_t idx = gd == 0 ? 0 : (hashes[i] >> (64 - gd));
      util::PrefetchRead(&entries[idx]);
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t idx = gd == 0 ? 0 : (hashes[i] >> (64 - gd));
      auto* seg = reinterpret_cast<HybridSegment*>(
          entries[idx].load(std::memory_order_acquire));
      if (for_write) {
        util::PrefetchWrite(seg);  // header line holds the version lock
      } else {
        util::PrefetchRead(seg);
      }
      util::PrefetchRange(
          seg->bucket(HybridSegment::BucketIndex(hashes[i], seg->num_buckets)),
          sizeof(HybridBucket));
    }
  }

  // ---- state-machine (AMAC) engines ----

  struct AmacOp {
    uint64_t hash;
    HybridSegment* seg;
    uint32_t snap;
    uint64_t handle;
  };

  // Lock-free search machine. The DRAM passes (hash -> directory ->
  // bucket probe) suspend far less than the PM tables' equivalents —
  // the deep miss the engine exists to hide is the PM value record, so
  // the bucket-probe pass resolves the handle, puts the record line in
  // flight, and suspends once more before the execute pass reads the
  // value and revalidates.
  void AmacMultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                       OpStatus* statuses) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    AmacOp ops[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      HybridDirectory* dir = Dir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        ops[i].hash = KP::Hash(keys[base + i]);
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        util::PrefetchRead(&entries[idx]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        ops[i].seg = reinterpret_cast<HybridSegment*>(
            entries[idx].load(std::memory_order_acquire));
        util::PrefetchRead(ops[i].seg);
        util::PrefetchRange(
            ops[i].seg->bucket(HybridSegment::BucketIndex(
                ops[i].hash, ops[i].seg->num_buckets)),
            sizeof(HybridBucket));
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      // Bucket-probe pass: resolve the handle in DRAM, launch the PM
      // record prefetch, defer the value read to the execute pass.
      util::AmacReadyList exec_pending;
      util::AmacReadyList retry_pending;
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        HybridSegment* seg = ops[i].seg;
        const uint64_t h = ops[i].hash;
        const uint32_t snap = seg->lock.Snapshot();
        bool conflict = false;
        if (util::VersionLock::IsLocked(snap)) {
          lock_stats_.CountConflict();
          conflict = true;
        } else {
          const uint32_t ld = seg->local_depth();
          if (ld != 0 && (h >> (64 - ld)) != seg->PatternAcquire()) {
            lock_stats_.CountRetry();
            conflict = true;
          }
        }
        if (!conflict) {
          HybridBucket* bucket =
              seg->bucket(HybridSegment::BucketIndex(h, seg->num_buckets));
          bool in_stash = false;
          HybridSlot* slot =
              ProbeSegment(seg, bucket, h, keys[base + i], &in_stash);
          if (slot == nullptr) {
            if (seg->lock.Verify(snap)) {
              statuses[base + i] = OpStatus::kNotFound;
              continue;
            }
            lock_stats_.CountRetry();
            conflict = true;
          } else {
            const uint64_t handle = slot->LoadOffAcquire();
            if (handle != 0) {
              ops[i].snap = snap;
              ops[i].handle = handle;
              util::PrefetchRead(log_->Record(handle));
              exec_pending.Push(i);
              ctr.Suspend(util::AmacState::kBucketProbe);
              continue;
            }
            lock_stats_.CountRetry();
            conflict = true;
          }
        }
        // Conflict or stale view: re-resolve through the live directory,
        // put fresh lines in flight, finish in the retry pass.
        ops[i].seg = Lookup(h);
        util::PrefetchRead(ops[i].seg);
        util::PrefetchRange(
            ops[i].seg->bucket(
                HybridSegment::BucketIndex(h, ops[i].seg->num_buckets)),
            sizeof(HybridBucket));
        retry_pending.Push(i);
        ctr.Suspend(util::AmacState::kRetry);
      }
      // Execute pass: the PM value read over the warm record line.
      for (size_t j = 0; j < exec_pending.count; ++j) {
        const size_t i = exec_pending.idx[j];
        ++ctr.steps;
        LogRecord* rec = log_->Record(ops[i].handle);
        pmem::ReadProbe(rec);
        const uint64_t value = rec->LoadValueAcquire();
        if (ops[i].seg->lock.Verify(ops[i].snap)) {
          values[base + i] = value;
          statuses[base + i] = OpStatus::kOk;
        } else {
          lock_stats_.CountRetry();
          statuses[base + i] =
              SearchWithHash(keys[base + i], ops[i].hash, &values[base + i]);
        }
      }
      for (size_t j = 0; j < retry_pending.count; ++j) {
        const size_t i = retry_pending.idx[j];
        ++ctr.steps;
        statuses[base + i] =
            SearchWithHash(keys[base + i], ops[i].hash, &values[base + i]);
      }
      ctr.FlushTo(tele);
    }
  }

  // Write machine: fixed two-pass schedule, same reasoning as CCEH — the
  // whole write body runs under the segment's exclusive lock, so there is
  // no variable-length continuation to interleave.
  template <typename ExecFn>
  void AmacForEach(const KeyArg* keys, size_t count, ExecFn exec) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    AmacOp ops[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      HybridDirectory* dir = Dir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        ops[i].hash = KP::Hash(keys[base + i]);
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        util::PrefetchRead(&entries[idx]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const uint64_t idx = gd == 0 ? 0 : (ops[i].hash >> (64 - gd));
        auto* seg = reinterpret_cast<HybridSegment*>(
            entries[idx].load(std::memory_order_acquire));
        util::PrefetchWrite(seg);
        util::PrefetchRange(
            seg->bucket(HybridSegment::BucketIndex(ops[i].hash,
                                                   seg->num_buckets)),
            sizeof(HybridBucket));
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        exec(base + i, keys[base + i], ops[i].hash);
      }
      ctr.FlushTo(tele);
    }
  }

  // ---- verification helper ----

  bool VerifySegmentSlots(HybridSegment* seg) const {
    for (uint32_t b = 0; b < seg->num_buckets; ++b) {
      HybridBucket* bucket = seg->bucket(b);
      for (uint64_t s = 0; s < kSlotsPerBucket; ++s) {
        const HybridSlot* slot = &bucket->slots[s];
        if (slot->key == kEmptyKey) continue;
        const uint64_t rh = KP::HashStored(slot->key);
        if (HybridSegment::BucketIndex(rh, seg->num_buckets) != b) {
          return false;
        }
        if (static_cast<uint8_t>(bucket->fps >> (8 * s)) !=
            HybridSegment::Fingerprint(rh)) {
          return false;
        }
        if (!VerifySlotRecord(slot)) return false;
      }
    }
    for (uint32_t s = 0; s < seg->stash_slots; ++s) {
      const HybridSlot* slot = seg->stash(s);
      if (slot->key == kEmptyKey) continue;
      const uint64_t rh = KP::HashStored(slot->key);
      HybridBucket* home =
          seg->bucket(HybridSegment::BucketIndex(rh, seg->num_buckets));
      if ((home->meta & kStashHint) == 0) return false;
      if (!VerifySlotRecord(slot)) return false;
    }
    return true;
  }

  bool VerifySlotRecord(const HybridSlot* slot) const {
    if (slot->off == 0) return false;
    if (!log_->ContainsHandle(slot->off)) return false;
    const LogRecord* rec = log_->Record(slot->off);
    const uint64_t meta = rec->meta;
    if (meta == 0 || LogRecord::IsTombstone(meta)) return false;
    return rec->key == slot->key;
  }

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  epoch::EpochManager* epochs_;
  HybridOptions opts_;
  HybridRoot* root_;
  std::unique_ptr<SegmentArena> arena_;
  std::unique_ptr<HybridLog> log_;
  std::atomic<HybridDirectory*> dir_{nullptr};
  std::vector<std::unique_ptr<char[]>> retained_dirs_;
  util::RwSpinLock dir_lock_;
  // Bumped by every split; the checkpoint copy pass validates against it.
  std::atomic<uint64_t> split_epoch_{0};
  // Recovery provenance of this open (surfaced via Stats()).
  RecoverySource recovery_source_ = RecoverySource::kFresh;
  uint64_t replayed_records_ = 0;
  uint64_t recovery_staleness_ = 0;
  // Per-thread sharded telemetry: no shared cacheline on the hot paths.
  mutable util::ShardedOptimisticLockStats lock_stats_;
};

}  // namespace dash::hybrid

#endif  // DASH_PM_HYBRID_HYBRID_TABLE_H_
