// Runtime-tunable knobs for Dash tables.
//
// Every design decision the paper ablates (fingerprinting — Fig. 9,
// overflow metadata — Fig. 10, the bucket load-balancing stack — Fig. 11,
// optimistic vs. pessimistic locking — Fig. 13, stash bucket count —
// Figs. 10-12) is a runtime option so the benchmark harness can sweep them
// without recompiling.

#ifndef DASH_PM_DASH_CONFIG_H_
#define DASH_PM_DASH_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dash::util {
struct ShardedBucketLockStats;
}  // namespace dash::util

namespace dash {

// How a table's index came to exist at open (recovery provenance,
// surfaced through IndexStats and the sharded RecoveryReport).
enum class RecoverySource : uint32_t {
  kFresh = 0,       // created new — nothing to recover
  kNative = 1,      // PM-resident index: restart is already a load
  kScan = 2,        // full log scan rebuild (hybrid fallback path)
  kCheckpoint = 3,  // checkpoint load + bounded tail replay
};

inline const char* RecoverySourceName(RecoverySource s) {
  switch (s) {
    case RecoverySource::kFresh: return "fresh";
    case RecoverySource::kNative: return "native";
    case RecoverySource::kScan: return "scan";
    case RecoverySource::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

// Concurrency-control flavour (paper §4.4 and Fig. 13).
enum class ConcurrencyMode : uint8_t {
  kOptimistic = 0,  // version locks; readers never write
  kRwLock = 1,      // reader-writer spinlocks; readers write the lock word
};

// Batch execution engine behind the Multi* entry points (A/B knob,
// volatile). kGroup is the PR-1 three-stage pipeline: prefetch the whole
// group's directory entries, then its buckets, then execute each op
// serially. kAmac is the interleaved state-machine engine (util/amac.h):
// per-op state machines that also overlap execute-stage misses (stash
// probes, retries, Dash-LH address resolution, Level's bottom-level
// reprobe).
enum class BatchPipeline : uint8_t {
  kGroup = 0,
  kAmac = 1,
};

struct DashOptions {
  // --- structural (fixed at table creation, persisted) ---
  // Normal buckets per segment; power of two. 64 x 256-byte buckets = the
  // paper's 16 KB segment.
  uint32_t buckets_per_segment = 64;
  // Stash buckets per segment (paper default 2; Fig. 10-12 also use 4).
  uint32_t stash_buckets = 2;
  // Initial directory global depth (Dash-EH) — the table starts with
  // 2^initial_depth segments.
  uint32_t initial_depth = 1;
  // Dash-LH: initial segments in the first segment array ("the first
  // segment array will include 64 segments", §5.2).
  uint32_t lh_base_segments = 64;
  // Dash-LH hybrid-expansion stride (§5.2; paper uses 8).
  uint32_t lh_stride = 8;

  // --- recovery (volatile; per-open) ---
  // Checkpoint file path for tables with a DRAM-resident index (hybrid).
  // Empty disables checkpointing; the sharded store derives a per-shard
  // path from its prefix. Written crash-consistently (temp + checksum +
  // generation + rename); a bad file is rejected loudly at open and
  // recovery falls back to the full log scan.
  std::string checkpoint_path;
  // Worker threads for the hybrid tier's log-scan rebuild (the fallback
  // recovery path), parallelized by lane. 1 = serial.
  uint32_t rebuild_threads = 1;
  // Hybrid tier: dead-slot ratio (dead / lane capacity) above which a
  // Compact() pass rewrites a lane's oldest chunk — live records are
  // copied to the tail with fresh seqs and the drained chunk returns to
  // the pool, so chains shrink physically under update churn. 0 disables
  // compaction. The ShardExecutor drives the trigger from its idle path
  // (ExecutorOptions::compaction_interval_ms), never mid-batch.
  double compaction_trigger = 0.0;

  // --- behavioural (volatile; ablation knobs) ---
  bool use_fingerprints = true;      // Fig. 9
  bool use_overflow_metadata = true; // Fig. 10
  bool use_probing_bucket = true;    // Fig. 11 "+Probing"
  bool use_balanced_insert = true;   // Fig. 11 "+Balanced insert"
  bool use_displacement = true;      // Fig. 11 "+Displacement"
  ConcurrencyMode concurrency = ConcurrencyMode::kOptimistic;  // Fig. 13
  // Batch engine for Multi* (see BatchPipeline). The state-machine engine
  // is the default; kGroup keeps the PR-1 pipeline for A/B comparison.
  BatchPipeline batch_pipeline = BatchPipeline::kAmac;
  // Dash-EH: when a delete leaves a buddy segment pair with a combined
  // fullness below this threshold, the pair is merged (§4.6 "a segment
  // merge operation will be triggered if the load factor drops below a
  // threshold"). 0 disables merging (the paper's evaluation does not
  // exercise merges; this is the optional space-reclamation feature).
  double merge_threshold = 0.0;

  // --- telemetry (volatile) ---
  // Bucket-lock telemetry sink (acquisitions / contended spins). The
  // tables point this at their own DRAM counters at construction; every
  // BucketLock acquisition call site passes it through. Never persisted.
  util::ShardedBucketLockStats* lock_stats = nullptr;
};

}  // namespace dash

#endif  // DASH_PM_DASH_CONFIG_H_
