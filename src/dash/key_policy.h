// Key policies: fixed-length (inline) and variable-length (pointer) keys.
//
// Dash stores 16-byte records; the first 8 bytes hold the key or, for keys
// longer than 8 bytes, a pointer to a PM-resident key blob (§4.5). The
// policy abstracts hashing, storage conversion and comparison so the table
// code is identical for both modes.

#ifndef DASH_PM_DASH_KEY_POLICY_H_
#define DASH_PM_DASH_KEY_POLICY_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "pmem/allocator.h"
#include "pmem/persist.h"
#include "util/hash.h"

namespace dash {

// Fixed-length 8-byte keys stored inline.
struct IntKeyPolicy {
  using KeyArg = uint64_t;
  static constexpr bool kInline = true;

  static uint64_t Hash(KeyArg key) { return util::HashInt64(key); }

  // Converts an argument key to its stored representation (identity).
  static uint64_t MakeStored(KeyArg key, pmem::PmAllocator* /*alloc*/) {
    return key;
  }

  static uint64_t HashStored(uint64_t stored) {
    return util::HashInt64(stored);
  }

  static bool EqualStored(uint64_t stored, KeyArg key) {
    return stored == key;
  }

  static void FreeStored(uint64_t /*stored*/, pmem::PmAllocator* /*alloc*/) {}
};

// PM-resident variable-length key blob.
struct VarKey {
  uint32_t length;
  char data[];  // `length` bytes

  std::string_view view() const { return {data, length}; }
};

// Variable-length keys stored as pointers to VarKey blobs (§4.5). Each
// comparison against a stored key dereferences the pointer — a likely cache
// miss that we account as a PM read probe; fingerprinting exists precisely
// to avoid these.
struct VarKeyPolicy {
  using KeyArg = std::string_view;
  static constexpr bool kInline = false;

  static uint64_t Hash(KeyArg key) {
    return util::Murmur2_64A(key.data(), key.size());
  }

  static uint64_t MakeStored(KeyArg key, pmem::PmAllocator* alloc) {
    auto* blob = static_cast<VarKey*>(alloc->Alloc(sizeof(VarKey) + key.size()));
    if (blob == nullptr) return 0;
    blob->length = static_cast<uint32_t>(key.size());
    std::memcpy(blob->data, key.data(), key.size());
    pmem::Persist(blob, sizeof(VarKey) + key.size());
    return reinterpret_cast<uint64_t>(blob);
  }

  static uint64_t HashStored(uint64_t stored) {
    const auto* blob = reinterpret_cast<const VarKey*>(stored);
    return util::Murmur2_64A(blob->data, blob->length);
  }

  static bool EqualStored(uint64_t stored, KeyArg key) {
    const auto* blob = reinterpret_cast<const VarKey*>(stored);
    // Dereferencing the key pointer is the cache miss fingerprints avoid.
    pmem::ReadProbe(blob);
    return blob->length == key.size() &&
           std::memcmp(blob->data, key.data(), key.size()) == 0;
  }

  static void FreeStored(uint64_t stored, pmem::PmAllocator* alloc) {
    if (stored != 0) alloc->Free(reinterpret_cast<void*>(stored));
  }
};

}  // namespace dash

#endif  // DASH_PM_DASH_KEY_POLICY_H_
