// Outcome of a record operation on any of the four tables. Historically
// private to the Dash segment layer; the API v2 redesign surfaces it from
// every table (Dash-EH, Dash-LH, CCEH, Level hashing) so the adapter layer
// can map it onto api::Status without collapsing the outcome to a bool
// first. kNeedSplit/kRetry never escape a table's public entry points —
// the per-table retry loops consume them.

#ifndef DASH_PM_DASH_OP_STATUS_H_
#define DASH_PM_DASH_OP_STATUS_H_

#include <cstdint>

namespace dash {

enum class OpStatus : uint8_t {
  kOk,         // operation applied
  kExists,     // insert: key already present
  kNotFound,   // search/update/delete: key absent
  kNeedSplit,  // insert: segment is out of room — caller must split
  kRetry,      // verification failed (stale segment / concurrent writer)
  kOutOfMemory,
};

}  // namespace dash

#endif  // DASH_PM_DASH_OP_STATUS_H_
