// Explicit instantiations of the Dash tables for both key policies, so the
// heavy templates compile once into the library.

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"

namespace dash {

template class DashEH<IntKeyPolicy>;
template class DashEH<VarKeyPolicy>;
template class DashLH<IntKeyPolicy>;
template class DashLH<VarKeyPolicy>;

}  // namespace dash
