// Dash-Linear Hashing (paper §5).
//
// Segments are organized in arrays referenced by a tiny directory that uses
// hybrid expansion (§5.2): the directory entry sizes grow geometrically
// every `stride` entries, so a sub-KB, L1-resident directory indexes
// TB-scale data, while load factor only halves at (rare) size-class
// boundaries instead of at every expansion.
//
// Expansion follows LHlf (§5.3): the (N, Next) pair lives in one 64-bit
// word advanced by CAS; the thread that advances it performs the physical
// split of the old Next segment, and any thread that encounters a segment
// whose split is still pending (its buddy is in state NEW) helps complete
// it first. Splits of different segments therefore proceed in parallel.
//
// Overflow handling (§5.1): each segment has the fixed Dash stash buckets
// plus a chained stash; a segment split is triggered whenever a chained
// stash bucket has to be allocated.

#ifndef DASH_PM_DASH_DASH_LH_H_
#define DASH_PM_DASH_DASH_LH_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/segment.h"
#include "epoch/epoch_manager.h"
#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/amac.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash {

// Persistent root object of a Dash-LH table.
struct DashLhRoot {
  static constexpr size_t kMaxDirEntries = 96;

  std::atomic<uint64_t> meta;  // [N:32 | Next:32], atomically updated (§5.3)
  uint64_t dir[kMaxDirEntries];  // -> segment-pointer arrays
  uint64_t initialized;
  uint8_t global_version;
  uint8_t clean;
  uint8_t pad[6];
  uint32_t buckets_per_segment;
  uint32_t stash_buckets;
  uint32_t base_segments;  // capacity at N = 0
  uint32_t stride;         // hybrid-expansion stride (§5.2)

  static uint64_t PackMeta(uint32_t n, uint32_t next) {
    return (static_cast<uint64_t>(n) << 32) | next;
  }
  static uint32_t MetaN(uint64_t m) { return static_cast<uint32_t>(m >> 32); }
  static uint32_t MetaNext(uint64_t m) {
    return static_cast<uint32_t>(m & 0xFFFFFFFFu);
  }
};

template <typename KP = IntKeyPolicy>
class DashLH {
 public:
  using KeyArg = typename KP::KeyArg;

  DashLH(pmem::PmPool* pool, epoch::EpochManager* epochs,
         const DashOptions& options)
      : pool_(pool),
        alloc_(&pool->allocator()),
        epochs_(epochs),
        opts_(options),
        root_(static_cast<DashLhRoot*>(pool->root())) {
    opts_.lock_stats = &lock_stats_;  // table-local telemetry sink
    if (root_->initialized == 0) {
      CreateNew();
    } else {
      OpenExisting();
    }
    PrecomputeStarts();
  }

  DashLH(const DashLH&) = delete;
  DashLH& operator=(const DashLH&) = delete;

  void CloseClean() {
    epochs_->DrainAll();
    root_->clean = 1;
    pmem::Persist(&root_->clean, 1);
  }

  OpStatus Insert(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return InsertWithHash(key, value, h);
  }

  OpStatus Search(KeyArg key, uint64_t* out) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return SearchWithHash(key, h, out);
  }

  // Replaces the payload of an existing key. Returns kOk or kNotFound.
  OpStatus Update(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return UpdateWithHash(key, value, h);
  }

  OpStatus Delete(KeyArg key) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return DeleteWithHash(key, h);
  }

  // ---- batched operations ----
  //
  // Two engines (opts_.batch_pipeline), mirroring Dash-EH. The group
  // pipeline (PR-1) prefetches the segment-pointer array slots and bucket
  // lines stage-wise, then executes serially. The state-machine engine
  // additionally interleaves the hybrid-expansion address resolution
  // (§5.2) itself: each op's (N, Next) snapshot, array-slot load, header
  // validation, helping-path detours, bucket probe and stash/chain scan
  // are separate resumable steps, so the extra resolution work that
  // diluted Dash-LH's group-pipeline overlap now runs under other ops'
  // misses instead of in front of them.

  void MultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacMultiSearch(keys, count, values, statuses);
      return;
    }
    ForEachGroup(
        keys, count, /*for_write=*/false,
        [&](size_t i, KeyArg key, uint64_t h, Segment* seg) {
          // Probe the stage-2 segment directly, skipping the second
          // hybrid-directory resolution; SegmentValid (state + pattern)
          // rejects a stale pointer and the full retry path takes over.
          OpStatus status = OpStatus::kRetry;
          if (seg != nullptr && seg->version() == root_->global_version &&
              seg->state() != Segment::kNew) {
            status = seg->template Search<KP>(
                key, h, opts_, &values[i],
                [&] { return SegmentValid(seg, h); });
          }
          if (status == OpStatus::kRetry) {
            status = SearchWithHash(key, h, &values[i]);
          }
          statuses[i] = status;
        });
  }

  void MultiInsert(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = InsertWithHash(key, values[i], h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h, Segment*) {
                   statuses[i] = InsertWithHash(key, values[i], h);
                 });
  }

  void MultiUpdate(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = UpdateWithHash(key, values[i], h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h, Segment*) {
                   statuses[i] = UpdateWithHash(key, values[i], h);
                 });
  }

  void MultiDelete(const KeyArg* keys, size_t count, OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = DeleteWithHash(key, h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h, Segment*) {
                   statuses[i] = DeleteWithHash(key, h);
                 });
  }

  // Batch-engine selector (A/B testing hook; volatile).
  void set_batch_pipeline(BatchPipeline p) { opts_.batch_pipeline = p; }

  // Runs only the prefetch stages of the batch pipeline (pure hint; see
  // DashEH::PrefetchBatch).
  void PrefetchBatch(const KeyArg* keys, size_t count, bool for_write) {
    uint64_t hashes[util::kBatchGroupWidth];
    Segment* segs[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write, segs);
    }
  }

  // ---- introspection ----

  uint32_t rounds() const {
    return DashLhRoot::MetaN(root_->meta.load(std::memory_order_acquire));
  }
  uint32_t next_pointer() const {
    return DashLhRoot::MetaNext(root_->meta.load(std::memory_order_acquire));
  }
  const DashOptions& options() const { return opts_; }
  DashOptions& mutable_options() { return opts_; }

  // Walks every allocated segment once (statistics / tests).
  template <typename Fn>
  void ForEachSegment(Fn fn) const {
    for (size_t e = 0; e < DashLhRoot::kMaxDirEntries; ++e) {
      auto* array = ArrayAt(e);
      if (array == nullptr) break;
      const uint64_t size = ArraySize(e);
      for (uint64_t i = 0; i < size; ++i) {
        auto* seg = reinterpret_cast<Segment*>(
            array[i].load(std::memory_order_acquire));
        if (seg != nullptr) fn(seg);
      }
    }
  }

  DashTableStats Stats() const {
    DashTableStats stats;
    ForEachSegment([&](Segment* seg) {
      ++stats.segments;
      stats.records += seg->RecordCount();
      uint64_t slots =
          static_cast<uint64_t>(seg->num_buckets() + seg->num_stash()) *
          Bucket::kNumSlots;
      for (StashChainNode* node = seg->stash_chain(); node != nullptr;
           node = reinterpret_cast<StashChainNode*>(node->next)) {
        slots += Bucket::kNumSlots;
      }
      stats.capacity_slots += slots;
    });
    stats.load_factor = stats.capacity_slots == 0
                            ? 0.0
                            : static_cast<double>(stats.records) /
                                  static_cast<double>(stats.capacity_slots);
    stats.bucket_lock_acquisitions = lock_stats_.TotalAcquisitions();
    stats.bucket_lock_contended_spins = lock_stats_.TotalSpins();
    return stats;
  }

  uint64_t Size() const { return Stats().records; }
  double LoadFactor() const { return Stats().load_factor; }

  // Structural invariant check, for use at a quiescent point (after
  // open): meta covers an address range the directory can hold, every
  // published segment-pointer array and segment lives inside the pool,
  // and segment metadata is sane. Lazy recovery makes in-flight states
  // legal; wild pointers are not. Read-only.
  bool VerifyStructure() const {
    if (root_->base_segments == 0 || root_->stride == 0) return false;
    const uint64_t meta = root_->meta.load(std::memory_order_acquire);
    const uint32_t n = DashLhRoot::MetaN(meta);
    const uint32_t next = DashLhRoot::MetaNext(meta);
    if (n >= 32) return false;
    const uint64_t cap = static_cast<uint64_t>(root_->base_segments) << n;
    if (next >= cap || cap + next > total_capacity_) return false;
    for (size_t e = 0; e < DashLhRoot::kMaxDirEntries; ++e) {
      auto* array = ArrayAt(e);
      if (array == nullptr) continue;  // arrays past N may be unallocated
      if (!pool_->Contains(array)) return false;
      const uint64_t size = ArraySize(e);
      for (uint64_t i = 0; i < size; ++i) {
        auto* seg = reinterpret_cast<Segment*>(
            array[i].load(std::memory_order_acquire));
        if (seg == nullptr) continue;
        if (!pool_->Contains(seg)) return false;
        if (seg->state() > Segment::kMerging) return false;
        if (seg->num_buckets() == 0 ||
            (seg->num_buckets() & (seg->num_buckets() - 1)) != 0) {
          return false;
        }
      }
    }
    return true;
  }

  // Test hook: performs one expansion step (advance Next + split).
  void ExpandForTest() { TriggerExpand(); }

 private:
  // Batch scaffold: per group of
  // kBatchGroupWidth operations run the prefetch stages and invoke
  // exec(global_index, key, hash, segment) — the segment pointer resolved
  // by stage 2 (possibly stale or null; the exec body must revalidate).
  template <typename ExecFn>
  void ForEachGroup(const KeyArg* keys, size_t count, bool for_write,
                    ExecFn exec) {
    uint64_t hashes[util::kBatchGroupWidth];
    Segment* segs[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      // One guard per group: amortizes the seq-cst epoch pin over
      // kBatchGroupWidth ops without stalling reclamation for the whole
      // (unbounded) batch.
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write, segs);
      for (size_t i = 0; i < n; ++i) {
        exec(base + i, keys[base + i], hashes[i], segs[i]);
      }
    }
  }

  // ---- state-machine (AMAC) engine ----
  //
  // Monotonic per-op machines scheduled as state passes (util/amac.h).
  // Dash-LH's machine carries one more resolved artifact than Dash-EH's:
  // the hybrid-expansion walk (meta snapshot -> IndexFor -> EntryFor
  // binary search -> array slot) runs once per op in the Hash pass and
  // caches the slot pointer, so the extra address-resolution work that
  // diluted the group pipeline's overlap is both amortized and covered
  // by the slot-line prefetch issued in the same pass.

  // Interleaved search: Hash pass (hash; resolve + prefetch the
  // segment-pointer array slot) -> DirProbe pass (slot load; segment
  // header and probe lines prefetched together) -> BucketProbe pass
  // (validate the warm header: version, NEW-state, pattern — then probe
  // the warm pair; stash-implicated ops prefetch their planned lines and
  // suspend once more) -> Execute pass (stash/chain scans over warm
  // lines). Rare invalidations — a missing buddy slot, an unrecovered or
  // NEW segment, a stale pattern, a torn read — fall back to the
  // single-op loop, whose LookupLive performs the helping and recovery.
  void AmacMultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                       OpStatus* statuses) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    uint64_t hashes[util::kBatchGroupWidth];
    std::atomic<uint64_t>* slots[util::kBatchGroupWidth];
    Segment* segs[util::kBatchGroupWidth];
    Segment::StashPlan plans[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      // One (N, Next) snapshot per group, like the group pipeline: the
      // execute pass revalidates against the live segment state.
      const uint64_t meta = root_->meta.load(std::memory_order_acquire);
      const uint32_t rounds = DashLhRoot::MetaN(meta);
      const uint32_t next = DashLhRoot::MetaNext(meta);
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = KP::Hash(keys[base + i]);
        const uint64_t idx = IndexFor(SegBits(hashes[i]), rounds, next);
        const size_t e = EntryFor(idx);
        std::atomic<uint64_t>* array = ArrayAt(e);
        slots[i] = array == nullptr ? nullptr : &array[idx - starts_[e]];
        if (slots[i] != nullptr) {
          util::PrefetchRead(slots[i]);
        }
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        segs[i] = slots[i] == nullptr
                      ? nullptr
                      : reinterpret_cast<Segment*>(
                            slots[i]->load(std::memory_order_acquire));
        if (segs[i] != nullptr) {
          util::PrefetchRead(segs[i]);  // header: version / state / pattern
          segs[i]->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                                 opts_.use_probing_bucket,
                                 /*for_write=*/false);
        }
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      util::AmacReadyList stash_pending;
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const KeyArg key = keys[base + i];
        if (opts_.concurrency != ConcurrencyMode::kOptimistic) {
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        OpStatus status = OpStatus::kRetry;
        plans[i] = Segment::StashPlan{};
        Segment* seg = segs[i];
        if (seg != nullptr && seg->version() == root_->global_version &&
            seg->state() != Segment::kNew &&
            (SegBits(hashes[i]) & (Capacity(seg->local_depth()) - 1)) ==
                seg->pattern()) {
          status = seg->template SearchPairOptimistic<KP>(
              key, hashes[i], opts_, &values[base + i],
              [&] { return SegmentValid(seg, hashes[i]); }, &plans[i]);
        }
        if (status == OpStatus::kRetry) {
          ctr.Suspend(util::AmacState::kRetry);
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        if (plans[i].pending) {
          seg->PrefetchStashPlan(plans[i]);
          stash_pending.Push(i);
          ctr.Suspend(util::AmacState::kBucketProbe);
          continue;
        }
        statuses[base + i] = status;
      }
      for (size_t j = 0; j < stash_pending.count; ++j) {
        const size_t i = stash_pending.idx[j];
        ++ctr.steps;
        const KeyArg key = keys[base + i];
        const OpStatus status = segs[i]->template SearchStashPlanned<KP>(
            key, Segment::Fingerprint(hashes[i]), plans[i], opts_,
            &values[base + i]);
        if (status == OpStatus::kRetry) {
          ctr.Suspend(util::AmacState::kRetry);
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        statuses[base + i] = status;
      }
      ctr.FlushTo(tele);
    }
  }

  // Write engine: resolve + prefetch passes (the Hash pass runs the
  // hybrid-expansion walk and caches the array slot), then the locked op
  // bodies in index order — the ordered execute pass preserves the batch
  // API's same-type ordering, and the bodies revalidate through
  // LookupLive themselves, so a view gone stale since resolution costs
  // one warm retry.
  template <typename ExecFn>
  void AmacForEach(const KeyArg* keys, size_t count, bool for_write,
                   ExecFn exec) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    uint64_t hashes[util::kBatchGroupWidth];
    std::atomic<uint64_t>* slots[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      const uint64_t meta = root_->meta.load(std::memory_order_acquire);
      const uint32_t rounds = DashLhRoot::MetaN(meta);
      const uint32_t next = DashLhRoot::MetaNext(meta);
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = KP::Hash(keys[base + i]);
        const uint64_t idx = IndexFor(SegBits(hashes[i]), rounds, next);
        const size_t e = EntryFor(idx);
        std::atomic<uint64_t>* array = ArrayAt(e);
        slots[i] = array == nullptr ? nullptr : &array[idx - starts_[e]];
        if (slots[i] != nullptr) {
          util::PrefetchRead(slots[i]);
        }
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        Segment* seg = slots[i] == nullptr
                           ? nullptr
                           : reinterpret_cast<Segment*>(
                                 slots[i]->load(std::memory_order_acquire));
        if (seg != nullptr) {
          if (for_write) {
            util::PrefetchWrite(seg);
          } else {
            util::PrefetchRead(seg);
          }
          seg->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                             opts_.use_probing_bucket, for_write);
        }
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        exec(base + i, keys[base + i], hashes[i]);
      }
      ctr.FlushTo(tele);
    }
  }

  // ---- per-op bodies (caller holds an epoch guard) ----

  OpStatus InsertWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const uint64_t chain_before =
          reinterpret_cast<uint64_t>(seg->stash_chain());
      const OpStatus status = seg->template Insert<KP>(
          key, value, h, opts_, alloc_, /*allow_stash_chain=*/true,
          [&] { return SegmentValid(seg, h); });
      switch (status) {
        case OpStatus::kOk:
          // §5.1: a split is triggered whenever a chained stash bucket was
          // allocated to absorb the overflow.
          if (reinterpret_cast<uint64_t>(seg->stash_chain()) !=
              chain_before) {
            TriggerExpand();
          }
          return OpStatus::kOk;
        case OpStatus::kExists:
        case OpStatus::kOutOfMemory:
          return status;
        case OpStatus::kRetry:
          break;
        default:
          assert(false && "Dash-LH insert cannot require an in-place split");
          return OpStatus::kOutOfMemory;
      }
    }
  }

  OpStatus SearchWithHash(KeyArg key, uint64_t h, uint64_t* out) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Search<KP>(
          key, h, opts_, out, [&] { return SegmentValid(seg, h); });
      if (status != OpStatus::kRetry) return status;
    }
  }

  OpStatus UpdateWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Update<KP>(
          key, value, h, opts_, [&] { return SegmentValid(seg, h); });
      if (status != OpStatus::kRetry) return status;
    }
  }

  OpStatus DeleteWithHash(KeyArg key, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Delete<KP>(
          key, h, opts_, alloc_, [&] { return SegmentValid(seg, h); });
      if (status != OpStatus::kRetry) return status;
    }
  }

  // Stages 1-2 of the batch pipeline: hash the group, prefetch each key's
  // segment-pointer array slot, then the segment header and target bucket
  // lines. The (N, Next) snapshot may advance concurrently; the execute
  // stage revalidates through LookupLive, so a stale prefetch costs at
  // most an extra miss.
  void PrefetchGroup(const KeyArg* keys, size_t n, uint64_t* hashes,
                     bool for_write, Segment** segs) {
    const uint64_t meta = root_->meta.load(std::memory_order_acquire);
    const uint32_t rounds = DashLhRoot::MetaN(meta);
    const uint32_t next = DashLhRoot::MetaNext(meta);
    uint64_t idxs[util::kBatchGroupWidth];
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = KP::Hash(keys[i]);
      idxs[i] = IndexFor(SegBits(hashes[i]), rounds, next);
      const size_t e = EntryFor(idxs[i]);
      std::atomic<uint64_t>* array = ArrayAt(e);
      if (array != nullptr) {
        util::PrefetchRead(&array[idxs[i] - starts_[e]]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      Segment* seg = SlotAt(idxs[i]);
      segs[i] = seg;
      if (seg == nullptr) continue;
      util::PrefetchRead(seg);  // header: version / depth-state / pattern
      seg->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                         opts_.use_probing_bucket, for_write);
    }
  }

  // Segment-addressing bits: the upper 32 bits of the hash, disjoint from
  // the fingerprint (bits 0-7) and in-segment bucket bits (bits 8+).
  static uint64_t SegBits(uint64_t h) { return h >> 32; }

  uint64_t Capacity(uint32_t n) const {
    return static_cast<uint64_t>(root_->base_segments) << n;
  }

  // Classic linear-hash addressing (§2.2) over segment indices.
  uint64_t IndexFor(uint64_t hseg, uint32_t n, uint32_t next) const {
    const uint64_t cap = Capacity(n);
    uint64_t idx = hseg & (cap - 1);
    if (idx < next) idx = hseg & (2 * cap - 1);
    return idx;
  }

  // ---- hybrid-expansion directory (§5.2) ----

  uint64_t ArraySize(size_t entry) const {
    return static_cast<uint64_t>(root_->base_segments)
           << (entry / root_->stride);
  }

  void PrecomputeStarts() {
    uint64_t start = 0;
    for (size_t e = 0; e < DashLhRoot::kMaxDirEntries; ++e) {
      starts_[e] = start;
      start += ArraySize(e);
    }
    total_capacity_ = start;
  }

  size_t EntryFor(uint64_t g) const {
    // Entry sizes are monotone; a linear scan over <=96 entries would do,
    // but the stride structure allows direct computation per size class.
    size_t lo = 0, hi = DashLhRoot::kMaxDirEntries;
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (starts_[mid] <= g) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::atomic<uint64_t>* ArrayAt(size_t entry) const {
    const uint64_t ptr =
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->dir[entry])
            ->load(std::memory_order_acquire);
    return reinterpret_cast<std::atomic<uint64_t>*>(ptr);
  }

  Segment* SlotAt(uint64_t g) const {
    const size_t e = EntryFor(g);
    auto* array = ArrayAt(e);
    if (array == nullptr) return nullptr;
    return reinterpret_cast<Segment*>(
        array[g - starts_[e]].load(std::memory_order_acquire));
  }

  // Ensures the directory array and the segment object for slot `g` exist.
  // `level`/`pattern=g` are used when the segment must be created (as a
  // split buddy, state NEW). Serialized by dir_lock_ (rare path).
  Segment* EnsureSlot(uint64_t g, uint32_t level) {
    Segment* seg = SlotAt(g);
    if (seg != nullptr) return seg;
    util::SpinLockGuard guard(dir_lock_);
    const size_t e = EntryFor(g);
    auto* array = ArrayAt(e);
    if (array == nullptr) {
      auto r = alloc_->Reserve(ArraySize(e) * sizeof(uint64_t));
      if (!r.valid()) return nullptr;
      alloc_->Activate(r, &root_->dir[e]);
      array = ArrayAt(e);
      CRASH_POINT("lh_after_array_publish");
    }
    seg = reinterpret_cast<Segment*>(
        array[g - starts_[e]].load(std::memory_order_acquire));
    if (seg != nullptr) return seg;
    auto r = alloc_->Reserve(
        Segment::AllocSize(opts_.buckets_per_segment, opts_.stash_buckets));
    if (!r.valid()) return nullptr;
    seg = static_cast<Segment*>(r.ptr);
    seg->Initialize(opts_.buckets_per_segment, opts_.stash_buckets, level,
                    /*pattern=*/g, Segment::kNew, root_->global_version);
    seg->PersistAll();
    alloc_->Activate(
        r, reinterpret_cast<uint64_t*>(&array[g - starts_[e]]));
    CRASH_POINT("lh_after_buddy_publish");
    return seg;
  }

  // ---- creation / open ----

  void CreateNew() {
    root_->buckets_per_segment = opts_.buckets_per_segment;
    root_->stash_buckets = opts_.stash_buckets;
    root_->base_segments = opts_.lh_base_segments;
    root_->stride = opts_.lh_stride;
    root_->global_version = 1;
    root_->clean = 0;
    root_->meta.store(DashLhRoot::PackMeta(0, 0), std::memory_order_relaxed);
    pmem::Persist(root_, sizeof(*root_));
    PrecomputeStarts();

    // Allocate the initial segments (level 0, CLEAN). Idempotent on crash:
    // `initialized` is only set once every slot is populated.
    for (uint64_t g = 0; g < root_->base_segments; ++g) {
      Segment* seg = EnsureSlot(g, /*level=*/0);
      assert(seg != nullptr && "pool too small for initial LH segments");
      if (seg->state() != Segment::kClean) {
        seg->SetDepthState(0, Segment::kClean);
      }
    }
    root_->initialized = 1;
    pmem::PersistObject(&root_->initialized);
  }

  void OpenExisting() {
    opts_.buckets_per_segment = root_->buckets_per_segment;
    opts_.stash_buckets = root_->stash_buckets;
    opts_.lh_base_segments = root_->base_segments;
    opts_.lh_stride = root_->stride;
    PrecomputeStarts();
    if (root_->clean) {
      root_->clean = 0;
      pmem::Persist(&root_->clean, 1);
      return;
    }
    if (root_->global_version == 255) {
      ForEachSegment([](Segment* seg) { seg->SetVersion(1); });
      root_->global_version = 0;
    } else {
      ++root_->global_version;
    }
    pmem::Persist(&root_->global_version, 1);
  }

  // ---- addressing + lazy recovery ----

  Segment* LookupLive(uint64_t h) {
    const uint64_t hseg = SegBits(h);
    for (;;) {
      const uint64_t meta = root_->meta.load(std::memory_order_acquire);
      const uint64_t idx = IndexFor(hseg, DashLhRoot::MetaN(meta),
                                    DashLhRoot::MetaNext(meta));
      Segment* seg = SlotAt(idx);
      if (seg == nullptr) {
        // The buddy slot for a crashed advance may be missing; create it so
        // the helping path below can run.
        const uint32_t n = DashLhRoot::MetaN(meta);
        seg = EnsureSlot(idx, LevelOfIndex(idx, n));
        if (seg == nullptr) continue;
      }
      if (seg->version() != root_->global_version) {
        LazyRecover(seg);
        continue;
      }
      if (seg->state() == Segment::kNew) {
        // Pending split: help complete it, then retry (§5.3 / LHlf).
        HelpSplitOfBuddy(seg);
        continue;
      }
      // The segment must own the key's range at its level.
      const uint64_t mask = Capacity(seg->local_depth()) - 1;
      if ((hseg & mask) != seg->pattern()) {
        // Stale view (concurrent expansion); retry with fresh metadata.
        continue;
      }
      return seg;
    }
  }

  // Level implied by a slot index: index g belongs to round level L where
  // base*2^(L-1) <= g < base*2^L (level 0 for g < base).
  uint32_t LevelOfIndex(uint64_t g, uint32_t n_hint) const {
    const uint64_t base = root_->base_segments;
    if (g < base) return n_hint;  // original slots: level grows with rounds
    uint32_t level = 0;
    while ((base << level) <= g) ++level;
    return level;
  }

  bool SegmentValid(Segment* seg, uint64_t h) const {
    if (seg->state() == Segment::kNew) return false;
    const uint64_t hseg = SegBits(h);
    const uint64_t mask = Capacity(seg->local_depth()) - 1;
    return (hseg & mask) == seg->pattern();
  }

  void LazyRecover(Segment* seg) {
    Segment* target = seg;
    if (seg->state() == Segment::kNew) {
      Segment* src = SourceOf(seg);
      if (src != nullptr) target = src;
    }
    std::lock_guard<std::mutex> lock(recovery_mutexes_[MutexIndex(target)]);
    if (target->version() != root_->global_version) {
      RecoverSegmentLocked(target);
    }
    if (seg != target && seg->version() != root_->global_version) {
      std::lock_guard<std::mutex> lock2(recovery_mutexes_[MutexIndex(seg)]);
      if (seg->version() != root_->global_version) {
        seg->ResetAllLocks();
        seg->template DedupAdjacent<KP>(opts_);
        seg->template RebuildOverflowMetadata<KP>(opts_);
        seg->SetVersion(root_->global_version);
      }
    }
  }

  // The split source of a buddy segment: its pattern without the top bit.
  Segment* SourceOf(Segment* buddy) {
    const uint32_t level = buddy->local_depth();
    if (level == 0) return nullptr;
    const uint64_t src_pattern =
        buddy->pattern() & (Capacity(level - 1) - 1);
    if (src_pattern == buddy->pattern()) return nullptr;
    return SlotAt(src_pattern);
  }

  static size_t MutexIndex(const Segment* seg) {
    return (reinterpret_cast<uintptr_t>(seg) >> 6) % kRecoveryMutexes;
  }

  void RecoverSegmentLocked(Segment* seg) {
    seg->ResetAllLocks();
    if (seg->state() == Segment::kSplitting) {
      // Roll the split forward (the buddy exists: it is created before the
      // SPLITTING mark).
      Segment* buddy = SlotAt(seg->pattern() + Capacity(seg->local_depth()));
      assert(buddy != nullptr);
      buddy->ResetAllLocks();
      seg->template DedupAdjacent<KP>(opts_);
      buddy->template DedupAdjacent<KP>(opts_);
      RehashToBuddy(seg, buddy, seg->local_depth(), /*check_unique=*/true);
      CommitSplit(seg, buddy, seg->local_depth());
      buddy->template RebuildOverflowMetadata<KP>(opts_);
      seg->template RebuildOverflowMetadata<KP>(opts_);
      buddy->SetVersion(root_->global_version);
      seg->SetVersion(root_->global_version);
      return;
    }
    seg->template DedupAdjacent<KP>(opts_);
    seg->template RebuildOverflowMetadata<KP>(opts_);
    seg->SetVersion(root_->global_version);
  }

  // ---- expansion (§5.3) ----

  void TriggerExpand() {
    for (;;) {
      const uint64_t meta = root_->meta.load(std::memory_order_acquire);
      const uint32_t n = DashLhRoot::MetaN(meta);
      const uint32_t next = DashLhRoot::MetaNext(meta);
      const uint64_t cap = Capacity(n);

      Segment* src = SlotAt(next);
      if (src == nullptr) return;  // should not happen
      if (src->state() == Segment::kNew) {
        // The source is itself a buddy whose own split (previous round) is
        // still pending; complete that first.
        HelpSplitOfBuddy(src);
        continue;
      }
      // Pre-create the buddy slot *before* advancing Next (§5.3: "the
      // accessing thread first probes the directory entry for the new
      // segment to test whether the corresponding segment array is
      // allocated").
      Segment* buddy = EnsureSlot(next + cap, src->local_depth() + 1);
      if (buddy == nullptr) return;  // out of memory: skip expansion
      CRASH_POINT("lh_expand_after_buddy");

      uint64_t expected = meta;
      const uint64_t desired = (next + 1 == cap)
                                   ? DashLhRoot::PackMeta(n + 1, 0)
                                   : DashLhRoot::PackMeta(n, next + 1);
      if (root_->meta.compare_exchange_strong(expected, desired,
                                              std::memory_order_acq_rel)) {
        pmem::Persist(&root_->meta, sizeof(root_->meta));
        CRASH_POINT("lh_expand_after_advance");
        // The advancing thread performs the physical split; concurrent
        // advances split different segments in parallel.
        HelpSplit(src, buddy);
        return;
      }
      // Raced with another expansion; retry with fresh metadata.
    }
  }

  void HelpSplitOfBuddy(Segment* buddy) {
    Segment* src = SourceOf(buddy);
    if (src == nullptr) return;
    HelpSplit(src, buddy);
  }

  // Physically splits `src` into `buddy` (level +1). Idempotent: returns
  // immediately if the split already completed. Only the source's buckets
  // are locked: the buddy is unreachable while in state NEW (every accessor
  // helps first, and helpers serialize on the source's bucket locks), so
  // the rehash can populate it without locking — exactly like Dash-EH's
  // not-yet-published child segment.
  void HelpSplit(Segment* src, Segment* buddy) {
    src->LockAllBuckets(opts_);
    if (buddy->state() != Segment::kNew ||
        buddy->local_depth() != src->local_depth() + 1) {
      src->UnlockAllBuckets(opts_);
      return;  // already done (or src itself advanced)
    }
    const uint32_t level = src->local_depth();
    src->SetDepthState(level, Segment::kSplitting);
    CRASH_POINT("lh_split_after_mark");
    RehashToBuddy(src, buddy, level, /*check_unique=*/false);
    CRASH_POINT("lh_split_after_rehash");
    CommitSplit(src, buddy, level);
    CRASH_POINT("lh_split_after_commit");
    src->template RebuildOverflowMetadata<KP>(opts_);
    src->UnlockAllBuckets(opts_);
  }

  void CommitSplit(Segment* src, Segment* buddy, uint32_t level) {
    pmem::MiniTx tx(pool_);
    tx.Stage(buddy->depth_state_word(),
             (static_cast<uint64_t>(level + 1) << 32) | Segment::kClean);
    tx.Stage(src->depth_state_word(),
             (static_cast<uint64_t>(level + 1) << 32) | Segment::kClean);
    tx.Commit();
  }

  // Moves records whose level+1 pattern gains the top bit from src to
  // buddy. Buddy's buckets are locked by the caller (or invisible).
  void RehashToBuddy(Segment* src, Segment* buddy, uint32_t level,
                     bool check_unique) {
    const uint64_t moved_pattern = src->pattern() + Capacity(level);
    const uint64_t mask = Capacity(level + 1) - 1;
    src->ForEachRecord([&](Bucket* bucket, int slot) {
      const uint64_t stored = bucket->record(slot).key;
      const uint64_t rh = KP::HashStored(stored);
      if ((SegBits(rh) & mask) != moved_pattern) return;
      const uint64_t value = bucket->record(slot).value;
      const uint8_t fp = Segment::Fingerprint(rh);
      const uint32_t y0 = Segment::BucketIndex(rh, buddy->num_buckets());
      const uint32_t y1 = (y0 + 1) & (buddy->num_buckets() - 1);
      Bucket* c0 = buddy->bucket(y0);
      Bucket* c1 = opts_.use_probing_bucket ? buddy->bucket(y1) : nullptr;
      bool already = false;
      if (check_unique) {
        already = c0->FindStoredKey<KP>(fp, stored, opts_) >= 0 ||
                  (c1 != nullptr &&
                   c1->FindStoredKey<KP>(fp, stored, opts_) >= 0);
        for (uint32_t i = 0; i < buddy->num_stash() && !already; ++i) {
          already = buddy->stash_bucket(i)->FindStoredKey<KP>(fp, stored,
                                                              opts_) >= 0;
        }
        for (StashChainNode* node = buddy->stash_chain();
             node != nullptr && !already;
             node = reinterpret_cast<StashChainNode*>(node->next)) {
          already = node->bucket.FindStoredKey<KP>(fp, stored, opts_) >= 0;
        }
      }
      if (!already) {
        const OpStatus st = buddy->template InsertStoredLocked<KP>(
            stored, value, fp, y0, c0, c1, opts_, alloc_,
            /*allow_stash_chain=*/true);
        assert(st == OpStatus::kOk && "buddy overflow during LH split");
        (void)st;
      }
      bucket->DeleteSlot(slot);
    });
  }

  static constexpr size_t kRecoveryMutexes = 64;

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  epoch::EpochManager* epochs_;
  DashOptions opts_;
  DashLhRoot* root_;
  util::ShardedBucketLockStats lock_stats_;  // DRAM, per-thread sharded
  util::SpinLock dir_lock_;  // volatile; serializes slot/array creation
  std::mutex recovery_mutexes_[kRecoveryMutexes];
  uint64_t starts_[DashLhRoot::kMaxDirEntries];
  uint64_t total_capacity_ = 0;
};

}  // namespace dash

#endif  // DASH_PM_DASH_DASH_LH_H_
