// The Dash segment (paper §4.1, Figure 3): a fixed number of normal
// buckets followed by stash buckets, plus the metadata needed for
// structural modification operations (SMOs) and lazy recovery.
//
// All record-level operations live here — bucket pair locking, balanced
// insert, displacement, stashing (Algorithm 1/2), optimistic and
// pessimistic search (Algorithm 3), deletion, and the per-segment recovery
// passes (§4.8: lock clearing, duplicate removal, overflow-metadata
// rebuild). The table classes (Dash-EH / Dash-LH) layer directory
// addressing and SMOs on top.

#ifndef DASH_PM_DASH_SEGMENT_H_
#define DASH_PM_DASH_SEGMENT_H_

#include <atomic>
#include <cstdint>

#include "dash/bucket.h"
#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/op_status.h"
#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/persist.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash {

// Aggregate table statistics (shared by Dash-EH and Dash-LH).
struct DashTableStats {
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  uint64_t directory_entries = 0;
  double load_factor = 0.0;
  // Bucket-lock telemetry (cumulative since table open): exclusive
  // acquisitions performed by the write paths and backoff pauses spent
  // contended behind a holder (see util::ShardedBucketLockStats).
  uint64_t bucket_lock_acquisitions = 0;
  uint64_t bucket_lock_contended_spins = 0;
};

// Overflow stash-chain node (Dash-LH, §5.1): an extra stash bucket linked
// off the segment when the fixed stash buckets fill up.
struct StashChainNode {
  uint64_t next;  // StashChainNode*; 0 terminates
  uint64_t pad[7];
  Bucket bucket;
};

class Segment {
 public:
  // SMO states (§4.7).
  static constexpr uint32_t kClean = 0;
  static constexpr uint32_t kSplitting = 1;
  static constexpr uint32_t kNew = 2;
  // Right sibling of an in-flight merge (extension; see DashEH::TryMerge).
  static constexpr uint32_t kMerging = 3;

  // ---- layout ----

  static size_t AllocSize(uint32_t num_buckets, uint32_t num_stash) {
    return sizeof(Segment) +
           (static_cast<size_t>(num_buckets) + num_stash) * sizeof(Bucket);
  }

  Bucket* bucket(uint32_t i) {
    return reinterpret_cast<Bucket*>(this + 1) + i;
  }
  const Bucket* bucket(uint32_t i) const {
    return reinterpret_cast<const Bucket*>(this + 1) + i;
  }
  Bucket* stash_bucket(uint32_t i) { return bucket(num_buckets_ + i); }

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t num_stash() const { return num_stash_; }

  // ---- hash-bit layout (matches the open-source Dash) ----
  // bits 0..7   : fingerprint
  // bits 8..    : bucket index within the segment
  // top bits    : segment addressing (MSBs for Dash-EH, §4.7)

  static uint8_t Fingerprint(uint64_t hash) {
    return static_cast<uint8_t>(hash & 0xFF);
  }
  static uint32_t BucketIndex(uint64_t hash, uint32_t num_buckets) {
    return static_cast<uint32_t>((hash >> 8) & (num_buckets - 1));
  }

  // ---- header accessors ----

  uint32_t local_depth() const {
    return static_cast<uint32_t>(
        depth_state_.load(std::memory_order_acquire) >> 32);
  }
  uint32_t state() const {
    return static_cast<uint32_t>(
        depth_state_.load(std::memory_order_acquire) & 0xFFFFFFFFu);
  }
  // Updates depth and state in one atomic persistent store (the split
  // commit point relies on this).
  void SetDepthState(uint32_t depth, uint32_t state) {
    const uint64_t v = (static_cast<uint64_t>(depth) << 32) | state;
    depth_state_.store(v, std::memory_order_release);
    pmem::Persist(&depth_state_, sizeof(depth_state_));
  }
  // For staging the split commit inside a mini-transaction.
  uint64_t* depth_state_word() {
    return reinterpret_cast<uint64_t*>(&depth_state_);
  }

  uint64_t pattern() const { return pattern_; }
  void SetPattern(uint64_t pattern) {
    pattern_ = pattern;
    pmem::Persist(&pattern_, sizeof(pattern_));
  }

  Segment* side_link() const {
    return reinterpret_cast<Segment*>(
        side_link_.load(std::memory_order_acquire));
  }
  // The publication target for split allocations (§4.7): once this points
  // at the new segment, the allocation is owned by the table.
  uint64_t* side_link_word() {
    return reinterpret_cast<uint64_t*>(&side_link_);
  }

  StashChainNode* stash_chain() const {
    return reinterpret_cast<StashChainNode*>(
        stash_chain_.load(std::memory_order_acquire));
  }
  uint64_t* stash_chain_word() {
    return reinterpret_cast<uint64_t*>(&stash_chain_);
  }

  uint8_t version() const { return version_.load(std::memory_order_acquire); }
  void SetVersion(uint8_t v) {
    version_.store(v, std::memory_order_release);
    pmem::Persist(&version_, sizeof(version_));
  }

  // ---- construction ----

  // Initializes a freshly allocated (zeroed) segment.
  void Initialize(uint32_t num_buckets, uint32_t num_stash, uint32_t depth,
                  uint64_t pattern, uint32_t state, uint8_t version) {
    num_buckets_ = num_buckets;
    num_stash_ = num_stash;
    pattern_ = pattern;
    side_link_.store(0, std::memory_order_relaxed);
    stash_chain_.store(0, std::memory_order_relaxed);
    version_.store(version, std::memory_order_relaxed);
    depth_state_.store((static_cast<uint64_t>(depth) << 32) | state,
                       std::memory_order_relaxed);
    for (uint32_t i = 0; i < num_buckets + num_stash; ++i) bucket(i)->Clear();
  }

  // Persists the entire segment (after construction).
  void PersistAll() {
    pmem::Persist(this, AllocSize(num_buckets_, num_stash_));
  }

  // Prefetches the metadata cachelines a subsequent probe of `hash` will
  // touch: the target bucket's 32-byte metadata block (lock, bitmap word,
  // fingerprints, overflow/stash hints — all in its first line) and the
  // probing bucket's. `num_buckets` is the table-wide structural constant
  // passed in by the caller so the prefetch itself never stalls on this
  // segment's header; bucket() is pure pointer arithmetic.
  void PrefetchProbe(uint64_t hash, uint32_t num_buckets, bool probing_bucket,
                     bool for_write) const {
    const uint32_t y0 = BucketIndex(hash, num_buckets);
    const Bucket* b0 = bucket(y0);
    // The whole 256-byte target bucket: the probe reads the metadata line
    // first, but the matching record is in one of the three record lines.
    util::PrefetchRange(b0, sizeof(Bucket), for_write);
    if (probing_bucket) {
      const Bucket* b1 = bucket((y0 + 1) & (num_buckets - 1));
      if (for_write) {
        util::PrefetchWrite(b1);
      } else {
        util::PrefetchRead(b1);
      }
    }
  }

  // ---- record operations ----

  // Inserts (key -> value). Algorithm 1: lock target+probing bucket, verify
  // via `verify` (the table re-checks the directory reference under the
  // locks), uniqueness check, then balanced insert -> displacement ->
  // stash. `allow_stash_chain` enables Dash-LH's chained stash buckets.
  template <typename KP, typename VerifyFn>
  OpStatus Insert(typename KP::KeyArg key, uint64_t value, uint64_t hash,
                  const DashOptions& opts, pmem::PmAllocator* alloc,
                  bool allow_stash_chain, VerifyFn verify) {
    const uint8_t fp = Fingerprint(hash);
    const uint32_t mask = num_buckets_ - 1;
    const uint32_t y0 = BucketIndex(hash, num_buckets_);
    const uint32_t y1 = (y0 + 1) & mask;
    Bucket* b0 = bucket(y0);
    Bucket* b1 = opts.use_probing_bucket ? bucket(y1) : nullptr;

    LockPair(b0, b1, y0, y1, opts);
    if (!verify()) {
      UnlockPair(b0, b1, opts);
      return OpStatus::kRetry;
    }

    if (ContainsLocked<KP>(key, fp, y0, b0, b1, opts)) {
      UnlockPair(b0, b1, opts);
      return OpStatus::kExists;
    }

    const uint64_t stored = KP::MakeStored(key, alloc);
    if constexpr (!KP::kInline) {
      if (stored == 0) {
        UnlockPair(b0, b1, opts);
        return OpStatus::kOutOfMemory;
      }
    }

    const OpStatus status = InsertStoredLocked<KP>(
        stored, value, fp, y0, b0, b1, opts, alloc, allow_stash_chain);
    if (status != OpStatus::kOk) KP::FreeStored(stored, alloc);
    UnlockPair(b0, b1, opts);
    return status;
  }

  // Insert body once the bucket pair is locked and the stored key exists.
  // Also used by split rehash (which moves already-stored keys).
  template <typename KP>
  OpStatus InsertStoredLocked(uint64_t stored, uint64_t value, uint8_t fp,
                              uint32_t y0, Bucket* b0, Bucket* b1,
                              const DashOptions& opts,
                              pmem::PmAllocator* alloc,
                              bool allow_stash_chain) {
    const uint32_t mask = num_buckets_ - 1;
    // 1. Balanced insert (§4.3): pick the less-full of target/probing.
    Bucket* dest = nullptr;
    if (b1 == nullptr) {
      dest = b0->IsFull() ? nullptr : b0;
    } else if (opts.use_balanced_insert) {
      if (!b0->IsFull() && b0->count() <= b1->count()) {
        dest = b0;
      } else if (!b1->IsFull()) {
        dest = b1;
      } else if (!b0->IsFull()) {
        dest = b0;
      }
    } else {
      // Plain probing: target first, then the probing bucket.
      dest = !b0->IsFull() ? b0 : (!b1->IsFull() ? b1 : nullptr);
    }
    if (dest != nullptr) {
      dest->Insert(stored, value, fp, /*member=*/dest == b1);
      return OpStatus::kOk;
    }

    // 2. Displacement (§4.3, Algorithm 2).
    if (opts.use_displacement && b1 != nullptr) {
      dest = TryDisplace(y0, (y0 + 1) & mask, b0, b1, opts);
      if (dest != nullptr) {
        dest->Insert(stored, value, fp, /*member=*/dest == b1);
        return OpStatus::kOk;
      }
    }

    // 3. Stash (§4.3).
    if (num_stash_ > 0 || allow_stash_chain) {
      return StashInsert<KP>(stored, value, fp, b0, b1, opts, alloc,
                             allow_stash_chain);
    }
    return OpStatus::kNeedSplit;
  }

  // Resumable-search continuation: which stash buckets (and whether the
  // chain) still need probing after the bucket pair came up empty. Filled
  // by SearchPairOptimistic; consumed by SearchStashPlanned, optionally
  // with a PrefetchStashPlan suspend point in between (the AMAC engine's
  // execute-stage overlap).
  struct StashPlan {
    uint32_t mask = 0;        // stash-bucket positions to probe
    bool scan_chain = false;  // also walk the chained stash buckets
    bool pending = false;     // true => the stash scan must still run
  };

  // First half of the optimistic search (Algorithm 3): probe the
  // target/probing bucket pair under version validation. Returns kOk,
  // kRetry, or kNotFound; a kNotFound with plan->pending set means the
  // verdict is provisional and SearchStashPlanned must complete it.
  template <typename KP, typename VerifyFn>
  OpStatus SearchPairOptimistic(typename KP::KeyArg key, uint64_t hash,
                                const DashOptions& opts, uint64_t* out,
                                VerifyFn verify, StashPlan* plan) {
    const uint8_t fp = Fingerprint(hash);
    const uint32_t mask = num_buckets_ - 1;
    const uint32_t y0 = BucketIndex(hash, num_buckets_);
    Bucket* b0 = bucket(y0);
    Bucket* b1 = opts.use_probing_bucket ? bucket((y0 + 1) & mask) : nullptr;

    const uint32_t v0 = b0->lock().Snapshot();
    const uint32_t v1 = b1 != nullptr ? b1->lock().Snapshot() : 0;
    if (!verify()) return OpStatus::kRetry;

    int slot = b0->FindKey<KP>(fp, key, opts);
    if (slot >= 0) {
      const uint64_t value = b0->record(slot).value;
      if (!b0->lock().Verify(v0)) return OpStatus::kRetry;
      *out = value;
      return OpStatus::kOk;
    }
    if (b1 != nullptr) {
      slot = b1->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        const uint64_t value = b1->record(slot).value;
        if (!b1->lock().Verify(v1)) return OpStatus::kRetry;
        *out = value;
        return OpStatus::kOk;
      }
    }
    // A negative answer is only valid if neither bucket changed while we
    // probed (a record can migrate between the pair via displacement).
    if (!b0->lock().Verify(v0) ||
        (b1 != nullptr && !b1->lock().Verify(v1))) {
      return OpStatus::kRetry;
    }
    if (num_stash_ == 0 && stash_chain() == nullptr) {
      return OpStatus::kNotFound;
    }
    if (opts.use_overflow_metadata && b0->overflow_count() == 0) {
      uint32_t hints = b0->OverflowStashHints(fp, /*member=*/false);
      if (b1 != nullptr) hints |= b1->OverflowStashHints(fp, /*member=*/true);
      // The metadata lives in the (unlocked) bucket pair; re-validate it.
      if (!b0->lock().Verify(v0) ||
          (b1 != nullptr && !b1->lock().Verify(v1))) {
        return OpStatus::kRetry;
      }
      if (hints == 0) return OpStatus::kNotFound;  // early stop (§4.3)
      plan->mask = hints;
      plan->scan_chain = false;
    } else {
      plan->mask = ~0u;
      plan->scan_chain = true;
    }
    plan->pending = true;
    return OpStatus::kNotFound;
  }

  // Prefetches the stash cachelines a planned scan will touch. The stash
  // bucket addresses are pure arithmetic off the segment pointer; only the
  // first chain node is prefetched (chains are short and rare).
  void PrefetchStashPlan(const StashPlan& plan) const {
    for (uint32_t pos = 0; pos < num_stash_; ++pos) {
      if ((plan.mask >> pos) & 1) {
        util::PrefetchRange(bucket(num_buckets_ + pos), sizeof(Bucket));
      }
    }
    if (plan.scan_chain) {
      StashChainNode* node = stash_chain();
      if (node != nullptr) {
        util::PrefetchRead(node);  // `next` + pad line
        util::PrefetchRange(&node->bucket, sizeof(Bucket));
      }
    }
  }

  // Second half of the optimistic search: the planned stash scan, with
  // per-stash-bucket version validation.
  template <typename KP>
  OpStatus SearchStashPlanned(typename KP::KeyArg key, uint8_t fp,
                              const StashPlan& plan, const DashOptions& opts,
                              uint64_t* out) {
    for (uint32_t pos = 0; pos < num_stash_; ++pos) {
      if (((plan.mask >> pos) & 1) == 0) continue;
      Bucket* s = stash_bucket(pos);
      const uint32_t vs = s->lock().Snapshot();
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        const uint64_t value = s->record(slot).value;
        if (!s->lock().Verify(vs)) return OpStatus::kRetry;
        *out = value;
        return OpStatus::kOk;
      }
      if (!s->lock().Verify(vs)) return OpStatus::kRetry;
    }
    if (plan.scan_chain) {
      for (StashChainNode* node = stash_chain(); node != nullptr;
           node = reinterpret_cast<StashChainNode*>(node->next)) {
        Bucket* s = &node->bucket;
        const uint32_t vs = s->lock().Snapshot();
        const int slot = s->FindKey<KP>(fp, key, opts);
        if (slot >= 0) {
          const uint64_t value = s->record(slot).value;
          if (!s->lock().Verify(vs)) return OpStatus::kRetry;
          *out = value;
          return OpStatus::kOk;
        }
        if (!s->lock().Verify(vs)) return OpStatus::kRetry;
      }
    }
    return OpStatus::kNotFound;
  }

  // Searches for `key`. Algorithm 3 for optimistic mode (pair probe +
  // planned stash scan, the same two halves the AMAC engine suspends
  // between); shared locks in rw mode (Fig. 13 baseline).
  template <typename KP, typename VerifyFn>
  OpStatus Search(typename KP::KeyArg key, uint64_t hash,
                  const DashOptions& opts, uint64_t* out, VerifyFn verify) {
    const uint8_t fp = Fingerprint(hash);
    const uint32_t mask = num_buckets_ - 1;
    const uint32_t y0 = BucketIndex(hash, num_buckets_);
    Bucket* b0 = bucket(y0);
    Bucket* b1 = opts.use_probing_bucket ? bucket((y0 + 1) & mask) : nullptr;

    if (opts.concurrency == ConcurrencyMode::kOptimistic) {
      StashPlan plan;
      const OpStatus status =
          SearchPairOptimistic<KP>(key, hash, opts, out, verify, &plan);
      if (!plan.pending) return status;
      return SearchStashPlanned<KP>(key, fp, plan, opts, out);
    }

    // Pessimistic mode: hold shared locks on the pair while probing.
    b0->lock().LockShared(opts.lock_stats);
    if (b1 != nullptr) b1->lock().LockShared(opts.lock_stats);
    if (!verify()) {
      if (b1 != nullptr) b1->lock().UnlockShared();
      b0->lock().UnlockShared();
      return OpStatus::kRetry;
    }
    OpStatus result = OpStatus::kNotFound;
    int slot = b0->FindKey<KP>(fp, key, opts);
    if (slot >= 0) {
      *out = b0->record(slot).value;
      result = OpStatus::kOk;
    } else if (b1 != nullptr &&
               (slot = b1->FindKey<KP>(fp, key, opts)) >= 0) {
      *out = b1->record(slot).value;
      result = OpStatus::kOk;
    }
    if (result == OpStatus::kNotFound) {
      result = StashSearchPessimistic<KP>(key, fp, y0, b0, b1, opts, out);
    }
    if (b1 != nullptr) b1->lock().UnlockShared();
    b0->lock().UnlockShared();
    return result;
  }

  // Updates the payload of an existing key in place (extension: the value
  // is an opaque 8-byte word, so an atomic persistent store suffices).
  // Returns kOk, kNotFound or kRetry.
  template <typename KP, typename VerifyFn>
  OpStatus Update(typename KP::KeyArg key, uint64_t value, uint64_t hash,
                  const DashOptions& opts, VerifyFn verify) {
    const uint8_t fp = Fingerprint(hash);
    const uint32_t mask = num_buckets_ - 1;
    const uint32_t y0 = BucketIndex(hash, num_buckets_);
    const uint32_t y1 = (y0 + 1) & mask;
    Bucket* b0 = bucket(y0);
    Bucket* b1 = opts.use_probing_bucket ? bucket(y1) : nullptr;

    LockPair(b0, b1, y0, y1, opts);
    if (!verify()) {
      UnlockPair(b0, b1, opts);
      return OpStatus::kRetry;
    }
    OpStatus result = OpStatus::kNotFound;
    int slot = b0->FindKey<KP>(fp, key, opts);
    if (slot >= 0) {
      b0->UpdateSlotValue(slot, value);
      result = OpStatus::kOk;
    } else if (b1 != nullptr &&
               (slot = b1->FindKey<KP>(fp, key, opts)) >= 0) {
      b1->UpdateSlotValue(slot, value);
      result = OpStatus::kOk;
    } else {
      result = StashUpdate<KP>(key, value, fp, b0, b1, opts);
    }
    UnlockPair(b0, b1, opts);
    return result;
  }

  // Deletes `key`. §4.6: clear the slot's allocation bit; for stash
  // records also fix the overflow metadata in the target/probing bucket.
  template <typename KP, typename VerifyFn>
  OpStatus Delete(typename KP::KeyArg key, uint64_t hash,
                  const DashOptions& opts, pmem::PmAllocator* alloc,
                  VerifyFn verify) {
    const uint8_t fp = Fingerprint(hash);
    const uint32_t mask = num_buckets_ - 1;
    const uint32_t y0 = BucketIndex(hash, num_buckets_);
    const uint32_t y1 = (y0 + 1) & mask;
    Bucket* b0 = bucket(y0);
    Bucket* b1 = opts.use_probing_bucket ? bucket(y1) : nullptr;

    LockPair(b0, b1, y0, y1, opts);
    if (!verify()) {
      UnlockPair(b0, b1, opts);
      return OpStatus::kRetry;
    }

    OpStatus result = OpStatus::kNotFound;
    int slot = b0->FindKey<KP>(fp, key, opts);
    if (slot >= 0) {
      KP::FreeStored(b0->record(slot).key, alloc);
      b0->DeleteSlot(slot);
      result = OpStatus::kOk;
    } else if (b1 != nullptr &&
               (slot = b1->FindKey<KP>(fp, key, opts)) >= 0) {
      KP::FreeStored(b1->record(slot).key, alloc);
      b1->DeleteSlot(slot);
      result = OpStatus::kOk;
    } else {
      result = StashDelete<KP>(key, fp, b0, b1, opts, alloc);
    }
    UnlockPair(b0, b1, opts);
    return result;
  }

  // ---- iteration (rehash, statistics, validation) ----

  // Invokes fn(Bucket*, slot) for every occupied slot, including stash and
  // chained stash buckets. Not concurrency-safe; callers hold all bucket
  // locks (SMO) or run single-threaded.
  template <typename Fn>
  void ForEachRecord(Fn fn) {
    for (uint32_t i = 0; i < num_buckets_ + num_stash_; ++i) {
      Bucket* b = bucket(i);
      const uint32_t alloc_bits = Bucket::AllocBits(b->meta());
      for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
        if ((alloc_bits >> slot) & 1) fn(b, static_cast<int>(slot));
      }
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      const uint32_t alloc_bits = Bucket::AllocBits(node->bucket.meta());
      for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
        if ((alloc_bits >> slot) & 1) fn(&node->bucket, static_cast<int>(slot));
      }
    }
  }

  uint64_t RecordCount() {
    uint64_t n = 0;
    ForEachRecord([&n](Bucket*, int) { ++n; });
    return n;
  }

  // Fraction of slots occupied (capacity counts normal + fixed stash
  // buckets + any chained stash buckets).
  double Fullness() {
    uint64_t capacity =
        static_cast<uint64_t>(num_buckets_ + num_stash_) * Bucket::kNumSlots;
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      capacity += Bucket::kNumSlots;
    }
    return static_cast<double>(RecordCount()) / static_cast<double>(capacity);
  }

  // ---- SMO / recovery support (§4.7, §4.8) ----

  // Locks every bucket (normal + stash) — SMOs lock the whole segment.
  void LockAllBuckets(const DashOptions& opts) {
    for (uint32_t i = 0; i < num_buckets_ + num_stash_; ++i) {
      bucket(i)->lock().LockExclusive(opts.concurrency, opts.lock_stats);
    }
  }
  void UnlockAllBuckets(const DashOptions& opts) {
    for (uint32_t i = 0; i < num_buckets_ + num_stash_; ++i) {
      bucket(i)->lock().UnlockExclusive(opts.concurrency);
    }
  }

  // Recovery step 1: clear all bucket locks (§4.8).
  void ResetAllLocks() {
    for (uint32_t i = 0; i < num_buckets_ + num_stash_; ++i) {
      bucket(i)->ResetLock();
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      node->bucket.ResetLock();
    }
    chain_lock_.Unlock();
  }

  // Recovery step 2: remove duplicates left by an interrupted displacement
  // (§4.6). A displaced record is first inserted into its destination and
  // then removed from its source; a crash in between leaves the key in two
  // adjacent buckets. Rule: if a record in bucket b+1 has its membership
  // bit set (home = b) and the key also exists in b, drop the b+1 copy
  // (both copies carry identical payloads).
  template <typename KP>
  void DedupAdjacent(const DashOptions& opts) {
    const uint32_t mask = num_buckets_ - 1;
    for (uint32_t y = 0; y < num_buckets_; ++y) {
      Bucket* home = bucket(y);
      Bucket* next = bucket((y + 1) & mask);
      const uint32_t meta = next->meta();
      const uint32_t alloc_bits = Bucket::AllocBits(meta);
      for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
        if (((alloc_bits >> slot) & 1) == 0) continue;
        if (!next->SlotMembership(meta, slot)) continue;
        const uint64_t stored = next->record(slot).key;
        const uint8_t fp = next->fingerprint(slot);
        if (home->FindStoredKey<KP>(fp, stored, opts) >= 0) {
          next->DeleteSlot(static_cast<int>(slot));
        }
      }
    }
  }

  // Recovery step 3: rebuild the (non-crash-consistent) overflow metadata
  // from the stash contents (§4.6, §4.8).
  template <typename KP>
  void RebuildOverflowMetadata(const DashOptions& /*opts*/) {
    const uint32_t mask = num_buckets_ - 1;
    for (uint32_t i = 0; i < num_buckets_; ++i) {
      bucket(i)->ClearOverflowMetadata();
    }
    auto account = [&](Bucket* stash, int slot, uint32_t pos) {
      const uint64_t stored = stash->record(slot).key;
      const uint64_t h = KP::HashStored(stored);
      const uint32_t y = BucketIndex(h, num_buckets_);
      const uint8_t fp = Fingerprint(h);
      Bucket* target = bucket(y);
      Bucket* probing = bucket((y + 1) & mask);
      if (!target->TrySetOverflowFp(fp, pos, /*member=*/false) &&
          !probing->TrySetOverflowFp(fp, pos, /*member=*/true)) {
        target->IncOverflowCount();
      }
    };
    for (uint32_t i = 0; i < num_stash_; ++i) {
      Bucket* s = stash_bucket(i);
      const uint32_t alloc_bits = Bucket::AllocBits(s->meta());
      for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
        if ((alloc_bits >> slot) & 1) account(s, static_cast<int>(slot), i);
      }
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      const uint32_t alloc_bits = Bucket::AllocBits(node->bucket.meta());
      for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
        if ((alloc_bits >> slot) & 1) {
          account(&node->bucket, static_cast<int>(slot),
                  Bucket::kStashPosUnencodable);
        }
      }
    }
  }

 private:
  void LockPair(Bucket* b0, Bucket* b1, uint32_t y0, uint32_t y1,
                const DashOptions& opts) {
    if (b1 == nullptr || b0 == b1) {
      b0->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      return;
    }
    // Global ascending-index order prevents deadlock across wrapped pairs.
    if (y0 < y1) {
      b0->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      b1->lock().LockExclusive(opts.concurrency, opts.lock_stats);
    } else {
      b1->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      b0->lock().LockExclusive(opts.concurrency, opts.lock_stats);
    }
  }
  void UnlockPair(Bucket* b0, Bucket* b1, const DashOptions& opts) {
    if (b1 != nullptr && b1 != b0) b1->lock().UnlockExclusive(opts.concurrency);
    b0->lock().UnlockExclusive(opts.concurrency);
  }

  // Uniqueness check under the pair locks; also consults the stash.
  template <typename KP>
  bool ContainsLocked(typename KP::KeyArg key, uint8_t fp, uint32_t /*y0*/,
                      Bucket* b0, Bucket* b1, const DashOptions& opts) {
    if (b0->FindKey<KP>(fp, key, opts) >= 0) return true;
    if (b1 != nullptr && b1->FindKey<KP>(fp, key, opts) >= 0) return true;
    uint64_t ignored;
    return StashLookupUnsafe<KP>(key, fp, b0, b1, opts, &ignored) ==
           OpStatus::kOk;
  }

  // Stash lookup without version validation (caller holds the pair locks,
  // which is sufficient: any concurrent insert/delete of this key would
  // need those locks).
  template <typename KP>
  OpStatus StashLookupUnsafe(typename KP::KeyArg key, uint8_t fp, Bucket* b0,
                             Bucket* b1, const DashOptions& opts,
                             uint64_t* out) {
    if (num_stash_ == 0 && stash_chain() == nullptr) {
      return OpStatus::kNotFound;
    }
    if (opts.use_overflow_metadata && b0->overflow_count() == 0) {
      uint32_t hints = b0->OverflowStashHints(fp, /*member=*/false);
      if (b1 != nullptr) hints |= b1->OverflowStashHints(fp, /*member=*/true);
      for (uint32_t pos = 0; pos < num_stash_ && hints != 0; ++pos) {
        if (((hints >> pos) & 1) == 0) continue;
        const int slot = stash_bucket(pos)->FindKey<KP>(fp, key, opts);
        if (slot >= 0) {
          *out = stash_bucket(pos)->record(slot).value;
          return OpStatus::kOk;
        }
      }
      return OpStatus::kNotFound;
    }
    // No early-stop metadata (or overflowed counter): scan all stash
    // buckets and the chain.
    for (uint32_t i = 0; i < num_stash_; ++i) {
      const int slot = stash_bucket(i)->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        *out = stash_bucket(i)->record(slot).value;
        return OpStatus::kOk;
      }
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      const int slot = node->bucket.FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        *out = node->bucket.record(slot).value;
        return OpStatus::kOk;
      }
    }
    return OpStatus::kNotFound;
  }

  template <typename KP>
  OpStatus StashSearchPessimistic(typename KP::KeyArg key, uint8_t fp,
                                  uint32_t /*y0*/, Bucket* b0, Bucket* b1,
                                  const DashOptions& opts, uint64_t* out) {
    if (num_stash_ == 0 && stash_chain() == nullptr) {
      return OpStatus::kNotFound;
    }
    uint32_t scan_mask = ~0u;
    bool scan_chain = true;
    if (opts.use_overflow_metadata && b0->overflow_count() == 0) {
      uint32_t hints = b0->OverflowStashHints(fp, /*member=*/false);
      if (b1 != nullptr) hints |= b1->OverflowStashHints(fp, /*member=*/true);
      if (hints == 0) return OpStatus::kNotFound;
      scan_mask = hints;
      scan_chain = false;
    }
    for (uint32_t pos = 0; pos < num_stash_; ++pos) {
      if (((scan_mask >> pos) & 1) == 0) continue;
      Bucket* s = stash_bucket(pos);
      s->lock().LockShared(opts.lock_stats);
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        *out = s->record(slot).value;
        s->lock().UnlockShared();
        return OpStatus::kOk;
      }
      s->lock().UnlockShared();
    }
    if (scan_chain) {
      for (StashChainNode* node = stash_chain(); node != nullptr;
           node = reinterpret_cast<StashChainNode*>(node->next)) {
        Bucket* s = &node->bucket;
        s->lock().LockShared(opts.lock_stats);
        const int slot = s->FindKey<KP>(fp, key, opts);
        if (slot >= 0) {
          *out = s->record(slot).value;
          s->lock().UnlockShared();
          return OpStatus::kOk;
        }
        s->lock().UnlockShared();
      }
    }
    return OpStatus::kNotFound;
  }

  // Displacement (Algorithm 2). Requires b0/b1 locked. Frees a slot in b0
  // or b1 by moving a record to its alternative bucket; returns the bucket
  // with the freed slot, or nullptr.
  Bucket* TryDisplace(uint32_t y0, uint32_t y1, Bucket* b0, Bucket* b1,
                      const DashOptions& opts) {
    const uint32_t mask = num_buckets_ - 1;
    // Case 1: move a record homed in b1 (membership unset) to b1's probing
    // bucket b2 = b1+1.
    const uint32_t y2 = (y1 + 1) & mask;
    if (y2 != y0 && y2 != y1) {
      const int victim = b1->FindVictim(/*member=*/false);
      if (victim >= 0) {
        Bucket* b2 = bucket(y2);
        if (b2->lock().TryLockExclusive(opts.concurrency, opts.lock_stats)) {
          if (!b2->IsFull()) {
            const Record rec = b1->record(victim);
            const uint8_t vfp = b1->fingerprint(victim);
            b2->Insert(rec.key, rec.value, vfp, /*member=*/true);
            CRASH_POINT("displace_after_insert");
            b1->DeleteSlot(victim);
            b2->lock().UnlockExclusive(opts.concurrency);
            return b1;
          }
          b2->lock().UnlockExclusive(opts.concurrency);
        }
      }
    }
    // Case 2: move a record in b0 whose home is b0-1 (membership set) back
    // to its home bucket.
    const uint32_t ym = (y0 - 1) & mask;
    if (ym != y0 && ym != y1) {
      const int victim = b0->FindVictim(/*member=*/true);
      if (victim >= 0) {
        Bucket* bm = bucket(ym);
        if (bm->lock().TryLockExclusive(opts.concurrency, opts.lock_stats)) {
          if (!bm->IsFull()) {
            const Record rec = b0->record(victim);
            const uint8_t vfp = b0->fingerprint(victim);
            bm->Insert(rec.key, rec.value, vfp, /*member=*/false);
            CRASH_POINT("displace_after_insert");
            b0->DeleteSlot(victim);
            bm->lock().UnlockExclusive(opts.concurrency);
            return b0;
          }
          bm->lock().UnlockExclusive(opts.concurrency);
        }
      }
    }
    return nullptr;
  }

  // Stash insertion (§4.3) + overflow metadata maintenance.
  template <typename KP>
  OpStatus StashInsert(uint64_t stored, uint64_t value, uint8_t fp,
                       Bucket* b0, Bucket* b1, const DashOptions& opts,
                       pmem::PmAllocator* alloc, bool allow_stash_chain) {
    for (uint32_t i = 0; i < num_stash_; ++i) {
      Bucket* s = stash_bucket(i);
      s->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      const bool inserted = s->Insert(stored, value, fp, /*member=*/false);
      s->lock().UnlockExclusive(opts.concurrency);
      if (inserted) {
        CRASH_POINT("stash_after_insert");
        SetOverflowMetadata(fp, i, b0, b1, opts);
        return OpStatus::kOk;
      }
    }
    if (allow_stash_chain) {
      return ChainInsert<KP>(stored, value, fp, b0, alloc, opts);
    }
    return OpStatus::kNeedSplit;
  }

  void SetOverflowMetadata(uint8_t fp, uint32_t pos, Bucket* b0, Bucket* b1,
                           const DashOptions& opts) {
    if (!opts.use_overflow_metadata) return;
    if (!b0->TrySetOverflowFp(fp, pos, /*member=*/false) &&
        !(b1 != nullptr && b1->TrySetOverflowFp(fp, pos, /*member=*/true))) {
      b0->IncOverflowCount();
    }
  }

  // Dash-LH: insert into (possibly extending) the stash chain. The caller
  // should trigger a segment split afterwards (§5.1: "a segment split is
  // triggered whenever a stash bucket is allocated").
  template <typename KP>
  OpStatus ChainInsert(uint64_t stored, uint64_t value, uint8_t fp,
                       Bucket* b0, pmem::PmAllocator* alloc,
                       const DashOptions& opts) {
    util::SpinLockGuard guard(chain_lock_);
    StashChainNode* node = stash_chain();
    while (node != nullptr && node->bucket.IsFull()) {
      node = reinterpret_cast<StashChainNode*>(node->next);
    }
    if (node == nullptr) {
      pmem::PmAllocator::Reservation r = alloc->Reserve(sizeof(StashChainNode));
      if (!r.valid()) return OpStatus::kOutOfMemory;
      node = static_cast<StashChainNode*>(r.ptr);
      node->next = stash_chain_.load(std::memory_order_relaxed);
      node->bucket.Clear();
      pmem::Persist(node, sizeof(StashChainNode));
      alloc->Activate(r, stash_chain_word());
      CRASH_POINT("lh_chain_after_publish");
    }
    node->bucket.lock().LockExclusive(opts.concurrency, opts.lock_stats);
    node->bucket.Insert(stored, value, fp, /*member=*/false);
    node->bucket.lock().UnlockExclusive(opts.concurrency);
    // Chain positions are not encodable in overflow fingerprints; force
    // stash scans via the counter.
    if (opts.use_overflow_metadata) b0->IncOverflowCount();
    return OpStatus::kOk;
  }

  // In-place update of a stash (or chained-stash) record.
  template <typename KP>
  OpStatus StashUpdate(typename KP::KeyArg key, uint64_t value, uint8_t fp,
                       Bucket* b0, Bucket* b1, const DashOptions& opts) {
    for (uint32_t i = 0; i < num_stash_; ++i) {
      Bucket* s = stash_bucket(i);
      s->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        s->UpdateSlotValue(slot, value);
        s->lock().UnlockExclusive(opts.concurrency);
        return OpStatus::kOk;
      }
      s->lock().UnlockExclusive(opts.concurrency);
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      Bucket* s = &node->bucket;
      s->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        s->UpdateSlotValue(slot, value);
        s->lock().UnlockExclusive(opts.concurrency);
        return OpStatus::kOk;
      }
      s->lock().UnlockExclusive(opts.concurrency);
    }
    (void)b0;
    (void)b1;
    return OpStatus::kNotFound;
  }

  // Stash delete + overflow metadata fix-up (§4.6).
  template <typename KP>
  OpStatus StashDelete(typename KP::KeyArg key, uint8_t fp, Bucket* b0,
                       Bucket* b1, const DashOptions& opts,
                       pmem::PmAllocator* alloc) {
    for (uint32_t i = 0; i < num_stash_; ++i) {
      Bucket* s = stash_bucket(i);
      s->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        KP::FreeStored(s->record(slot).key, alloc);
        s->DeleteSlot(slot);
        s->lock().UnlockExclusive(opts.concurrency);
        if (opts.use_overflow_metadata) {
          if (!b0->ClearOverflowFp(fp, i, /*member=*/false) &&
              !(b1 != nullptr &&
                b1->ClearOverflowFp(fp, i, /*member=*/true))) {
            b0->DecOverflowCount();
          }
        }
        return OpStatus::kOk;
      }
      s->lock().UnlockExclusive(opts.concurrency);
    }
    for (StashChainNode* node = stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      Bucket* s = &node->bucket;
      s->lock().LockExclusive(opts.concurrency, opts.lock_stats);
      const int slot = s->FindKey<KP>(fp, key, opts);
      if (slot >= 0) {
        KP::FreeStored(s->record(slot).key, alloc);
        s->DeleteSlot(slot);
        s->lock().UnlockExclusive(opts.concurrency);
        if (opts.use_overflow_metadata) b0->DecOverflowCount();
        return OpStatus::kOk;
      }
      s->lock().UnlockExclusive(opts.concurrency);
    }
    return OpStatus::kNotFound;
  }

  // ---- persistent header (64 bytes, then the bucket array) ----
  std::atomic<uint64_t> side_link_{0};    // right-neighbor chain (§4.7)
  std::atomic<uint64_t> stash_chain_{0};  // Dash-LH chained stash (§5.1)
  std::atomic<uint64_t> depth_state_{0};  // [local_depth:32 | state:32]
  uint64_t pattern_ = 0;
  std::atomic<uint8_t> version_{0};       // lazy-recovery version (§4.8)
  uint8_t pad0_[3] = {};
  uint32_t num_buckets_ = 0;
  uint32_t num_stash_ = 0;
  // Volatile tail (meaningless across restarts; reset by recovery).
  util::SpinLock chain_lock_;
  uint8_t pad1_[19] = {};
};

static_assert(sizeof(Segment) == 64, "segment header must stay one line");

}  // namespace dash

#endif  // DASH_PM_DASH_SEGMENT_H_
