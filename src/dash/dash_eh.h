// Dash-Extendible Hashing (paper §4).
//
// A persistent directory of segment pointers, indexed by the *most
// significant* bits of the hash (§4.7) so the directory entries covering a
// segment are contiguous — a split updates a dense entry range. Segment
// splits follow the crash-consistent protocol of §4.7:
//
//   1. mark the source segment SPLITTING;
//   2. reserve + initialize the new segment (state NEW, depth+1) and commit
//      the allocation by publishing it into the source's side-link
//      (allocate-activate: at no crash point is the segment leaked);
//   3. rehash: move matching records, deleting each from the source after
//      it is persisted in the child;
//   4. update the source pattern and the directory entries (idempotent);
//   5. commit: one mini-transaction atomically flips both segments'
//      (depth, state) words to (depth+1, CLEAN).
//
// Lazy recovery (§4.8): opening the table after a crash only increments a
// one-byte global version. A segment whose version byte mismatches is
// recovered on first access — locks cleared, duplicates removed, overflow
// metadata rebuilt, and any in-flight split rolled forward (child reachable
// via the side-link, state NEW) or rolled back.

#ifndef DASH_PM_DASH_DASH_EH_H_
#define DASH_PM_DASH_DASH_EH_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/segment.h"
#include "epoch/epoch_manager.h"
#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/amac.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash {

// Persistent directory: global depth + 2^depth segment pointers.
struct EhDirectory {
  uint64_t global_depth;

  static size_t AllocSize(uint64_t depth) {
    return sizeof(EhDirectory) + (1ull << depth) * sizeof(uint64_t);
  }
  std::atomic<uint64_t>* entries() {
    return reinterpret_cast<std::atomic<uint64_t>*>(this + 1);
  }
  Segment* entry(uint64_t i) {
    return reinterpret_cast<Segment*>(
        entries()[i].load(std::memory_order_acquire));
  }
  void SetEntry(uint64_t i, Segment* seg) {
    entries()[i].store(reinterpret_cast<uint64_t>(seg),
                       std::memory_order_release);
  }
};

// Persistent root object of a Dash-EH table (stored in the pool root area).
struct DashEhRoot {
  uint64_t directory;         // EhDirectory*
  uint64_t initialized;       // creation completed marker
  uint8_t global_version;     // V (§4.8)
  uint8_t clean;              // clean-shutdown marker (§4.8)
  uint8_t pad[6];
  uint32_t buckets_per_segment;  // structural options are persisted
  uint32_t stash_buckets;
};

template <typename KP = IntKeyPolicy>
class DashEH {
 public:
  using KeyArg = typename KP::KeyArg;

  // Opens (or creates) the table living in `pool`'s root area. Structural
  // options are taken from the pool when it already holds a table. The
  // open path performs the constant recovery work of §4.8: read the clean
  // marker, possibly bump the one-byte global version.
  DashEH(pmem::PmPool* pool, epoch::EpochManager* epochs,
         const DashOptions& options)
      : pool_(pool),
        alloc_(&pool->allocator()),
        epochs_(epochs),
        opts_(options),
        root_(static_cast<DashEhRoot*>(pool->root())) {
    opts_.lock_stats = &lock_stats_;  // table-local telemetry sink
    if (root_->directory == 0 || root_->initialized == 0) {
      CreateNew();
    } else {
      OpenExisting();
    }
  }

  DashEH(const DashEH&) = delete;
  DashEH& operator=(const DashEH&) = delete;

  // Marks a clean shutdown for the *table* (§4.8). Also drains pending
  // epoch reclamations (they reference the pool, which the caller closes
  // next). The caller still closes the pool itself.
  void CloseClean() {
    epochs_->DrainAll();
    root_->clean = 1;
    pmem::Persist(&root_->clean, 1);
  }

  // Inserts key -> value. Returns kOk, kExists or kOutOfMemory.
  OpStatus Insert(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return InsertWithHash(key, value, h);
  }

  // Replaces the payload of an existing key. Returns kOk or kNotFound.
  OpStatus Update(KeyArg key, uint64_t value) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return UpdateWithHash(key, value, h);
  }

  // Looks up `key`; stores the value in *out. Returns kOk or kNotFound.
  OpStatus Search(KeyArg key, uint64_t* out) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return SearchWithHash(key, h, out);
  }

  // Deletes `key`. Returns kOk or kNotFound. When merging is enabled
  // (options().merge_threshold > 0), deletions occasionally sample the
  // segment's fullness and merge under-utilized buddy pairs (§4.6).
  OpStatus Delete(KeyArg key) {
    const uint64_t h = KP::Hash(key);
    epoch::EpochManager::Guard guard(*epochs_);
    return DeleteWithHash(key, h);
  }

  // ---- batched operations ----
  //
  // Two engines behind the same entry points (opts_.batch_pipeline):
  //
  //  * kGroup — the PR-1 three-stage pipeline: (1) hash every key and
  //    prefetch its directory entry, (2) resolve the segment pointers and
  //    prefetch each segment header plus the target/probing bucket lines,
  //    (3) execute the ordinary per-op logic serially over warm lines.
  //  * kAmac — per-op state machines (util/amac.h) scheduled as state
  //    passes: every state transition that touches a cold line
  //    (directory entry, segment header, bucket pair, stash buckets)
  //    issues a prefetch and yields, so execute-stage misses — stash
  //    probes, SMO-triggered retries — overlap across the group instead
  //    of stalling serially.
  //
  // One epoch guard covers each group in both engines, and both reuse the
  // single-op probe/retry bodies, so concurrent SMOs and lazy recovery
  // behave exactly as in the single-op path.

  void MultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacMultiSearch(keys, count, values, statuses);
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/false,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = SearchWithHash(key, h, &values[i]);
                 });
  }

  void MultiInsert(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = InsertWithHash(key, values[i], h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = InsertWithHash(key, values[i], h);
                 });
  }

  void MultiUpdate(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = UpdateWithHash(key, values[i], h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = UpdateWithHash(key, values[i], h);
                 });
  }

  void MultiDelete(const KeyArg* keys, size_t count, OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacForEach(keys, count, /*for_write=*/true,
                  [&](size_t i, KeyArg key, uint64_t h) {
                    statuses[i] = DeleteWithHash(key, h);
                  });
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h) {
                   statuses[i] = DeleteWithHash(key, h);
                 });
  }

  // Batch-engine selector (A/B testing hook; volatile).
  void set_batch_pipeline(BatchPipeline p) { opts_.batch_pipeline = p; }

  // Runs only the prefetch stages (1-2) of the batch pipeline, warming
  // the directory/segment/bucket lines the given keys will touch. A pure
  // hint — no semantic effect. ShardedStore uses it to overlap one
  // shard's memory stalls with another shard's execution.
  void PrefetchBatch(const KeyArg* keys, size_t count, bool for_write) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      // Guard: stage 2 dereferences directory entries.
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
    }
  }

  // Test/maintenance hook: attempts one merge of the buddy pair covering
  // `h`'s range. Returns true if a merge happened.
  bool MergeForTest(uint64_t h) {
    epoch::EpochManager::Guard guard(*epochs_);
    return TryMerge(h, 0.5);
  }

  // ---- introspection ----

  uint64_t global_depth() const { return CurrentDir()->global_depth; }

  const DashOptions& options() const { return opts_; }
  DashOptions& mutable_options() { return opts_; }

  // Walks every distinct segment once. Not linearizable; intended for
  // statistics and tests.
  template <typename Fn>
  void ForEachSegment(Fn fn) const {
    EhDirectory* dir = CurrentDir();
    const uint64_t n = 1ull << dir->global_depth;
    uint64_t i = 0;
    while (i < n) {
      Segment* seg = dir->entry(i);
      fn(seg);
      const uint64_t covered = 1ull << (dir->global_depth - seg->local_depth());
      i += covered;
    }
  }

  DashTableStats Stats() const {
    DashTableStats stats;
    EhDirectory* dir = CurrentDir();
    stats.directory_entries = 1ull << dir->global_depth;
    ForEachSegment([&](Segment* seg) {
      ++stats.segments;
      stats.records += seg->RecordCount();
      stats.capacity_slots +=
          static_cast<uint64_t>(seg->num_buckets() + seg->num_stash()) *
          Bucket::kNumSlots;
    });
    stats.load_factor = stats.capacity_slots == 0
                            ? 0.0
                            : static_cast<double>(stats.records) /
                                  static_cast<double>(stats.capacity_slots);
    stats.bucket_lock_acquisitions = lock_stats_.TotalAcquisitions();
    stats.bucket_lock_contended_spins = lock_stats_.TotalSpins();
    return stats;
  }

  uint64_t Size() const { return Stats().records; }
  double LoadFactor() const { return Stats().load_factor; }

  // Structural invariant check, for use at a quiescent point (after
  // open). Recovery is lazy (§4.8), so a crash can leave directory runs
  // that legally disagree with the stale local depth of a mid-split
  // segment; verification wants the rolled-forward image, not the
  // crash-time one. Pass 1 therefore sanity-checks every entry (a wild
  // pointer fails before anything dereferences deeper) and drives lazy
  // recovery eagerly over the whole directory. Pass 2 then enforces the
  // strict invariants: every segment covered by a correctly aligned run
  // of duplicate entries of length 2^(gd-ld), local depths never above
  // the global depth, segment metadata sane.
  bool VerifyStructure() {
    EhDirectory* dir = CurrentDir();
    if (dir == nullptr || !pool_->Contains(dir)) return false;
    const uint64_t gd = dir->global_depth;
    if (gd > 48) return false;
    const uint64_t n = 1ull << gd;
    for (uint64_t i = 0; i < n; ++i) {
      Segment* seg = dir->entry(i);
      if (seg == nullptr || !pool_->Contains(seg)) return false;
      if (seg->local_depth() > gd) return false;
      if (seg->state() > Segment::kMerging) return false;
      if (seg->num_buckets() == 0 ||
          (seg->num_buckets() & (seg->num_buckets() - 1)) != 0) {
        return false;
      }
      // Roll-forward may repoint this entry at a recovered child; bound
      // the retries so a cyclic/corrupt image fails instead of hanging.
      int rounds = 0;
      while (dir->entry(i)->version() != root_->global_version) {
        if (++rounds > 4) return false;
        LazyRecover(dir->entry(i));
      }
    }
    uint64_t i = 0;
    while (i < n) {
      Segment* seg = dir->entry(i);
      if (seg == nullptr || !pool_->Contains(seg)) return false;
      const uint32_t ld = seg->local_depth();
      if (ld > gd) return false;
      if (seg->state() != Segment::kClean) return false;
      if (seg->num_buckets() == 0 ||
          (seg->num_buckets() & (seg->num_buckets() - 1)) != 0) {
        return false;
      }
      const uint64_t run = 1ull << (gd - ld);
      if ((i & (run - 1)) != 0) return false;        // run misaligned
      for (uint64_t j = i + 1; j < i + run; ++j) {
        if (dir->entry(j) != seg) return false;      // torn coverage run
      }
      i += run;
    }
    return true;
  }

  // Test hook: forces a split of the segment holding `h`'s range.
  bool SplitForTest(uint64_t h) { return Split(LookupLive(h), h); }

 private:
  // Batch scaffold: per group of
  // kBatchGroupWidth operations run the prefetch stages and invoke
  // exec(global_index, key, hash) for each.
  template <typename ExecFn>
  void ForEachGroup(const KeyArg* keys, size_t count, bool for_write,
                    ExecFn exec) {
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      // One guard per group: amortizes the seq-cst epoch pin over
      // kBatchGroupWidth ops without stalling reclamation for the whole
      // (unbounded) batch.
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, hashes, for_write);
      for (size_t i = 0; i < n; ++i) {
        exec(base + i, keys[base + i], hashes[i]);
      }
    }
  }

  // ---- state-machine (AMAC) engine ----
  //
  // Monotonic per-op machines scheduled as state passes (util/amac.h):
  // each pass is one round-robin lap over the ops still in flight, and
  // every prefetch issued in pass k has a full lap of foreign work
  // between issue and first use in pass k+1.

  // Interleaved search: Hash pass (hash + directory-entry prefetch) ->
  // DirProbe pass (segment resolve; header and probe lines prefetched
  // together — bucket addresses are pure arithmetic off the segment
  // pointer, so the header need not be read first) -> BucketProbe pass
  // (validate the warm header, probe the warm pair; ops whose overflow
  // metadata implicates the stash prefetch their planned lines and
  // suspend once more) -> Execute pass (stash scans over warm lines).
  // Rare invalidations — concurrent SMO, lazy recovery, a torn
  // optimistic read — fall back to the single-op retry loop, which is
  // semantically identical and keeps the hot passes branch-lean.
  void AmacMultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                       OpStatus* statuses) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    uint64_t hashes[util::kBatchGroupWidth];
    Segment* segs[util::kBatchGroupWidth];
    Segment::StashPlan plans[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      // One directory snapshot per group; stale resolutions are caught
      // by SegmentValid (which reads the live directory) and fall back.
      // The epoch guard keeps a concurrently replaced directory mapped
      // for the duration of the group.
      EhDirectory* dir = CurrentDir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = KP::Hash(keys[base + i]);
        util::PrefetchRead(&entries[DirIndex(hashes[i], gd)]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        segs[i] = reinterpret_cast<Segment*>(
            entries[DirIndex(hashes[i], gd)].load(std::memory_order_acquire));
        util::PrefetchRead(segs[i]);  // header: version / depth / pattern
        segs[i]->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                               opts_.use_probing_bucket, /*for_write=*/false);
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      util::AmacReadyList stash_pending;
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        const KeyArg key = keys[base + i];
        if (opts_.concurrency != ConcurrencyMode::kOptimistic) {
          // Pessimistic probes hold shared bucket locks; no suspend
          // points inside a locked region (see util/amac.h).
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        OpStatus status = OpStatus::kRetry;
        plans[i] = Segment::StashPlan{};
        if (segs[i]->version() == root_->global_version) {
          Segment* seg = segs[i];
          status = seg->template SearchPairOptimistic<KP>(
              key, hashes[i], opts_, &values[base + i],
              [&] { return SegmentValid(seg, hashes[i]); }, &plans[i]);
        }
        if (status == OpStatus::kRetry) {
          // Unrecovered segment, stale view or torn read: the single-op
          // loop (LookupLive + Search) recovers, helps and retries.
          ctr.Suspend(util::AmacState::kRetry);
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        if (plans[i].pending) {
          segs[i]->PrefetchStashPlan(plans[i]);
          stash_pending.Push(i);
          ctr.Suspend(util::AmacState::kBucketProbe);
          continue;
        }
        statuses[base + i] = status;
      }
      for (size_t j = 0; j < stash_pending.count; ++j) {
        const size_t i = stash_pending.idx[j];
        ++ctr.steps;
        const KeyArg key = keys[base + i];
        const OpStatus status = segs[i]->template SearchStashPlanned<KP>(
            key, Segment::Fingerprint(hashes[i]), plans[i], opts_,
            &values[base + i]);
        if (status == OpStatus::kRetry) {
          ctr.Suspend(util::AmacState::kRetry);
          statuses[base + i] =
              SearchWithHash(key, hashes[i], &values[base + i]);
          continue;
        }
        statuses[base + i] = status;
      }
      ctr.FlushTo(tele);
    }
  }

  // Write engine: a fixed-schedule machine — every op takes exactly the
  // same resolution steps, and the op body itself (which takes bucket
  // locks and may run an SMO) must execute in one pass visit over warm
  // lines. Two passes realize the schedule: resolve + prefetch every op
  // (each issue overlaps the previous ops' in-flight lines), then
  // execute in index order (which also preserves the batch API's
  // same-type ordering).
  template <typename ExecFn>
  void AmacForEach(const KeyArg* keys, size_t count, bool for_write,
                   ExecFn exec) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    uint64_t hashes[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      // One directory snapshot per group; the op bodies re-resolve
      // through the live directory themselves.
      EhDirectory* dir = CurrentDir();
      const uint64_t gd = dir->global_depth;
      std::atomic<uint64_t>* entries = dir->entries();
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = KP::Hash(keys[base + i]);
        util::PrefetchRead(&entries[DirIndex(hashes[i], gd)]);
        ctr.Suspend(util::AmacState::kHash);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        auto* seg = reinterpret_cast<Segment*>(
            entries[DirIndex(hashes[i], gd)].load(std::memory_order_acquire));
        if (for_write) {
          util::PrefetchWrite(seg);
        } else {
          util::PrefetchRead(seg);
        }
        // Bucket addresses are pure arithmetic off the segment pointer,
        // so the probe lines go in flight with the header.
        seg->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                           opts_.use_probing_bucket, for_write);
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        exec(base + i, keys[base + i], hashes[i]);
      }
      ctr.FlushTo(tele);
    }
  }

  // ---- per-op bodies (caller holds an epoch guard) ----

  OpStatus InsertWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Insert<KP>(
          key, value, h, opts_, alloc_, /*allow_stash_chain=*/false,
          [&] { return SegmentValid(seg, h); });
      switch (status) {
        case OpStatus::kOk:
        case OpStatus::kExists:
        case OpStatus::kOutOfMemory:
          return status;
        case OpStatus::kRetry:
          break;
        case OpStatus::kNeedSplit:
          if (!Split(seg, h)) return OpStatus::kOutOfMemory;
          break;
        default:
          assert(false);
      }
    }
  }

  OpStatus UpdateWithHash(KeyArg key, uint64_t value, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Update<KP>(
          key, value, h, opts_, [&] { return SegmentValid(seg, h); });
      if (status != OpStatus::kRetry) return status;
    }
  }

  OpStatus SearchWithHash(KeyArg key, uint64_t h, uint64_t* out) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Search<KP>(
          key, h, opts_, out, [&] { return SegmentValid(seg, h); });
      if (status != OpStatus::kRetry) return status;
    }
  }

  OpStatus DeleteWithHash(KeyArg key, uint64_t h) {
    for (;;) {
      Segment* seg = LookupLive(h);
      const OpStatus status = seg->template Delete<KP>(
          key, h, opts_, alloc_, [&] { return SegmentValid(seg, h); });
      if (status == OpStatus::kRetry) continue;
      if (status == OpStatus::kOk && opts_.merge_threshold > 0) {
        thread_local uint32_t delete_counter = 0;
        if ((++delete_counter & 31) == 0) {
          TryMerge(h, std::min(opts_.merge_threshold, 0.5));
        }
      }
      return status;
    }
  }

  // Stages 1-2 of the batch pipeline: hashes the group's keys into
  // `hashes`, prefetching the directory entry line for each, then resolves
  // the segment pointers and prefetches each segment header and target
  // bucket lines. The directory snapshot may go stale concurrently; the
  // execute stage revalidates through the normal LookupLive/SegmentValid
  // path, so a stale prefetch costs at most an extra miss.
  void PrefetchGroup(const KeyArg* keys, size_t n, uint64_t* hashes,
                     bool for_write) {
    EhDirectory* dir = CurrentDir();
    const uint64_t gd = dir->global_depth;
    std::atomic<uint64_t>* entries = dir->entries();
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = KP::Hash(keys[i]);
      util::PrefetchRead(&entries[DirIndex(hashes[i], gd)]);
    }
    for (size_t i = 0; i < n; ++i) {
      Segment* seg = dir->entry(DirIndex(hashes[i], gd));
      util::PrefetchRead(seg);  // header: version / depth-state / pattern
      seg->PrefetchProbe(hashes[i], opts_.buckets_per_segment,
                         opts_.use_probing_bucket, for_write);
    }
  }

  // ---- creation / open ----

  void CreateNew() {
    if (root_->directory == 0) {
      root_->buckets_per_segment = opts_.buckets_per_segment;
      root_->stash_buckets = opts_.stash_buckets;
      root_->global_version = 1;
      root_->clean = 0;
      pmem::Persist(root_, sizeof(*root_));

      auto r = alloc_->Reserve(EhDirectory::AllocSize(opts_.initial_depth));
      assert(r.valid() && "pool too small for initial directory");
      auto* dir = static_cast<EhDirectory*>(r.ptr);
      dir->global_depth = opts_.initial_depth;
      pmem::PersistObject(&dir->global_depth);
      alloc_->Activate(r, &root_->directory);
    }
    // Fill missing segments (idempotent: resumes after a creation crash).
    EhDirectory* dir = CurrentDir();
    const uint64_t n = 1ull << dir->global_depth;
    Segment* prev = nullptr;
    for (uint64_t i = 0; i < n; ++i) {
      Segment* seg = dir->entry(i);
      if (seg == nullptr) {
        auto r = alloc_->Reserve(Segment::AllocSize(
            opts_.buckets_per_segment, opts_.stash_buckets));
        assert(r.valid() && "pool too small for initial segments");
        seg = static_cast<Segment*>(r.ptr);
        seg->Initialize(opts_.buckets_per_segment, opts_.stash_buckets,
                        dir->global_depth, /*pattern=*/i, Segment::kClean,
                        root_->global_version);
        seg->PersistAll();
        alloc_->Activate(
            r, reinterpret_cast<uint64_t*>(&dir->entries()[i]));
      }
      if (prev != nullptr && prev->side_link() == nullptr) {
        // Chain segments left-to-right (§4.7).
        pmem::AtomicPersist64(prev->side_link_word(),
                              reinterpret_cast<uint64_t>(seg));
      }
      prev = seg;
    }
    root_->initialized = 1;
    pmem::PersistObject(&root_->initialized);
  }

  void OpenExisting() {
    // Structural options come from the persistent root.
    opts_.buckets_per_segment = root_->buckets_per_segment;
    opts_.stash_buckets = root_->stash_buckets;
    if (root_->clean) {
      // Clean shutdown: no recovery at all. Mark dirty while open.
      root_->clean = 0;
      pmem::Persist(&root_->clean, 1);
      return;
    }
    // Crash: bump the global version; all segments become lazily
    // recoverable. Constant work — this is the entire recovery cost
    // (§4.8, Table 1).
    if (root_->global_version == 255) {
      // Wrap-around (rare): reset every segment to version 1, V to 0.
      ForEachSegment([](Segment* seg) { seg->SetVersion(1); });
      root_->global_version = 0;
    } else {
      ++root_->global_version;
    }
    pmem::Persist(&root_->global_version, 1);
  }

  // ---- addressing ----

  EhDirectory* CurrentDir() const {
    return reinterpret_cast<EhDirectory*>(
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->directory)
            ->load(std::memory_order_acquire));
  }

  static uint64_t DirIndex(uint64_t h, uint64_t global_depth) {
    return global_depth == 0 ? 0 : (h >> (64 - global_depth));
  }

  Segment* LookupSegment(uint64_t h) const {
    EhDirectory* dir = CurrentDir();
    return dir->entry(DirIndex(h, dir->global_depth));
  }

  // Segment lookup + lazy recovery trigger (§4.8).
  Segment* LookupLive(uint64_t h) {
    for (;;) {
      Segment* seg = LookupSegment(h);
      if (seg->version() == root_->global_version) return seg;
      LazyRecover(seg);
    }
  }

  // Re-validation run under bucket locks / before optimistic reads: the
  // directory entry must still reference `seg` and the hash prefix must
  // match the segment's pattern (Algorithm 1 lines 9-12).
  bool SegmentValid(Segment* seg, uint64_t h) const {
    if (LookupSegment(h) != seg) return false;
    const uint32_t ld = seg->local_depth();
    if (ld == 0) return true;
    return (h >> (64 - ld)) == seg->pattern();
  }

  // ---- lazy recovery (§4.8) ----

  void LazyRecover(Segment* seg) {
    Segment* target = seg;
    if (seg->state() == Segment::kNew) {
      // A NEW segment is recovered through its splitting parent, reachable
      // via the directory entry of the buddy pattern.
      Segment* parent = FindParentOf(seg);
      if (parent != nullptr) target = parent;
    } else if (seg->state() == Segment::kMerging) {
      // The right sibling of an interrupted merge is recovered through the
      // surviving left sibling.
      Segment* left = FindLeftSiblingOf(seg);
      if (left != nullptr) target = left;
    }
    std::lock_guard<std::mutex> lock(
        recovery_mutexes_[MutexIndex(target)]);
    if (target->version() != root_->global_version) {
      RecoverSegmentLocked(target);
    }
  }

  Segment* FindParentOf(Segment* child) {
    EhDirectory* dir = CurrentDir();
    const uint32_t ld = child->local_depth();
    if (ld == 0 || ld > dir->global_depth) return nullptr;
    const uint64_t buddy_pattern = child->pattern() & ~1ull;
    const uint64_t idx = buddy_pattern << (dir->global_depth - ld);
    Segment* parent = dir->entry(idx);
    return (parent != nullptr && parent->side_link() == child) ? parent
                                                               : nullptr;
  }

  // The left sibling of a merging right segment: the directory entry for
  // the even buddy pattern (never redirected by the merge).
  Segment* FindLeftSiblingOf(Segment* right) {
    EhDirectory* dir = CurrentDir();
    const uint32_t ld = right->local_depth();
    if (ld == 0 || ld > dir->global_depth) return nullptr;
    const uint64_t left_pattern = right->pattern() & ~1ull;
    const uint64_t idx = left_pattern << (dir->global_depth - ld);
    Segment* left = dir->entry(idx);
    return (left != nullptr && left != right) ? left : nullptr;
  }

  static size_t MutexIndex(const Segment* seg) {
    return (reinterpret_cast<uintptr_t>(seg) >> 6) % kRecoveryMutexes;
  }

  // Recovers one segment: clear locks, finish/abort any in-flight split or
  // merge, remove duplicates, rebuild overflow metadata (§4.8 steps 1-4).
  void RecoverSegmentLocked(Segment* seg) {
    seg->ResetAllLocks();
    if (seg->state() == Segment::kSplitting) {
      Segment* child = seg->side_link();
      if (child != nullptr && child->state() == Segment::kNew) {
        // Roll the split forward: the child is owned (side-link published).
        child->ResetAllLocks();
        seg->template DedupAdjacent<KP>(opts_);
        child->template DedupAdjacent<KP>(opts_);
        const uint32_t old_depth = child->local_depth() - 1;
        RehashToChild(seg, child, old_depth, /*check_unique=*/true);
        FinishSplit(seg, child, old_depth);
        child->template RebuildOverflowMetadata<KP>(opts_);
        seg->template RebuildOverflowMetadata<KP>(opts_);
        child->SetVersion(root_->global_version);
        seg->SetVersion(root_->global_version);
        return;
      }
      // Roll back: the allocation was never published; nothing moved yet.
      seg->SetDepthState(seg->local_depth(), Segment::kClean);
    }
    // An interrupted merge is rolled forward from the left sibling's side:
    // either this segment is the right sibling (redirected here only when
    // the left could not be found) or its side-link is a merging right
    // sibling whose records must finish moving in.
    if (seg->state() == Segment::kMerging) {
      Segment* left = FindLeftSiblingOf(seg);
      if (left != nullptr) {
        left->ResetAllLocks();
        CompleteMerge(left, seg);
        left->SetVersion(root_->global_version);
        return;
      }
    }
    Segment* side = seg->side_link();
    if (side != nullptr && side->state() == Segment::kMerging) {
      const bool post_commit =  // left already wears its merged identity
          side->local_depth() == seg->local_depth() + 1 &&
          (side->pattern() >> 1) == seg->pattern();
      const bool pre_commit =  // left untouched; right marked only
          side->local_depth() == seg->local_depth() &&
          (seg->pattern() & 1) == 0 &&
          side->pattern() == (seg->pattern() | 1);
      if (post_commit || pre_commit) CompleteMerge(seg, side);
    }
    seg->template DedupAdjacent<KP>(opts_);
    seg->template RebuildOverflowMetadata<KP>(opts_);
    seg->SetVersion(root_->global_version);
  }

  // ---- merge + directory halving (extension; §4.6-4.7 mention both) ----

  // Attempts to merge the buddy pair covering `h`. The pair must sit at
  // equal local depth, be CLEAN, and fit comfortably (`limit` <= 50% of
  // one segment's normal capacity) so the drain cannot fail. Returns true
  // if a merge was performed.
  bool TryMerge(uint64_t h, double limit) {
    Segment* seg = LookupLive(h);
    const uint32_t ld = seg->local_depth();
    if (ld == 0) return false;
    EhDirectory* dir = CurrentDir();
    const uint64_t p = seg->pattern();
    const uint64_t left_idx = (p & ~1ull) << (dir->global_depth - ld);
    const uint64_t right_idx =
        ((p & ~1ull) | 1ull) << (dir->global_depth - ld);
    Segment* left = dir->entry(left_idx);
    Segment* right = dir->entry(right_idx);
    if (left == nullptr || right == nullptr || left == right) return false;

    // Lock both segments in global address order (deadlock-free against
    // concurrent merges whose directory views may be stale).
    Segment* first = left < right ? left : right;
    Segment* second = left < right ? right : left;
    first->LockAllBuckets(opts_);
    second->LockAllBuckets(opts_);
    // Re-validate everything under the locks.
    EhDirectory* dir2 = CurrentDir();
    const bool valid =
        left->state() == Segment::kClean &&
        right->state() == Segment::kClean &&
        left->local_depth() == ld && right->local_depth() == ld &&
        (left->pattern() | 1ull) == right->pattern() &&
        dir2->entry((left->pattern()) << (dir2->global_depth - ld)) == left &&
        dir2->entry((right->pattern()) << (dir2->global_depth - ld)) == right;
    const uint64_t combined =
        valid ? left->RecordCount() + right->RecordCount() : ~0ull;
    const uint64_t capacity =
        static_cast<uint64_t>(left->num_buckets()) * Bucket::kNumSlots;
    const double fullness =
        static_cast<double>(combined) / static_cast<double>(capacity);
    if (!valid || fullness > std::min(limit, 0.5)) {
      second->UnlockAllBuckets(opts_);
      first->UnlockAllBuckets(opts_);
      return false;
    }
    MergeLocked(left, right, ld);
    second->UnlockAllBuckets(opts_);
    first->UnlockAllBuckets(opts_);
    TryHalveDirectory();
    return true;
  }

  // Merge protocol (both segments fully locked):
  //   1. mark the right sibling kMerging (the recovery anchor);
  //   2. drain its records into the left sibling (delete-after-insert,
  //      §4.6 persistence rules apply per record);
  //   3. commit the left's merged identity (pattern, then depth+state in
  //      one atomic store);
  //   4. point the right's directory entries at the left (idempotent);
  //   5. one mini-transaction unlinks the right from the side-link chain
  //      and moves it to the retire buffer — owned by the application or
  //      the retire buffer at every crash point, never leaked.
  void MergeLocked(Segment* left, Segment* right, uint32_t ld) {
    right->SetDepthState(ld, Segment::kMerging);
    CRASH_POINT("eh_merge_after_mark");
    DrainForMerge(right, left, /*check_unique=*/false);
    CRASH_POINT("eh_merge_after_drain");
    CommitMerge(left, right, ld);
  }

  // Steps 3-5; shared with recovery roll-forward. Idempotent.
  void CommitMerge(Segment* left, Segment* right, uint32_t ld) {
    left->SetPattern(right->pattern() >> 1);
    left->SetDepthState(ld - 1, Segment::kClean);
    CRASH_POINT("eh_merge_after_commit_left");
    {
      dir_lock_.LockShared();
      EhDirectory* dir = CurrentDir();
      const uint64_t gd = dir->global_depth;
      const uint64_t chunk = 1ull << (gd - ld);
      const uint64_t base = right->pattern() << (gd - ld);
      for (uint64_t i = base; i < base + chunk; ++i) dir->SetEntry(i, left);
      pmem::Persist(&dir->entries()[base], chunk * sizeof(uint64_t));
      dir_lock_.UnlockShared();
    }
    CRASH_POINT("eh_merge_after_dir");
    pmem::MiniTx tx(pool_);
    tx.Stage(left->side_link_word(),
             reinterpret_cast<uint64_t>(right->side_link()));
    const size_t retire_slot = pool_->StageRetire(&tx, right);
    tx.Commit();
    CRASH_POINT("eh_merge_after_retire");
    pmem::PmPool* pool = pool_;
    epochs_->Retire([pool, retire_slot] { pool->CompleteRetire(retire_slot); });
  }

  // Recovery roll-forward of an interrupted merge (no bucket locks held;
  // exclusivity comes from the recovery mutex + version gating).
  void CompleteMerge(Segment* left, Segment* right) {
    const uint32_t ld = right->local_depth();
    right->ResetAllLocks();
    left->template DedupAdjacent<KP>(opts_);
    right->template DedupAdjacent<KP>(opts_);
    DrainForMerge(right, left, /*check_unique=*/true);
    CommitMerge(left, right, ld);
    left->template RebuildOverflowMetadata<KP>(opts_);
  }

  // Moves every record of `src` into `dst`. The pair pre-check guarantees
  // room; a placement failure would require pathological per-bucket pileup
  // far beyond the <=50% fullness gate and is treated as fatal.
  void DrainForMerge(Segment* src, Segment* dst, bool check_unique) {
    src->ForEachRecord([&](Bucket* bucket, int slot) {
      const uint64_t stored = bucket->record(slot).key;
      const uint64_t rh = KP::HashStored(stored);
      const uint64_t value = bucket->record(slot).value;
      const uint8_t fp = Segment::Fingerprint(rh);
      const uint32_t y0 = Segment::BucketIndex(rh, dst->num_buckets());
      const uint32_t y1 = (y0 + 1) & (dst->num_buckets() - 1);
      Bucket* c0 = dst->bucket(y0);
      Bucket* c1 = opts_.use_probing_bucket ? dst->bucket(y1) : nullptr;
      bool already = false;
      if (check_unique) {
        already = c0->FindStoredKey<KP>(fp, stored, opts_) >= 0 ||
                  (c1 != nullptr &&
                   c1->FindStoredKey<KP>(fp, stored, opts_) >= 0);
        for (uint32_t i = 0; i < dst->num_stash() && !already; ++i) {
          already =
              dst->stash_bucket(i)->FindStoredKey<KP>(fp, stored, opts_) >= 0;
        }
      }
      if (!already) {
        const OpStatus st = dst->template InsertStoredLocked<KP>(
            stored, value, fp, y0, c0, c1, opts_, alloc_,
            /*allow_stash_chain=*/false);
        assert(st == OpStatus::kOk && "merge drain overflow");
        (void)st;
      }
      bucket->DeleteSlot(slot);
    });
  }

  // Shrinks the directory when every entry pair is redundant (the halving
  // counterpart of §4.7's doubling). Publication mirrors DoubleDirectory.
  bool TryHalveDirectory() {
    dir_lock_.Lock();
    EhDirectory* old_dir = CurrentDir();
    const uint64_t gd = old_dir->global_depth;
    if (gd <= opts_.initial_depth || gd == 0) {
      dir_lock_.Unlock();
      return false;
    }
    for (uint64_t i = 0; i < (1ull << (gd - 1)); ++i) {
      if (old_dir->entry(2 * i) != old_dir->entry(2 * i + 1)) {
        dir_lock_.Unlock();
        return false;
      }
    }
    auto r = alloc_->Reserve(EhDirectory::AllocSize(gd - 1));
    if (!r.valid()) {
      dir_lock_.Unlock();
      return false;
    }
    auto* new_dir = static_cast<EhDirectory*>(r.ptr);
    new_dir->global_depth = gd - 1;
    for (uint64_t i = 0; i < (1ull << (gd - 1)); ++i) {
      new_dir->SetEntry(i, old_dir->entry(2 * i));
    }
    pmem::Persist(new_dir, EhDirectory::AllocSize(gd - 1));
    pmem::MiniTx tx(pool_);
    tx.Stage(&root_->directory, reinterpret_cast<uint64_t>(new_dir));
    const size_t retire_slot = pool_->StageRetire(&tx, old_dir);
    tx.Stage(pool_->FromOffset<uint64_t>(
                 alloc_->ReservationSlotBlockOffset(r)),
             0);
    tx.Commit();
    CRASH_POINT("eh_halve_after_commit");
    dir_lock_.Unlock();
    pmem::PmPool* pool = pool_;
    epochs_->Retire([pool, retire_slot] { pool->CompleteRetire(retire_slot); });
    return true;
  }

  // ---- structural modification operations (§4.7) ----

  // Splits the segment currently owning `h`'s range. Returns false on
  // out-of-memory.
  bool Split(Segment* seg, uint64_t h) {
    seg->LockAllBuckets(opts_);
    if (!SegmentValid(seg, h)) {
      seg->UnlockAllBuckets(opts_);
      return true;  // someone else already split; caller retries
    }
    const uint32_t old_depth = seg->local_depth();

    // Ensure directory capacity first (may be raced by other splits; the
    // directory write lock serializes doubling).
    while (CurrentDir()->global_depth == old_depth) {
      if (!DoubleDirectory()) {
        seg->UnlockAllBuckets(opts_);
        return false;
      }
    }

    // 1. Mark SPLITTING.
    seg->SetDepthState(old_depth, Segment::kSplitting);
    CRASH_POINT("eh_split_after_mark");

    // 2. Allocate + publish the child via the side-link.
    auto r = alloc_->Reserve(Segment::AllocSize(seg->num_buckets(),
                                                seg->num_stash()));
    if (!r.valid()) {
      seg->SetDepthState(old_depth, Segment::kClean);
      seg->UnlockAllBuckets(opts_);
      return false;
    }
    auto* child = static_cast<Segment*>(r.ptr);
    child->Initialize(seg->num_buckets(), seg->num_stash(), old_depth + 1,
                      (seg->pattern() << 1) | 1, Segment::kNew,
                      root_->global_version);
    // The child inherits the source's right neighbor (§4.7).
    child->side_link_word()[0] =
        reinterpret_cast<uint64_t>(seg->side_link());
    child->PersistAll();
    alloc_->Activate(r, seg->side_link_word());
    CRASH_POINT("eh_split_after_activate");

    // 3. Rehash into the child.
    RehashToChild(seg, child, old_depth, /*check_unique=*/false);
    CRASH_POINT("eh_split_after_rehash");

    // 4-5. Pattern + directory + atomic state commit.
    FinishSplit(seg, child, old_depth);
    CRASH_POINT("eh_split_after_commit");

    // Rebuild the source's overflow metadata: records left in its stash
    // may now have different bucket owners than before the rehash deletes.
    seg->template RebuildOverflowMetadata<KP>(opts_);

    seg->UnlockAllBuckets(opts_);
    return true;
  }

  // Steps 4-5 of the split, shared with recovery roll-forward. Idempotent.
  void FinishSplit(Segment* seg, Segment* child, uint32_t old_depth) {
    seg->SetPattern(child->pattern() & ~1ull);
    UpdateDirectoryEntries(seg, child, old_depth);
    CRASH_POINT("eh_split_after_dir_update");
    pmem::MiniTx tx(pool_);
    tx.Stage(reinterpret_cast<uint64_t*>(child->depth_state_word()),
             (static_cast<uint64_t>(old_depth + 1) << 32) | Segment::kClean);
    tx.Stage(reinterpret_cast<uint64_t*>(seg->depth_state_word()),
             (static_cast<uint64_t>(old_depth + 1) << 32) | Segment::kClean);
    tx.Commit();
  }

  // Moves records whose (old_depth+1)-th MSB is 1 from `seg` to `child`.
  void RehashToChild(Segment* seg, Segment* child, uint32_t old_depth,
                     bool check_unique) {
    const uint32_t shift = 64 - (old_depth + 1);
    seg->ForEachRecord([&](Bucket* bucket, int slot) {
      const uint64_t stored = bucket->record(slot).key;
      const uint64_t rh = KP::HashStored(stored);
      if (((rh >> shift) & 1) == 0) return;  // stays in the source
      const uint64_t value = bucket->record(slot).value;
      const uint8_t fp = Segment::Fingerprint(rh);
      const uint32_t y0 = Segment::BucketIndex(rh, child->num_buckets());
      const uint32_t y1 = (y0 + 1) & (child->num_buckets() - 1);
      Bucket* c0 = child->bucket(y0);
      Bucket* c1 = opts_.use_probing_bucket ? child->bucket(y1) : nullptr;
      bool already = false;
      if (check_unique) {
        already = c0->FindStoredKey<KP>(fp, stored, opts_) >= 0 ||
                  (c1 != nullptr &&
                   c1->FindStoredKey<KP>(fp, stored, opts_) >= 0);
        if (!already) {
          for (uint32_t i = 0; i < child->num_stash() && !already; ++i) {
            already = child->stash_bucket(i)->FindStoredKey<KP>(
                          fp, stored, opts_) >= 0;
          }
        }
      }
      if (!already) {
        const OpStatus st = child->template InsertStoredLocked<KP>(
            stored, value, fp, y0, c0, c1, opts_, alloc_,
            /*allow_stash_chain=*/false);
        assert(st == OpStatus::kOk && "child segment overflow during split");
        (void)st;
      }
      bucket->DeleteSlot(slot);
    });
  }

  // Points the upper half of the source's directory range at the child.
  // Idempotent; runs under the directory read lock so doubling cannot copy
  // a half-written range.
  void UpdateDirectoryEntries(Segment* seg, Segment* child,
                              uint32_t old_depth) {
    dir_lock_.LockShared();
    EhDirectory* dir = CurrentDir();
    const uint64_t gd = dir->global_depth;
    assert(gd > old_depth);
    const uint64_t old_pattern = child->pattern() >> 1;
    const uint64_t chunk = 1ull << (gd - old_depth);
    const uint64_t base = old_pattern << (gd - old_depth);
    for (uint64_t i = base + chunk / 2; i < base + chunk; ++i) {
      dir->SetEntry(i, child);
    }
    pmem::Persist(&dir->entries()[base + chunk / 2],
                  (chunk / 2) * sizeof(uint64_t));
    (void)seg;
    dir_lock_.UnlockShared();
  }

  // Doubles the directory (§4.7): build the new directory, then commit
  // {root pointer swap, retire-buffer entry for the old directory,
  // reservation-slot clear} in one mini-transaction. The old directory is
  // freed after an epoch grace period.
  bool DoubleDirectory() {
    dir_lock_.Lock();
    EhDirectory* old_dir = CurrentDir();
    const uint64_t gd = old_dir->global_depth;
    auto r = alloc_->Reserve(EhDirectory::AllocSize(gd + 1));
    if (!r.valid()) {
      dir_lock_.Unlock();
      return false;
    }
    auto* new_dir = static_cast<EhDirectory*>(r.ptr);
    new_dir->global_depth = gd + 1;
    for (uint64_t i = 0; i < (1ull << gd); ++i) {
      Segment* seg = old_dir->entry(i);
      new_dir->SetEntry(2 * i, seg);
      new_dir->SetEntry(2 * i + 1, seg);
    }
    pmem::Persist(new_dir, EhDirectory::AllocSize(gd + 1));
    CRASH_POINT("eh_double_before_commit");

    pmem::MiniTx tx(pool_);
    tx.Stage(&root_->directory, reinterpret_cast<uint64_t>(new_dir));
    const size_t retire_slot = pool_->StageRetire(&tx, old_dir);
    tx.Stage(pool_->FromOffset<uint64_t>(
                 alloc_->ReservationSlotBlockOffset(r)),
             0);
    tx.Commit();
    CRASH_POINT("eh_double_after_commit");
    dir_lock_.Unlock();

    pmem::PmPool* pool = pool_;
    epochs_->Retire([pool, retire_slot] { pool->CompleteRetire(retire_slot); });
    return true;
  }

  static constexpr size_t kRecoveryMutexes = 64;

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  epoch::EpochManager* epochs_;
  DashOptions opts_;
  DashEhRoot* root_;
  util::ShardedBucketLockStats lock_stats_;  // DRAM, per-thread sharded
  util::RwSpinLock dir_lock_;  // volatile: shared=entry updates, excl=double
  std::mutex recovery_mutexes_[kRecoveryMutexes];
};

}  // namespace dash

#endif  // DASH_PM_DASH_DASH_EH_H_
