// The Dash bucket (paper §4.1, Figure 4).
//
// A bucket is 256 bytes — one Optane DCPMM internal block — holding 32
// bytes of metadata followed by 14 records of 16 bytes:
//
//   [version lock 4B][packed bitmap word 4B][14 slot fingerprints]
//   [4 overflow fingerprints][overflow bitmap][overflow membership]
//   [overflow stash positions][overflow count][pad 2B][14 x Record]
//
// The packed bitmap word holds the allocation bitmap (bits 0-13), the
// membership bitmap (bits 14-27) and the record counter (bits 28-31); it is
// updated with a single atomic store so an insert becomes visible (and
// crash-consistent) in one 8-byte-atomic step after its record is persisted.
//
// Normal buckets and stash buckets share this layout (§4.1).

#ifndef DASH_PM_DASH_BUCKET_H_
#define DASH_PM_DASH_BUCKET_H_

#include <atomic>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "dash/config.h"
#include "pmem/persist.h"
#include "util/lock.h"

namespace dash {

// A 16-byte key-value record. `key` holds the key inline or a pointer to a
// PM-resident VarKey blob; `value` is an opaque 8-byte payload (§4.1).
struct Record {
  uint64_t key;
  uint64_t value;
};

// Bucket lock supporting both concurrency modes on one 32-bit word:
//  * optimistic (Dash, §4.4): bit 31 = lock, bits 0..30 = version counter;
//    readers snapshot + verify and never write.
//  * rw (baseline, Fig. 13): bit 31 = writer, bits 0..30 = reader count;
//    every reader acquisition writes the PM-resident lock word.
class BucketLock {
 public:
  static constexpr uint32_t kExclusiveBit = 1u << 31;

  // `stats` (optional, DRAM — the owning table's counters reached through
  // DashOptions::lock_stats) records successful acquisitions and the
  // backoff pauses spent waiting behind a holder; the lock word itself
  // stays a bare 4-byte PM-resident atomic.
  void LockExclusive(ConcurrencyMode mode,
                     util::ShardedBucketLockStats* stats = nullptr) {
    util::SpinBackoff backoff;
    if (mode == ConcurrencyMode::kOptimistic) {
      for (;;) {
        uint32_t v = word_.load(std::memory_order_relaxed);
        if ((v & kExclusiveBit) == 0 &&
            word_.compare_exchange_weak(v, v | kExclusiveBit,
                                        std::memory_order_acquire)) {
          if (stats != nullptr) stats->CountAcquisition();
          return;
        }
        if (stats != nullptr) stats->CountSpin();
        backoff.Pause();
      }
    } else {
      // Writer must also wait for readers to drain.
      for (;;) {
        uint32_t v = word_.load(std::memory_order_relaxed);
        if (v == 0 && word_.compare_exchange_weak(v, kExclusiveBit,
                                                  std::memory_order_acquire)) {
          pmem::WriteHint(&word_);
          if (stats != nullptr) stats->CountAcquisition();
          return;
        }
        if (stats != nullptr) stats->CountSpin();
        backoff.Pause();
      }
    }
  }

  bool TryLockExclusive(ConcurrencyMode mode,
                        util::ShardedBucketLockStats* stats = nullptr) {
    bool ok;
    if (mode == ConcurrencyMode::kOptimistic) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      ok = (v & kExclusiveBit) == 0 &&
           word_.compare_exchange_strong(v, v | kExclusiveBit,
                                         std::memory_order_acquire);
    } else {
      uint32_t v = 0;
      ok = word_.compare_exchange_strong(v, kExclusiveBit,
                                         std::memory_order_acquire);
      if (ok) pmem::WriteHint(&word_);
    }
    if (ok && stats != nullptr) stats->CountAcquisition();
    return ok;
  }

  void UnlockExclusive(ConcurrencyMode mode) {
    if (mode == ConcurrencyMode::kOptimistic) {
      // Release the lock and bump the version in one store (§4.4).
      const uint32_t v = word_.load(std::memory_order_relaxed);
      word_.store((v & ~kExclusiveBit) + 1, std::memory_order_release);
    } else {
      word_.store(0, std::memory_order_release);
      pmem::WriteHint(&word_);
    }
  }

  // rw mode only.
  void LockShared(util::ShardedBucketLockStats* stats = nullptr) {
    util::SpinBackoff backoff;
    for (;;) {
      uint32_t v = word_.load(std::memory_order_relaxed);
      if ((v & kExclusiveBit) == 0 &&
          word_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        pmem::WriteHint(&word_);
        return;
      }
      if (stats != nullptr) stats->CountSpin();
      backoff.Pause();
    }
  }
  void UnlockShared() {
    word_.fetch_sub(1, std::memory_order_release);
    pmem::WriteHint(&word_);
  }

  // Optimistic mode only: snapshot for verified lock-free reads. Spins
  // while a writer holds the lock.
  uint32_t Snapshot() const {
    util::SpinBackoff backoff;
    for (;;) {
      const uint32_t v = word_.load(std::memory_order_acquire);
      if ((v & kExclusiveBit) == 0) return v;
      backoff.Pause();
    }
  }

  bool Verify(uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_acquire) == snapshot;
  }

  bool IsLocked() const {
    return word_.load(std::memory_order_acquire) & kExclusiveBit;
  }

  // Crash recovery: locks held at the moment of a crash are cleared (§4.8).
  void Reset() { word_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint32_t> word_{0};
};

class Bucket {
 public:
  static constexpr uint32_t kNumSlots = 14;
  static constexpr uint32_t kNumOverflowFps = 4;
  static constexpr uint32_t kAllocMask = (1u << kNumSlots) - 1;
  // Marks an overflow fingerprint whose record lives in a stash position
  // that the 2-bit field cannot encode (chained stash, Dash-LH).
  static constexpr uint32_t kStashPosUnencodable = 4;

  // --- packed bitmap word accessors ---
  static uint32_t AllocBits(uint32_t meta) { return meta & kAllocMask; }
  static uint32_t MemberBits(uint32_t meta) {
    return (meta >> kNumSlots) & kAllocMask;
  }
  static uint32_t Count(uint32_t meta) { return meta >> 28; }

  uint32_t meta() const { return meta_.load(std::memory_order_acquire); }
  uint32_t count() const { return Count(meta()); }
  bool IsFull() const { return count() >= kNumSlots; }

  BucketLock& lock() { return lock_; }
  const Record& record(int slot) const { return records_[slot]; }
  uint8_t fingerprint(int slot) const { return fps_[slot]; }
  bool SlotMembership(uint32_t meta_word, int slot) const {
    return (MemberBits(meta_word) >> slot) & 1;
  }

  // Returns a bitmask of occupied slots whose fingerprint equals `fp`.
  // Uses one SIMD compare over all 14 fingerprints when available (§4.2:
  // "this process can be further accelerated with SIMD instructions").
  uint32_t MatchFingerprints(uint8_t fp, uint32_t alloc_bits) const {
#if defined(__SSE2__)
    // The 14 slot fingerprints plus the first two overflow fingerprints
    // occupy 16 contiguous bytes; the mask drops the latter.
    const __m128i needle = _mm_set1_epi8(static_cast<char>(fp));
    const __m128i haystack =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fps_));
    const uint32_t eq = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(haystack, needle)));
    return eq & alloc_bits & kAllocMask;
#else
    uint32_t match = 0;
    for (uint32_t slot = 0; slot < kNumSlots; ++slot) {
      if (fps_[slot] == fp) match |= 1u << slot;
    }
    return match & alloc_bits;
#endif
  }

  // Finds an occupied slot whose key equals `key`. Fingerprint-guided when
  // `opts.use_fingerprints`; otherwise every occupied slot is examined.
  // Returns the slot index or -1. Safe to call without the lock in
  // optimistic mode (the caller validates via version snapshot).
  template <typename KP>
  int FindKey(uint8_t fp, typename KP::KeyArg key,
              const DashOptions& opts) const {
    // The metadata lines are the unavoidable PM read of a bucket probe.
    pmem::ReadProbe(this);
    const uint32_t alloc = AllocBits(meta());
    uint32_t candidates =
        opts.use_fingerprints ? MatchFingerprints(fp, alloc) : alloc;
    while (candidates != 0) {
      const int slot = __builtin_ctz(candidates);
      candidates &= candidates - 1;
      // Touching the record is an additional PM read.
      pmem::ReadProbe(&records_[slot]);
      if (KP::EqualStored(records_[slot].key, key)) return slot;
    }
    return -1;
  }

  // Same as FindKey but compares against a *stored* key representation
  // (used by rehash redo and recovery dedup).
  template <typename KP>
  int FindStoredKey(uint8_t fp, uint64_t stored_key,
                    const DashOptions& opts) const {
    pmem::ReadProbe(this);
    const uint32_t alloc = AllocBits(meta());
    for (uint32_t slot = 0; slot < kNumSlots; ++slot) {
      if (((alloc >> slot) & 1) == 0) continue;
      if (opts.use_fingerprints && fps_[slot] != fp) continue;
      pmem::ReadProbe(&records_[slot]);
      bool equal;
      if constexpr (KP::kInline) {
        equal = records_[slot].key == stored_key;
      } else {
        equal = StoredKeysEqual<KP>(records_[slot].key, stored_key);
      }
      if (equal) return static_cast<int>(slot);
    }
    return -1;
  }

  // Inserts a record. Requires the exclusive lock. `member` is true when
  // the record's home bucket is not this bucket (balanced insert /
  // displacement, §4.3). Crash-consistent per Algorithm 2: record first,
  // then fingerprint + bitmap/counter in one atomic store + one flush.
  // Returns false when full.
  bool Insert(uint64_t stored_key, uint64_t value, uint8_t fp, bool member) {
    const uint32_t m = meta_.load(std::memory_order_relaxed);
    const int slot = FirstFreeSlot(m);
    if (slot < 0) return false;
    records_[slot].key = stored_key;
    records_[slot].value = value;
    pmem::Persist(&records_[slot], sizeof(Record));  // persist record first

    fps_[slot] = fp;
    uint32_t next = m | (1u << slot);
    if (member) next |= 1u << (kNumSlots + slot);
    next = (next & ~(0xFu << 28)) | ((Count(m) + 1) << 28);
    meta_.store(next, std::memory_order_release);
    // Fingerprint, bitmap and counter share the metadata cachelines: one
    // flush persists them all (Algorithm 2 comment).
    pmem::Persist(this, kMetadataBytes);
    return true;
  }

  // In-place payload update (the 8-byte value is opaque to Dash, §4.1).
  // Requires the exclusive lock; the single atomic persistent store keeps
  // optimistic readers safe (they re-validate the version afterwards).
  void UpdateSlotValue(int slot, uint64_t value) {
    pmem::AtomicPersist64(&records_[slot].value, value);
  }

  // Deletes the record in `slot`. Requires the exclusive lock.
  void DeleteSlot(int slot) {
    const uint32_t m = meta_.load(std::memory_order_relaxed);
    uint32_t next = m & ~(1u << slot) & ~(1u << (kNumSlots + slot));
    next = (next & ~(0xFu << 28)) | ((Count(m) - 1) << 28);
    meta_.store(next, std::memory_order_release);
    pmem::Persist(this, kMetadataBytes);
  }

  // Picks a displacement victim (§4.3): an occupied slot whose membership
  // bit equals `member`. Returns -1 if none.
  int FindVictim(bool member) const {
    const uint32_t m = meta();
    const uint32_t alloc = AllocBits(m);
    const uint32_t members = MemberBits(m);
    for (uint32_t slot = 0; slot < kNumSlots; ++slot) {
      if (((alloc >> slot) & 1) != 0 &&
          (((members >> slot) & 1) != 0) == member) {
        return static_cast<int>(slot);
      }
    }
    return -1;
  }

  // --- overflow (stash) metadata, §4.3 ---
  // Not crash-consistent by design: rebuilt by lazy recovery (§4.6).

  // Records that a key with fingerprint `fp`, home in this bucket chain,
  // overflowed to stash bucket `stash_pos`. `member` is true when stored in
  // the probing bucket on behalf of the target bucket. Returns false if all
  // four overflow fingerprint slots are taken.
  bool TrySetOverflowFp(uint8_t fp, uint32_t stash_pos, bool member) {
    if (stash_pos >= kStashPosUnencodable) return false;
    for (uint32_t i = 0; i < kNumOverflowFps; ++i) {
      if (((overflow_bitmap_ >> i) & 1) == 0) {
        overflow_fps_[i] = fp;
        overflow_pos_ = static_cast<uint8_t>(
            (overflow_pos_ & ~(0x3u << (2 * i))) | (stash_pos << (2 * i)));
        if (member) {
          overflow_member_ |= static_cast<uint8_t>(1u << i);
        } else {
          overflow_member_ &= static_cast<uint8_t>(~(1u << i));
        }
        overflow_bitmap_ |= static_cast<uint8_t>(1u << i);
        return true;
      }
    }
    return false;
  }

  // Clears one overflow fingerprint matching (fp, stash_pos, member).
  // Returns false if no such entry exists (the caller then decrements the
  // overflow counter instead).
  bool ClearOverflowFp(uint8_t fp, uint32_t stash_pos, bool member) {
    for (uint32_t i = 0; i < kNumOverflowFps; ++i) {
      if (((overflow_bitmap_ >> i) & 1) != 0 && overflow_fps_[i] == fp &&
          ((overflow_pos_ >> (2 * i)) & 0x3) == stash_pos &&
          (((overflow_member_ >> i) & 1) != 0) == member) {
        overflow_bitmap_ &= static_cast<uint8_t>(~(1u << i));
        return true;
      }
    }
    return false;
  }

  // Returns a bitmask over stash positions hinted by overflow fingerprints
  // matching `fp` with the given membership.
  uint32_t OverflowStashHints(uint8_t fp, bool member) const {
    uint32_t hints = 0;
    for (uint32_t i = 0; i < kNumOverflowFps; ++i) {
      if (((overflow_bitmap_ >> i) & 1) != 0 && overflow_fps_[i] == fp &&
          (((overflow_member_ >> i) & 1) != 0) == member) {
        hints |= 1u << ((overflow_pos_ >> (2 * i)) & 0x3);
      }
    }
    return hints;
  }

  uint8_t overflow_count() const { return overflow_count_; }
  void IncOverflowCount() { ++overflow_count_; }
  void DecOverflowCount() {
    if (overflow_count_ > 0) --overflow_count_;
  }
  bool HasAnyOverflow() const {
    return overflow_bitmap_ != 0 || overflow_count_ != 0;
  }

  void ClearOverflowMetadata() {
    overflow_bitmap_ = 0;
    overflow_member_ = 0;
    overflow_pos_ = 0;
    overflow_count_ = 0;
  }

  // Crash recovery: clear the lock (held locks die with the crash).
  void ResetLock() { lock_.Reset(); }

  // Zero-initializes the bucket (used by segment construction).
  void Clear() {
    lock_.Reset();
    meta_.store(0, std::memory_order_relaxed);
    for (auto& f : fps_) f = 0;
    ClearOverflowMetadata();
  }

 private:
  static constexpr uint32_t kMetadataBytes = 32;

  static int FirstFreeSlot(uint32_t meta_word) {
    const uint32_t free = ~AllocBits(meta_word) & kAllocMask;
    if (free == 0) return -1;
    return __builtin_ctz(free);
  }

  // Stored-key equality for pointer keys (compares the blobs).
  template <typename KP>
  static bool StoredKeysEqual(uint64_t a, uint64_t b) {
    if (a == b) return true;
    const auto* blob = reinterpret_cast<const VarKeyBlobView*>(b);
    return KP::EqualStored(
        a, typename KP::KeyArg(blob->data, blob->length));
  }

  struct VarKeyBlobView {
    uint32_t length;
    char data[];
  };

  BucketLock lock_;                        // 4
  std::atomic<uint32_t> meta_;             // 4
  uint8_t fps_[kNumSlots];                 // 14
  uint8_t overflow_fps_[kNumOverflowFps];  // 4
  uint8_t overflow_bitmap_;                // 1
  uint8_t overflow_member_;                // 1
  uint8_t overflow_pos_;                   // 1 (2 bits per overflow fp)
  uint8_t overflow_count_;                 // 1
  uint8_t pad_[2];                         // 2 -> 32-byte metadata block
  Record records_[kNumSlots];              // 224

  friend class BucketTestPeer;
};

static_assert(sizeof(Bucket) == 256, "bucket must match the DCPMM block");

}  // namespace dash

#endif  // DASH_PM_DASH_BUCKET_H_
