#include "pmem/index_persist.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "pmem/crash_point.h"
#include "util/hash.h"

namespace dash::pmem {

namespace {

constexpr uint64_t kMagic = 0x64617368636b7074ull;  // "dashckpt"
constexpr uint32_t kVersion = 1;

// On-disk header. The checksum chains over every preceding header field
// and the whole payload, so a torn or truncated file — header or body —
// fails exactly one check.
struct FileHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t pad;
  uint64_t kind_tag;
  uint64_t generation;
  uint64_t payload_bytes;
  uint64_t checksum;
};
static_assert(sizeof(FileHeader) == 48);

// Mix64 chain over the header prefix and payload, 8 bytes at a stride
// (same checksum family as the manifest; word-wise keeps multi-megabyte
// segment images cheap).
uint64_t Checksum(const FileHeader& h, const void* payload, size_t bytes) {
  uint64_t sum = util::Mix64(kMagic ^ h.version);
  sum = util::Mix64(sum ^ h.kind_tag);
  sum = util::Mix64(sum ^ h.generation);
  sum = util::Mix64(sum ^ h.payload_bytes);
  const auto* p = static_cast<const unsigned char*>(payload);
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    sum = util::Mix64(sum ^ word);
  }
  if (i < bytes) {
    uint64_t tail = 0;
    std::memcpy(&tail, p + i, bytes - i);
    sum = util::Mix64(sum ^ tail);
  }
  return sum;
}

void Reject(const std::string& path, const char* why) {
  std::fprintf(stderr,
               "dash: checkpoint %s rejected (%s); falling back to full "
               "recovery scan\n",
               path.c_str(), why);
}

}  // namespace

const char* CheckpointLoadName(CheckpointLoad status) {
  switch (status) {
    case CheckpointLoad::kOk: return "ok";
    case CheckpointLoad::kMissing: return "missing";
    case CheckpointLoad::kIoError: return "io-error";
    case CheckpointLoad::kBadMagic: return "bad-magic";
    case CheckpointLoad::kBadVersion: return "bad-version";
    case CheckpointLoad::kKindMismatch: return "kind-mismatch";
    case CheckpointLoad::kStaleGeneration: return "stale-generation";
    case CheckpointLoad::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

bool WriteCheckpointFile(const std::string& path, const CheckpointMeta& meta,
                         const void* payload, size_t payload_bytes) {
  FileHeader h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.kind_tag = meta.kind_tag;
  h.generation = meta.generation;
  h.payload_bytes = payload_bytes;
  h.checksum = Checksum(h, payload, payload_bytes);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "dash: cannot write checkpoint temp %s\n",
                   tmp.c_str());
      return false;
    }
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(static_cast<const char*>(payload),
              static_cast<std::streamsize>(payload_bytes));
    CRASH_POINT("ckpt_after_temp_write");
    out.flush();
    if (!out) {
      std::fprintf(stderr, "dash: short write on checkpoint temp %s\n",
                   tmp.c_str());
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  CRASH_POINT("ckpt_after_checksum");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "dash: cannot publish checkpoint %s\n", path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  CRASH_POINT("ckpt_after_rename");
  return true;
}

CheckpointLoad ReadCheckpointFile(const std::string& path,
                                  const CheckpointMeta& expect,
                                  std::string* payload, CheckpointMeta* meta) {
  // A stray temp file is a crashed writer's leftover, never authoritative.
  std::remove((path + ".tmp").c_str());

  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointLoad::kMissing;

  FileHeader h{};
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h))) {
    Reject(path, "truncated header");
    return CheckpointLoad::kBadChecksum;
  }
  if (h.magic != kMagic) {
    Reject(path, "bad magic");
    return CheckpointLoad::kBadMagic;
  }
  if (h.version != kVersion) {
    Reject(path, "unsupported version");
    return CheckpointLoad::kBadVersion;
  }
  if (h.kind_tag != expect.kind_tag) {
    Reject(path, "kind/geometry mismatch");
    return CheckpointLoad::kKindMismatch;
  }
  if (h.generation != expect.generation) {
    Reject(path, "stale generation");
    return CheckpointLoad::kStaleGeneration;
  }
  // Cap payload reads at 1 GiB: a corrupt length field must not turn
  // into an allocation bomb before the checksum gets a chance to fail.
  if (h.payload_bytes > (1ull << 30)) {
    Reject(path, "implausible payload size");
    return CheckpointLoad::kBadChecksum;
  }
  payload->resize(h.payload_bytes);
  if (!in.read(payload->data(),
               static_cast<std::streamsize>(h.payload_bytes))) {
    Reject(path, "truncated payload");
    return CheckpointLoad::kBadChecksum;
  }
  if (Checksum(h, payload->data(), payload->size()) != h.checksum) {
    Reject(path, "checksum mismatch");
    return CheckpointLoad::kBadChecksum;
  }
  if (meta != nullptr) {
    meta->kind_tag = h.kind_tag;
    meta->generation = h.generation;
  }
  return CheckpointLoad::kOk;
}

void RemoveCheckpointFile(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace dash::pmem
