#include "pmem/crash_point.h"

#include <mutex>

namespace dash::pmem {

namespace internal {
std::atomic<bool> g_crash_injection_enabled{false};
}  // namespace internal

namespace {
std::mutex g_mutex;
std::string g_armed_point;
uint64_t g_skip = 0;
std::atomic<uint64_t> g_hits{0};
}  // namespace

namespace internal {

void MaybeCrash(const char* name) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (g_armed_point != name) return;
  const uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed);
  if (hit < g_skip) return;
  // Disarm before throwing so recovery code re-entering the same point does
  // not crash again.
  g_armed_point.clear();
  internal::g_crash_injection_enabled.store(false, std::memory_order_relaxed);
  lock.unlock();
  throw CrashInjected{name};
}

}  // namespace internal

void CrashPointArm(const std::string& name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_point = name;
  g_skip = skip;
  g_hits.store(0, std::memory_order_relaxed);
  internal::g_crash_injection_enabled.store(true, std::memory_order_relaxed);
}

void CrashPointDisarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_point.clear();
  internal::g_crash_injection_enabled.store(false, std::memory_order_relaxed);
}

uint64_t CrashPointHits() { return g_hits.load(std::memory_order_relaxed); }

}  // namespace dash::pmem
