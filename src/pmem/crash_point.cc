#include "pmem/crash_point.h"

#include <cstdio>
#include <mutex>

namespace dash::pmem {

namespace internal {
std::atomic<bool> g_crash_injection_enabled{false};
}  // namespace internal

namespace {
std::mutex g_mutex;
std::string g_armed_point;
uint64_t g_skip = 0;
std::atomic<uint64_t> g_hits{0};
bool g_tracing = false;
std::vector<std::string> g_trace;  // distinct names, first-hit order
}  // namespace

namespace internal {

void MaybeCrash(const char* name) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (g_tracing) {
    for (const std::string& seen : g_trace) {
      if (seen == name) return;
    }
    g_trace.emplace_back(name);
    return;
  }
  if (g_armed_point != name) return;
  const uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed);
  if (hit < g_skip) return;
  // Disarm before throwing so recovery code re-entering the same point does
  // not crash again.
  g_armed_point.clear();
  internal::g_crash_injection_enabled.store(false, std::memory_order_relaxed);
  lock.unlock();
  throw CrashInjected{name};
}

}  // namespace internal

bool CrashPointArm(const std::string& name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_armed_point.empty() || g_tracing) {
    // Silently replacing an armed point made overlapping tests "pass" by
    // never crashing on the first point; refuse instead.
    std::fprintf(stderr,
                 "CrashPointArm(%s): %s is still armed; disarm first\n",
                 name.c_str(),
                 g_tracing ? "trace mode" : g_armed_point.c_str());
    return false;
  }
  g_armed_point = name;
  g_skip = skip;
  g_hits.store(0, std::memory_order_relaxed);
  internal::g_crash_injection_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void CrashPointDisarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_point.clear();
  g_tracing = false;
  g_trace.clear();
  internal::g_crash_injection_enabled.store(false, std::memory_order_relaxed);
}

uint64_t CrashPointHits() { return g_hits.load(std::memory_order_relaxed); }

void CrashPointTraceStart() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_point.clear();
  g_tracing = true;
  g_trace.clear();
  internal::g_crash_injection_enabled.store(true, std::memory_order_relaxed);
}

std::vector<std::string> CrashPointTraceStop() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<std::string> out = std::move(g_trace);
  g_trace.clear();
  g_tracing = false;
  internal::g_crash_injection_enabled.store(false, std::memory_order_relaxed);
  return out;
}

}  // namespace dash::pmem
