#include "pmem/flush_tracker.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "pmem/persist.h"

namespace dash::pmem {

namespace internal {
std::atomic<bool> g_torn_write_tracking{false};
}  // namespace internal

namespace {

struct PoolShadow {
  char* base = nullptr;
  size_t size = 0;
  std::unique_ptr<char[]> shadow;  // non-null only while armed
};

std::mutex g_mu;
std::vector<PoolShadow>& Pools() {
  static std::vector<PoolShadow> pools;
  return pools;
}

// Arm generation: bumped on every TornWriteArm so pending lines captured
// under an earlier arming (by any thread) are discarded instead of being
// committed into a fresh shadow.
std::atomic<uint64_t> g_generation{0};

struct PendingLine {
  char* line;
  unsigned char data[kCachelineSize];
};

thread_local std::vector<PendingLine> t_pending;
thread_local uint64_t t_generation = 0;

}  // namespace

namespace internal {

void TornTrackClwb(const void* addr) {
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_generation != gen) {
    t_pending.clear();
    t_generation = gen;
  }
  char* line = reinterpret_cast<char*>(reinterpret_cast<uintptr_t>(addr) &
                                       ~(kCachelineSize - 1));
  for (PendingLine& p : t_pending) {
    if (p.line == line) {
      std::memcpy(p.data, line, kCachelineSize);
      return;
    }
  }
  PendingLine p;
  p.line = line;
  std::memcpy(p.data, line, kCachelineSize);
  t_pending.push_back(p);
}

void TornTrackFence() {
  if (t_pending.empty()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  if (t_generation == g_generation.load(std::memory_order_relaxed)) {
    for (const PendingLine& p : t_pending) {
      for (PoolShadow& pool : Pools()) {
        if (pool.shadow == nullptr) continue;
        if (p.line >= pool.base && p.line < pool.base + pool.size) {
          std::memcpy(pool.shadow.get() + (p.line - pool.base), p.data,
                      kCachelineSize);
          break;
        }
      }
    }
  }
  t_pending.clear();
}

}  // namespace internal

void TornWriteRegisterPool(void* base, size_t size) {
  std::lock_guard<std::mutex> lock(g_mu);
  PoolShadow p;
  p.base = static_cast<char*>(base);
  p.size = size;
  if (internal::g_torn_write_tracking.load(std::memory_order_relaxed)) {
    // A pool mapped while armed (e.g., a shard created mid-test) starts
    // from its current — fully durable — image.
    p.shadow = std::make_unique<char[]>(size);
    std::memcpy(p.shadow.get(), base, size);
  }
  Pools().push_back(std::move(p));
}

void TornWriteUnregisterPool(void* base) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto& pools = Pools();
  for (size_t i = 0; i < pools.size(); ++i) {
    if (pools[i].base == base) {
      pools.erase(pools.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

bool TornWriteArm() {
  std::lock_guard<std::mutex> lock(g_mu);
  auto& pools = Pools();
  if (pools.empty()) return false;
  for (PoolShadow& p : pools) {
    p.shadow = std::make_unique<char[]>(p.size);
    std::memcpy(p.shadow.get(), p.base, p.size);
  }
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  internal::g_torn_write_tracking.store(true, std::memory_order_release);
  return true;
}

size_t TornWriteRevert() {
  internal::g_torn_write_tracking.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_mu);
  size_t reverted = 0;
  for (PoolShadow& p : Pools()) {
    if (p.shadow == nullptr) continue;
    for (size_t off = 0; off < p.size; off += kCachelineSize) {
      if (std::memcmp(p.base + off, p.shadow.get() + off, kCachelineSize) !=
          0) {
        std::memcpy(p.base + off, p.shadow.get() + off, kCachelineSize);
        ++reverted;
      }
    }
    p.shadow.reset();
  }
  t_pending.clear();
  return reverted;
}

void TornWriteDisarm() {
  internal::g_torn_write_tracking.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_mu);
  for (PoolShadow& p : Pools()) p.shadow.reset();
  t_pending.clear();
}

bool TornWriteArmed() {
  return internal::g_torn_write_tracking.load(std::memory_order_acquire);
}

}  // namespace dash::pmem
