// Crash-consistent index checkpoint files (ROADMAP item 1, checkpoint
// half): a table-agnostic container for serialized DRAM index state, so
// restart is a load plus a bounded tail replay instead of a full rebuild.
//
// The file discipline is the same as the sharded-store manifest v2:
// write everything to `<path>.tmp`, flush, then publish with a single
// std::rename. A reader first deletes any stray `.tmp` (a temp file is
// never authoritative), then validates magic, version, kind tag,
// generation, and a Mix64-chained checksum over header and payload. Any
// failure is reported loudly on stderr and the caller falls back to its
// full-scan recovery path — a checkpoint can make recovery faster, never
// wrong.
//
// The generation field ties a checkpoint to one lifetime of its pool:
// the owning table bumps a persistent open-generation counter on every
// open and stamps checkpoints with the current value. A run that mutates
// the pool without checkpointing therefore invalidates older checkpoint
// files automatically (they fail the generation check on the next open).
//
// Crash points (swept under torn-write simulation by checkpoint_test):
//   ckpt_after_temp_write  - temp file fully written, not yet flushed
//   ckpt_after_checksum    - temp file flushed and closed, not renamed
//   ckpt_after_rename      - checkpoint published

#ifndef DASH_PM_PMEM_INDEX_PERSIST_H_
#define DASH_PM_PMEM_INDEX_PERSIST_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dash::pmem {

// Caller-defined identity and lifetime stamp for a checkpoint file.
struct CheckpointMeta {
  // Identifies the producing table flavour (index kind, key mode,
  // geometry). A reader rejects a tag it did not write.
  uint64_t kind_tag = 0;
  // Pool open-generation the checkpoint belongs to.
  uint64_t generation = 0;
};

enum class CheckpointLoad : uint8_t {
  kOk = 0,
  kMissing,          // no file (silent: first open or checkpoints off)
  kIoError,          // unreadable file / short read mid-payload
  kBadMagic,
  kBadVersion,
  kKindMismatch,     // written by a different table flavour
  kStaleGeneration,  // pool was reopened (and possibly mutated) since
  kBadChecksum,      // torn, truncated, or bit-flipped
};

const char* CheckpointLoadName(CheckpointLoad status);

// Writes `payload` to `path` crash-consistently. Returns false (with a
// stderr diagnostic) on I/O failure; the previous checkpoint, if any,
// stays intact in that case.
bool WriteCheckpointFile(const std::string& path, const CheckpointMeta& meta,
                         const void* payload, size_t payload_bytes);

// Reads and validates `path`. On kOk, `*payload` holds the stored bytes
// and `*meta` the stored tag/generation. `expect` drives the kind and
// generation checks. Every non-kOk outcome except kMissing logs the
// reason to stderr (rejections must be loud).
CheckpointLoad ReadCheckpointFile(const std::string& path,
                                  const CheckpointMeta& expect,
                                  std::string* payload,
                                  CheckpointMeta* meta = nullptr);

// Removes `path` and its temp sibling (used by tests and by benches
// forcing the full-scan path).
void RemoveCheckpointFile(const std::string& path);

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_INDEX_PERSIST_H_
