// Persistent-memory access accounting and latency emulation.
//
// Real Optane DCPMM has ~3-14x lower bandwidth than DRAM and a higher
// end-to-end read latency than write latency (paper §2.1). Since we emulate
// PM over DRAM, we provide two mechanisms to preserve the paper's
// experimental *shape*:
//
//  1. Counters: every cacheline flush, fence, and explicit PM read probe is
//     counted per thread. Benchmarks report these, making claims like
//     "fingerprinting avoids PM reads" directly measurable.
//  2. Optional latency injection: a calibrated busy-wait added per flushed
//     line and per counted read miss, configurable at runtime (environment
//     variable DASH_PM_FLUSH_NS / DASH_PM_READ_NS or programmatically).

#ifndef DASH_PM_PMEM_STATS_H_
#define DASH_PM_PMEM_STATS_H_

#include <atomic>
#include <cstdint>

namespace dash::pmem {

// Aggregated PM access counters.
struct PmStats {
  uint64_t clwb = 0;        // cacheline write-backs issued
  uint64_t fence = 0;       // store fences issued
  uint64_t read_probes = 0; // explicit PM read probes (cache-miss proxies)
  uint64_t nt_stores = 0;   // non-temporal (streaming) stores

  PmStats& operator+=(const PmStats& o) {
    clwb += o.clwb;
    fence += o.fence;
    read_probes += o.read_probes;
    nt_stores += o.nt_stores;
    return *this;
  }
};

// Emulation knobs. Zero values disable latency injection (default), which
// is what unit tests use; benchmarks may enable them to model DCPMM.
struct PmEmulationConfig {
  std::atomic<uint32_t> flush_latency_ns{0};
  std::atomic<uint32_t> read_latency_ns{0};
};

// Global emulation configuration. Initialized from the environment
// (DASH_PM_FLUSH_NS, DASH_PM_READ_NS) on first use.
PmEmulationConfig& GetEmulationConfig();

// Per-thread counter block. Obtained once per thread; cheap to update.
struct ThreadPmStats {
  std::atomic<uint64_t> clwb{0};
  std::atomic<uint64_t> fence{0};
  std::atomic<uint64_t> read_probes{0};
  std::atomic<uint64_t> nt_stores{0};
};

// Returns this thread's counter block (registered globally on first call).
ThreadPmStats& GetThreadPmStats();

// Sums counters across all threads that ever touched PM.
PmStats AggregatePmStats();

// Resets all thread counters to zero (benchmark phase boundaries).
void ResetPmStats();

// Busy-waits approximately `ns` nanoseconds (calibrated on first use).
void SpinNanos(uint32_t ns);

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_STATS_H_
