#include "pmem/allocator.h"

#include <cassert>
#include <cstring>

#include "pmem/crash_point.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/thread_id.h"

namespace dash::pmem {

namespace {
size_t RoundUp64(size_t size) { return (size + 63) & ~size_t{63}; }
}  // namespace

PmAllocator::PmAllocator(PmPool* pool, AllocatorMeta* meta)
    : pool_(pool), meta_(meta) {}

uint64_t* PmAllocator::FreeListHead(size_t rounded, bool create) {
  if (rounded <= 64 * kNumSmallClasses) {
    return &meta_->small_free[SmallClass(rounded)];
  }
  for (size_t i = 0; i < kNumLargeClasses; ++i) {
    if (meta_->large_size[i] == rounded) return &meta_->large_free[i];
  }
  if (!create) return nullptr;
  for (size_t i = 0; i < kNumLargeClasses; ++i) {
    if (meta_->large_size[i] == 0) {
      meta_->large_size[i] = rounded;
      PersistObject(&meta_->large_size[i]);
      return &meta_->large_free[i];
    }
  }
  assert(false && "too many distinct large allocation sizes");
  return nullptr;
}

void* PmAllocator::PopOrBump(size_t rounded, uint32_t slot_idx) {
  // Caller holds lock_.
  ReserveSlot* slot = &meta_->slots[slot_idx];
  uint64_t* head = FreeListHead(rounded, /*create=*/true);
  uint64_t block_off;
  if (*head != 0) {
    // Record the reservation before unlinking: if we crash in between, the
    // recovery pass sees head == slot.block and simply clears the slot.
    block_off = *head;
    slot->block = block_off;
    slot->dest = 0;
    PersistObject(slot);
    CRASH_POINT("alloc_after_slot_record_pop");
    auto* header = pool_->FromOffset<BlockHeader>(block_off);
    *head = header->next;
    Persist(head, sizeof(*head));
    header->next = 0;
    PersistObject(&header->next);
  } else {
    const uint64_t total = sizeof(BlockHeader) + rounded;
    if (meta_->bump + total > meta_->heap_end) return nullptr;
    // Record the reservation, initialize the header, then advance the bump
    // pointer. A crash before the bump advance leaves slot.block >= bump,
    // which recovery recognizes as "allocation never committed".
    block_off = meta_->bump;
    slot->block = block_off;
    slot->dest = 0;
    PersistObject(slot);
    CRASH_POINT("alloc_after_slot_record_bump");
    auto* header = pool_->FromOffset<BlockHeader>(block_off);
    header->user_size = rounded;
    header->next = 0;
    PersistObject(header);
    meta_->bump = block_off + total;
    Persist(&meta_->bump, sizeof(meta_->bump));
    CRASH_POINT("alloc_after_bump_advance");
  }
  return pool_->FromOffset<void>(block_off + sizeof(BlockHeader));
}

PmAllocator::Reservation PmAllocator::Reserve(size_t size) {
  const size_t rounded = RoundUp64(size == 0 ? 1 : size);
  const uint32_t slot_idx = util::ThreadId();
  assert(meta_->slots[slot_idx].block == 0 &&
         "nested reservations are not supported");

  void* user;
  {
    util::SpinLockGuard guard(lock_);
    user = PopOrBump(rounded, slot_idx);
  }
  if (user == nullptr) return Reservation{};

  std::memset(user, 0, rounded);
  Persist(user, rounded);
  return Reservation{user, slot_idx};
}

void PmAllocator::Activate(const Reservation& r, uint64_t* dest) {
  assert(r.valid());
  assert(pool_->Contains(dest));
  ReserveSlot* slot = &meta_->slots[r.slot];
  slot->dest = pool_->ToOffset(dest);
  PersistObject(slot);
  CRASH_POINT("alloc_activate_before_publish");
  // The publication store: after this persists, the block is owned by the
  // application even if the slot is never cleared.
  AtomicPersist64(dest, reinterpret_cast<uint64_t>(r.ptr));
  CRASH_POINT("alloc_activate_after_publish");
  slot->block = 0;
  slot->dest = 0;
  PersistObject(slot);
}

void PmAllocator::ActivateNoDest(const Reservation& r) {
  assert(r.valid());
  ReserveSlot* slot = &meta_->slots[r.slot];
  slot->block = 0;
  slot->dest = 0;
  PersistObject(slot);
}

void PmAllocator::Cancel(const Reservation& r) {
  assert(r.valid());
  auto* header = reinterpret_cast<BlockHeader*>(
      static_cast<char*>(r.ptr) - sizeof(BlockHeader));
  {
    util::SpinLockGuard guard(lock_);
    PushFree(header);
  }
  ReserveSlot* slot = &meta_->slots[r.slot];
  slot->block = 0;
  slot->dest = 0;
  PersistObject(slot);
}

uint64_t PmAllocator::ReservationSlotBlockOffset(const Reservation& r) const {
  return pool_->ToOffset(&meta_->slots[r.slot].block);
}

uint64_t PmAllocator::ReservationSlotDestOffset(const Reservation& r) const {
  return pool_->ToOffset(&meta_->slots[r.slot].dest);
}

void* PmAllocator::Alloc(size_t size) {
  Reservation r = Reserve(size);
  if (!r.valid()) return nullptr;
  ActivateNoDest(r);
  return r.ptr;
}

void PmAllocator::Free(void* ptr) {
  assert(pool_->Contains(ptr));
  auto* header = reinterpret_cast<BlockHeader*>(static_cast<char*>(ptr) -
                                                sizeof(BlockHeader));
  util::SpinLockGuard guard(lock_);
  PushFree(header);
}

void PmAllocator::PushFree(BlockHeader* header) {
  // Caller holds lock_.
  uint64_t* head = FreeListHead(header->user_size, /*create=*/true);
  header->next = *head;
  PersistObject(&header->next);
  *head = pool_->ToOffset(header);
  Persist(head, sizeof(*head));
}

void PmAllocator::RecoverOnOpen() {
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ReserveSlot* slot = &meta_->slots[i];
    if (slot->block == 0) continue;

    const uint64_t user_off = slot->block + sizeof(BlockHeader);
    bool published = false;
    if (slot->dest != 0) {
      const uint64_t stored = *pool_->FromOffset<uint64_t>(slot->dest);
      published =
          stored == reinterpret_cast<uint64_t>(pool_->FromOffset<void>(user_off));
    }

    if (!published) {
      if (slot->block >= meta_->bump) {
        // Bump allocation never committed; the region is still virgin.
      } else {
        auto* header = pool_->FromOffset<BlockHeader>(slot->block);
        uint64_t* head = FreeListHead(header->user_size, /*create=*/true);
        if (*head != slot->block) {
          // Not already on its free list (the pop had completed): push back.
          PushFree(header);
        }
      }
    }
    slot->block = 0;
    slot->dest = 0;
    PersistObject(slot);
  }
}

uint64_t PmAllocator::bytes_in_use() const {
  return meta_->bump - (meta_->heap_end - heap_capacity());
}

uint64_t PmAllocator::heap_capacity() const {
  return meta_->heap_end - pool_->header()->heap_offset;
}

uint64_t PmAllocator::CountFreeBlocks() const {
  uint64_t count = 0;
  auto walk = [&](uint64_t head) {
    while (head != 0) {
      ++count;
      head = pool_->FromOffset<BlockHeader>(head)->next;
    }
  };
  for (size_t i = 0; i < kNumSmallClasses; ++i) walk(meta_->small_free[i]);
  for (size_t i = 0; i < kNumLargeClasses; ++i) walk(meta_->large_free[i]);
  return count;
}

}  // namespace dash::pmem
