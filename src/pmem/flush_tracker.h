// Torn-write power-failure simulation.
//
// The DRAM emulation's crash model used to be "drop volatile state": every
// store that reached the mapping survived a simulated crash, flushed or
// not. Real PM is harsher — only cachelines that were flushed (CLWB) and
// fenced (SFENCE) before the failure are guaranteed durable; everything
// else may silently revert to its last-fenced contents. This tracker
// upgrades the simulation to that model (pmemcheck/Yat-style persistency
// order checking):
//
//   * Every pool registers its mapping here (pool.cc).
//   * TornWriteArm() snapshots each registered pool into a shadow copy —
//     the "last durable image" — and starts tracking.
//   * While tracking, Clwb(addr) captures the current 64-byte line
//     contents into a per-thread pending list, and Fence() commits the
//     calling thread's pending lines into the shadow. A store that is
//     never followed by its own Clwb+Fence therefore never reaches the
//     shadow — exactly the write-back-cache behaviour that loses it on
//     power failure. Capture happens at Clwb time, so a store issued
//     *after* the Clwb of its line is also lost (the strictest reading).
//   * When an injected crash fires, TornWriteRevert() copies the shadows
//     back over the mappings before the test reopens the pool: the
//     recovery code now sees only what a real power failure would have
//     left behind.
//
// Tracking costs one relaxed atomic load per Clwb/Fence when disarmed.
// The armed paths are test-only and single-writer by construction (crash
// tests drive one mutating thread); the registry mutex still guards the
// shadow for safety.

#ifndef DASH_PM_PMEM_FLUSH_TRACKER_H_
#define DASH_PM_PMEM_FLUSH_TRACKER_H_

#include <atomic>
#include <cstddef>

namespace dash::pmem {

namespace internal {
extern std::atomic<bool> g_torn_write_tracking;
// Capture the line containing `addr` into the thread's pending list.
void TornTrackClwb(const void* addr);
// Commit the calling thread's pending lines to the shadows.
void TornTrackFence();
}  // namespace internal

// Mapping registry; called by PmPool on map/unmap. Unregistering drops
// the pool's shadow (its lines can no longer be reverted).
void TornWriteRegisterPool(void* base, size_t size);
void TornWriteUnregisterPool(void* base);

// Snapshots every registered pool into a shadow image and starts
// tracking. Call at a quiescent point (no store since the last Fence is
// in flight). Returns false when no pool is registered.
bool TornWriteArm();

// Reverts every registered pool to its shadow image — undoing all stores
// not committed by a completed Clwb+Fence — and stops tracking. Returns
// the number of 64-byte lines that were reverted.
size_t TornWriteRevert();

// Stops tracking and drops the shadows without reverting.
void TornWriteDisarm();

bool TornWriteArmed();

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_FLUSH_TRACKER_H_
