// Persistent memory pool: the libpmemobj analogue.
//
// A pool is a file-backed mapping placed at a *fixed* virtual address so
// that raw pointers stored inside the pool remain valid across restarts —
// the same approach the paper takes (§6.1: MAP_FIXED_NOREPLACE so "the
// application then directly operates on traditional 8-byte pointers").
//
// Pool layout:
//   [PoolHeader][TxLog area][AllocatorMeta][RetireBuffer][Root area][Heap]
//
// Crash model: a crash is simulated by CloseDirty() (or simply destroying
// the process image) — the file keeps whatever was stored; the clean
// shutdown marker is only written by CloseClean(). Re-opening reports
// whether recovery is needed.

#ifndef DASH_PM_PMEM_POOL_H_
#define DASH_PM_PMEM_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/lock.h"

namespace dash::pmem {

class PmAllocator;
class MiniTx;

inline constexpr uint64_t kPoolMagic = 0xDA5B'0001'CAFE'F00DULL;
inline constexpr uint64_t kLayoutVersion = 4;
inline constexpr size_t kMaxThreads = 256;

// On-media pool header (first 4 KB of the pool).
struct PoolHeader {
  uint64_t magic;
  uint64_t layout_version;
  uint64_t pool_size;
  uint64_t base_address;
  uint64_t clean_shutdown;   // 1 = closed via CloseClean()
  uint64_t tx_log_offset;
  uint64_t allocator_offset;
  uint64_t retire_offset;
  uint64_t root_offset;
  uint64_t root_size;
  uint64_t heap_offset;
  // Application-chosen identity tag, fixed at Create(). Lets a container
  // (e.g., a sharded store) detect that a pool file was swapped, renamed,
  // or restored from the wrong backup: the tag encodes what the file is
  // *supposed* to be, independent of its filename.
  uint64_t app_tag;
};

// How the pool's virtual mapping is backed. Software prefetches (the batch
// pipeline's overlap mechanism) are dropped by the core when the address
// misses the DTLB; 4 KB pages cap the TLB-covered working set at a few MB,
// while 2 MB pages cover multi-GB pools. kHugeTlb is a MAP_HUGETLB mapping
// (only possible for hugetlbfs-backed files); kThpAdvised means the kernel
// accepted madvise(MADV_HUGEPAGE) on the mapping (tmpfs pools — the
// default /dev/shm location — are eligible when shmem THP is enabled);
// k4K is the universal fallback.
enum class PageMode : uint8_t {
  k4K = 0,
  kThpAdvised = 1,
  kHugeTlb = 2,
};

const char* PageModeName(PageMode mode);

// A bounded persistent buffer of blocks that are logically unreachable but
// not yet returned to the allocator (e.g., a replaced directory that epoch
// reclamation will free). If the process crashes first, pool open returns
// them to the allocator — so nothing leaks at any crash point.
struct RetireBuffer {
  static constexpr size_t kSlots = 64;
  uint64_t blocks[kSlots];  // pool offsets; 0 = empty slot
};

class PmPool {
 public:
  struct Options {
    size_t pool_size = 1ull << 30;  // 1 GB default
    size_t root_size = 4096;
    // Attempt huge-page backing (MAP_HUGETLB, then MADV_HUGEPAGE) before
    // falling back to 4 KB pages. Never a hard failure: environments
    // without huge-page support (CI containers) silently get k4K.
    bool try_huge_pages = true;
    // Stored in PoolHeader::app_tag at creation; 0 = untagged.
    uint64_t app_tag = 0;
  };

  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  // Destroys the handle WITHOUT marking a clean shutdown (i.e., like a
  // crash). Call CloseClean() first for an orderly shutdown.
  ~PmPool();

  // Creates a new pool file at `path`. Fails if it already exists.
  static std::unique_ptr<PmPool> Create(const std::string& path,
                                        const Options& options);

  // Opens an existing pool, mapping it at its recorded base address.
  static std::unique_ptr<PmPool> Open(const std::string& path,
                                      bool try_huge_pages = true);

  // Opens `path` if it exists, otherwise creates it. `created` (optional)
  // reports which happened.
  static std::unique_ptr<PmPool> OpenOrCreate(const std::string& path,
                                              const Options& options,
                                              bool* created = nullptr);

  // Marks a clean shutdown and unmaps. The object must not be used after.
  void CloseClean();

  // Unmaps without the clean marker — simulates a power failure for tests.
  void CloseDirty();

  // True iff the previous session did not CloseClean() (recovery needed).
  bool recovered_from_crash() const { return recovered_from_crash_; }

  // The application tag recorded at Create() (see Options::app_tag).
  uint64_t app_tag() const { return header()->app_tag; }

  // Application root object area (root_size bytes, zero on creation).
  void* root() const {
    return reinterpret_cast<char*>(base_) + header()->root_offset;
  }
  size_t root_size() const { return header()->root_size; }
  size_t size() const { return header()->pool_size; }

  PmAllocator& allocator() { return *allocator_; }

  // Address range checks (for assertions).
  bool Contains(const void* p) const {
    const auto a = reinterpret_cast<uintptr_t>(p);
    const auto b = reinterpret_cast<uintptr_t>(base_);
    return a >= b && a < b + header()->pool_size;
  }

  uint64_t ToOffset(const void* p) const {
    return reinterpret_cast<uintptr_t>(p) - reinterpret_cast<uintptr_t>(base_);
  }
  template <typename T = void>
  T* FromOffset(uint64_t off) const {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(base_) + off);
  }

  // Adds `block` (heap pointer) to the persistent retire buffer. Returns the
  // slot index. The caller later calls CompleteRetire() once the block has
  // been freed (after an epoch grace period).
  size_t AddRetire(void* block);
  // Transactional variant: claims a free slot and stages the write into
  // `tx`, so retirement commits atomically with the stores that make the
  // block unreachable (e.g., the directory-pointer swap on doubling). The
  // slot is held (volatile claim) until CompleteRetire() or tx abort via
  // AbandonRetireClaim().
  size_t StageRetire(MiniTx* tx, void* block);
  void AbandonRetireClaim(size_t slot);
  // Frees the block in `slot` back to the allocator and clears the slot.
  void CompleteRetire(size_t slot);

  PoolHeader* header() const { return static_cast<PoolHeader*>(base_); }

  // How the mapping was established (volatile; re-derived on every open).
  PageMode page_mode() const { return page_mode_; }

  // The page size actually backing the mapping: 2 MB for a hugetlb
  // mapping, 2 MB for a THP-advised mapping the kernel has PMD-mapped
  // (checked against /proc/self/smaps), else 4 KB. THP promotion is
  // asynchronous, so a kThpAdvised pool may report 4096 right after
  // creation and 2 MB once khugepaged has collapsed the range. The
  // smaps scan runs at most until it first confirms promotion (sticky
  // for a live mapping), so repeated Stats() polls don't re-parse it.
  size_t MappedPageBytes() const;

 private:
  PmPool() = default;

  void RunOpenRecovery();

  void* base_ = nullptr;
  int fd_ = -1;
  PageMode page_mode_ = PageMode::k4K;
  // Sticky "smaps confirmed PMD-mapped pages" flag for kThpAdvised
  // pools; atomic because Stats() may poll from several shard workers.
  mutable std::atomic<bool> thp_confirmed_{false};
  bool closed_ = false;
  bool recovered_from_crash_ = false;
  uint64_t retire_claimed_ = 0;  // volatile claims on staged retire slots
  util::SpinLock retire_lock_;
  std::unique_ptr<PmAllocator> allocator_;
};

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_POOL_H_
