#include "pmem/mini_tx.h"

#include <cassert>

#include "pmem/crash_point.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/thread_id.h"

namespace dash::pmem {

TxLog* ThreadTxLog(PmPool* pool) {
  auto* logs = pool->FromOffset<TxLog>(pool->header()->tx_log_offset);
  return &logs[util::ThreadId()];
}

MiniTx::MiniTx(PmPool* pool) : pool_(pool), log_(ThreadTxLog(pool)) {
  assert(log_->state == TxLog::kIdle && "mini-tx is not reentrant");
  log_->count = 0;
}

MiniTx::~MiniTx() {
  // Abort path: nothing was applied, so resetting the (volatile-until-
  // commit) entry count discards the transaction. If the commit mark was
  // already persisted (e.g., a crash is being simulated mid-Commit), the
  // log must be left untouched for redo at the next pool open.
  if (!committed_ && log_->state != TxLog::kCommitted) {
    log_->count = 0;
  }
}

void MiniTx::Stage(uint64_t* addr, uint64_t value) {
  assert(pool_->Contains(addr));
  assert(log_->count < TxLog::kMaxEntries && "mini-tx log overflow");
  log_->entries[log_->count] = TxEntry{pool_->ToOffset(addr), value};
  ++log_->count;
}

void MiniTx::Commit() {
  assert(!committed_);
  // 1. Persist the staged entries and the count.
  Persist(log_->entries, log_->count * sizeof(TxEntry));
  Persist(&log_->count, sizeof(log_->count));
  CRASH_POINT("minitx_before_commit_mark");
  // 2. Commit point: one atomic persistent store.
  AtomicPersist64(&log_->state, TxLog::kCommitted);
  CRASH_POINT("minitx_after_commit_mark");
  // 3. Apply.
  for (uint64_t i = 0; i < log_->count; ++i) {
    const TxEntry& e = log_->entries[i];
    AtomicPersist64(pool_->FromOffset<uint64_t>(e.addr_off), e.value);
  }
  CRASH_POINT("minitx_after_apply");
  // 4. Done.
  AtomicPersist64(&log_->state, TxLog::kIdle);
  committed_ = true;
}

void RecoverTxLogs(PmPool* pool) {
  auto* logs = pool->FromOffset<TxLog>(pool->header()->tx_log_offset);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    TxLog* log = &logs[i];
    if (log->state == TxLog::kCommitted) {
      for (uint64_t j = 0; j < log->count; ++j) {
        const TxEntry& e = log->entries[j];
        AtomicPersist64(pool->FromOffset<uint64_t>(e.addr_off), e.value);
      }
    }
    log->state = TxLog::kIdle;
    log->count = 0;
    Persist(log, sizeof(uint64_t) * 2);
  }
}

}  // namespace dash::pmem
