#include "pmem/stats.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/lock.h"

namespace dash::pmem {

namespace {

uint32_t EnvU32(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return 0;
  return static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
}

// Registry of all per-thread counter blocks. Blocks are heap-allocated and
// intentionally never freed: threads may outlive aggregation calls and the
// blocks are tiny.
std::mutex g_registry_mutex;
std::vector<ThreadPmStats*>& Registry() {
  static std::vector<ThreadPmStats*>* r = new std::vector<ThreadPmStats*>();
  return *r;
}

// Calibrated spin loop iterations per nanosecond (x1024).
uint64_t CalibrateSpinsPerNs1024() {
  using Clock = std::chrono::steady_clock;
  volatile uint64_t sink = 0;
  constexpr uint64_t kIters = 1 << 22;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
    sink = sink + i;
    dash::util::CpuRelax();
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count();
  if (ns <= 0) return 1024;
  return (kIters * 1024) / static_cast<uint64_t>(ns);
}

}  // namespace

PmEmulationConfig& GetEmulationConfig() {
  static PmEmulationConfig* config = [] {
    auto* c = new PmEmulationConfig();
    c->flush_latency_ns.store(EnvU32("DASH_PM_FLUSH_NS"),
                              std::memory_order_relaxed);
    c->read_latency_ns.store(EnvU32("DASH_PM_READ_NS"),
                             std::memory_order_relaxed);
    return c;
  }();
  return *config;
}

ThreadPmStats& GetThreadPmStats() {
  thread_local ThreadPmStats* stats = [] {
    auto* s = new ThreadPmStats();
    std::lock_guard<std::mutex> guard(g_registry_mutex);
    Registry().push_back(s);
    return s;
  }();
  return *stats;
}

PmStats AggregatePmStats() {
  std::lock_guard<std::mutex> guard(g_registry_mutex);
  PmStats total;
  for (const ThreadPmStats* s : Registry()) {
    total.clwb += s->clwb.load(std::memory_order_relaxed);
    total.fence += s->fence.load(std::memory_order_relaxed);
    total.read_probes += s->read_probes.load(std::memory_order_relaxed);
    total.nt_stores += s->nt_stores.load(std::memory_order_relaxed);
  }
  return total;
}

void ResetPmStats() {
  std::lock_guard<std::mutex> guard(g_registry_mutex);
  for (ThreadPmStats* s : Registry()) {
    s->clwb.store(0, std::memory_order_relaxed);
    s->fence.store(0, std::memory_order_relaxed);
    s->read_probes.store(0, std::memory_order_relaxed);
    s->nt_stores.store(0, std::memory_order_relaxed);
  }
}

void SpinNanos(uint32_t ns) {
  static const uint64_t spins_per_ns_1024 = CalibrateSpinsPerNs1024();
  volatile uint64_t sink = 0;
  const uint64_t iters = (static_cast<uint64_t>(ns) * spins_per_ns_1024) >> 10;
  for (uint64_t i = 0; i < iters; ++i) {
    sink = sink + i;
    dash::util::CpuRelax();
  }
}

}  // namespace dash::pmem
