// Deterministic crash injection for recovery testing.
//
// Table code is instrumented with CRASH_POINT("name") markers at every
// persistence boundary of a structural modification (allocation activated,
// rehash finished, directory entry published, ...). Tests arm a point via
// CrashPointArm(); when execution reaches it, a CrashInjected exception is
// thrown. The test harness catches it, drops all volatile state (and,
// with torn-write simulation armed, reverts unflushed cachelines — see
// flush_tracker.h), and re-opens the pool image — simulating a power
// failure at exactly that program point. When no point is armed the check
// is a single relaxed atomic load.
//
// Trace mode (CrashPointTraceStart/Stop) records the distinct names of
// every marker a workload reaches without crashing, so a sweep harness
// can discover the full set of crash points a given table exercises.

#ifndef DASH_PM_PMEM_CRASH_POINT_H_
#define DASH_PM_PMEM_CRASH_POINT_H_

#include <atomic>
#include <exception>
#include <string>
#include <vector>

namespace dash::pmem {

// Thrown when an armed crash point is reached. Deliberately does not derive
// from std::exception so generic catch(const std::exception&) handlers in
// application code do not swallow it.
struct CrashInjected {
  std::string point;
};

namespace internal {
extern std::atomic<bool> g_crash_injection_enabled;
void MaybeCrash(const char* name);
}  // namespace internal

// Arms crash point `name`; the `skip`-th hit (0-based) throws. Only one
// point may be armed at a time: arming while another point is still armed
// (no crash fired, no CrashPointDisarm) is an error — the call returns
// false and leaves the existing point armed. Returns true on success.
[[nodiscard]] bool CrashPointArm(const std::string& name, uint64_t skip = 0);

// Disarms any armed crash point.
void CrashPointDisarm();

// Returns how many times the armed point was hit (including the throwing
// hit), or 0 if never armed. Safe to call from any thread; hits are
// counted under the arm mutex so concurrent executor workers cannot race
// the skip bookkeeping.
uint64_t CrashPointHits();

// Trace mode: between Start and Stop every CRASH_POINT reached records
// its name (no crash is injected). Stop returns the distinct names in
// first-hit order. Mutually exclusive with an armed point.
void CrashPointTraceStart();
std::vector<std::string> CrashPointTraceStop();

// Instrumentation macro. Near-zero cost when injection is disabled.
#define CRASH_POINT(name)                                                \
  do {                                                                   \
    if (::dash::pmem::internal::g_crash_injection_enabled.load(          \
            std::memory_order_relaxed)) {                                \
      ::dash::pmem::internal::MaybeCrash(name);                          \
    }                                                                    \
  } while (0)

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_CRASH_POINT_H_
