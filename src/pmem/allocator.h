// Crash-safe PM allocator with allocate-activate (reserve/publish)
// semantics, modelled on PMDK's pmemobj_reserve/pmemobj_publish.
//
// The paper (§2.3, §4.7) requires that a segment allocated for a split is,
// at every crash point, owned either by the application (reachable through
// a persistent pointer such as the segment side-link) or by the allocator —
// never leaked. The protocol here guarantees that:
//
//   Reserve(size)            -> block; recorded in this thread's persistent
//                               reservation slot together with the intended
//                               destination address.
//   Activate(r)              -> atomically publishes the block pointer into
//                               the destination (8-byte store + flush), then
//                               clears the slot.
//   Cancel(r)                -> returns the block to the free list.
//
// On pool open, every non-empty reservation slot is examined: if the
// destination already holds the block pointer the activation had completed
// (slot is simply cleared); otherwise the block is returned to the free
// list. Either way, no leak. This is O(kMaxThreads) — constant — work.
//
// Direct Alloc()/Free() (without reserve) are provided for data whose
// reachability is established by other means (e.g., the retire buffer).

#ifndef DASH_PM_PMEM_ALLOCATOR_H_
#define DASH_PM_PMEM_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

#include "util/lock.h"

namespace dash::pmem {

class PmPool;

inline constexpr size_t kAllocAlignment = 64;
// Small allocations are rounded up to a multiple of 64 bytes and served
// from per-class free lists; classes are 64*1 .. 64*kNumSmallClasses.
inline constexpr size_t kNumSmallClasses = 64;  // up to 4 KB
// Larger blocks use exact-size free lists (bounded distinct sizes).
inline constexpr size_t kNumLargeClasses = 32;

// Per-block persistent header (one cacheline, precedes user data).
struct BlockHeader {
  uint64_t user_size;   // bytes requested (rounded)
  uint64_t next;        // free-list link (pool offset of next block header)
  uint64_t padding[6];
};
static_assert(sizeof(BlockHeader) == 64);

// Persistent per-thread reservation slot.
struct ReserveSlot {
  uint64_t block;  // pool offset of BlockHeader; 0 = empty
  uint64_t dest;   // pool offset of the publication target (may be 0)
};

// Persistent allocator metadata (lives inside the pool).
struct AllocatorMeta {
  uint64_t bump;       // next unallocated pool offset
  uint64_t heap_end;   // exclusive
  uint64_t small_free[kNumSmallClasses];        // heads (offsets)
  uint64_t large_size[kNumLargeClasses];        // size keys (0 = unused)
  uint64_t large_free[kNumLargeClasses];        // heads
  ReserveSlot slots[256];                       // kMaxThreads
};

// Volatile allocator front-end. One instance per open pool.
class PmAllocator {
 public:
  PmAllocator(PmPool* pool, AllocatorMeta* meta);
  PmAllocator(const PmAllocator&) = delete;
  PmAllocator& operator=(const PmAllocator&) = delete;

  // Handle for an in-flight reservation.
  struct Reservation {
    void* ptr = nullptr;       // user data pointer
    uint32_t slot = 0;         // owning thread slot
    bool valid() const { return ptr != nullptr; }
  };

  // Reserves a zeroed block of `size` bytes. The reservation is recorded
  // persistently. Returns an invalid reservation on out-of-memory.
  Reservation Reserve(size_t size);

  // Publishes `r.ptr` into `*dest` (which must live in the pool) with an
  // atomic persistent store, then clears the reservation slot. After this,
  // the block is owned by the application.
  void Activate(const Reservation& r, uint64_t* dest);

  // Variant that clears the slot without a destination store; the caller
  // must have already made the block reachable persistently (e.g., stored
  // the pointer inside a mini-transaction).
  void ActivateNoDest(const Reservation& r);

  // Returns a reserved block to the allocator.
  void Cancel(const Reservation& r);

  // For transactional publication: pool offsets of the reservation slot's
  // block/dest words, so a MiniTx can clear the slot atomically with the
  // stores that make the block reachable.
  uint64_t ReservationSlotBlockOffset(const Reservation& r) const;
  uint64_t ReservationSlotDestOffset(const Reservation& r) const;

  // One-shot allocation: Reserve + ActivateNoDest. The caller takes
  // responsibility for reachability (leaks on crash unless the pointer is
  // persisted or routed through the retire buffer before the next crash
  // point). Returns nullptr on out-of-memory.
  void* Alloc(size_t size);

  // Returns a block obtained from Alloc()/Reserve() to the free lists.
  void Free(void* ptr);

  // Pool-open recovery: reclaims or confirms every in-flight reservation.
  // Constant work (scans the fixed slot array).
  void RecoverOnOpen();

  // Statistics.
  uint64_t bytes_in_use() const;   // bump-allocated bytes (upper bound)
  uint64_t heap_capacity() const;

  // Test hook: total blocks currently on free lists (walks lists; O(n)).
  uint64_t CountFreeBlocks() const;

 private:
  size_t SmallClass(size_t rounded) const { return rounded / 64 - 1; }
  uint64_t* FreeListHead(size_t rounded, bool create);
  void* PopOrBump(size_t rounded, uint32_t slot_idx);
  void PushFree(BlockHeader* header);

  PmPool* pool_;
  AllocatorMeta* meta_;
  util::SpinLock lock_;  // protects free lists + bump (volatile)
};

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_ALLOCATOR_H_
