// Redo-log mini-transactions: atomically applies a bounded set of 8-byte
// stores to pool memory. This is the substitute for the PMDK transactions
// the paper uses for split/merge commit points (§4.7).
//
// Protocol (per-thread persistent log):
//   Stage(addr, value)  — record (addr, value) in the log (volatile until
//                          commit).
//   Commit()            — persist the entries, set state=COMMITTED (the
//                          atomic commit point), apply all stores, persist
//                          them, then set state=IDLE.
//
// On pool open, RecoverTxLogs() re-applies any COMMITTED log (idempotent)
// and discards any uncommitted one — so the store set is all-or-nothing
// with respect to crashes.

#ifndef DASH_PM_PMEM_MINI_TX_H_
#define DASH_PM_PMEM_MINI_TX_H_

#include <cstddef>
#include <cstdint>

namespace dash::pmem {

class PmPool;

struct TxEntry {
  uint64_t addr_off;  // pool offset of the target 8-byte word
  uint64_t value;
};

struct TxLog {
  static constexpr uint64_t kIdle = 0;
  static constexpr uint64_t kCommitted = 1;
  static constexpr size_t kMaxEntries = 31;

  uint64_t state;
  uint64_t count;
  TxEntry entries[kMaxEntries];
};
static_assert(sizeof(TxLog) == 512, "TxLog layout is part of the pool format");

// RAII mini-transaction bound to the calling thread's log. Not reentrant.
class MiniTx {
 public:
  explicit MiniTx(PmPool* pool);
  ~MiniTx();  // aborts (discards staged stores) if Commit() was not called
  MiniTx(const MiniTx&) = delete;
  MiniTx& operator=(const MiniTx&) = delete;

  // Stages an 8-byte store of `value` to `addr` (must be inside the pool).
  void Stage(uint64_t* addr, uint64_t value);

  // Convenience for pointer-valued fields.
  template <typename T>
  void StagePtr(T** addr, T* value) {
    Stage(reinterpret_cast<uint64_t*>(addr), reinterpret_cast<uint64_t>(value));
  }

  // Atomically applies all staged stores. May be called at most once.
  void Commit();

  bool committed() const { return committed_; }

 private:
  PmPool* pool_;
  TxLog* log_;
  bool committed_ = false;
};

// Pool-open recovery for all per-thread logs. Constant work.
void RecoverTxLogs(PmPool* pool);

// Internal: address of this thread's log within `pool`.
TxLog* ThreadTxLog(PmPool* pool);

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_MINI_TX_H_
