#include "pmem/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/flush_tracker.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"

namespace dash::pmem {

namespace {

constexpr size_t kPageSize = 4096;

#if defined(__SANITIZE_THREAD__)
#define DASH_PM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DASH_PM_TSAN_BUILD 1
#endif
#endif

// Candidate fixed base addresses; chosen high in the VA space to avoid the
// heap and library mappings (same trick as the paper's MAP_FIXED_NOREPLACE
// scheme, §6.1). Spaced 2 TB apart so many multi-GB pools coexist.
#ifdef DASH_PM_TSAN_BUILD
// ThreadSanitizer owns the 0x1000'0000'0000+ ranges for its shadow and
// meta mappings and rejects fixed maps there; its low application region
// spans the first 512 GiB of the VA space, so TSan builds map pools
// there instead — 32 GiB apart, which bounds per-pool size under TSan.
constexpr uint64_t kBaseCandidates[] = {
    0x0040'0000'0000ULL, 0x0048'0000'0000ULL, 0x0050'0000'0000ULL,
    0x0058'0000'0000ULL, 0x0060'0000'0000ULL, 0x0068'0000'0000ULL,
    0x0070'0000'0000ULL, 0x0078'0000'0000ULL,
};
#else
constexpr uint64_t kBaseCandidates[] = {
    0x2000'0000'0000ULL, 0x2200'0000'0000ULL, 0x2400'0000'0000ULL,
    0x2600'0000'0000ULL, 0x2800'0000'0000ULL, 0x2A00'0000'0000ULL,
    0x2C00'0000'0000ULL, 0x2E00'0000'0000ULL, 0x3000'0000'0000ULL,
    0x3200'0000'0000ULL, 0x3400'0000'0000ULL, 0x3600'0000'0000ULL,
    0x3800'0000'0000ULL, 0x3A00'0000'0000ULL, 0x3C00'0000'0000ULL,
    0x3E00'0000'0000ULL,
};
#endif

constexpr size_t RoundPage(size_t n) {
  return (n + kPageSize - 1) & ~(kPageSize - 1);
}

#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif
#ifndef MAP_HUGETLB
#define MAP_HUGETLB 0x40000
#endif
#ifndef MADV_HUGEPAGE
#define MADV_HUGEPAGE 14
#endif

constexpr size_t kHugePageBytes = 2ull << 20;

void* TryMapAt(uint64_t base, size_t size, int fd, int extra_flags = 0) {
  void* p = ::mmap(reinterpret_cast<void*>(base), size, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_FIXED_NOREPLACE | extra_flags, fd, 0);
  if (p == MAP_FAILED) return nullptr;
  if (reinterpret_cast<uint64_t>(p) != base) {
    // Old kernels ignore MAP_FIXED_NOREPLACE and may map elsewhere.
    ::munmap(p, size);
    return nullptr;
  }
  return p;
}

// Maps the pool at `base` with the largest page size the environment
// grants: an explicit hugetlb mapping first (succeeds only for files on
// hugetlbfs), then a normal mapping advised MADV_HUGEPAGE (honored for
// tmpfs pools when shmem THP is enabled), then plain 4 KB pages. Every
// step degrades silently — CI containers without huge-page support land
// on k4K with no behavioural difference.
void* MapPoolAt(uint64_t base, size_t size, int fd, bool try_huge,
                PageMode* mode) {
  if (try_huge && size % kHugePageBytes == 0) {
    void* p = TryMapAt(base, size, fd, MAP_HUGETLB);
    if (p != nullptr) {
      *mode = PageMode::kHugeTlb;
      return p;
    }
  }
  void* p = TryMapAt(base, size, fd);
  if (p == nullptr) return nullptr;
  *mode = PageMode::k4K;
  if (try_huge && ::madvise(p, size, MADV_HUGEPAGE) == 0) {
    *mode = PageMode::kThpAdvised;
  }
  return p;
}

// Sums the PMD-mapped (2 MB page) bytes /proc/self/smaps reports for the
// VMAs covering [base, base + size). Field lines never parse as
// "%lx-%lx" (no field name is all hex digits), so the range headers are
// unambiguous.
size_t SmapsHugeBytes(uintptr_t base, size_t size) {
  std::FILE* f = std::fopen("/proc/self/smaps", "r");
  if (f == nullptr) return 0;
  char line[512];
  bool in_range = false;
  unsigned long long huge_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long lo = 0, hi = 0;
    if (std::sscanf(line, "%llx-%llx ", &lo, &hi) == 2) {
      in_range = lo >= base && lo < base + size;
      continue;
    }
    if (!in_range) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line, "AnonHugePages: %llu kB", &kb) == 1 ||
        std::sscanf(line, "ShmemPmdMapped: %llu kB", &kb) == 1 ||
        std::sscanf(line, "FilePmdMapped: %llu kB", &kb) == 1) {
      huge_kb += kb;
    }
  }
  std::fclose(f);
  return static_cast<size_t>(huge_kb) * 1024;
}

}  // namespace

const char* PageModeName(PageMode mode) {
  switch (mode) {
    case PageMode::k4K: return "4k";
    case PageMode::kThpAdvised: return "thp";
    case PageMode::kHugeTlb: return "hugetlb";
  }
  return "unknown";
}

size_t PmPool::MappedPageBytes() const {
  if (page_mode_ == PageMode::kHugeTlb) return kHugePageBytes;
  if (page_mode_ != PageMode::kThpAdvised) return kPageSize;
  if (thp_confirmed_.load(std::memory_order_relaxed)) return kHugePageBytes;
  if (SmapsHugeBytes(reinterpret_cast<uintptr_t>(base_),
                     header()->pool_size) > 0) {
    thp_confirmed_.store(true, std::memory_order_relaxed);
    return kHugePageBytes;
  }
  return kPageSize;
}

PmPool::~PmPool() {
  if (!closed_) CloseDirty();
}

std::unique_ptr<PmPool> PmPool::Create(const std::string& path,
                                       const Options& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    std::perror("PmPool::Create open");
    return nullptr;
  }
  const size_t size = RoundPage(options.pool_size);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    std::perror("PmPool::Create ftruncate");
    ::close(fd);
    ::unlink(path.c_str());
    return nullptr;
  }

  void* base = nullptr;
  uint64_t base_addr = 0;
  PageMode page_mode = PageMode::k4K;
  for (uint64_t candidate : kBaseCandidates) {
    base = MapPoolAt(candidate, size, fd, options.try_huge_pages, &page_mode);
    if (base != nullptr) {
      base_addr = candidate;
      break;
    }
  }
  if (base == nullptr) {
    std::fprintf(stderr, "PmPool::Create: no fixed base address available\n");
    ::close(fd);
    ::unlink(path.c_str());
    return nullptr;
  }
  TornWriteRegisterPool(base, size);

  // Lay out the pool. A simulated power failure here must not leak the
  // fixed-address mapping (it would shadow every later reopen attempt in
  // this process), so unwind it before letting CrashInjected propagate.
  // The file itself stays on disk — that is the crash semantics.
  auto* header = static_cast<PoolHeader*>(base);
  AllocatorMeta* meta = nullptr;
  try {
    uint64_t off = RoundPage(sizeof(PoolHeader));
    header->tx_log_offset = off;
    off += RoundPage(sizeof(TxLog) * kMaxThreads);
    header->allocator_offset = off;
    off += RoundPage(sizeof(AllocatorMeta));
    header->retire_offset = off;
    off += RoundPage(sizeof(RetireBuffer));
    header->root_offset = off;
    header->root_size = RoundPage(options.root_size);
    off += header->root_size;
    header->heap_offset = off;
    header->app_tag = options.app_tag;

    header->layout_version = kLayoutVersion;
    header->pool_size = size;
    header->base_address = base_addr;
    header->clean_shutdown = 0;

    meta = reinterpret_cast<AllocatorMeta*>(static_cast<char*>(base) +
                                            header->allocator_offset);
    meta->bump = header->heap_offset;
    meta->heap_end = size;
    Persist(meta, sizeof(*meta));

    // Publish the header last; magic validates the whole layout. A crash
    // before the magic flush leaves a file Open() rejects (bad header) —
    // never a half-initialized pool it would accept.
    Persist(header, sizeof(*header));
    CRASH_POINT("pool_create_after_layout");
    header->magic = kPoolMagic;
    Persist(&header->magic, sizeof(header->magic));
    CRASH_POINT("pool_create_after_publish");
  } catch (...) {
    TornWriteUnregisterPool(base);
    ::munmap(base, size);
    ::close(fd);
    throw;
  }

  auto pool = std::unique_ptr<PmPool>(new PmPool());
  pool->base_ = base;
  pool->fd_ = fd;
  pool->page_mode_ = page_mode;
  pool->recovered_from_crash_ = false;
  pool->allocator_ = std::make_unique<PmAllocator>(pool.get(), meta);
  return pool;
}

std::unique_ptr<PmPool> PmPool::Open(const std::string& path,
                                     bool try_huge_pages) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return nullptr;

  PoolHeader header_copy;
  if (::pread(fd, &header_copy, sizeof(header_copy), 0) !=
          static_cast<ssize_t>(sizeof(header_copy)) ||
      header_copy.magic != kPoolMagic ||
      header_copy.layout_version != kLayoutVersion) {
    std::fprintf(stderr, "PmPool::Open: bad pool header in %s\n",
                 path.c_str());
    ::close(fd);
    return nullptr;
  }

  PageMode page_mode = PageMode::k4K;
  void* base = MapPoolAt(header_copy.base_address, header_copy.pool_size, fd,
                         try_huge_pages, &page_mode);
  if (base == nullptr) {
    std::fprintf(stderr,
                 "PmPool::Open: cannot map %s at its recorded base %#lx\n",
                 path.c_str(),
                 static_cast<unsigned long>(header_copy.base_address));
    ::close(fd);
    return nullptr;
  }

  TornWriteRegisterPool(base, header_copy.pool_size);
  auto pool = std::unique_ptr<PmPool>(new PmPool());
  pool->base_ = base;
  pool->fd_ = fd;
  pool->page_mode_ = page_mode;
  auto* header = pool->header();
  pool->recovered_from_crash_ = header->clean_shutdown == 0;

  // Mark the pool dirty while open.
  header->clean_shutdown = 0;
  Persist(&header->clean_shutdown, sizeof(header->clean_shutdown));

  auto* meta = pool->FromOffset<AllocatorMeta>(header->allocator_offset);
  pool->allocator_ = std::make_unique<PmAllocator>(pool.get(), meta);
  pool->RunOpenRecovery();
  return pool;
}

std::unique_ptr<PmPool> PmPool::OpenOrCreate(const std::string& path,
                                             const Options& options,
                                             bool* created) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (created != nullptr) *created = false;
    return Open(path, options.try_huge_pages);
  }
  if (created != nullptr) *created = true;
  return Create(path, options);
}

void PmPool::RunOpenRecovery() {
  // All three passes are constant work: fixed-size logs, slots and buffer.
  RecoverTxLogs(this);
  allocator_->RecoverOnOpen();
  auto* retire = FromOffset<RetireBuffer>(header()->retire_offset);
  for (size_t i = 0; i < RetireBuffer::kSlots; ++i) {
    if (retire->blocks[i] != 0) {
      allocator_->Free(FromOffset<void>(retire->blocks[i]));
      retire->blocks[i] = 0;
      PersistObject(&retire->blocks[i]);
    }
  }
}

void PmPool::CloseClean() {
  assert(!closed_);
  header()->clean_shutdown = 1;
  Persist(&header()->clean_shutdown, sizeof(uint64_t));
  CloseDirty();
}

void PmPool::CloseDirty() {
  if (closed_) return;
  TornWriteUnregisterPool(base_);
  ::munmap(base_, header() != nullptr ? header()->pool_size : 0);
  ::close(fd_);
  closed_ = true;
  base_ = nullptr;
  fd_ = -1;
}

size_t PmPool::AddRetire(void* block) {
  auto* retire = FromOffset<RetireBuffer>(header()->retire_offset);
  util::SpinLockGuard guard(retire_lock_);
  for (size_t i = 0; i < RetireBuffer::kSlots; ++i) {
    if (retire->blocks[i] == 0 && ((retire_claimed_ >> i) & 1) == 0) {
      retire->blocks[i] = ToOffset(block);
      PersistObject(&retire->blocks[i]);
      retire_claimed_ |= 1ull << i;
      return i;
    }
  }
  assert(false && "retire buffer full");
  return RetireBuffer::kSlots;
}

size_t PmPool::StageRetire(MiniTx* tx, void* block) {
  auto* retire = FromOffset<RetireBuffer>(header()->retire_offset);
  util::SpinLockGuard guard(retire_lock_);
  for (size_t i = 0; i < RetireBuffer::kSlots; ++i) {
    if (retire->blocks[i] == 0 && ((retire_claimed_ >> i) & 1) == 0) {
      retire_claimed_ |= 1ull << i;
      tx->Stage(&retire->blocks[i], ToOffset(block));
      return i;
    }
  }
  assert(false && "retire buffer full");
  return RetireBuffer::kSlots;
}

void PmPool::AbandonRetireClaim(size_t slot) {
  util::SpinLockGuard guard(retire_lock_);
  retire_claimed_ &= ~(1ull << slot);
}

void PmPool::CompleteRetire(size_t slot) {
  auto* retire = FromOffset<RetireBuffer>(header()->retire_offset);
  assert(slot < RetireBuffer::kSlots && retire->blocks[slot] != 0);
  void* block = FromOffset<void>(retire->blocks[slot]);
  allocator_->Free(block);
  retire->blocks[slot] = 0;
  PersistObject(&retire->blocks[slot]);
  util::SpinLockGuard guard(retire_lock_);
  retire_claimed_ &= ~(1ull << slot);
}

}  // namespace dash::pmem
