// Persistence primitives: the CLWB / SFENCE analogues of the PM programming
// model (paper §2.1).
//
// On real hardware, data is durable once the flushed cacheline reaches the
// ADR domain. In this DRAM emulation, stores to the pool mapping are already
// "durable" (they live in the file mapping), so Clwb()/Fence() reduce to
// compiler/CPU ordering barriers plus accounting and optional latency
// injection. The important property preserved is the *program discipline*:
// all table code calls these primitives exactly where it would on real PM,
// so flush counts and ordering bugs are observable.

#ifndef DASH_PM_PMEM_PERSIST_H_
#define DASH_PM_PMEM_PERSIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "pmem/flush_tracker.h"
#include "pmem/stats.h"

namespace dash::pmem {

inline constexpr size_t kCachelineSize = 64;

// Writes back the cacheline containing `addr` (CLWB analogue).
inline void Clwb(const void* addr) {
  (void)addr;
#if defined(__x86_64__)
  // CLWB itself is valid on DRAM-backed mappings and is the closest
  // analogue; fall back to a compiler barrier when unsupported at runtime
  // is not needed because CLWB on non-PM memory is still correct.
  asm volatile("" ::: "memory");
#endif
  if (internal::g_torn_write_tracking.load(std::memory_order_relaxed)) {
    internal::TornTrackClwb(addr);
  }
  auto& stats = GetThreadPmStats();
  stats.clwb.fetch_add(1, std::memory_order_relaxed);
  const uint32_t lat =
      GetEmulationConfig().flush_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNanos(lat);
}

// Store fence (SFENCE analogue): orders preceding flushes/stores. Under
// torn-write simulation this is the durability point: only lines whose
// Clwb preceded a Fence survive a simulated power failure.
inline void Fence() {
  std::atomic_thread_fence(std::memory_order_release);
  if (internal::g_torn_write_tracking.load(std::memory_order_relaxed)) {
    internal::TornTrackFence();
  }
  GetThreadPmStats().fence.fetch_add(1, std::memory_order_relaxed);
}

// Flushes every cacheline in [addr, addr+len) and fences.
inline void Persist(const void* addr, size_t len) {
  const auto start = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t first = start & ~(kCachelineSize - 1);
  const uintptr_t last = (start + len - 1) & ~(kCachelineSize - 1);
  for (uintptr_t line = first; line <= last; line += kCachelineSize) {
    Clwb(reinterpret_cast<const void*>(line));
  }
  Fence();
}

// Convenience: persists a single object.
template <typename T>
inline void PersistObject(const T* obj) {
  Persist(obj, sizeof(T));
}

// Records an explicit PM read probe (a likely cache miss touching the PM
// media, e.g., loading a bucket line or dereferencing a key pointer).
// Injects read latency when enabled.
inline void ReadProbe(const void* addr, size_t lines = 1) {
  (void)addr;
  GetThreadPmStats().read_probes.fetch_add(lines, std::memory_order_relaxed);
  const uint32_t lat =
      GetEmulationConfig().read_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNanos(lat * static_cast<uint32_t>(lines));
}

// Records a PM write that does not need an explicit flush (e.g., CAS on a
// PM-resident lock word). On DCPMM such stores still consume write
// bandwidth — this is what makes pessimistic (reader-writer) locking
// non-scalable for search operations (paper Fig. 13). Under torn-write
// simulation these stores are deliberately NOT tracked: they revert at a
// simulated crash, so recovery must never depend on them (lock words are
// reset on open by every table).
inline void WriteHint(const void* addr) {
  (void)addr;
  GetThreadPmStats().nt_stores.fetch_add(1, std::memory_order_relaxed);
  const uint32_t lat =
      GetEmulationConfig().flush_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNanos(lat);
}

// 8-byte atomic store + persist: the fundamental crash-atomic publication
// primitive on PM (§2.1 "DCPMM supports 8-byte atomic writes").
inline void AtomicPersist64(uint64_t* addr, uint64_t value) {
  reinterpret_cast<std::atomic<uint64_t>*>(addr)->store(
      value, std::memory_order_release);
  Persist(addr, sizeof(uint64_t));
}

}  // namespace dash::pmem

#endif  // DASH_PM_PMEM_PERSIST_H_
