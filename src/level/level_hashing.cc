#include "level/level_hashing.h"

namespace dash::level {

template class LevelHashing<IntKeyPolicy>;
template class LevelHashing<VarKeyPolicy>;

}  // namespace dash::level
