// Level hashing baseline (Zuo et al., OSDI '18) as characterized in the
// paper (§2.3 "Static Hashing on PM", §6):
//
//  * a two-level structure: a top level of 2^L buckets and a bottom
//    ("standby") level of 2^(L-1) buckets;
//  * 128-byte (two-cacheline) buckets;
//  * two hash choices per level, plus one movement attempt before resizing;
//  * resizing rehashes the bottom level into a new top level twice the old
//    top's size; the old top becomes the new bottom. This full-table rehash
//    is expensive on PM and blocks concurrent operations (Fig. 8a);
//  * lock striping for concurrency: all locks live in one small, contiguous
//    (and therefore cacheable) array;
//  * constant-time recovery (Table 1): only the root pointers are read.
//
// Locking. The striped bucket locks and the resize lock's read side are
// *optimistic* (Dash §4.4 applied to the baseline): searches snapshot a
// stripe's version, probe without writing any lock word, and revalidate —
// retrying on conflict. Writers (insert/update/delete) still acquire
// stripes exclusively, and still take the resize lock shared to exclude
// the full-table resize; the resize itself bumps a seqlock-style version
// (util::OptimisticRwLock) so in-flight readers of the old top/bottom
// arrays detect the swap and retry instead of blocking behind it.

#ifndef DASH_PM_LEVEL_LEVEL_HASHING_H_
#define DASH_PM_LEVEL_LEVEL_HASHING_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>

#include "dash/config.h"
#include "dash/key_policy.h"
#include "dash/op_status.h"
#include "epoch/epoch_manager.h"
#include "pmem/allocator.h"
#include "pmem/crash_point.h"
#include "pmem/mini_tx.h"
#include "pmem/persist.h"
#include "pmem/pool.h"
#include "util/amac.h"
#include "util/hash.h"
#include "util/lock.h"
#include "util/prefetch.h"

namespace dash::level {

inline constexpr uint32_t kSlotsPerBucket = 7;  // 16 B header + 7 records

struct LevelRecord {
  uint64_t key;
  uint64_t value;
};

// 128-byte, two-cacheline bucket.
struct LevelBucket {
  std::atomic<uint32_t> bitmap;  // bits 0..6 = slot occupancy
  uint32_t pad0;
  uint64_t pad1;
  LevelRecord records[kSlotsPerBucket];

  uint32_t Occupied() const { return bitmap.load(std::memory_order_acquire); }
  bool IsFull() const {
    return (Occupied() & ((1u << kSlotsPerBucket) - 1)) ==
           ((1u << kSlotsPerBucket) - 1);
  }
  int FreeSlot() const {
    const uint32_t free =
        ~Occupied() & ((1u << kSlotsPerBucket) - 1);
    return free == 0 ? -1 : __builtin_ctz(free);
  }
  uint32_t CountRecords() const { return __builtin_popcount(Occupied()); }

  // Record-field atomics: optimistic searches probe buckets without the
  // stripe lock, so every load/store that can race goes through 8-byte
  // atomics (the version revalidation discards stale *logical* states;
  // these keep the individual accesses untorn and TSan-clean).
  uint64_t LoadKeyAcquire(int slot) const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(&records[slot].key)
        ->load(std::memory_order_acquire);
  }
  uint64_t LoadValueAcquire(int slot) const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(
               &records[slot].value)
        ->load(std::memory_order_acquire);
  }

  // Crash-consistent insert: record first, then the bitmap bit.
  void Insert(int slot, uint64_t stored, uint64_t value) {
    reinterpret_cast<std::atomic<uint64_t>*>(&records[slot].key)
        ->store(stored, std::memory_order_relaxed);
    reinterpret_cast<std::atomic<uint64_t>*>(&records[slot].value)
        ->store(value, std::memory_order_relaxed);
    pmem::Persist(&records[slot], sizeof(LevelRecord));
    bitmap.store(Occupied() | (1u << slot), std::memory_order_release);
    pmem::Persist(this, 16);
  }
  void Delete(int slot) {
    bitmap.store(Occupied() & ~(1u << slot), std::memory_order_release);
    pmem::Persist(this, 16);
  }
};
static_assert(sizeof(LevelBucket) == 128);

struct LevelRoot {
  uint64_t top;           // LevelBucket[top_buckets]
  uint64_t bottom;        // LevelBucket[top_buckets / 2]
  uint64_t top_buckets;   // power of two
  uint64_t initialized;
  uint8_t clean;
  uint8_t pad[7];
};

struct LevelOptions {
  // Initial top-level bucket count (power of two). 2^10 x 128 B = 128 KB.
  uint64_t initial_top_buckets = 1024;
  // Batch engine behind Multi* (see dash::BatchPipeline).
  BatchPipeline batch_pipeline = BatchPipeline::kAmac;
};

struct LevelStats {
  uint64_t records = 0;
  uint64_t capacity_slots = 0;
  uint64_t top_buckets = 0;
  uint64_t resizes = 0;
  double load_factor = 0.0;
  // Read-path concurrency telemetry (cumulative since table open): see
  // util::OptimisticLockStats. write_locks counts exclusive acquisitions
  // (per-op stripe LockAll, movement-path TryLock wins, resizes).
  uint64_t opt_retries = 0;
  uint64_t version_conflicts = 0;
  uint64_t write_locks = 0;
};

template <typename KP = IntKeyPolicy>
class LevelHashing {
 public:
  using KeyArg = typename KP::KeyArg;

  LevelHashing(pmem::PmPool* pool, epoch::EpochManager* epochs,
               const LevelOptions& options)
      : pool_(pool),
        alloc_(&pool->allocator()),
        epochs_(epochs),
        opts_(options),
        root_(static_cast<LevelRoot*>(pool->root())) {
    if (root_->initialized == 0) {
      CreateNew();
    } else {
      // Constant-work recovery: read the root, clear stale striped locks
      // (they are volatile), mark dirty.
      root_->clean = 0;
      pmem::Persist(&root_->clean, 1);
    }
  }

  LevelHashing(const LevelHashing&) = delete;
  LevelHashing& operator=(const LevelHashing&) = delete;

  void CloseClean() {
    epochs_->DrainAll();
    root_->clean = 1;
    pmem::Persist(&root_->clean, 1);
  }

  // Returns kOk, kExists, or kOutOfMemory (resize could not allocate).
  OpStatus Insert(KeyArg key, uint64_t value) {
    const uint64_t h1 = KP::Hash(key);
    const uint64_t h2 = util::Mix64(h1);
    epoch::EpochManager::Guard guard(*epochs_);
    return InsertWithHashes(key, value, h1, h2);
  }

  // Returns kOk or kNotFound.
  OpStatus Search(KeyArg key, uint64_t* out) {
    const uint64_t h1 = KP::Hash(key);
    const uint64_t h2 = util::Mix64(h1);
    epoch::EpochManager::Guard guard(*epochs_);
    return SearchWithHashes(key, h1, h2, out);
  }

  // Returns kOk or kNotFound.
  OpStatus Delete(KeyArg key) {
    const uint64_t h1 = KP::Hash(key);
    const uint64_t h2 = util::Mix64(h1);
    epoch::EpochManager::Guard guard(*epochs_);
    return DeleteWithHashes(key, h1, h2);
  }

  // In-place payload update; returns kOk or kNotFound.
  OpStatus Update(KeyArg key, uint64_t value) {
    const uint64_t h1 = KP::Hash(key);
    const uint64_t h2 = util::Mix64(h1);
    epoch::EpochManager::Guard guard(*epochs_);
    return UpdateWithHashes(key, value, h1, h2);
  }

  // ---- batched operations ----
  //
  // Two engines (opts_.batch_pipeline). kGroup (PR-1): compute both hash
  // choices for every key in the group, prefetch all four candidate
  // buckets (two top, two bottom), then run the ordinary per-op logic
  // serially over warm cachelines. kAmac splits the two-level reprobe
  // into resumable halves: each search prefetches only its two top-level
  // candidates first, yields, probes them, and only on a top-level miss
  // prefetches + probes the bottom (standby) level — so one op's
  // bottom-level fill overlaps other ops' top-level probes, and top-level
  // hits never fetch bottom lines at all. Searches are optimistic (no
  // stripe or resize lock held), so every suspend point is lock-free; a
  // resize that commits mid-group fails the per-op revalidation and the
  // op finishes through the Retry path. One epoch guard per group in both
  // engines.

  void MultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                   OpStatus* statuses) {
    if (opts_.batch_pipeline == BatchPipeline::kAmac) {
      AmacMultiSearch(keys, count, values, statuses);
      return;
    }
    ForEachGroup(keys, count, /*for_write=*/false,
                 [&](size_t i, KeyArg key, uint64_t h1, uint64_t h2) {
                   statuses[i] = SearchWithHashes(key, h1, h2, &values[i]);
                 });
  }

  // Write batches use the group pipeline under both settings: a Level
  // write probes all four candidates while holding every involved stripe
  // lock (LockAll), so there is no lock-free program point left to
  // suspend at — the state machine would degenerate to exactly the group
  // pipeline's prefetch-then-execute schedule.

  void MultiInsert(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h1, uint64_t h2) {
                   statuses[i] = InsertWithHashes(key, values[i], h1, h2);
                 });
  }

  void MultiUpdate(const KeyArg* keys, const uint64_t* values, size_t count,
                   OpStatus* statuses) {
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h1, uint64_t h2) {
                   statuses[i] = UpdateWithHashes(key, values[i], h1, h2);
                 });
  }

  void MultiDelete(const KeyArg* keys, size_t count, OpStatus* statuses) {
    ForEachGroup(keys, count, /*for_write=*/true,
                 [&](size_t i, KeyArg key, uint64_t h1, uint64_t h2) {
                   statuses[i] = DeleteWithHashes(key, h1, h2);
                 });
  }

  // Batch-engine selector (A/B testing hook; volatile).
  void set_batch_pipeline(BatchPipeline p) { opts_.batch_pipeline = p; }

  // Runs only the prefetch stage of the batch pipeline (pure hint; see
  // DashEH::PrefetchBatch). No epoch guard needed: the stage computes
  // candidate addresses without dereferencing them, and a prefetch of a
  // concurrently retired block never faults.
  void PrefetchBatch(const KeyArg* keys, size_t count, bool for_write) const {
    uint64_t h1s[util::kBatchGroupWidth];
    uint64_t h2s[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      PrefetchGroup(keys + base, n, h1s, h2s, for_write);
    }
  }

  LevelStats Stats() const {
    LevelStats stats;
    stats.top_buckets = root_->top_buckets;
    stats.resizes = resizes_;
    auto count = [&](LevelBucket* arr, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) stats.records += arr[i].CountRecords();
      stats.capacity_slots += n * kSlotsPerBucket;
    };
    count(Top(), root_->top_buckets);
    count(Bottom(), root_->top_buckets / 2);
    stats.load_factor = stats.capacity_slots == 0
                            ? 0.0
                            : static_cast<double>(stats.records) /
                                  static_cast<double>(stats.capacity_slots);
    stats.opt_retries = lock_stats_.TotalRetries();
    stats.version_conflicts = lock_stats_.TotalConflicts();
    stats.write_locks = lock_stats_.TotalWriteLocks();
    return stats;
  }

  uint64_t Size() const { return Stats().records; }
  double LoadFactor() const { return Stats().load_factor; }

  // Structural invariant check, for use at a quiescent point (after open
  // recovery): both level arrays live inside the pool, the top size is a
  // non-zero power of two, and no bucket bitmap has occupancy bits beyond
  // the slot count (a torn 16-byte header write leaves exactly that).
  // Read-only; O(capacity), which also gives parallel shard recovery
  // measurable per-shard work.
  bool VerifyStructure() const {
    const uint64_t n = root_->top_buckets;
    if (n == 0 || (n & (n - 1)) != 0) return false;
    LevelBucket* top = Top();
    LevelBucket* bottom = Bottom();
    if (!pool_->Contains(top) ||
        !pool_->Contains(top + n - 1)) {
      return false;
    }
    if (n >= 2 &&
        (!pool_->Contains(bottom) || !pool_->Contains(bottom + n / 2 - 1))) {
      return false;
    }
    constexpr uint32_t kValidBits = (1u << kSlotsPerBucket) - 1;
    for (uint64_t i = 0; i < n; ++i) {
      if ((top[i].Occupied() & ~kValidBits) != 0) return false;
    }
    for (uint64_t i = 0; i < n / 2; ++i) {
      if ((bottom[i].Occupied() & ~kValidBits) != 0) return false;
    }
    return true;
  }

 private:
  static constexpr uint32_t kStripes = 4096;

  struct Candidates {
    // 0,1 = top choices; 2,3 = bottom (standby) choices.
    LevelBucket* buckets[4];
    uint64_t ids[4];  // global bucket ids (top: [0,N), bottom: N + [0,N/2))
  };

  // Batch scaffold: per group of
  // kBatchGroupWidth operations run the prefetch stage and invoke
  // exec(global_index, key, h1, h2) for each.
  template <typename ExecFn>
  void ForEachGroup(const KeyArg* keys, size_t count, bool for_write,
                    ExecFn exec) {
    uint64_t h1s[util::kBatchGroupWidth];
    uint64_t h2s[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      // One guard per group: amortizes the seq-cst epoch pin over
      // kBatchGroupWidth ops without stalling reclamation for the whole
      // (unbounded) batch.
      epoch::EpochManager::Guard guard(*epochs_);
      PrefetchGroup(keys + base, n, h1s, h2s, for_write);
      for (size_t i = 0; i < n; ++i) {
        exec(base + i, keys[base + i], h1s[i], h2s[i]);
      }
    }
  }

  // ---- per-op bodies (caller holds an epoch guard) ----

  OpStatus InsertWithHashes(KeyArg key, uint64_t value, uint64_t h1,
                            uint64_t h2) {
    for (;;) {
      resize_lock_.LockShared();
      const AttemptResult result = InsertAttempt(key, value, h1, h2);
      resize_lock_.UnlockShared();
      if (result == AttemptResult::kInserted) return OpStatus::kOk;
      if (result == AttemptResult::kDuplicate) return OpStatus::kExists;
      // Out of room: full-table resize (blocks all operations). A failed
      // resize — pool exhausted, or the (virtually impossible, 5x
      // headroom) cuckoo-displacement overflow — means the table cannot
      // grow; surface that instead of retrying forever.
      if (!Resize(root_->top_buckets)) return OpStatus::kOutOfMemory;
    }
  }

  // Lock-free search: snapshot the resize version, probe the four
  // candidates optimistically (per-stripe snapshot/verify), then confirm
  // the table was not swapped under us. An in-flight or completed resize
  // invalidates the snapshot and the whole op retries against the fresh
  // top/bottom pointers; the epoch guard keeps a retired bottom array
  // mapped while a stale probe is still touching it.
  OpStatus SearchWithHashes(KeyArg key, uint64_t h1, uint64_t h2,
                            uint64_t* out) {
    util::SpinBackoff backoff;
    for (;;) {
      const uint32_t rs = SnapshotResize();
      Candidates c = Locate(h1, h2);
      const bool found = ProbeCandidateRangeOptimistic(c, 0, 4, h1, key, out);
      if (resize_lock_.Verify(rs)) {
        return found ? OpStatus::kOk : OpStatus::kNotFound;
      }
      lock_stats_.CountRetry();
      backoff.Pause();
    }
  }

  // Resize-version snapshot for optimistic reads; spins while a resize is
  // active (odd parity) since the commit swaps the arrays mid-section.
  uint32_t SnapshotResize() {
    util::SpinBackoff backoff;
    for (;;) {
      const uint32_t rs = resize_lock_.Snapshot();
      if (util::OptimisticRwLock::SnapshotValid(rs)) return rs;
      lock_stats_.CountConflict();
      backoff.Pause();
    }
  }

  // Probes candidates [from, to) in order, each under its stripe's
  // version: snapshot, probe, verify, retry the candidate on conflict.
  // No lock word is written. The same helper backs the single-op search
  // (whole range) and the AMAC search's two halves (top level then
  // bottom), so probe order and revalidation are shared.
  bool ProbeCandidateRangeOptimistic(const Candidates& c, int from, int to,
                                     uint64_t h1, KeyArg key,
                                     uint64_t* out) {
    for (int i = from; i < to; ++i) {
      const uint32_t stripe = StripeOf(c.ids[i]);
      util::SpinBackoff backoff;
      for (;;) {
        const uint32_t snap = locks_[stripe].Snapshot();
        if (util::VersionLock::IsLocked(snap)) {
          lock_stats_.CountConflict();
          backoff.Pause();
          continue;
        }
        const int slot = FindIn(c.buckets[i], h1 & 0xFF, key);
        const uint64_t value =
            slot >= 0 ? c.buckets[i]->LoadValueAcquire(slot) : 0;
        if (!locks_[stripe].Verify(snap)) {
          lock_stats_.CountRetry();
          backoff.Pause();
          continue;
        }
        if (slot >= 0) {
          *out = value;
          return true;
        }
        break;
      }
    }
    return false;
  }

  // ---- state-machine (AMAC) search engine ----
  //
  // Monotonic per-op machines scheduled as state passes (util/amac.h).
  // Searches take no locks at all: one resize-version snapshot covers the
  // group (the candidate pointers computed in the Hash pass stay valid
  // across suspends — the epoch guard keeps even a concurrently retired
  // bottom array mapped), each op revalidates the snapshot when it
  // completes, and ops that lose the race against a resize commit finish
  // through the single-op retry loop in a dedicated Retry pass. A resize
  // therefore never waits for an in-flight group, and a group never
  // blocks behind a resize already in progress at snapshot time only.

  void AmacMultiSearch(const KeyArg* keys, size_t count, uint64_t* values,
                       OpStatus* statuses) {
    util::AmacTelemetry& tele = util::AmacTelemetry::Local();
    uint64_t h1s[util::kBatchGroupWidth];
    Candidates cands[util::kBatchGroupWidth];
    for (size_t base = 0; base < count; base += util::kBatchGroupWidth) {
      const size_t n = std::min(util::kBatchGroupWidth, count - base);
      epoch::EpochManager::Guard guard(*epochs_);
      const uint32_t rs = SnapshotResize();
      util::AmacGroupCounters ctr;
      ++tele.groups;
      tele.ops += n;
      for (size_t i = 0; i < n; ++i) {
        h1s[i] = KP::Hash(keys[base + i]);
        cands[i] = Locate(h1s[i], util::Mix64(h1s[i]));
        // First top candidate only: each later candidate is fetched
        // lazily on a miss of the previous one, keeping the group's
        // outstanding-prefetch burst within what the core's miss buffers
        // can track (16 ops x 2 lines instead of x 4+).
        util::PrefetchRange(cands[i].buckets[0], sizeof(LevelBucket));
        ctr.Suspend(util::AmacState::kHash);
      }
      util::AmacReadyList second_pending;
      util::AmacReadyList bottom_pending;
      util::AmacReadyList retry_pending;
      for (size_t i = 0; i < n; ++i) {
        ++ctr.steps;
        if (ProbeCandidateRangeOptimistic(cands[i], 0, 1, h1s[i],
                                          keys[base + i],
                                          &values[base + i])) {
          if (resize_lock_.Verify(rs)) {
            statuses[base + i] = OpStatus::kOk;
          } else {
            retry_pending.Push(i);
            ctr.Suspend(util::AmacState::kRetry);
          }
          continue;
        }
        util::PrefetchRange(cands[i].buckets[1], sizeof(LevelBucket));
        second_pending.Push(i);
        ctr.Suspend(util::AmacState::kDirProbe);
      }
      for (size_t j = 0; j < second_pending.count; ++j) {
        const size_t i = second_pending.idx[j];
        ++ctr.steps;
        if (ProbeCandidateRangeOptimistic(cands[i], 1, 2, h1s[i],
                                          keys[base + i],
                                          &values[base + i])) {
          if (resize_lock_.Verify(rs)) {
            statuses[base + i] = OpStatus::kOk;
          } else {
            retry_pending.Push(i);
            ctr.Suspend(util::AmacState::kRetry);
          }
          continue;
        }
        util::PrefetchRange(cands[i].buckets[2], sizeof(LevelBucket));
        util::PrefetchRange(cands[i].buckets[3], sizeof(LevelBucket));
        bottom_pending.Push(i);
        ctr.Suspend(util::AmacState::kBucketProbe);
      }
      for (size_t j = 0; j < bottom_pending.count; ++j) {
        const size_t i = bottom_pending.idx[j];
        ++ctr.steps;
        // Bottom (standby) level reprobe over warm lines.
        const bool found = ProbeCandidateRangeOptimistic(
            cands[i], 2, 4, h1s[i], keys[base + i], &values[base + i]);
        if (resize_lock_.Verify(rs)) {
          statuses[base + i] = found ? OpStatus::kOk : OpStatus::kNotFound;
        } else {
          retry_pending.Push(i);
          ctr.Suspend(util::AmacState::kRetry);
        }
      }
      for (size_t j = 0; j < retry_pending.count; ++j) {
        const size_t i = retry_pending.idx[j];
        ++ctr.steps;
        // A resize committed mid-group: redo against the live arrays
        // (fresh snapshot, fresh candidate pointers).
        lock_stats_.CountRetry();
        statuses[base + i] =
            SearchWithHashes(keys[base + i], h1s[i], util::Mix64(h1s[i]),
                             &values[base + i]);
      }
      ctr.FlushTo(tele);
    }
  }

  OpStatus DeleteWithHashes(KeyArg key, uint64_t h1, uint64_t h2) {
    resize_lock_.LockShared();
    Candidates c = Locate(h1, h2);
    LockAll(c);
    bool found = false;
    for (int i = 0; i < 4 && !found; ++i) {
      const int slot = FindIn(c.buckets[i], h1 & 0xFF, key);
      if (slot >= 0) {
        KP::FreeStored(c.buckets[i]->records[slot].key, alloc_);
        c.buckets[i]->Delete(slot);
        found = true;
      }
    }
    UnlockAll(c);
    resize_lock_.UnlockShared();
    return found ? OpStatus::kOk : OpStatus::kNotFound;
  }

  OpStatus UpdateWithHashes(KeyArg key, uint64_t value, uint64_t h1,
                            uint64_t h2) {
    resize_lock_.LockShared();
    Candidates c = Locate(h1, h2);
    LockAll(c);
    bool found = false;
    for (int i = 0; i < 4 && !found; ++i) {
      const int slot = FindIn(c.buckets[i], 0, key);
      if (slot >= 0) {
        pmem::AtomicPersist64(&c.buckets[i]->records[slot].value, value);
        found = true;
      }
    }
    UnlockAll(c);
    resize_lock_.UnlockShared();
    return found ? OpStatus::kOk : OpStatus::kNotFound;
  }

  // Stage 1 of the batch pipeline: hash the group and prefetch the first
  // cacheline (bitmap word + first records) of all four candidate buckets.
  // The top/bottom pointers and bucket count may be swapped by a
  // concurrent resize (hence the atomic snapshot of the count — the
  // resize commit writes it); the snapshot triple may be mutually
  // inconsistent, which is fine because prefetches are never
  // dereferenced, and the execute stage re-locates under the resize
  // lock. A stale prefetch costs at most an extra miss.
  void PrefetchGroup(const KeyArg* keys, size_t n, uint64_t* h1s,
                     uint64_t* h2s, bool for_write) const {
    const uint64_t buckets =
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->top_buckets)
            ->load(std::memory_order_acquire);
    LevelBucket* top = Top();
    LevelBucket* bottom = Bottom();
    for (size_t i = 0; i < n; ++i) {
      h1s[i] = KP::Hash(keys[i]);
      h2s[i] = util::Mix64(h1s[i]);
      const LevelBucket* candidates[4] = {
          &top[h1s[i] & (buckets - 1)], &top[h2s[i] & (buckets - 1)],
          &bottom[h1s[i] & (buckets / 2 - 1)],
          &bottom[h2s[i] & (buckets / 2 - 1)]};
      for (const LevelBucket* b : candidates) {
        // Both cachelines: records 3-6 live entirely in the second line.
        util::PrefetchRange(b, sizeof(LevelBucket), for_write);
      }
    }
  }

  LevelBucket* Top() const {
    return reinterpret_cast<LevelBucket*>(
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->top)->load(
            std::memory_order_acquire));
  }
  LevelBucket* Bottom() const {
    return reinterpret_cast<LevelBucket*>(
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->bottom)->load(
            std::memory_order_acquire));
  }

  static uint32_t StripeOf(uint64_t bucket_id) {
    return static_cast<uint32_t>(bucket_id) % kStripes;
  }

  Candidates Locate(uint64_t h1, uint64_t h2) const {
    // Atomic snapshot: lock-free searches race the resize commit's
    // atomic store of the bucket count (a mutually inconsistent
    // (n, top, bottom) triple is discarded by the resize-version check).
    const uint64_t n =
        reinterpret_cast<const std::atomic<uint64_t>*>(&root_->top_buckets)
            ->load(std::memory_order_acquire);
    const uint64_t t1 = h1 & (n - 1);
    const uint64_t t2 = h2 & (n - 1);
    // Bottom indices use h mod (N/2). This is what makes resizing work:
    // the old top (indexed by h mod N) becomes the new bottom when the new
    // top has 2N buckets, and h mod N is exactly the new bottom index.
    const uint64_t b1 = h1 & (n / 2 - 1);
    const uint64_t b2 = h2 & (n / 2 - 1);
    LevelBucket* top = Top();
    LevelBucket* bottom = Bottom();
    Candidates c;
    c.buckets[0] = &top[t1];
    c.buckets[1] = &top[t2];
    c.buckets[2] = &bottom[b1];
    c.buckets[3] = &bottom[b2];
    c.ids[0] = t1;
    c.ids[1] = t2;
    c.ids[2] = n + b1;
    c.ids[3] = n + b2;
    return c;
  }

  void LockAll(const Candidates& c) {
    uint32_t stripes[4];
    for (int i = 0; i < 4; ++i) stripes[i] = StripeOf(c.ids[i]);
    std::sort(stripes, stripes + 4);
    uint32_t last = ~0u;
    for (uint32_t s : stripes) {
      if (s != last) locks_[s].Lock();
      last = s;
    }
    lock_stats_.CountWriteLock();
  }
  void UnlockAll(const Candidates& c) {
    uint32_t stripes[4];
    for (int i = 0; i < 4; ++i) stripes[i] = StripeOf(c.ids[i]);
    std::sort(stripes, stripes + 4);
    uint32_t last = ~0u;
    for (uint32_t s : stripes) {
      if (s != last) locks_[s].Unlock();
      last = s;
    }
  }

  // Shared by locked write bodies and lock-free searches, so keys are
  // loaded atomically (slot reuse after a delete is an atomic store on
  // the writer side; the stripe version check discards stale hits).
  int FindIn(LevelBucket* bucket, uint8_t /*fp*/, KeyArg key) const {
    // Two cachelines per probed bucket (128 B).
    pmem::ReadProbe(bucket, 2);
    uint32_t bits =
        bucket->Occupied() & ((1u << kSlotsPerBucket) - 1);
    while (bits != 0) {
      const int slot = __builtin_ctz(bits);
      bits &= bits - 1;
      if (KP::EqualStored(bucket->LoadKeyAcquire(slot), key)) return slot;
    }
    return -1;
  }

  enum class AttemptResult { kInserted, kDuplicate, kNeedResize };

  // One insert attempt under the shared resize lock.
  AttemptResult InsertAttempt(KeyArg key, uint64_t value, uint64_t h1,
                              uint64_t h2) {
    Candidates c = Locate(h1, h2);
    LockAll(c);
    // Uniqueness check across all four candidates.
    for (int i = 0; i < 4; ++i) {
      if (FindIn(c.buckets[i], 0, key) >= 0) {
        UnlockAll(c);
        return AttemptResult::kDuplicate;
      }
    }
    // Try the less-loaded top bucket first, then bottom standby buckets.
    int order[4] = {0, 1, 2, 3};
    if (c.buckets[1]->CountRecords() < c.buckets[0]->CountRecords()) {
      std::swap(order[0], order[1]);
    }
    for (int i : order) {
      const int slot = c.buckets[i]->FreeSlot();
      if (slot >= 0) {
        const uint64_t stored = KP::MakeStored(key, alloc_);
        c.buckets[i]->Insert(slot, stored, value);
        UnlockAll(c);
        return AttemptResult::kInserted;
      }
    }
    // One movement attempt: displace a record from a top candidate to its
    // alternative top bucket.
    for (int i = 0; i < 2; ++i) {
      LevelBucket* b = c.buckets[i];
      for (uint32_t slot = 0; slot < kSlotsPerBucket; ++slot) {
        if (((b->Occupied() >> slot) & 1) == 0) continue;
        const uint64_t stored = b->records[slot].key;
        const uint64_t rh1 = KP::HashStored(stored);
        const uint64_t rh2 = util::Mix64(rh1);
        const uint64_t n = root_->top_buckets;
        const uint64_t alt =
            (rh1 & (n - 1)) == c.ids[i] ? (rh2 & (n - 1)) : (rh1 & (n - 1));
        if (alt == c.ids[0] || alt == c.ids[1]) continue;
        const uint32_t alt_stripe = StripeOf(alt);
        if (!locks_[alt_stripe].TryLock()) continue;
        lock_stats_.CountWriteLock();
        LevelBucket* alt_bucket = &Top()[alt];
        const int free_slot = alt_bucket->FreeSlot();
        if (free_slot < 0) {
          locks_[alt_stripe].Unlock();
          continue;
        }
        alt_bucket->Insert(free_slot, stored, b->records[slot].value);
        b->Delete(static_cast<int>(slot));
        locks_[alt_stripe].Unlock();
        const uint64_t new_stored = KP::MakeStored(key, alloc_);
        b->Insert(static_cast<int>(slot), new_stored, value);
        UnlockAll(c);
        return AttemptResult::kInserted;
      }
    }
    UnlockAll(c);
    return AttemptResult::kNeedResize;
  }

  void CreateNew() {
    root_->top_buckets = opts_.initial_top_buckets;
    root_->clean = 0;
    pmem::Persist(root_, sizeof(*root_));
    {
      auto r = alloc_->Reserve(root_->top_buckets * sizeof(LevelBucket));
      assert(r.valid());
      alloc_->Activate(r, &root_->top);
    }
    {
      auto r = alloc_->Reserve(root_->top_buckets / 2 * sizeof(LevelBucket));
      assert(r.valid());
      alloc_->Activate(r, &root_->bottom);
    }
    root_->initialized = 1;
    pmem::PersistObject(&root_->initialized);
  }

  // Full-table resize (§2.3 of the paper's description): the bottom level
  // is rehashed into a brand-new top of twice the old top's size; the old
  // top becomes the new bottom. Exclusive — blocks every operation.
  // Returns false only when no progress could be made because the pool is
  // out of memory.
  bool Resize(uint64_t expected_n) {
    resize_lock_.Lock();
    lock_stats_.CountWriteLock();
    // Another thread may have resized while we waited for the lock.
    if (root_->top_buckets != expected_n) {
      resize_lock_.Unlock();
      return true;
    }
    const uint64_t old_n = root_->top_buckets;
    LevelBucket* old_top = Top();
    LevelBucket* old_bottom = Bottom();

    const uint64_t new_n = old_n * 2;
    auto r = alloc_->Reserve(new_n * sizeof(LevelBucket));
    if (!r.valid()) {
      resize_lock_.Unlock();
      return false;
    }
    auto* new_top = static_cast<LevelBucket*>(r.ptr);
    CRASH_POINT("level_resize_after_alloc");

    // Rehash every bottom record into the *new top only* (two choices plus
    // one movement attempt). The old structure is never mutated before the
    // commit, so a crash at any point leaves the old table intact; the new
    // top is at most 25% full afterwards, so placement virtually never
    // fails.
    bool ok = true;
    for (uint64_t i = 0; i < old_n / 2 && ok; ++i) {
      CRASH_POINT("level_resize_during_rehash");
      LevelBucket* b = &old_bottom[i];
      const uint32_t occupied = b->Occupied();
      for (uint32_t slot = 0; slot < kSlotsPerBucket && ok; ++slot) {
        if (((occupied >> slot) & 1) == 0) continue;
        ok = RehashRecord(new_top, new_n, b->records[slot].key,
                          b->records[slot].value);
      }
    }
    if (!ok) {
      // Extremely unlikely (the new structure has 5x the bottom's
      // capacity); give up cleanly.
      alloc_->Cancel(r);
      resize_lock_.Unlock();
      return false;
    }
    pmem::Persist(new_top, new_n * sizeof(LevelBucket));
    CRASH_POINT("level_resize_before_commit");

    // Atomic commit: swap top/bottom pointers, retire the old bottom,
    // clear the reservation.
    pmem::MiniTx tx(pool_);
    tx.Stage(&root_->top, reinterpret_cast<uint64_t>(new_top));
    tx.Stage(&root_->bottom, reinterpret_cast<uint64_t>(old_top));
    tx.Stage(&root_->top_buckets, new_n);
    const size_t retire_slot = pool_->StageRetire(&tx, old_bottom);
    tx.Stage(pool_->FromOffset<uint64_t>(
                 alloc_->ReservationSlotBlockOffset(r)),
             0);
    tx.Commit();
    CRASH_POINT("level_resize_after_commit");
    ++resizes_;
    resize_lock_.Unlock();

    pmem::PmPool* pool = pool_;
    epochs_->Retire([pool, retire_slot] { pool->CompleteRetire(retire_slot); });
    return true;
  }

  bool RehashRecord(LevelBucket* new_top, uint64_t new_n, uint64_t stored,
                    uint64_t value) {
    const uint64_t h1 = KP::HashStored(stored);
    const uint64_t h2 = util::Mix64(h1);
    const uint64_t t1 = h1 & (new_n - 1);
    const uint64_t t2 = h2 & (new_n - 1);
    for (uint64_t t : {t1, t2}) {
      const int slot = new_top[t].FreeSlot();
      if (slot >= 0) {
        new_top[t].Insert(slot, stored, value);
        return true;
      }
    }
    // Movement attempt within the new top.
    for (uint64_t t : {t1, t2}) {
      LevelBucket* b = &new_top[t];
      for (uint32_t slot = 0; slot < kSlotsPerBucket; ++slot) {
        const uint64_t vk = b->records[slot].key;
        const uint64_t vh1 = KP::HashStored(vk);
        const uint64_t vh2 = util::Mix64(vh1);
        const uint64_t alt =
            (vh1 & (new_n - 1)) == t ? (vh2 & (new_n - 1)) : (vh1 & (new_n - 1));
        if (alt == t1 || alt == t2) continue;
        const int free_slot = new_top[alt].FreeSlot();
        if (free_slot < 0) continue;
        new_top[alt].Insert(free_slot, vk, b->records[slot].value);
        b->Delete(static_cast<int>(slot));
        b->Insert(static_cast<int>(slot), stored, value);
        return true;
      }
    }
    return false;
  }

  pmem::PmPool* pool_;
  pmem::PmAllocator* alloc_;
  epoch::EpochManager* epochs_;
  LevelOptions opts_;
  LevelRoot* root_;
  // Resize lock: writers (insert/update/delete) hold it shared, the
  // resize holds it exclusively, and searches read its version only.
  util::OptimisticRwLock resize_lock_;
  // Striped bucket version locks (volatile): writers exclusive, searches
  // snapshot/verify — a search writes no lock word at all.
  util::VersionLock locks_[kStripes];
  uint64_t resizes_ = 0;
  // Read-path concurrency telemetry, sharded per thread (see CCEH).
  alignas(64) mutable util::ShardedOptimisticLockStats lock_stats_;
};

}  // namespace dash::level

#endif  // DASH_PM_LEVEL_LEVEL_HASHING_H_
