#include "util/rand.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/zipf.h"

namespace dash::util {
namespace {

TEST(XoshiroTest, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(XoshiroTest, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(XoshiroTest, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> histogram(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.NextBounded(8)];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 8 - 1000);
    EXPECT_LT(count, kDraws / 8 + 1000);
  }
}

TEST(XoshiroTest, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, RanksInRange) {
  ZipfGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 1000u);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfGenerator zipf(100000, 0.99, 9);
  uint64_t top10 = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++top10;
  }
  // Under theta=0.99 the ten hottest of 100k keys draw ~2.5% of accesses —
  // two orders of magnitude above the uniform share (0.01%).
  EXPECT_GT(top10, static_cast<uint64_t>(kDraws) / 200);
}

TEST(ZipfTest, LowThetaIsFlatter) {
  ZipfGenerator hot(100000, 0.99, 13), mild(100000, 0.5, 13);
  uint64_t hot_top = 0, mild_top = 0;
  for (int i = 0; i < 50000; ++i) {
    if (hot.Next() < 100) ++hot_top;
    if (mild.Next() < 100) ++mild_top;
  }
  EXPECT_GT(hot_top, mild_top);
}

}  // namespace
}  // namespace dash::util
