// KvServer end-to-end tests over both transports: handshake, pipelined
// out-of-order responses matched by request id, concurrent clients,
// admission control as protocol-level responses (pipeline cap, saturated
// depth-1 queue, expired deadlines — never a dropped connection), and
// clean per-connection close on malformed frames.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/kv_client.h"
#include "net/kv_server.h"
#include "test_util.h"

namespace dash::net {
namespace {

using test::SmallStoreOptions;
using test::TempShardPaths;

// A server-ready 4-shard store: worker executor on, bounded backoff so a
// full queue sheds load as kUnavailable instead of blocking the event
// loop (the shape the KvServer header documents).
std::unique_ptr<api::ShardedStore> OpenStore(const TempShardPaths& paths,
                                             size_t shards,
                                             size_t queue_depth = 128) {
  api::ShardedStoreOptions options =
      SmallStoreOptions(paths.prefix(), shards);
  options.async.workers = true;
  options.async.inline_single_shard = false;
  options.async.queue_depth = queue_depth;
  options.async.submit_retries = 3;
  return api::ShardedStore::Open(options);
}

std::string TestUdsPath(const std::string& tag) {
  return "/tmp/dash_kv_" + tag + "_" + std::to_string(getpid()) + ".sock";
}

// Insert/search/delete round trip through one client on one transport.
void SmokeOneClient(KvClient* client) {
  const api::Op inserts[] = {api::Op::Insert(1, 100),
                             api::Op::Insert(2, 200)};
  ClientResponse response;
  ASSERT_TRUE(client->Execute(inserts, 2, 0, &response));
  ASSERT_EQ(response.statuses.size(), 2u);
  EXPECT_EQ(response.statuses[0], api::Status::kOk);
  EXPECT_EQ(response.statuses[1], api::Status::kOk);

  const api::Op searches[] = {api::Op::Search(1), api::Op::Search(2),
                              api::Op::Search(3)};
  ASSERT_TRUE(client->Execute(searches, 3, 0, &response));
  ASSERT_EQ(response.statuses.size(), 3u);
  EXPECT_EQ(response.statuses[0], api::Status::kOk);
  EXPECT_EQ(response.values[0], 100u);
  EXPECT_EQ(response.statuses[1], api::Status::kOk);
  EXPECT_EQ(response.values[1], 200u);
  EXPECT_EQ(response.statuses[2], api::Status::kNotFound);

  const api::Op del = api::Op::Delete(1);
  ASSERT_TRUE(client->Execute(&del, 1, 0, &response));
  EXPECT_EQ(response.statuses[0], api::Status::kOk);
  const api::Op again = api::Op::Search(1);
  ASSERT_TRUE(client->Execute(&again, 1, 0, &response));
  EXPECT_EQ(response.statuses[0], api::Status::kNotFound);
}

TEST(KvServerTest, UdsSmoke) {
  TempShardPaths paths("srv_uds", 4);
  auto store = OpenStore(paths, 4);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("smoke");
  KvServer server(store.get(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path, 1, 1, &error)) << error;
  EXPECT_EQ(client.shard_count(), 4u);
  EXPECT_EQ(client.max_ops(), kMaxOpsPerRequest);
  SmokeOneClient(&client);
  client.Close();
  server.Stop();
  store->CloseClean();
}

TEST(KvServerTest, TcpSmoke) {
  TempShardPaths paths("srv_tcp", 4);
  auto store = OpenStore(paths, 4);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.tcp = true;  // ephemeral port
  KvServer server(store.get(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.tcp_port(), 0);

  KvClient client;
  ASSERT_TRUE(
      client.ConnectTcp("127.0.0.1", server.tcp_port(), 1, 1, &error))
      << error;
  SmokeOneClient(&client);
  client.Close();
  server.Stop();
  store->CloseClean();
}

// Pipelining: many requests in flight on one connection; responses come
// back in completion order and are matched by request id, and every id
// gets exactly one response.
TEST(KvServerTest, PipelinedOutOfOrderResponses) {
  TempShardPaths paths("srv_pipe", 4);
  auto store = OpenStore(paths, 4);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("pipe");
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path));

  constexpr int kInFlight = 64;
  constexpr size_t kOpsPer = 16;
  std::map<uint64_t, uint64_t> sent;  // id -> first key of its batch
  for (int r = 0; r < kInFlight; ++r) {
    api::Op ops[kOpsPer];
    const uint64_t base = static_cast<uint64_t>(r) * kOpsPer + 1;
    for (size_t i = 0; i < kOpsPer; ++i) {
      ops[i] = api::Op::Insert(base + i, base + i);
    }
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(ops, kOpsPer, 0, &id));
    sent[id] = base;
  }
  for (int r = 0; r < kInFlight; ++r) {
    ClientResponse response;
    ASSERT_TRUE(client.Receive(&response));
    auto it = sent.find(response.request_id);
    ASSERT_NE(it, sent.end()) << "unknown or duplicate response id";
    ASSERT_EQ(response.statuses.size(), kOpsPer);
    for (size_t i = 0; i < kOpsPer; ++i) {
      EXPECT_EQ(response.statuses[i], api::Status::kOk);
    }
    sent.erase(it);
  }
  EXPECT_TRUE(sent.empty());

  // Everything really landed in the store.
  uint64_t value = 0;
  EXPECT_EQ(store->Search(1, &value), api::Status::kOk);
  EXPECT_EQ(store->Search(kInFlight * kOpsPer, &value), api::Status::kOk);
  server.Stop();
  store->CloseClean();
}

// >= 4 concurrent clients, each pipelining over its own connection on
// disjoint key ranges; zero protocol errors, all ops applied.
TEST(KvServerTest, ConcurrentPipelinedClients) {
  TempShardPaths paths("srv_multi", 4);
  auto store = OpenStore(paths, 4);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("multi");
  options.tcp = true;
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  constexpr int kClients = 6;
  constexpr int kRequests = 40;
  constexpr size_t kOpsPer = 8;
  constexpr int kWindow = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      KvClient client;
      // Alternate transports across clients.
      const bool ok =
          (c % 2 == 0)
              ? client.ConnectUds(options.uds_path, c, 1)
              : client.ConnectTcp("127.0.0.1", server.tcp_port(), c, 1);
      if (!ok) {
        failures.fetch_add(1);
        return;
      }
      uint64_t next_key = static_cast<uint64_t>(c) * 1000000 + 1;
      int sent = 0, received = 0;
      while (received < kRequests) {
        while (sent < kRequests && sent - received < kWindow) {
          api::Op ops[kOpsPer];
          for (size_t i = 0; i < kOpsPer; ++i) {
            ops[i] = api::Op::Insert(next_key, next_key);
            ++next_key;
          }
          if (!client.Send(ops, kOpsPer, 0, nullptr)) {
            failures.fetch_add(1);
            return;
          }
          ++sent;
        }
        ClientResponse response;
        if (!client.Receive(&response) ||
            response.statuses.size() != kOpsPer) {
          failures.fetch_add(1);
          return;
        }
        for (const api::Status s : response.statuses) {
          if (s != api::Status::kOk) failures.fetch_add(1);
        }
        ++received;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store->Stats().totals.records,
            static_cast<uint64_t>(kClients) * kRequests * kOpsPer);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_bad, 0u);
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients) * kRequests);
  server.Stop();
  store->CloseClean();
}

// Malformed bytes close that connection cleanly; the server keeps
// serving other connections.
TEST(KvServerTest, MalformedFrameClosesOnlyThatConnection) {
  TempShardPaths paths("srv_bad", 2);
  auto store = OpenStore(paths, 2);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("bad");
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient good;
  ASSERT_TRUE(good.ConnectUds(options.uds_path));

  // Raw socket speaking garbage after a valid hello.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.uds_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<uint8_t> hello;
  AppendHello(&hello, 7, 1);
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hello.size()));
  uint8_t ack[64];
  ASSERT_GT(::recv(fd, ack, sizeof(ack), 0), 0);
  const uint8_t garbage[] = "this is not a frame at all, not even close";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  // Server must close: recv sees EOF, not a hang.
  uint8_t drain[64];
  ssize_t n;
  while ((n = ::recv(fd, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  ::close(fd);

  // A request before the handshake is a protocol error too.
  const int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(
      ::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<uint8_t> early;
  const api::Op op = api::Op::Search(1);
  AppendRequest(&early, 1, &op, 1, 0);
  ASSERT_EQ(::send(fd2, early.data(), early.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(early.size()));
  while ((n = ::recv(fd2, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  ::close(fd2);

  // The well-behaved connection is unaffected.
  SmokeOneClient(&good);
  EXPECT_GE(server.stats().frames_bad + server.stats().connections_closed,
            2u);
  server.Stop();
  store->CloseClean();
}

// Saturate a depth-1 store queue: some ops come back kUnavailable with
// the retry-after flag, the connection survives, and a follow-up request
// succeeds. Backpressure is a response, not a disconnect.
TEST(KvServerTest, SaturatedQueueYieldsRetryAfterNotDisconnect) {
  TempShardPaths paths("srv_sat", 2);
  auto store = OpenStore(paths, 2, /*queue_depth=*/1);
  ASSERT_NE(store, nullptr);
  // Make shedding fast: one submit retry, tiny backoff.
  ServerOptions options;
  options.uds_path = TestUdsPath("sat");
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path));

  constexpr int kBurst = 128;
  constexpr size_t kOpsPer = 64;
  for (int r = 0; r < kBurst; ++r) {
    api::Op ops[kOpsPer];
    const uint64_t base = static_cast<uint64_t>(r) * kOpsPer + 1;
    for (size_t i = 0; i < kOpsPer; ++i) {
      ops[i] = api::Op::Insert(base + i, base + i);
    }
    ASSERT_TRUE(client.Send(ops, kOpsPer, 0, nullptr));
  }
  uint64_t unavailable = 0, ok = 0, retry_flags = 0;
  for (int r = 0; r < kBurst; ++r) {
    ClientResponse response;
    ASSERT_TRUE(client.Receive(&response)) << "connection dropped";
    ASSERT_EQ(response.statuses.size(), kOpsPer);
    if (response.retry_after_us != 0) ++retry_flags;
    for (const api::Status s : response.statuses) {
      if (s == api::Status::kOk) {
        ++ok;
      } else {
        ASSERT_EQ(s, api::Status::kUnavailable);
        ++unavailable;
      }
    }
  }
  // Every op was answered, one way or the other.
  EXPECT_EQ(ok + unavailable, static_cast<uint64_t>(kBurst) * kOpsPer);
  EXPECT_GT(ok, 0u);
  if (unavailable > 0) {
    EXPECT_GT(retry_flags, 0u);
    EXPECT_GT(server.stats().retry_responses, 0u);
  }
  // The connection is still healthy after the burst.
  ClientResponse response;
  const api::Op probe = api::Op::Search(1);
  ASSERT_TRUE(client.Execute(&probe, 1, 0, &response));
  server.Stop();
  store->CloseClean();
}

// Opt-in client-side retry: Execute(max_retries) resends the shed subset
// of a batch after the advised backoff instead of surfacing
// kUnavailable. kUnavailable is a never-executed guarantee (shed at
// submit or admission), so the resent inserts land exactly once: every
// slot must end kOk and every key must be durable.
TEST(KvServerTest, ExecuteRetriesShedOpsUntilTheyLand) {
  TempShardPaths paths("srv_retry", 2);
  auto store = OpenStore(paths, 2, /*queue_depth=*/1);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("retry");
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path));
  // Each burst dwarfs the depth-1 shard queues, so the first response
  // usually mixes kOk with shed kUnavailable slots; the retry rounds
  // resend the shed remainder into the by-then idle queues.
  constexpr size_t kOpsPer = 512;
  constexpr int kBursts = 16;
  std::vector<api::Op> ops(kOpsPer);
  ClientResponse response;
  for (int r = 0; r < kBursts; ++r) {
    const uint64_t base = static_cast<uint64_t>(r) * kOpsPer + 1;
    for (size_t i = 0; i < kOpsPer; ++i) {
      ops[i] = api::Op::Insert(base + i, base + i + 9);
    }
    ASSERT_TRUE(client.Execute(ops.data(), kOpsPer, 0, &response,
                               /*max_retries=*/16));
    ASSERT_EQ(response.statuses.size(), kOpsPer);
    for (size_t i = 0; i < kOpsPer; ++i) {
      // kOk, never kExists: a retried op had provably not executed.
      ASSERT_EQ(response.statuses[i], api::Status::kOk)
          << "burst " << r << " slot " << i;
    }
  }
  // Every insert is durable exactly once.
  for (int r = 0; r < kBursts; ++r) {
    const uint64_t base = static_cast<uint64_t>(r) * kOpsPer + 1;
    for (size_t i = 0; i < kOpsPer; ++i) {
      ops[i] = api::Op::Search(base + i);
    }
    ASSERT_TRUE(client.Execute(ops.data(), kOpsPer, 0, &response));
    for (size_t i = 0; i < kOpsPer; ++i) {
      ASSERT_EQ(response.statuses[i], api::Status::kOk);
      ASSERT_EQ(response.values[i], base + i + 9);
    }
  }
  server.Stop();
  store->CloseClean();
}

// The per-connection pipeline cap bounces the overflow request with
// kUnavailable + retry-after immediately (it never reaches the store),
// and the connection keeps working.
TEST(KvServerTest, PipelineCapRejectsWithRetryAfter) {
  TempShardPaths paths("srv_cap", 2);
  auto store = OpenStore(paths, 2);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("cap");
  options.max_pipeline = 2;
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  // Raw socket so the whole burst goes out in ONE write: the server's
  // read loop then parses all frames before the admission pass runs,
  // making the cap overflow deterministic.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.uds_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<uint8_t> hello;
  AppendHello(&hello, 1, 1);
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hello.size()));
  uint8_t ack[kHeaderSize + kHelloAckPayload];
  ASSERT_EQ(::recv(fd, ack, sizeof(ack), MSG_WAITALL),
            static_cast<ssize_t>(sizeof(ack)));

  constexpr int kBurst = 32;
  std::vector<uint8_t> burst;
  for (int r = 0; r < kBurst; ++r) {
    const api::Op op = api::Op::Insert(static_cast<uint64_t>(r) + 1, 1);
    AppendRequest(&burst, static_cast<uint64_t>(r) + 1, &op, 1, 0);
  }
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  uint64_t rejected = 0;
  std::vector<uint8_t> in;
  size_t in_off = 0;
  for (int r = 0; r < kBurst; ++r) {
    // Accumulate until one whole response frame is buffered.
    Frame frame;
    size_t consumed = 0;
    for (;;) {
      const DecodeResult dr = DecodeFrame(in.data() + in_off,
                                          in.size() - in_off, &frame,
                                          &consumed);
      if (dr == DecodeResult::kFrame) break;
      ASSERT_EQ(dr, DecodeResult::kNeedMore);
      uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0) << "connection dropped";
      in.insert(in.end(), chunk, chunk + n);
    }
    ResponseView view;
    ASSERT_TRUE(ParseResponse(frame, &view));
    ASSERT_EQ(view.count, 1u);
    api::Status status;
    uint64_t value;
    ASSERT_TRUE(DecodeResponseEntry(view, 0, &status, &value));
    if (status == api::Status::kUnavailable) {
      EXPECT_NE(view.retry_after_us, 0u);
      ++rejected;
    } else {
      EXPECT_EQ(status, api::Status::kOk);
    }
    in_off += consumed;
  }
  // Cap 2, 32 requests in one read: the overflow had to bounce.
  EXPECT_GE(rejected, static_cast<uint64_t>(kBurst) - options.max_pipeline);
  EXPECT_EQ(server.stats().pipeline_rejects, rejected);
  ::close(fd);

  // A fresh well-behaved client still works.
  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path));
  ClientResponse response;
  const api::Op probe = api::Op::Search(1);
  ASSERT_TRUE(client.Execute(&probe, 1, 0, &response));
  server.Stop();
  store->CloseClean();
}

// An already-expired deadline surfaces as kTimeout statuses in a normal
// response — the connection is never dropped.
TEST(KvServerTest, ExpiredDeadlineYieldsTimeoutResponse) {
  TempShardPaths paths("srv_dl", 2);
  auto store = OpenStore(paths, 2);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("dl");
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient client;
  ASSERT_TRUE(client.ConnectUds(options.uds_path));

  // Pile up work so some batches sit in queue past a 1us deadline.
  constexpr int kBurst = 64;
  constexpr size_t kOpsPer = 32;
  for (int r = 0; r < kBurst; ++r) {
    api::Op ops[kOpsPer];
    for (size_t i = 0; i < kOpsPer; ++i) {
      ops[i] = api::Op::Insert(
          static_cast<uint64_t>(r) * kOpsPer + i + 1, 1);
    }
    ASSERT_TRUE(client.Send(ops, kOpsPer, /*deadline_us=*/1, nullptr));
  }
  uint64_t timeouts = 0;
  for (int r = 0; r < kBurst; ++r) {
    ClientResponse response;
    ASSERT_TRUE(client.Receive(&response)) << "connection dropped";
    for (const api::Status s : response.statuses) {
      if (s == api::Status::kTimeout) ++timeouts;
    }
    if (response.retry_after_us != 0) {
      // Timeout batches carry the retry-after hint.
      EXPECT_GT(response.retry_after_us, 0u);
    }
  }
  // The 1us deadline with a 64-request pileup must expire something.
  EXPECT_GT(timeouts, 0u);
  // Connection still alive.
  ClientResponse response;
  const api::Op probe = api::Op::Search(12345);
  ASSERT_TRUE(client.Execute(&probe, 1, 0, &response));
  server.Stop();
  store->CloseClean();
}

// Tenant weights shape admitted throughput: with the store as the
// bottleneck, a weight-4 tenant drains ahead of a weight-1 tenant when
// both have a backlog queued behind the DRR scheduler.
TEST(KvServerTest, WeightedFairnessDrainsHeavierTenantFirst) {
  TempShardPaths paths("srv_drr", 2);
  auto store = OpenStore(paths, 2, /*queue_depth=*/2);
  ASSERT_NE(store, nullptr);
  ServerOptions options;
  options.uds_path = TestUdsPath("drr");
  options.drr_quantum = 8;
  KvServer server(store.get(), options);
  ASSERT_TRUE(server.Start());

  KvClient heavy, light;
  ASSERT_TRUE(heavy.ConnectUds(options.uds_path, /*tenant=*/1,
                               /*weight=*/4));
  ASSERT_TRUE(light.ConnectUds(options.uds_path, /*tenant=*/2,
                               /*weight=*/1));

  constexpr int kRequests = 32;
  constexpr size_t kOpsPer = 8;
  for (int r = 0; r < kRequests; ++r) {
    api::Op heavy_ops[kOpsPer], light_ops[kOpsPer];
    for (size_t i = 0; i < kOpsPer; ++i) {
      const uint64_t k = static_cast<uint64_t>(r) * kOpsPer + i;
      heavy_ops[i] = api::Op::Insert(1000000 + k, 1);
      light_ops[i] = api::Op::Insert(2000000 + k, 1);
    }
    ASSERT_TRUE(heavy.Send(heavy_ops, kOpsPer, 0, nullptr));
    ASSERT_TRUE(light.Send(light_ops, kOpsPer, 0, nullptr));
  }
  // Both backlogs drain completely; fairness shapes order, not outcome.
  for (int r = 0; r < kRequests; ++r) {
    ClientResponse response;
    ASSERT_TRUE(heavy.Receive(&response));
    ASSERT_TRUE(light.Receive(&response));
  }
  server.Stop();
  store->CloseClean();
}

}  // namespace
}  // namespace dash::net
