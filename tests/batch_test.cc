// Batch API tests: MultiSearch/MultiInsert/MultiUpdate/MultiDelete must
// be semantically identical to single-op loops across all four IndexKinds
// (the native implementations only add prefetching and epoch-guard
// amortization), including under concurrent mixed batch/single-op use.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

class BatchTest : public ::testing::TestWithParam<IndexKind> {};

// Structural options small enough that the workloads below force splits /
// expansions / resizes while a batch is in flight.
DashOptions SmallTableOptions() {
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  return opts;
}

TEST_P(BatchTest, MultiInsertMatchesSingleOpSemantics) {
  test::TempPoolFile file(std::string("batch_ins_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  // Keys with deliberate duplicates: every third key repeats.
  constexpr size_t kN = 20000;
  std::vector<uint64_t> keys(kN), values(kN);
  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(7);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = rng.NextBounded(kN / 2) + 1;
    values[i] = i + 1;
  }

  std::unique_ptr<Status[]> inserted(new Status[kN]);
  index->MultiInsert(keys.data(), values.data(), kN, inserted.get());
  for (size_t i = 0; i < kN; ++i) {
    const bool expect_new = model.find(keys[i]) == model.end();
    ASSERT_EQ(inserted[i], expect_new ? Status::kOk : Status::kExists)
        << "slot " << i;
    if (expect_new) model[keys[i]] = values[i];
  }
  EXPECT_EQ(index->Stats().records, model.size());

  // Every surviving value must match the first insert of that key.
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_EQ(index->Search(key, &got), Status::kOk) << "key " << key;
    EXPECT_EQ(got, value);
  }

  index->CloseClean();
  pool->CloseClean();
}

TEST_P(BatchTest, MultiSearchMatchesSingleOpLoop) {
  test::TempPoolFile file(std::string("batch_search_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  constexpr uint64_t kLoaded = 10000;
  for (uint64_t k = 1; k <= kLoaded; ++k) {
    ASSERT_EQ(index->Insert(k, k * 3), Status::kOk);
  }

  // Mix of present and absent keys, sized to leave a partial final group.
  constexpr size_t kN = 4099;
  std::vector<uint64_t> keys(kN);
  util::Xoshiro256 rng(13);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = rng.NextBounded(2 * kLoaded) + 1;
  }

  std::vector<uint64_t> batch_values(kN);
  std::unique_ptr<Status[]> batch_found(new Status[kN]);
  index->MultiSearch(keys.data(), kN, batch_values.data(),
                    batch_found.get());

  for (size_t i = 0; i < kN; ++i) {
    uint64_t single_value = 0;
    const Status single_found = index->Search(keys[i], &single_value);
    ASSERT_EQ(batch_found[i], single_found)
        << "key " << keys[i];
    if (IsOk(single_found)) {
      ASSERT_EQ(batch_values[i], single_value) << "key " << keys[i];
    }
  }

  index->CloseClean();
  pool->CloseClean();
}

TEST_P(BatchTest, MultiDeleteMatchesSingleOpSemantics) {
  test::TempPoolFile file(std::string("batch_del_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  constexpr uint64_t kLoaded = 5000;
  for (uint64_t k = 1; k <= kLoaded; ++k) {
    ASSERT_EQ(index->Insert(k, k), Status::kOk);
  }

  // Delete odd keys plus some absent ones; repeated keys in one batch must
  // succeed exactly once.
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= kLoaded; k += 2) {
    keys.push_back(k);
    if (k % 31 == 1) keys.push_back(k);            // duplicate delete
    if (k % 17 == 1) keys.push_back(kLoaded + k);  // absent key
  }
  std::unique_ptr<Status[]> deleted(new Status[keys.size()]);
  std::map<uint64_t, int> delete_count;
  index->MultiDelete(keys.data(), keys.size(), deleted.get());
  for (size_t i = 0; i < keys.size(); ++i) {
    const bool expect =
        keys[i] <= kLoaded && delete_count[keys[i]]++ == 0;
    ASSERT_EQ(deleted[i], expect ? Status::kOk : Status::kNotFound)
        << "key " << keys[i];
  }

  uint64_t value;
  for (uint64_t k = 1; k <= kLoaded; ++k) {
    ASSERT_EQ(index->Search(k, &value),
              k % 2 == 0 ? Status::kOk : Status::kNotFound)
        << "key " << k;
  }

  index->CloseClean();
  pool->CloseClean();
}

// Batched Update (new in API v2 — the PR 1 trio could not express it):
// present keys get the new payload, absent keys report kNotFound.
TEST_P(BatchTest, MultiUpdateMatchesSingleOpSemantics) {
  test::TempPoolFile file(std::string("batch_upd_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  constexpr uint64_t kLoaded = 8000;
  for (uint64_t k = 1; k <= kLoaded; ++k) {
    ASSERT_EQ(index->Insert(k, k), Status::kOk);
  }

  // Update a mix of present and absent keys, with duplicates (the later
  // update of a key must win since same-type batch order is preserved).
  constexpr size_t kN = 4099;
  std::vector<uint64_t> keys(kN), values(kN);
  util::Xoshiro256 rng(21);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = rng.NextBounded(2 * kLoaded) + 1;
    values[i] = 1000000 + i;
  }
  std::unique_ptr<Status[]> updated(new Status[kN]);
  index->MultiUpdate(keys.data(), values.data(), kN, updated.get());

  std::map<uint64_t, uint64_t> last_value;
  for (size_t i = 0; i < kN; ++i) {
    const bool present = keys[i] <= kLoaded;
    ASSERT_EQ(updated[i], present ? Status::kOk : Status::kNotFound)
        << "key " << keys[i];
    if (present) last_value[keys[i]] = values[i];
  }
  for (const auto& [key, value] : last_value) {
    uint64_t got = 0;
    ASSERT_EQ(index->Search(key, &got), Status::kOk);
    ASSERT_EQ(got, value) << "key " << key;
  }
  EXPECT_EQ(index->Stats().records, kLoaded);

  index->CloseClean();
  pool->CloseClean();
}

// Batches and single ops running concurrently over overlapping key ranges:
// every key is inserted by exactly one path; searches must never observe a
// wrong value; the final record count must be exact.
TEST_P(BatchTest, ConcurrentMixedBatchAndSingleOps) {
  test::TempPoolFile file(std::string("batch_conc_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  constexpr uint64_t kKeys = 30000;
  constexpr size_t kBatch = 16;
  std::atomic<uint64_t> wrong_values{0};

  // Batch inserter: even keys, in batches.
  std::thread batch_writer([&] {
    uint64_t keys[kBatch];
    uint64_t values[kBatch];
    Status inserted[kBatch];
    for (uint64_t base = 2; base <= kKeys; base += 2 * kBatch) {
      size_t n = 0;
      for (uint64_t k = base; k <= kKeys && n < kBatch; k += 2, ++n) {
        keys[n] = k;
        values[n] = k + 1;
      }
      index->MultiInsert(keys, values, n, inserted);
    }
  });

  // Single-op inserter: odd keys.
  std::thread single_writer([&] {
    for (uint64_t k = 1; k <= kKeys; k += 2) {
      index->Insert(k, k + 1);
    }
  });

  // Batch reader over the full range while both writers run.
  std::thread reader([&] {
    uint64_t keys[kBatch];
    uint64_t values[kBatch];
    Status found[kBatch];
    util::Xoshiro256 rng(99);
    for (int round = 0; round < 400; ++round) {
      for (size_t i = 0; i < kBatch; ++i) {
        keys[i] = rng.NextBounded(kKeys) + 1;
      }
      index->MultiSearch(keys, kBatch, values, found);
      for (size_t i = 0; i < kBatch; ++i) {
        if (IsOk(found[i]) && values[i] != keys[i] + 1) {
          wrong_values.fetch_add(1);
        }
      }
    }
  });

  batch_writer.join();
  single_writer.join();
  reader.join();

  EXPECT_EQ(wrong_values.load(), 0u);
  EXPECT_EQ(index->Stats().records, kKeys);
  uint64_t value;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(index->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k + 1);
  }

  index->CloseClean();
  pool->CloseClean();
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, BatchTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The variable-length-key indexes share the same templated batch pipeline;
// one smoke test over Dash-EH covers the VarKvIndex entry points.
TEST(VarBatchTest, DashEhVarKeysRoundTrip) {
  test::TempPoolFile file("batch_var");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index =
      CreateVarKvIndex(IndexKind::kDashEH, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  constexpr size_t kN = 2000;
  std::vector<std::string> storage(kN);
  std::vector<std::string_view> keys(kN);
  std::vector<uint64_t> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    storage[i] = "var-key-" + std::to_string(i);
    keys[i] = storage[i];
    values[i] = i + 1;
  }
  std::unique_ptr<Status[]> inserted(new Status[kN]);
  index->MultiInsert(keys.data(), values.data(), kN, inserted.get());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(inserted[i], Status::kOk) << "key " << storage[i];
  }

  std::vector<uint64_t> got(kN);
  std::unique_ptr<Status[]> found(new Status[kN]);
  index->MultiSearch(keys.data(), kN, got.data(), found.get());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(found[i], Status::kOk) << "key " << storage[i];
    ASSERT_EQ(got[i], values[i]);
  }

  std::unique_ptr<Status[]> updated(new Status[kN]);
  index->MultiUpdate(keys.data(), values.data(), kN, updated.get());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(updated[i], Status::kOk) << "key " << storage[i];
  }

  std::unique_ptr<Status[]> deleted(new Status[kN]);
  index->MultiDelete(keys.data(), kN, deleted.get());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(deleted[i], Status::kOk);
  }
  EXPECT_EQ(index->Stats().records, 0u);

  index->CloseClean();
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::api
