// Stress tests for the optimistic (versioned) read paths of CCEH, Level
// hashing, and the hybrid DRAM-PM tier: lock-free searches racing the
// structure-modifying operations that invalidate them — CCEH/hybrid
// directory doubling / segment splits and Level full-table resizes —
// plus in-place updates (which for the hybrid tier are PM log appends
// racing the searches that chase the old handle). Readers
// must never observe torn records (a hit returns the exact value some
// serial history wrote), and batch results must match the serial model.
// The suite is part of the TSan CI job, where the snapshot/revalidate
// protocol's atomics are checked for data races.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash {
namespace {

using api::IndexKind;
using api::IsOk;
using api::KvIndex;
using api::Status;

// Keys [1, kPreloaded] are inserted with value key * 3 before readers
// start; the writer then grows the table far enough to force repeated
// SMOs (CCEH: splits + doubling; Level: full-table resizes) with the
// small geometry below.
constexpr uint64_t kPreloaded = 4000;
constexpr uint64_t kGrowTo = 40000;
// Absent probe range, disjoint from every inserted key.
constexpr uint64_t kAbsentBase = 1u << 30;

class OptimisticRaceTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>(
        std::string("optrace_") + api::IndexKindName(GetParam()));
    pool_ = test::CreatePool(*file_, 512ull << 20);
    ASSERT_NE(pool_, nullptr);
    DashOptions opts;
    opts.buckets_per_segment = 16;  // small segments -> frequent SMOs
    opts.initial_depth = 1;
    table_ = api::CreateKvIndex(GetParam(), pool_.get(), &epochs_, opts);
    ASSERT_NE(table_, nullptr);
    for (uint64_t key = 1; key <= kPreloaded; ++key) {
      ASSERT_EQ(table_->Insert(key, key * 3), Status::kOk);
    }
  }

  int Readers() const {
    return std::max(1u, std::min(3u, std::thread::hardware_concurrency())) ;
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  std::unique_ptr<KvIndex> table_;
};

// Single-op searches racing growth SMOs: present keys must always hit
// with their exact value, absent keys must never surface.
TEST_P(OptimisticRaceTest, SearchesNeverTornDuringGrowth) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t key = kPreloaded + 1; key <= kGrowTo; ++key) {
      ASSERT_EQ(table_->Insert(key, key * 3), Status::kOk);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < Readers(); ++t) {
    readers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 7);
      uint64_t value = 0;
      while (!stop.load()) {
        const uint64_t key = rng.NextBounded(kPreloaded) + 1;
        ASSERT_EQ(table_->Search(key, &value), Status::kOk)
            << "present key lost during SMO: " << key;
        ASSERT_EQ(value, key * 3) << "torn read for key " << key;
        const uint64_t absent = kAbsentBase + rng.NextBounded(kPreloaded);
        ASSERT_EQ(table_->Search(absent, &value), Status::kNotFound)
            << "phantom hit for absent key " << absent;
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  // The growth must actually have exercised SMOs.
  EXPECT_GE(table_->Stats().records, kGrowTo);
}

// Batch searches (the suspendable AMAC machine with its Retry pass, and
// the group engine) racing growth SMOs: every slot of every batch must
// match the serial model — present keys kOk with the exact value, absent
// keys kNotFound.
TEST_P(OptimisticRaceTest, BatchSearchMatchesSerialModelDuringGrowth) {
  for (const BatchPipeline pipeline :
       {BatchPipeline::kAmac, BatchPipeline::kGroup}) {
    table_->SetBatchPipeline(pipeline);
    const uint64_t grow_base =
        pipeline == BatchPipeline::kAmac ? kPreloaded : kGrowTo;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      for (uint64_t key = grow_base + 1; key <= grow_base + kGrowTo / 2;
           ++key) {
        ASSERT_EQ(table_->Insert(key, key * 3), Status::kOk);
      }
      stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < Readers(); ++t) {
      readers.emplace_back([&, t] {
        util::Xoshiro256 rng(t + 31);
        constexpr size_t kBatch = 16;
        uint64_t keys[kBatch];
        uint64_t values[kBatch];
        Status statuses[kBatch];
        while (!stop.load()) {
          // Even slots: always-present keys; odd slots: absent keys.
          for (size_t j = 0; j < kBatch; ++j) {
            keys[j] = (j & 1) == 0
                          ? rng.NextBounded(kPreloaded) + 1
                          : kAbsentBase + rng.NextBounded(kPreloaded);
          }
          table_->MultiSearch(keys, kBatch, values, statuses);
          for (size_t j = 0; j < kBatch; ++j) {
            if ((j & 1) == 0) {
              ASSERT_EQ(statuses[j], Status::kOk) << "key " << keys[j];
              ASSERT_EQ(values[j], keys[j] * 3)
                  << "torn batch read for key " << keys[j];
            } else {
              ASSERT_EQ(statuses[j], Status::kNotFound)
                  << "phantom batch hit for key " << keys[j];
            }
          }
        }
      });
    }
    writer.join();
    for (auto& r : readers) r.join();
  }
}

// In-place updates racing single-op and batch searches: a reader must
// always observe one of the two values some committed update wrote,
// never a mix (the versioned probe discards any state a writer touched).
TEST_P(OptimisticRaceTest, UpdatesNeverYieldTornValues) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 0; round < 40; ++round) {
      const uint64_t mult = (round & 1) == 0 ? 5 : 3;
      for (uint64_t key = 1; key <= kPreloaded; ++key) {
        ASSERT_EQ(table_->Update(key, key * mult), Status::kOk);
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < Readers(); ++t) {
    readers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 101);
      constexpr size_t kBatch = 16;
      uint64_t keys[kBatch];
      uint64_t values[kBatch];
      Status statuses[kBatch];
      uint64_t value = 0;
      while (!stop.load()) {
        const uint64_t key = rng.NextBounded(kPreloaded) + 1;
        ASSERT_EQ(table_->Search(key, &value), Status::kOk);
        ASSERT_TRUE(value == key * 3 || value == key * 5)
            << "torn value " << value << " for key " << key;
        for (size_t j = 0; j < kBatch; ++j) {
          keys[j] = rng.NextBounded(kPreloaded) + 1;
        }
        table_->MultiSearch(keys, kBatch, values, statuses);
        for (size_t j = 0; j < kBatch; ++j) {
          ASSERT_EQ(statuses[j], Status::kOk) << "key " << keys[j];
          ASSERT_TRUE(values[j] == keys[j] * 3 || values[j] == keys[j] * 5)
              << "torn batch value " << values[j] << " for key " << keys[j];
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
}

// The telemetry contract behind "searches write no lock word": a
// search-only phase must not move the write-lock counter, and the racing
// phases above must have recorded writer activity.
TEST_P(OptimisticRaceTest, SearchOnlyPhasePerformsNoLockWordWrites) {
  const uint64_t write_locks_before = table_->Stats().write_locks;
  EXPECT_GT(write_locks_before, 0u);  // the preload took exclusive locks
  uint64_t value = 0;
  uint64_t keys[16];
  uint64_t values[16];
  Status statuses[16];
  for (uint64_t key = 1; key <= kPreloaded; ++key) {
    ASSERT_EQ(table_->Search(key, &value), Status::kOk);
  }
  for (uint64_t base = 1; base + 16 <= kPreloaded; base += 16) {
    for (size_t j = 0; j < 16; ++j) keys[j] = base + j;
    table_->MultiSearch(keys, 16, values, statuses);
  }
  EXPECT_EQ(table_->Stats().write_locks, write_locks_before)
      << "a search path acquired an exclusive lock";
  EXPECT_EQ(table_->Stats().version_conflicts, 0u)
      << "single-threaded searches cannot conflict";
}

INSTANTIATE_TEST_SUITE_P(
    OptimisticTables, OptimisticRaceTest,
    ::testing::Values(IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = api::IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash
