// Multi-threaded correctness tests across all four tables: concurrent
// inserts, readers racing writers/SMOs, mixed workloads, and delete races.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash {
namespace {

using api::IndexKind;
using api::IsOk;
using api::KvIndex;
using api::Status;

class ConcurrentTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>(
        std::string("concurrent_") + api::IndexKindName(GetParam()));
    pool_ = test::CreatePool(*file_, 512ull << 20);
    ASSERT_NE(pool_, nullptr);
    DashOptions opts;
    opts.buckets_per_segment = 16;  // force frequent SMOs
    opts.lh_base_segments = 4;
    opts.lh_stride = 2;
    table_ = api::CreateKvIndex(GetParam(), pool_.get(), &epochs_, opts);
    ASSERT_NE(table_, nullptr);
  }

  int Threads() const {
    return std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  std::unique_ptr<KvIndex> table_;
};

TEST_P(ConcurrentTest, DisjointInsertsAllLand) {
  const int threads = Threads();
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_EQ(table_->Insert(key, key * 2), Status::kOk) << "key " << key;
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t value;
  for (uint64_t key = 1;
       key <= static_cast<uint64_t>(threads) * kPerThread; ++key) {
    ASSERT_EQ(table_->Search(key, &value), Status::kOk) << "key " << key;
    ASSERT_EQ(value, key * 2);
  }
  EXPECT_EQ(table_->Stats().records,
            static_cast<uint64_t>(threads) * kPerThread);
}

TEST_P(ConcurrentTest, DuplicateRaceExactlyOneWinner) {
  const int threads = Threads();
  constexpr uint64_t kKeys = 5000;
  std::atomic<uint64_t> winners{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t key = 1; key <= kKeys; ++key) {
        if (IsOk(table_->Insert(key, key))) winners.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(winners.load(), kKeys)
      << "each key must be inserted by exactly one thread";
  EXPECT_EQ(table_->Stats().records, kKeys);
}

TEST_P(ConcurrentTest, ReadersNeverSeeTornValues) {
  // Writers keep inserting; readers verify any hit returns value == 3*key.
  constexpr uint64_t kKeys = 60000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::thread writer([&] {
    for (uint64_t key = 1; key <= kKeys; ++key) {
      table_->Insert(key, key * 3);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < Threads() - 1; ++t) {
    readers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      uint64_t value;
      while (!stop.load()) {
        const uint64_t key = rng.NextBounded(kKeys) + 1;
        if (IsOk(table_->Search(key, &value))) {
          ASSERT_EQ(value, key * 3) << "torn read for key " << key;
          checked.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(checked.load(), 0u);
}

TEST_P(ConcurrentTest, MixedInsertSearchDelete) {
  const int threads = Threads();
  constexpr uint64_t kRange = 20000;
  std::vector<std::thread> workers;
  // Each thread owns keys where key % threads == t, eliminating cross-
  // thread delete/insert conflicts while still sharing buckets.
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 99);
      std::vector<bool> present(kRange / threads + 2, false);
      for (int iter = 0; iter < 30000; ++iter) {
        const uint64_t slot = rng.NextBounded(kRange / threads) + 1;
        const uint64_t key = slot * threads + t + 1;
        const uint64_t action = rng.NextBounded(3);
        uint64_t value;
        if (action == 0) {
          const Status inserted = table_->Insert(key, key);
          ASSERT_EQ(inserted,
                    present[slot] ? Status::kExists : Status::kOk)
              << "key " << key;
          present[slot] = true;
        } else if (action == 1) {
          const Status found = table_->Search(key, &value);
          ASSERT_EQ(found,
                    present[slot] ? Status::kOk : Status::kNotFound)
              << "key " << key;
          if (IsOk(found)) {
            ASSERT_EQ(value, key);
          }
        } else {
          const Status deleted = table_->Delete(key);
          ASSERT_EQ(deleted,
                    present[slot] ? Status::kOk : Status::kNotFound)
              << "key " << key;
          present[slot] = false;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST_P(ConcurrentTest, NegativeSearchDuringGrowth) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t key = 1; key <= 50000; ++key) {
      table_->Insert(key, key);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t value;
      while (!stop.load()) {
        // Keys from a disjoint range: must never be found.
        for (uint64_t key = 10000000; key < 10000100; ++key) {
          ASSERT_EQ(table_->Search(key, &value), Status::kNotFound);
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, ConcurrentTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = api::IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash
