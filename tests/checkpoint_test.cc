// Checkpoint subsystem tests (src/pmem/index_persist + the hybrid tier's
// serialize/load path): checkpoint + tail replay equals the model after a
// dirty close for both key widths; every rejection path (torn writer
// crash, truncation, bit flip, stale generation, wrong kind) falls back
// to the full log scan and still serves exactly the model — never wrong,
// only slower; the lane-parallel scan fallback matches the serial one;
// and the sharded store surfaces per-shard provenance, including the
// executor's idle-path periodic refresh.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "api/sharded_store.h"
#include "epoch/epoch_manager.h"
#include "pmem/crash_point.h"
#include "pmem/flush_tracker.h"
#include "pmem/index_persist.h"
#include "pmem/pool.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash {
namespace {

using api::IndexKind;
using api::Status;

struct InjectionCleanup {
  ~InjectionCleanup() {
    pmem::CrashPointDisarm();
    if (pmem::TornWriteArmed()) pmem::TornWriteDisarm();
  }
};

// Removes the checkpoint file (and its temp) when the test scope ends.
struct TempCheckpoint {
  explicit TempCheckpoint(std::string p) : path(std::move(p)) {
    pmem::RemoveCheckpointFile(path);
  }
  ~TempCheckpoint() { pmem::RemoveCheckpointFile(path); }
  std::string path;
};

DashOptions SmallOptions(const std::string& ckpt_path = "") {
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.checkpoint_path = ckpt_path;
  return opts;
}

// Random op mix against a std::map model. `seed` varies the stream so two
// phases (before / after a checkpoint) touch overlapping key sets.
void RunOps(api::KvIndex* index, std::map<uint64_t, uint64_t>* model,
            int iters, uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t key = rng.NextBounded(6000) + 1;
    const uint64_t value = seed * 1000000 + iter;
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        if (api::IsOk(index->Insert(key, value))) (*model)[key] = value;
        break;
      case 2:
        if (api::IsOk(index->Update(key, value))) (*model)[key] = value;
        break;
      default:
        if (api::IsOk(index->Delete(key))) model->erase(key);
        break;
    }
  }
}

// The rebuilt (or loaded) index serves exactly the model and nothing
// else, is structurally sound, and accepts new traffic.
void ExpectEqualsModel(api::KvIndex* index,
                       const std::map<uint64_t, uint64_t>& model) {
  EXPECT_TRUE(index->Verify());
  EXPECT_EQ(index->Stats().records, model.size());
  uint64_t value = 0;
  for (const auto& [key, expected] : model) {
    ASSERT_EQ(index->Search(key, &value), Status::kOk) << "key " << key;
    ASSERT_EQ(value, expected) << "key " << key;
  }
  for (uint64_t key = 1; key <= 6000; ++key) {
    if (model.count(key)) continue;
    ASSERT_EQ(index->Search(key, &value), Status::kNotFound)
        << "absent key " << key << " resurrected";
  }
  for (uint64_t key = 500000; key < 500200; ++key) {
    ASSERT_EQ(index->Insert(key, key), Status::kOk);
  }
}

// Builds a table with a checkpoint taken mid-stream (so the reopen must
// replay a non-empty tail), crashes, and hands the caller the model.
// Returns the on-disk image at `file` with the checkpoint at
// `file.path() + .ckpt`.
std::map<uint64_t, uint64_t> BuildCheckpointThenTail(
    pmem::PmPool* pool, const DashOptions& opts) {
  std::map<uint64_t, uint64_t> model;
  epoch::EpochManager epochs;
  auto index = api::CreateKvIndex(IndexKind::kHybrid, pool, &epochs, opts);
  EXPECT_NE(index, nullptr);
  RunOps(index.get(), &model, 30000, /*seed=*/11);
  EXPECT_TRUE(index->WriteCheckpoint());
  RunOps(index.get(), &model, 15000, /*seed=*/12);  // the tail
  index.reset();  // dirty: pending retirements discarded
  return model;
}

TEST(CheckpointTest, CheckpointPlusTailReplayEqualsModel) {
  test::TempPoolFile file("ckpt_tail");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  const auto model = BuildCheckpointThenTail(pool.get(), opts);
  pool->CloseDirty();
  pool.reset();

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  const api::IndexStats stats = index->Stats();
  EXPECT_EQ(stats.recovery_source, RecoverySource::kCheckpoint);
  EXPECT_GT(stats.recovery_replayed, 0u) << "tail was not replayed";
  EXPECT_GT(stats.recovery_staleness, 0u);
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

TEST(CheckpointTest, VarKeyCheckpointPlusTailReplayEqualsModel) {
  test::TempPoolFile file("ckpt_var_tail");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  auto key_of = [](uint64_t i) { return "ckpt-var-key-" + std::to_string(i); };
  constexpr uint64_t kKeys = 4000;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    for (uint64_t i = 1; i <= kKeys; ++i) {
      ASSERT_EQ(index->Insert(key_of(i), i), Status::kOk);
    }
    ASSERT_TRUE(index->WriteCheckpoint());
    // Tail: updates, deletes, and re-inserts past the watermarks — the
    // replay must win over the checkpointed slots.
    for (uint64_t i = 1; i <= kKeys; i += 2) {
      ASSERT_EQ(index->Update(key_of(i), i * 2), Status::kOk);
    }
    for (uint64_t i = 4; i <= kKeys; i += 4) {
      ASSERT_EQ(index->Delete(key_of(i)), Status::kOk);
    }
    for (uint64_t i = 8; i <= kKeys; i += 8) {
      ASSERT_EQ(index->Insert(key_of(i), i * 3), Status::kOk);
    }
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->Verify());
  EXPECT_EQ(index->Stats().recovery_source, RecoverySource::kCheckpoint);
  EXPECT_GT(index->Stats().recovery_replayed, 0u);
  uint64_t value = 0;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    if (i % 8 == 0) {
      ASSERT_EQ(index->Search(key_of(i), &value), Status::kOk) << i;
      ASSERT_EQ(value, i * 3) << i;
    } else if (i % 4 == 0) {
      ASSERT_EQ(index->Search(key_of(i), &value), Status::kNotFound) << i;
    } else {
      ASSERT_EQ(index->Search(key_of(i), &value), Status::kOk) << i;
      ASSERT_EQ(value, i % 2 == 1 ? i * 2 : i) << i;
    }
  }
  index->CloseClean();
  pool->CloseClean();
}

// A quiesced clean close writes an exact checkpoint: the reopen loads it
// with an empty tail (replayed == 0, staleness == 0).
TEST(CheckpointTest, CleanCloseCheckpointHasEmptyTail) {
  test::TempPoolFile file("ckpt_clean");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  std::map<uint64_t, uint64_t> model;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    RunOps(index.get(), &model, 30000, /*seed=*/21);
    index->CloseClean();  // writes the checkpoint
    pool->CloseClean();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  const api::IndexStats stats = index->Stats();
  EXPECT_EQ(stats.recovery_source, RecoverySource::kCheckpoint);
  EXPECT_EQ(stats.recovery_replayed, 0u);
  EXPECT_EQ(stats.recovery_staleness, 0u);
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

// Crash inside the checkpoint writer at every CRASH_POINT, under the
// torn-write simulation. Whatever the file ends up as — stray temp, old
// file, or fully renamed new file — the reopen serves exactly the model:
// a complete checkpoint is accepted, anything else is rejected into the
// scan path.
TEST(CheckpointCrashTest, TornWriterSweepReopensModelEquivalent) {
  for (const char* point : {"ckpt_after_temp_write", "ckpt_after_checksum",
                            "ckpt_after_rename"}) {
    SCOPED_TRACE(point);
    InjectionCleanup cleanup;
    test::TempPoolFile file("ckpt_torn");
    TempCheckpoint ckpt(file.path() + ".ckpt");
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    const DashOptions opts = SmallOptions(ckpt.path);
    std::map<uint64_t, uint64_t> model;
    {
      epoch::EpochManager epochs;
      auto index =
          api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
      ASSERT_NE(index, nullptr);
      RunOps(index.get(), &model, 20000, /*seed=*/31);
      ASSERT_TRUE(pmem::TornWriteArm());
      ASSERT_TRUE(pmem::CrashPointArm(point));
      EXPECT_THROW(index->WriteCheckpoint(), pmem::CrashInjected);
      pmem::CrashPointDisarm();
      pmem::TornWriteRevert();
      index.reset();
      pool->CloseDirty();
      pool.reset();
    }

    pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    // Only a crash after the rename leaves a complete, current file.
    const RecoverySource expected =
        std::string(point) == "ckpt_after_rename"
            ? RecoverySource::kCheckpoint
            : RecoverySource::kScan;
    EXPECT_EQ(index->Stats().recovery_source, expected);
    ExpectEqualsModel(index.get(), model);
    index->CloseClean();
    pool->CloseClean();
  }
}

// A crash *between* the log scan and the tail replay of a checkpoint
// load leaves the on-disk image untouched (the load path is PM-read-
// only); the next open converges to the same table.
TEST(CheckpointCrashTest, CrashMidCheckpointLoadIsIdempotent) {
  InjectionCleanup cleanup;
  test::TempPoolFile file("ckpt_load_crash");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  const auto model = BuildCheckpointThenTail(pool.get(), opts);
  pool->CloseDirty();
  pool.reset();

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  {
    epoch::EpochManager epochs;
    ASSERT_TRUE(pmem::TornWriteArm());
    ASSERT_TRUE(pmem::CrashPointArm("hybrid_ckpt_load_after_scan"));
    EXPECT_THROW(
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts),
        pmem::CrashInjected);
    pmem::CrashPointDisarm();
    pmem::TornWriteRevert();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  // The interrupted load bumped the generation, so the checkpoint is now
  // stale — this open must scan, and must still serve the model.
  EXPECT_EQ(index->Stats().recovery_source, RecoverySource::kScan);
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

// Shared tail for the file-corruption rejection tests: mutate the
// checkpoint file with `corrupt`, reopen, and require scan-fallback with
// model equivalence.
void RunRejection(const std::string& tag,
                  const std::function<void(const std::string&)>& corrupt) {
  test::TempPoolFile file("ckpt_" + tag);
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  const auto model = BuildCheckpointThenTail(pool.get(), opts);
  pool->CloseDirty();
  pool.reset();

  corrupt(ckpt.path);

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Stats().recovery_source, RecoverySource::kScan)
      << "corrupt checkpoint was not rejected";
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

TEST(CheckpointRejectionTest, TruncatedFileFallsBackToScan) {
  RunRejection("trunc", [](const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    const auto size = static_cast<long>(in.tellg());
    in.close();
    ASSERT_GT(size, 64);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  });
}

TEST(CheckpointRejectionTest, BitFlippedPayloadFallsBackToScan) {
  RunRejection("flip", [](const std::string& path) {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(io.good());
    io.seekg(0, std::ios::end);
    const auto size = static_cast<long>(io.tellg());
    ASSERT_GT(size, 200);
    io.seekp(size / 2);
    char byte = 0;
    io.seekg(size / 2);
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    io.seekp(size / 2);
    io.write(&byte, 1);
  });
}

// A checkpoint left behind by run N is stale once run N+1 appended or
// recycled log records without refreshing it: run N+2 must reject it (the
// slots it references may have been reused for other keys) and scan.
TEST(CheckpointRejectionTest, StaleGenerationFallsBackToScan) {
  test::TempPoolFile file("ckpt_stale");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const DashOptions opts = SmallOptions(ckpt.path);
  std::map<uint64_t, uint64_t> model;
  {
    // Run 1: checkpoint, crash.
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    RunOps(index.get(), &model, 20000, /*seed=*/41);
    ASSERT_TRUE(index->WriteCheckpoint());
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }
  {
    // Run 2: opens (consuming the checkpoint's generation), mutates
    // without ever refreshing the checkpoint, crashes.
    pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    DashOptions no_ckpt = opts;
    no_ckpt.checkpoint_path.clear();
    auto index = api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs,
                                    no_ckpt);
    ASSERT_NE(index, nullptr);
    RunOps(index.get(), &model, 20000, /*seed=*/42);
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  // Run 3: the on-disk checkpoint carries run 1's generation — stale.
  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Stats().recovery_source, RecoverySource::kScan)
      << "stale-generation checkpoint was not rejected";
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

// A checkpoint from a table with a different key policy (var-key) must be
// rejected by its kind tag before anything is interpreted.
TEST(CheckpointRejectionTest, WrongKindFallsBackToScan) {
  test::TempPoolFile var_file("ckpt_kind_var");
  TempCheckpoint var_ckpt(var_file.path() + ".ckpt");
  {
    // Produce a perfectly valid checkpoint — of the wrong flavour.
    auto pool = test::CreatePool(var_file);
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    auto index = api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(),
                                       &epochs, SmallOptions(var_ckpt.path));
    ASSERT_NE(index, nullptr);
    for (uint64_t i = 1; i <= 500; ++i) {
      ASSERT_EQ(index->Insert("kind-key-" + std::to_string(i), i),
                Status::kOk);
    }
    ASSERT_TRUE(index->WriteCheckpoint());
    index->CloseClean();
    pool->CloseClean();
  }
  RunRejection("kind", [&](const std::string& path) {
    std::ifstream in(var_ckpt.path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    ASSERT_TRUE(out.good());
  });
}

// The lane-parallel scan fallback (satellite of ROADMAP item 4) must
// produce the same table as the serial scan — including the parallel
// winner-insert path, which needs a few thousand live keys to engage.
TEST(CheckpointTest, ParallelRebuildEqualsModel) {
  test::TempPoolFile file("ckpt_par_rebuild");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts = SmallOptions();
  std::map<uint64_t, uint64_t> model;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    RunOps(index.get(), &model, 60000, /*seed=*/51);
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  opts.rebuild_threads = 4;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Stats().recovery_source, RecoverySource::kScan);
  ExpectEqualsModel(index.get(), model);
  index->CloseClean();
  pool->CloseClean();
}

// ---- sharded provenance ----

api::ShardedStoreOptions HybridStoreOptions(const std::string& prefix,
                                            size_t shards) {
  api::ShardedStoreOptions options = test::SmallStoreOptions(prefix, shards);
  options.kind = IndexKind::kHybrid;
  return options;
}

// CloseClean writes one checkpoint per shard; the reopen reports
// source == "checkpoint" for every shard and serves the data.
TEST(ShardedCheckpointTest, CloseCleanThenReopenLoadsEveryShard) {
  test::TempShardPaths paths("ckpt_sharded", 3);
  constexpr uint64_t kKeys = 20000;
  {
    auto store = api::ShardedStore::Open(HybridStoreOptions(paths.prefix(), 3));
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k * 3), Status::kOk);
    }
    store->CloseClean();
  }
  auto store = api::ShardedStore::Open(HybridStoreOptions(paths.prefix(), 3));
  ASSERT_NE(store, nullptr);
  const api::RecoveryReport& report = store->recovery_report();
  ASSERT_EQ(report.shard_source.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(report.shard_source[s], "checkpoint") << "shard " << s;
    EXPECT_EQ(report.shard_replayed[s], 0u) << "shard " << s;
  }
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << k;
    ASSERT_EQ(value, k * 3);
  }
  store->CloseClean();
}

// With checkpoints disabled the same reopen reports "scan" — the
// provenance plumbing distinguishes the two paths end to end.
TEST(ShardedCheckpointTest, ScanProvenanceWithoutCheckpoints) {
  test::TempShardPaths paths("ckpt_sharded_scan", 2);
  auto options = HybridStoreOptions(paths.prefix(), 2);
  options.checkpoints = false;
  {
    auto store = api::ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= 5000; ++k) {
      ASSERT_EQ(store->Insert(k, k), Status::kOk);
    }
    store->CloseClean();
  }
  auto store = api::ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(store->recovery_report().shard_source[s], "scan");
  }
  uint64_t value = 0;
  for (uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << k;
  }
  store->CloseClean();
}

// The executor's idle path refreshes checkpoints on the configured
// interval — so even a store that crashes (no CloseClean) reopens from a
// checkpoint, replaying only what came after the last refresh.
TEST(ShardedCheckpointTest, PeriodicIdleCheckpointSurvivesCrash) {
  test::TempShardPaths paths("ckpt_periodic", 2);
  auto options = HybridStoreOptions(paths.prefix(), 2);
  options.checkpoint_interval_ms = 20;
  options.async.workers = true;
  constexpr uint64_t kKeys = 10000;
  {
    auto store = api::ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k + 7), Status::kOk);
    }
    // Wait for every shard's idle worker to write its checkpoint file.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (size_t s = 0; s < 2;) {
      const std::string ckpt =
          paths.prefix() + ".shard" + std::to_string(s) + ".ckpt";
      std::ifstream probe(ckpt, std::ios::binary);
      if (probe.good()) {
        ++s;
        continue;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "idle checkpoint for shard " << s << " never appeared";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Destroyed without CloseClean: a crash with idle checkpoints on disk.
  }
  auto store = api::ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);
  const api::RecoveryReport& report = store->recovery_report();
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(report.shard_source[s], "checkpoint") << "shard " << s;
  }
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << k;
    ASSERT_EQ(value, k + 7);
  }
  store->CloseClean();
}

}  // namespace
}  // namespace dash
