// Cross-cutting persistence tests: structural options are persisted and
// override constructor arguments on reopen; several pools coexist at
// distinct base addresses; variable-length keys survive crashes.

#include <string>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "test_util.h"

namespace dash {
namespace {

TEST(PersistenceTest, StructuralOptionsComeFromThePool) {
  test::TempPoolFile file("persist_opts");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    DashOptions opts;
    opts.buckets_per_segment = 32;
    opts.stash_buckets = 4;
    DashEH<> table(pool.get(), &epochs, opts);
    for (uint64_t k = 1; k <= 5000; ++k) {
      ASSERT_EQ(table.Insert(k, k), OpStatus::kOk);
    }
    table.CloseClean();
    pool->CloseClean();
  }
  {
    auto pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    DashOptions mismatched;  // different structural values on purpose
    mismatched.buckets_per_segment = 128;
    mismatched.stash_buckets = 1;
    DashEH<> table(pool.get(), &epochs, mismatched);
    EXPECT_EQ(table.options().buckets_per_segment, 32u)
        << "persisted layout must win over constructor arguments";
    EXPECT_EQ(table.options().stash_buckets, 4u);
    uint64_t value;
    for (uint64_t k = 1; k <= 5000; ++k) {
      ASSERT_EQ(table.Search(k, &value), OpStatus::kOk);
    }
    table.CloseClean();
    pool->CloseClean();
  }
}

TEST(PersistenceTest, TwoPoolsCoexistAtDistinctBases) {
  test::TempPoolFile file_a("persist_a");
  test::TempPoolFile file_b("persist_b");
  auto pool_a = test::CreatePool(file_a, 64ull << 20);
  auto pool_b = test::CreatePool(file_b, 64ull << 20);
  ASSERT_NE(pool_a, nullptr);
  ASSERT_NE(pool_b, nullptr);
  EXPECT_NE(pool_a->header()->base_address, pool_b->header()->base_address);

  epoch::EpochManager epochs;
  DashOptions opts;
  DashEH<> table_a(pool_a.get(), &epochs, opts);
  DashLH<> table_b(pool_b.get(), &epochs, opts);
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_a.Insert(k, k), OpStatus::kOk);
    ASSERT_EQ(table_b.Insert(k, k * 2), OpStatus::kOk);
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_a.Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k);
    ASSERT_EQ(table_b.Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k * 2);
  }
  table_a.CloseClean();
  table_b.CloseClean();
  pool_a->CloseClean();
  pool_b->CloseClean();
}

TEST(PersistenceTest, VarKeysSurviveCrash) {
  test::TempPoolFile file("persist_varcrash");
  constexpr uint64_t kKeys = 8000;
  auto key_of = [](uint64_t i) {
    return "user/" + std::to_string(i) + "/profile";
  };
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    DashOptions opts;
    opts.buckets_per_segment = 16;
    DashEH<VarKeyPolicy> table(pool.get(), &epochs, opts);
    for (uint64_t i = 1; i <= kKeys; ++i) {
      ASSERT_EQ(table.Insert(key_of(i), i), OpStatus::kOk);
    }
    epochs.DiscardAll();
    pool->CloseDirty();  // crash
  }
  auto pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  DashEH<VarKeyPolicy> table(pool.get(), &epochs, opts);
  uint64_t value;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    ASSERT_EQ(table.Search(key_of(i), &value), OpStatus::kOk)
        << "key " << key_of(i);
    ASSERT_EQ(value, i);
  }
  EXPECT_EQ(table.Search("user/0/profile", &value), OpStatus::kNotFound);
  table.CloseClean();
  pool->CloseClean();
}

TEST(PersistenceTest, RepeatedCleanReopenCycles) {
  test::TempPoolFile file("persist_cycles");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    DashOptions opts;
    DashEH<> table(pool.get(), &epochs, opts);
    table.CloseClean();
    pool->CloseClean();
  }
  for (uint64_t cycle = 0; cycle < 10; ++cycle) {
    auto pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    EXPECT_FALSE(pool->recovered_from_crash()) << "cycle " << cycle;
    epoch::EpochManager epochs;
    DashOptions opts;
    DashEH<> table(pool.get(), &epochs, opts);
    // Each cycle adds a disjoint batch and verifies all previous batches.
    for (uint64_t k = 1; k <= 1000; ++k) {
      ASSERT_EQ(table.Insert(cycle * 1000 + k, cycle), OpStatus::kOk);
    }
    uint64_t value;
    for (uint64_t c = 0; c <= cycle; ++c) {
      for (uint64_t k = 1; k <= 1000; k += 97) {
        ASSERT_EQ(table.Search(c * 1000 + k, &value), OpStatus::kOk);
        ASSERT_EQ(value, c);
      }
    }
    table.CloseClean();
    pool->CloseClean();
  }
}

}  // namespace
}  // namespace dash
