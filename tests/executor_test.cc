// Async submission API tests: completion tokens, per-shard FIFO
// semantics, windowed (pipelined) submission, queue backpressure, and the
// shutdown contract — CloseClean drains queued work, rejects new
// submissions with kInvalidArgument, and joins the workers.

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/sharded_store.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

using test::SmallStoreOptions;
using test::TempShardPaths;

// Single submitter keeping a window of futures in flight: per-shard FIFO
// means the store still applies the batches in submission order, so a
// serial model stays valid even while batches overlap.
TEST(ExecutorTest, WindowedSubmitMatchesModel) {
  TempShardPaths paths("exec_window", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->async_enabled());

  constexpr size_t kWindow = 4;
  constexpr size_t kBatch = 64;
  constexpr int kRounds = 120;
  struct Slot {
    std::vector<Op> ops;
    std::vector<Status> statuses;
    BatchFuture future;
  };
  Slot window[kWindow];
  for (auto& slot : window) {
    slot.ops.resize(kBatch);
    slot.statuses.resize(kBatch);
  }

  // The model is checked against each batch *after* its future completes;
  // ops across batches use disjoint key mixes per round so the serial
  // model is exact despite the overlap.
  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(23);
  auto check_slot = [&](Slot& slot) {
    slot.future.Wait();
    ASSERT_EQ(slot.future.submit_status(), Status::kOk);
    for (size_t i = 0; i < kBatch; ++i) {
      const Op& op = slot.ops[i];
      Status expected = Status::kInternal;
      switch (op.type) {
        case OpType::kSearch: {
          const auto it = model.find(op.key);
          expected = it == model.end() ? Status::kNotFound : Status::kOk;
          if (it != model.end()) {
            ASSERT_EQ(op.value, it->second);
          }
          break;
        }
        case OpType::kInsert:
          expected = model.emplace(op.key, op.value).second
                         ? Status::kOk
                         : Status::kExists;
          break;
        case OpType::kUpdate: {
          const auto it = model.find(op.key);
          expected = it == model.end() ? Status::kNotFound : Status::kOk;
          if (it != model.end()) it->second = op.value;
          break;
        }
        case OpType::kDelete:
          expected =
              model.erase(op.key) == 1 ? Status::kOk : Status::kNotFound;
          break;
      }
      ASSERT_EQ(slot.statuses[i], expected) << "key " << op.key;
    }
  };

  // In-flight batches may touch the same key: FIFO applies them in
  // submission order, but the *model* below is applied at completion
  // time, so keep each round's keys unique within the whole window span
  // (round-robin over 4 * kBatch disjoint slices of the key space).
  uint64_t round_base = 1;
  for (int round = 0; round < kRounds; ++round) {
    Slot& slot = window[round % kWindow];
    if (slot.future.valid()) check_slot(slot);
    for (size_t i = 0; i < kBatch; ++i) {
      const uint64_t key = round_base + i;
      switch (rng.NextBounded(4)) {
        case 0: slot.ops[i] = Op::Search(key); break;
        case 1: slot.ops[i] = Op::Insert(key, rng.Next()); break;
        case 2: slot.ops[i] = Op::Update(key, rng.Next()); break;
        default: slot.ops[i] = Op::Delete(key); break;
      }
    }
    slot.future =
        store->SubmitExecute(slot.ops.data(), kBatch, slot.statuses.data());
    // Cycle through 2 * kWindow disjoint key slices so no two in-flight
    // batches share a key, keeping completion-time model checks exact.
    round_base = (round % (2 * kWindow) + 1) * 10000 + 1;
  }
  for (auto& slot : window) {
    if (slot.future.valid()) check_slot(slot);
  }
  EXPECT_EQ(store->Stats().totals.records, model.size());
  store->CloseClean();
}

TEST(ExecutorTest, HomogeneousSubmitVariantsRoundTrip) {
  TempShardPaths paths("exec_homog", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);

  constexpr size_t kN = 500;  // straddles the stack-scratch boundary
  std::vector<uint64_t> keys(kN), values(kN), got(kN, 0);
  std::vector<Status> st_insert(kN), st_search(kN), st_update(kN),
      st_delete(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    values[i] = i + 1000;
  }

  BatchFuture insert =
      store->SubmitInsert(keys.data(), values.data(), kN, st_insert.data());
  ASSERT_EQ(insert.submit_status(), Status::kOk);
  insert.Wait();
  EXPECT_TRUE(insert.Ready());
  EXPECT_EQ(insert.pending_shards(), 0u);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(st_insert[i], Status::kOk);

  BatchFuture search =
      store->SubmitSearch(keys.data(), kN, got.data(), st_search.data());
  search.Wait();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(st_search[i], Status::kOk);
    ASSERT_EQ(got[i], values[i]);
  }

  for (size_t i = 0; i < kN; ++i) values[i] = i + 9000;
  BatchFuture update =
      store->SubmitUpdate(keys.data(), values.data(), kN, st_update.data());
  update.Wait();
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(st_update[i], Status::kOk);
  search = store->SubmitSearch(keys.data(), kN, got.data(), st_search.data());
  search.Wait();
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(got[i], values[i]);

  BatchFuture del = store->SubmitDelete(keys.data(), kN, st_delete.data());
  del.Wait();
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(st_delete[i], Status::kOk);
  del = store->SubmitDelete(keys.data(), kN, st_delete.data());
  del.Wait();
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(st_delete[i], Status::kNotFound);

  // Empty and invalid tokens are trivially ready.
  BatchFuture empty = store->SubmitExecute(nullptr, 0, nullptr);
  EXPECT_TRUE(empty.valid());
  EXPECT_TRUE(empty.Ready());
  empty.Wait();
  BatchFuture invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(invalid.Ready());
  invalid.Wait();

  store->CloseClean();
}

// Shutdown semantics: CloseClean must (1) drain every queued batch — all
// previously returned futures become ready with their real results,
// (2) reject new submissions with kInvalidArgument on both the async and
// the sync surface, and (3) join the workers. Exercised with in-flight
// mixed batches on 4 shards and a tiny queue so queues are actually full
// at close time.
TEST(ExecutorTest, CloseCleanDrainsRejectsAndJoins) {
  TempShardPaths paths("exec_close", 4);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 4);
  options.async.queue_depth = 2;  // keep work queued at close time
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);

  constexpr int kSubmitters = 2;
  constexpr size_t kBatchesPerThread = 24;
  constexpr size_t kBatch = 128;
  struct Pending {
    std::vector<Op> ops;
    std::vector<Status> statuses;
    BatchFuture future;
  };
  std::vector<std::vector<Pending>> pending(kSubmitters);

  // Submit mixed insert+search batches from two threads without waiting
  // on any future, so queued work is genuinely in flight when the main
  // thread closes the store.
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    pending[t].resize(kBatchesPerThread);
    submitters.emplace_back([&, t] {
      const uint64_t base = 1 + static_cast<uint64_t>(t) * 1000000;
      for (size_t b = 0; b < kBatchesPerThread; ++b) {
        Pending& p = pending[t][b];
        p.ops.reserve(kBatch);
        p.statuses.resize(kBatch);
        for (size_t i = 0; i < kBatch / 2; ++i) {
          p.ops.push_back(Op::Insert(base + b * kBatch + i, t + 1));
        }
        while (p.ops.size() < kBatch) {
          // Re-search keys from this thread's first batch.
          p.ops.push_back(Op::Search(base + p.ops.size() - kBatch / 2));
        }
        p.future =
            store->SubmitExecute(p.ops.data(), kBatch, p.statuses.data());
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  // Drain: after CloseClean returns, every future is ready and holds the
  // batch's real result, not a cancellation.
  store->CloseClean();
  size_t ok_inserts = 0;
  for (int t = 0; t < kSubmitters; ++t) {
    for (Pending& p : pending[t]) {
      ASSERT_TRUE(p.future.Ready());
      ASSERT_EQ(p.future.submit_status(), Status::kOk);
      for (size_t i = 0; i < kBatch / 2; ++i) {
        ASSERT_EQ(p.statuses[i], Status::kOk);
        ++ok_inserts;
      }
    }
  }
  EXPECT_EQ(ok_inserts, kSubmitters * kBatchesPerThread * kBatch / 2);

  // Reject: async and sync submissions after the close fail fast with
  // kInvalidArgument in the token and in every status slot.
  Op ops[4] = {Op::Insert(7777771, 1), Op::Search(7777771),
               Op::Update(7777771, 2), Op::Delete(7777771)};
  Status statuses[4];
  BatchFuture rejected = store->SubmitExecute(ops, 4, statuses);
  EXPECT_TRUE(rejected.Ready());
  EXPECT_EQ(rejected.submit_status(), Status::kInvalidArgument);
  for (Status s : statuses) EXPECT_EQ(s, Status::kInvalidArgument);

  uint64_t keys[2] = {1, 2};
  uint64_t got[2];
  Status st[2];
  store->MultiSearch(keys, 2, got, st);
  EXPECT_EQ(st[0], Status::kInvalidArgument);
  EXPECT_EQ(st[1], Status::kInvalidArgument);

  // Idempotent: a second close is a no-op, and destruction re-joins
  // nothing (workers are already gone).
  store->CloseClean();
}

// A queue depth of 1 forces constant backpressure; every batch must still
// execute exactly once and in per-shard submission order.
TEST(ExecutorTest, BackpressureWithTinyQueues) {
  TempShardPaths paths("exec_bp", 2);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 2);
  options.async.queue_depth = 1;
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);

  constexpr size_t kBatches = 64;
  constexpr size_t kBatch = 32;
  std::vector<std::vector<Op>> ops(kBatches);
  std::vector<std::vector<Status>> statuses(kBatches);
  std::vector<BatchFuture> futures(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    ops[b].resize(kBatch);
    statuses[b].resize(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      ops[b][i] = Op::Insert(1 + b * kBatch + i, b);
    }
    futures[b] =
        store->SubmitExecute(ops[b].data(), kBatch, statuses[b].data());
  }
  for (size_t b = 0; b < kBatches; ++b) {
    futures[b].Wait();
    for (size_t i = 0; i < kBatch; ++i) {
      ASSERT_EQ(statuses[b][i], Status::kOk) << "batch " << b;
    }
  }
  EXPECT_EQ(store->Stats().totals.records, kBatches * kBatch);
  store->CloseClean();
}

// A 1-shard store skips the executor (inline_single_shard): Submit*
// executes natively off the caller's arrays and the future is born
// ready, for all five entry points.
TEST(ExecutorTest, SingleShardInlineFastPath) {
  TempShardPaths paths("exec_one", 1);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 1));
  ASSERT_NE(store, nullptr);
  ASSERT_FALSE(store->async_enabled());

  constexpr size_t kN = 64;
  uint64_t keys[kN], values[kN], got[kN];
  Status statuses[kN];
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    values[i] = i + 500;
  }
  BatchFuture f = store->SubmitInsert(keys, values, kN, statuses);
  EXPECT_TRUE(f.Ready());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);

  f = store->SubmitSearch(keys, kN, got, statuses);
  EXPECT_TRUE(f.Ready());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kOk);
    ASSERT_EQ(got[i], values[i]);
  }

  for (size_t i = 0; i < kN; ++i) values[i] = i + 7000;
  f = store->SubmitUpdate(keys, values, kN, statuses);
  EXPECT_TRUE(f.Ready());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);

  Op ops[kN];
  for (size_t i = 0; i < kN; ++i) ops[i] = Op::Search(keys[i]);
  f = store->SubmitExecute(ops, kN, statuses);
  EXPECT_TRUE(f.Ready());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kOk);
    ASSERT_EQ(ops[i].value, values[i]);
  }

  f = store->SubmitDelete(keys, kN, statuses);
  EXPECT_TRUE(f.Ready());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);
  EXPECT_EQ(store->Stats().totals.records, 0u);
  store->CloseClean();
}

// Worker pinning is a placement hint, never a correctness knob.
TEST(ExecutorTest, PinnedWorkersStillCorrect) {
  TempShardPaths paths("exec_pin", 2);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 2);
  options.async.pin_workers = true;
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);

  constexpr size_t kN = 128;
  uint64_t keys[kN], values[kN], got[kN];
  Status statuses[kN];
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    values[i] = i * 3 + 1;
  }
  store->MultiInsert(keys, values, kN, statuses);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);
  store->MultiSearch(keys, kN, got, statuses);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kOk);
    ASSERT_EQ(got[i], values[i]);
  }
  store->CloseClean();
}

// Open/close churn: worker threads release their dense thread ids on
// exit, so repeated store lifecycles cannot exhaust the process-wide
// per-thread PM slots (util::kMaxThreadId). 40 cycles x 4 workers would
// otherwise burn 160 ids on top of everything the rest of the suite uses.
TEST(ExecutorTest, WorkerChurnRecyclesThreadIds) {
  for (int cycle = 0; cycle < 40; ++cycle) {
    TempShardPaths paths("exec_churn", 4);
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
    ASSERT_NE(store, nullptr);
    Op ops[16];
    Status statuses[16];
    for (size_t i = 0; i < 16; ++i) {
      ops[i] = Op::Insert(i + 1, cycle);
    }
    BatchFuture future = store->SubmitExecute(ops, 16, statuses);
    future.Wait();
    for (size_t i = 0; i < 16; ++i) ASSERT_EQ(statuses[i], Status::kOk);
    store->CloseClean();
  }
}

// Concurrent submitters + a Stats poller + single-op traffic: the stress
// shape of a serving frontend. Disjoint key ranges per submitter keep the
// final state checkable.
TEST(ExecutorTest, ConcurrentSubmittersAndStats) {
  TempShardPaths paths("exec_conc", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);

  constexpr int kSubmitters = 3;
  constexpr uint64_t kPerThread = 4000;
  constexpr size_t kBatch = 64;
  constexpr size_t kWindow = 4;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t base = static_cast<uint64_t>(t) * kPerThread;
      struct Slot {
        Op ops[kBatch];
        Status statuses[kBatch];
        BatchFuture future;
        size_t n = 0;
      };
      Slot window[kWindow];
      size_t w = 0;
      auto reap = [&](Slot& slot) {
        slot.future.Wait();
        for (size_t i = 0; i < slot.n; ++i) {
          if (!IsOk(slot.statuses[i])) failures.fetch_add(1);
        }
      };
      for (uint64_t k = 1; k <= kPerThread; k += kBatch) {
        Slot& slot = window[w++ % kWindow];
        if (slot.future.valid()) reap(slot);
        slot.n = 0;
        for (uint64_t i = k; i < k + kBatch && i <= kPerThread; ++i) {
          slot.ops[slot.n++] = Op::Insert(base + i, base + i + 1);
        }
        slot.future =
            store->SubmitExecute(slot.ops, slot.n, slot.statuses);
      }
      for (auto& slot : window) {
        if (slot.future.valid()) reap(slot);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      const ShardedStats stats = store->Stats();
      if (stats.totals.records > kSubmitters * kPerThread) {
        failures.fetch_add(1);
      }
      uint64_t value = 0;
      store->Search(1, &value);  // single-op traffic bypassing the queues
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(store->Stats().totals.records,
            static_cast<uint64_t>(kSubmitters) * kPerThread);
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kSubmitters * kPerThread; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k + 1);
  }
  store->CloseClean();
}

// ---- deadlines, WaitFor, queue-full backoff ----

// A batch whose deadline has passed by the time its shard worker dequeues
// it completes with kTimeout instead of executing; a generous deadline
// executes normally. WaitFor reports not-ready while the worker is busy
// and ready afterwards.
TEST(ExecutorTest, DeadlineExpiresWhileQueued) {
  TempShardPaths paths("exec_deadline", 1);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 1);
  options.async.inline_single_shard = false;  // force the worker + queue
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->async_enabled());

  // Occupy the single worker with a large batch so the timed batch below
  // is still queued when its deadline passes.
  constexpr size_t kBig = 300000;
  std::vector<uint64_t> keys(kBig), values(kBig);
  std::vector<Status> big_status(kBig);
  for (size_t i = 0; i < kBig; ++i) {
    keys[i] = i + 1;
    values[i] = i;
  }
  BatchFuture big = store->SubmitInsert(keys.data(), values.data(), kBig,
                                        big_status.data());
  ASSERT_EQ(big.submit_status(), Status::kOk);

  constexpr size_t kSmall = 32;
  uint64_t small_keys[kSmall];
  Status small_status[kSmall];
  for (size_t i = 0; i < kSmall; ++i) small_keys[i] = 1000000 + i;
  SubmitOptions timed;
  timed.deadline = std::chrono::milliseconds(1);
  BatchFuture expired =
      store->SubmitDelete(small_keys, kSmall, small_status, timed);
  ASSERT_EQ(expired.submit_status(), Status::kOk);

  // 300k inserts take far longer than this poll.
  EXPECT_FALSE(big.WaitFor(std::chrono::nanoseconds(1)));

  expired.Wait();
  for (size_t i = 0; i < kSmall; ++i) {
    ASSERT_EQ(small_status[i], Status::kTimeout) << "slot " << i;
  }
  big.Wait();
  EXPECT_TRUE(big.WaitFor(std::chrono::nanoseconds(0)));  // ready now
  for (size_t i = 0; i < kBig; ++i) {
    ASSERT_EQ(big_status[i], Status::kOk) << "slot " << i;
  }

  // A deadline with plenty of slack executes: these keys were never
  // inserted (the expired batch did not run), so the delete reports
  // kNotFound rather than kTimeout.
  SubmitOptions slack;
  slack.deadline = std::chrono::seconds(30);
  BatchFuture ok = store->SubmitDelete(small_keys, kSmall, small_status,
                                       slack);
  ok.Wait();
  for (size_t i = 0; i < kSmall; ++i) {
    ASSERT_EQ(small_status[i], Status::kNotFound) << "slot " << i;
  }
  store->CloseClean();
}

// With submit_retries configured, a submission that finds the shard queue
// full backs off, retries, and — once the retries are exhausted — fails
// its slots with kUnavailable instead of blocking the submitter forever.
TEST(ExecutorTest, QueueFullBackoffFailsFast) {
  TempShardPaths paths("exec_backoff", 1);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 1);
  options.async.inline_single_shard = false;
  options.async.queue_depth = 1;
  options.async.submit_retries = 3;
  options.async.backoff_initial_us = 1;
  options.async.backoff_cap_us = 8;
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->async_enabled());

  // A occupies the worker for tens of milliseconds; B takes the single
  // queue slot; C then finds the queue full for far longer than the
  // retry budget (3 retries * <= 8us).
  constexpr size_t kBig = 300000;
  std::vector<uint64_t> a_keys(kBig), a_values(kBig);
  std::vector<Status> a_status(kBig);
  for (size_t i = 0; i < kBig; ++i) {
    a_keys[i] = i + 1;
    a_values[i] = i;
  }
  BatchFuture a = store->SubmitInsert(a_keys.data(), a_values.data(), kBig,
                                      a_status.data());
  ASSERT_EQ(a.submit_status(), Status::kOk);

  constexpr size_t kSmall = 16;
  uint64_t b_keys[kSmall], b_values[kSmall], c_keys[kSmall], c_values[kSmall];
  Status b_status[kSmall], c_status[kSmall];
  for (size_t i = 0; i < kSmall; ++i) {
    b_keys[i] = 2000000 + i;
    b_values[i] = i;
    c_keys[i] = 3000000 + i;
    c_values[i] = i;
  }
  BatchFuture b =
      store->SubmitInsert(b_keys, b_values, kSmall, b_status);
  ASSERT_EQ(b.submit_status(), Status::kOk);
  BatchFuture c =
      store->SubmitInsert(c_keys, c_values, kSmall, c_status);
  c.Wait();
  for (size_t i = 0; i < kSmall; ++i) {
    ASSERT_EQ(c_status[i], Status::kUnavailable) << "slot " << i;
  }

  a.Wait();
  b.Wait();
  for (size_t i = 0; i < kBig; ++i) ASSERT_EQ(a_status[i], Status::kOk);
  for (size_t i = 0; i < kSmall; ++i) ASSERT_EQ(b_status[i], Status::kOk);
  // The rejected batch really never executed.
  EXPECT_EQ(store->Stats().totals.records, kBig + kSmall);
  store->CloseClean();
}

// WaitFor contract on trivial futures: invalid and empty tokens report
// ready immediately.
TEST(ExecutorTest, WaitForTrivialFutures) {
  BatchFuture invalid;
  EXPECT_TRUE(invalid.WaitFor(std::chrono::nanoseconds(0)));
  TempShardPaths paths("exec_waitfor", 2);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  BatchFuture empty = store->SubmitExecute(nullptr, 0, nullptr);
  EXPECT_TRUE(empty.WaitFor(std::chrono::nanoseconds(0)));
  store->CloseClean();
}

// Spin until the completion callback has run (it fires on the last
// shard's worker, possibly after Wait() already returned).
void AwaitFlag(const std::atomic<int>& flag, int want) {
  while (flag.load(std::memory_order_acquire) != want) {
    std::this_thread::yield();
  }
}

// OnReady fires exactly once per future: after completion for callbacks
// registered in-flight, immediately for futures that are already ready
// or trivially ready (invalid/empty).
TEST(ExecutorTest, OnReadyFiresExactlyOnce) {
  TempShardPaths paths("exec_onready", 2);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);

  constexpr size_t kN = 64;
  uint64_t keys[kN], values[kN];
  Status statuses[kN];
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    values[i] = i;
  }
  std::atomic<int> fired{0};
  BatchFuture f = store->SubmitInsert(keys, values, kN, statuses);
  f.OnReady([&fired] { fired.fetch_add(1, std::memory_order_acq_rel); });
  f.Wait();
  AwaitFlag(fired, 1);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);

  // Registering after completion fires synchronously on this thread.
  std::atomic<int> late{0};
  f.OnReady([&late] { late.fetch_add(1, std::memory_order_acq_rel); });
  EXPECT_EQ(late.load(), 1);

  // Trivially-ready futures fire immediately too.
  std::atomic<int> trivial{0};
  BatchFuture invalid;
  invalid.OnReady(
      [&trivial] { trivial.fetch_add(1, std::memory_order_acq_rel); });
  BatchFuture empty = store->SubmitExecute(nullptr, 0, nullptr);
  empty.OnReady(
      [&trivial] { trivial.fetch_add(1, std::memory_order_acq_rel); });
  EXPECT_EQ(trivial.load(), 2);
  store->CloseClean();
}

// Race the registration against the completing worker: whichever side
// wins the arbitration under the completion lock, the callback fires
// exactly once and Wait() still returns. Many iterations so both
// interleavings (stored-then-fired-by-completer and
// observed-ready-fired-by-registrar) actually occur.
TEST(ExecutorTest, OnReadyVsWaitRace) {
  TempShardPaths paths("exec_onready_race", 2);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  constexpr int kIters = 300;
  constexpr size_t kN = 8;
  uint64_t keys[kN], values[kN];
  Status statuses[kN];
  for (int iter = 0; iter < kIters; ++iter) {
    for (size_t i = 0; i < kN; ++i) {
      keys[i] = static_cast<uint64_t>(iter) * kN + i + 1;
      values[i] = i;
    }
    std::atomic<int> fired{0};
    BatchFuture f = store->SubmitInsert(keys, values, kN, statuses);
    std::thread waiter([&f] { f.Wait(); });
    f.OnReady([&fired] { fired.fetch_add(1, std::memory_order_acq_rel); });
    waiter.join();
    AwaitFlag(fired, 1);
    ASSERT_EQ(fired.load(), 1) << "iter " << iter;
  }
  store->CloseClean();
}

}  // namespace
}  // namespace dash::api
