// Shared test helpers: temp pool files, crash simulation harness.

#ifndef DASH_PM_TESTS_TEST_UTIL_H_
#define DASH_PM_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "api/sharded_store.h"
#include "pmem/pool.h"

namespace dash::test {

// Returns a fresh pool file path in a tmpfs-backed directory when
// available. The file is removed in the destructor.
class TempPoolFile {
 public:
  explicit TempPoolFile(const std::string& tag) {
    const char* base = access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
    path_ = std::string(base) + "/dash_test_" + tag + "_" +
            std::to_string(getpid()) + "_" + std::to_string(counter_++);
    std::remove(path_.c_str());
  }
  ~TempPoolFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

inline std::unique_ptr<pmem::PmPool> CreatePool(const TempPoolFile& file,
                                                size_t size = 256ull << 20) {
  pmem::PmPool::Options options;
  options.pool_size = size;
  return pmem::PmPool::Create(file.path(), options);
}

// Temp path prefix for a ShardedStore whose `.shard<i>` pool files and
// `.manifest` are removed on construction and teardown.
class TempShardPaths {
 public:
  explicit TempShardPaths(const std::string& tag, size_t shards)
      : shards_(shards) {
    const char* base = access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
    prefix_ = std::string(base) + "/dash_test_" + tag + "_" +
              std::to_string(getpid()) + "_" + std::to_string(counter_++);
    Cleanup();
  }
  ~TempShardPaths() { Cleanup(); }

  const std::string& prefix() const { return prefix_; }

 private:
  void Cleanup() {
    for (size_t i = 0; i < shards_; ++i) {
      const std::string shard = prefix_ + ".shard" + std::to_string(i);
      std::remove(shard.c_str());
      std::remove((shard + ".ckpt").c_str());
      std::remove((shard + ".ckpt.tmp").c_str());
    }
    std::remove((prefix_ + ".manifest").c_str());
    std::remove((prefix_ + ".manifest.tmp").c_str());
  }

  static inline int counter_ = 0;
  size_t shards_;
  std::string prefix_;
};

// The test-sized ShardedStore shape shared by the sharded-store and
// executor suites: Dash-EH, small pools, small segments.
inline api::ShardedStoreOptions SmallStoreOptions(const std::string& prefix,
                                                  size_t shards) {
  api::ShardedStoreOptions options;
  options.kind = api::IndexKind::kDashEH;
  options.shards = shards;
  options.path_prefix = prefix;
  options.shard_pool_size = 128ull << 20;
  options.table.buckets_per_segment = 16;
  return options;
}

}  // namespace dash::test

#endif  // DASH_PM_TESTS_TEST_UTIL_H_
