// Shared test helpers: temp pool files, crash simulation harness.

#ifndef DASH_PM_TESTS_TEST_UTIL_H_
#define DASH_PM_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "pmem/pool.h"

namespace dash::test {

// Returns a fresh pool file path in a tmpfs-backed directory when
// available. The file is removed in the destructor.
class TempPoolFile {
 public:
  explicit TempPoolFile(const std::string& tag) {
    const char* base = access("/dev/shm", W_OK) == 0 ? "/dev/shm" : "/tmp";
    path_ = std::string(base) + "/dash_test_" + tag + "_" +
            std::to_string(getpid()) + "_" + std::to_string(counter_++);
    std::remove(path_.c_str());
  }
  ~TempPoolFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

inline std::unique_ptr<pmem::PmPool> CreatePool(const TempPoolFile& file,
                                                size_t size = 256ull << 20) {
  pmem::PmPool::Options options;
  options.pool_size = size;
  return pmem::PmPool::Create(file.path(), options);
}

}  // namespace dash::test

#endif  // DASH_PM_TESTS_TEST_UTIL_H_
