// Dash-LH tests: linear expansion, hybrid directory, stash chaining,
// helped splits, persistence.

#include "dash/dash_lh.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dash {
namespace {

class DashLhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("dash_lh");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.buckets_per_segment = 16;
    opts_.stash_buckets = 2;
    opts_.lh_base_segments = 4;  // small so rounds complete in tests
    opts_.lh_stride = 2;
    table_ = std::make_unique<DashLH<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  DashOptions opts_;
  std::unique_ptr<DashLH<>> table_;
};

TEST_F(DashLhTest, BasicRoundTrip) {
  EXPECT_EQ(table_->Insert(1, 11), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kOk);
  EXPECT_EQ(value, 11u);
  EXPECT_EQ(table_->Delete(1), OpStatus::kOk);
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kNotFound);
}

TEST_F(DashLhTest, DuplicateInsertRejected) {
  EXPECT_EQ(table_->Insert(5, 1), OpStatus::kOk);
  EXPECT_EQ(table_->Insert(5, 2), OpStatus::kExists);
}

TEST_F(DashLhTest, ExpandsThroughRoundsUnderLoad) {
  constexpr uint64_t kKeys = 40000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k + 3), OpStatus::kOk) << "key " << k;
  }
  // With 4 base segments of ~900 slots, 40k records force several rounds.
  EXPECT_GT(table_->rounds(), 0u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k + 3);
  }
  EXPECT_EQ(table_->Size(), kKeys);
  for (uint64_t k = kKeys + 1; k <= kKeys + 1000; ++k) {
    uint64_t value;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kNotFound);
  }
}

TEST_F(DashLhTest, ManualExpansionPreservesRecords) {
  std::set<uint64_t> keys;
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
    keys.insert(k);
  }
  const uint32_t next_before = table_->next_pointer();
  table_->ExpandForTest();
  EXPECT_TRUE(table_->next_pointer() == next_before + 1 ||
              table_->next_pointer() == 0);
  for (uint64_t k : keys) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
  }
  EXPECT_EQ(table_->Size(), keys.size());
}

TEST_F(DashLhTest, FullRoundOfExpansions) {
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  // Drive expansions until the round rolls over (preloading may already
  // have advanced Next partway through the current round).
  const uint32_t n_before = table_->rounds();
  while (table_->rounds() == n_before) table_->ExpandForTest();
  EXPECT_EQ(table_->rounds(), n_before + 1);
  EXPECT_EQ(table_->next_pointer(), 0u);
  for (uint64_t k = 1; k <= 2000; ++k) {
    uint64_t value;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
  }
}

TEST_F(DashLhTest, DeleteAcrossExpandedTable) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 1; k <= 20000; k += 2) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk) << "key " << k;
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 20000; ++k) {
    const OpStatus expected =
        (k % 2 == 0) ? OpStatus::kOk : OpStatus::kNotFound;
    ASSERT_EQ(table_->Search(k, &value), expected) << "key " << k;
  }
  EXPECT_EQ(table_->Size(), 10000u);
}

TEST_F(DashLhTest, PersistsAcrossCleanRestart) {
  constexpr uint64_t kKeys = 15000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 13), OpStatus::kOk);
  }
  table_->CloseClean();
  table_.reset();
  pool_->CloseClean();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<DashLH<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 13);
  }
}

TEST_F(DashLhTest, HybridDirectoryStaysTiny) {
  // §5.2: even after many expansions the directory is a handful of
  // entries. 40k keys with 16-bucket segments ≈ hundreds of segments.
  for (uint64_t k = 1; k <= 40000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  const DashTableStats stats = table_->Stats();
  EXPECT_GT(stats.segments, 32u);
  // Directory entries used: segments live in geometrically growing arrays;
  // count entries needed for the segment count.
  uint64_t entries = 0, covered = 0;
  while (covered < stats.segments) {
    covered += opts_.lh_base_segments << (entries / opts_.lh_stride);
    ++entries;
  }
  EXPECT_LE(entries, DashLhRoot::kMaxDirEntries / 2);
}

TEST_F(DashLhTest, LoadFactorStaysReasonable) {
  for (uint64_t k = 1; k <= 30000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  EXPECT_GT(table_->LoadFactor(), 0.4);
}

}  // namespace
}  // namespace dash
