// Variable-length key tests (§4.5): pointer-mode storage, fingerprint-
// guided probing, and behaviour across all four tables.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

std::string MakeKey(uint64_t i, size_t len = 16) {
  std::string key = "key-" + std::to_string(i) + "-";
  while (key.size() < len) key.push_back('x');
  return key;
}

class VarKeyTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>(
        std::string("varkey_") + IndexKindName(GetParam()));
    pool_ = test::CreatePool(*file_, 512ull << 20);
    ASSERT_NE(pool_, nullptr);
    DashOptions opts;
    opts.buckets_per_segment = 16;
    opts.lh_base_segments = 4;
    opts.lh_stride = 2;
    index_ = CreateVarKvIndex(GetParam(), pool_.get(), &epochs_, opts);
    ASSERT_NE(index_, nullptr);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  std::unique_ptr<VarKvIndex> index_;
};

TEST_P(VarKeyTest, BasicRoundTrip) {
  EXPECT_EQ(index_->Insert("hello", 1), Status::kOk);
  uint64_t value = 0;
  EXPECT_EQ(index_->Search("hello", &value), Status::kOk);
  EXPECT_EQ(value, 1u);
  EXPECT_EQ(index_->Search("hellp", &value), Status::kNotFound);
  EXPECT_EQ(index_->Delete("hello"), Status::kOk);
  EXPECT_EQ(index_->Search("hello", &value), Status::kNotFound);
}

TEST_P(VarKeyTest, DuplicateContentRejectedEvenWithDifferentPointers) {
  const std::string a = MakeKey(7);
  const std::string b = MakeKey(7);  // same content, different buffer
  EXPECT_EQ(index_->Insert(a, 1), Status::kOk);
  EXPECT_EQ(index_->Insert(b, 2), Status::kExists);
}

TEST_P(VarKeyTest, PrefixAndSuffixDiffer) {
  EXPECT_EQ(index_->Insert("alpha", 1), Status::kOk);
  EXPECT_EQ(index_->Insert("alphabet", 2), Status::kOk);
  uint64_t value;
  ASSERT_EQ(index_->Search("alpha", &value), Status::kOk);
  EXPECT_EQ(value, 1u);
  ASSERT_EQ(index_->Search("alphabet", &value), Status::kOk);
  EXPECT_EQ(value, 2u);
}

TEST_P(VarKeyTest, ManyKeysWithGrowth) {
  constexpr uint64_t kKeys = 20000;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    ASSERT_EQ(index_->Insert(MakeKey(i), i), Status::kOk) << "key " << i;
  }
  uint64_t value;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    ASSERT_EQ(index_->Search(MakeKey(i), &value), Status::kOk) << "key " << i;
    ASSERT_EQ(value, i);
  }
  for (uint64_t i = kKeys + 1; i <= kKeys + 500; ++i) {
    ASSERT_EQ(index_->Search(MakeKey(i), &value), Status::kNotFound);
  }
  EXPECT_EQ(index_->Stats().records, kKeys);
}

TEST_P(VarKeyTest, MixedLengthKeys) {
  for (size_t len : {1u, 5u, 8u, 9u, 16u, 64u, 255u}) {
    const std::string key(len, 'k');
    ASSERT_EQ(index_->Insert(key, len), Status::kOk) << "len " << len;
  }
  uint64_t value;
  for (size_t len : {1u, 5u, 8u, 9u, 16u, 64u, 255u}) {
    const std::string key(len, 'k');
    ASSERT_EQ(index_->Search(key, &value), Status::kOk) << "len " << len;
    ASSERT_EQ(value, len);
  }
}

TEST_P(VarKeyTest, UpdateInPlace) {
  ASSERT_EQ(index_->Update("missing", 1), Status::kNotFound);
  ASSERT_EQ(index_->Insert("profile", 10), Status::kOk);
  ASSERT_EQ(index_->Update("profile", 20), Status::kOk);
  uint64_t value = 0;
  ASSERT_EQ(index_->Search("profile", &value), Status::kOk);
  EXPECT_EQ(value, 20u);
  EXPECT_EQ(index_->Stats().records, 1u);
}

TEST_P(VarKeyTest, DeleteInterleaved) {
  constexpr uint64_t kKeys = 5000;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    ASSERT_EQ(index_->Insert(MakeKey(i), i), Status::kOk);
  }
  for (uint64_t i = 1; i <= kKeys; i += 2) {
    ASSERT_EQ(index_->Delete(MakeKey(i)), Status::kOk);
  }
  uint64_t value;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    ASSERT_EQ(index_->Search(MakeKey(i), &value),
              i % 2 == 0 ? Status::kOk : Status::kNotFound)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, VarKeyTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash::api
