#include "pmem/pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "pmem/allocator.h"
#include "pmem/persist.h"
#include "pmem/stats.h"
#include "test_util.h"

namespace dash::pmem {
namespace {

using test::TempPoolFile;

TEST(PmPoolTest, CreateAndReopenAtSameBase) {
  TempPoolFile file("pool_reopen");
  void* base_at_create;
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    base_at_create = pool->root();
    std::strcpy(static_cast<char*>(pool->root()), "hello pm");
    Persist(pool->root(), 16);
    pool->CloseClean();
  }
  {
    auto pool = PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->root(), base_at_create)
        << "pool must map at its recorded base so raw pointers stay valid";
    EXPECT_STREQ(static_cast<char*>(pool->root()), "hello pm");
    EXPECT_FALSE(pool->recovered_from_crash());
    pool->CloseClean();
  }
}

TEST(PmPoolTest, DirtyCloseReportsCrash) {
  TempPoolFile file("pool_dirty");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_TRUE(pool->recovered_from_crash());
  pool->CloseClean();
}

TEST(PmPoolTest, DestructorIsDirtyClose) {
  TempPoolFile file("pool_dtor");
  { auto pool = test::CreatePool(file); }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_TRUE(pool->recovered_from_crash());
  pool->CloseClean();
}

// Huge-page backing is best-effort: the pool must open everywhere (CI
// containers without hugetlbfs or shmem THP included), falling back
// silently, and report which page size it actually obtained.
TEST(PmPoolTest, HugePageRequestFallsBackGracefully) {
  TempPoolFile file("pool_huge");
  PmPool::Options options;
  options.pool_size = 64ull << 20;  // 2 MB-aligned, hugetlb-eligible
  options.try_huge_pages = true;
  {
    auto pool = PmPool::Create(file.path(), options);
    ASSERT_NE(pool, nullptr) << "huge-page attempt must never fail creation";
    const PageMode mode = pool->page_mode();
    EXPECT_TRUE(mode == PageMode::k4K || mode == PageMode::kThpAdvised ||
                mode == PageMode::kHugeTlb)
        << static_cast<int>(mode);
    const size_t page = pool->MappedPageBytes();
    EXPECT_TRUE(page == 4096 || page == (2ull << 20)) << page;
    // A hugetlb mapping always implies 2 MB pages; a plain mapping never
    // reports more than its mode can deliver.
    if (mode == PageMode::kHugeTlb) EXPECT_EQ(page, 2ull << 20);
    if (mode == PageMode::k4K) EXPECT_EQ(page, 4096u);
    std::strcpy(static_cast<char*>(pool->root()), "huge ok");
    Persist(pool->root(), 16);
    pool->CloseClean();
  }
  // Reopen honors the same best-effort policy and still sees the data.
  auto pool = PmPool::Open(file.path(), /*try_huge_pages=*/true);
  ASSERT_NE(pool, nullptr);
  EXPECT_STREQ(static_cast<char*>(pool->root()), "huge ok");
  pool->CloseClean();
}

TEST(PmPoolTest, HugePagesDisabledReports4K) {
  TempPoolFile file("pool_4k");
  PmPool::Options options;
  options.pool_size = 64ull << 20;
  options.try_huge_pages = false;
  auto pool = PmPool::Create(file.path(), options);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->page_mode(), PageMode::k4K);
  EXPECT_EQ(pool->MappedPageBytes(), 4096u);
  EXPECT_STREQ(PageModeName(pool->page_mode()), "4k");
  pool->CloseClean();
}

TEST(PmPoolTest, CreateFailsIfExists) {
  TempPoolFile file("pool_exists");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  pool->CloseClean();
  EXPECT_EQ(PmPool::Create(file.path(), {}), nullptr);
}

TEST(PmPoolTest, OpenFailsOnGarbageFile) {
  TempPoolFile file("pool_garbage");
  FILE* f = fopen(file.path().c_str(), "w");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 8192; ++i) fputc(i & 0xFF, f);
  fclose(f);
  EXPECT_EQ(PmPool::Open(file.path()), nullptr);
}

TEST(PmPoolTest, OpenOrCreateReportsCreation) {
  TempPoolFile file("pool_ooc");
  bool created = false;
  {
    auto pool = PmPool::OpenOrCreate(file.path(), {}, &created);
    ASSERT_NE(pool, nullptr);
    EXPECT_TRUE(created);
    pool->CloseClean();
  }
  auto pool = PmPool::OpenOrCreate(file.path(), {}, &created);
  ASSERT_NE(pool, nullptr);
  EXPECT_FALSE(created);
  pool->CloseClean();
}

TEST(PmPoolTest, RootAreaIsZeroOnCreation) {
  TempPoolFile file("pool_zero_root");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  const auto* bytes = static_cast<const unsigned char*>(pool->root());
  for (size_t i = 0; i < pool->root_size(); ++i) {
    ASSERT_EQ(bytes[i], 0u);
  }
  pool->CloseClean();
}

TEST(PmPoolTest, OffsetRoundTrip) {
  TempPoolFile file("pool_offsets");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  void* p = pool->root();
  EXPECT_TRUE(pool->Contains(p));
  EXPECT_EQ(pool->FromOffset<void>(pool->ToOffset(p)), p);
  pool->CloseClean();
}

TEST(PmPoolTest, RetireBufferFreedOnCrashOpen) {
  TempPoolFile file("pool_retire");
  uint64_t free_before;
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    void* block = pool->allocator().Alloc(1024);
    ASSERT_NE(block, nullptr);
    free_before = pool->allocator().CountFreeBlocks();
    pool->AddRetire(block);
    pool->CloseDirty();  // crash before CompleteRetire
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->allocator().CountFreeBlocks(), free_before + 1)
      << "open recovery must return retired blocks to the allocator";
  pool->CloseClean();
}

TEST(PmPoolTest, PersistCountsFlushes) {
  TempPoolFile file("pool_stats");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  ResetPmStats();
  // 256 bytes = 4 cachelines -> 4 CLWBs + 1 fence.
  Persist(pool->root(), 256);
  const PmStats stats = AggregatePmStats();
  EXPECT_EQ(stats.clwb, 4u);
  EXPECT_EQ(stats.fence, 1u);
  pool->CloseClean();
}

TEST(PmPoolTest, UnalignedPersistCoversStraddledLines) {
  TempPoolFile file("pool_straddle");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  ResetPmStats();
  // 8 bytes straddling a cacheline boundary -> 2 lines.
  char* p = static_cast<char*>(pool->root()) + 60;
  Persist(p, 8);
  EXPECT_EQ(AggregatePmStats().clwb, 2u);
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::pmem
