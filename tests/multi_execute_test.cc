// MultiExecute tests: a mixed Search/Insert/Update/Delete descriptor
// batch must be semantically equivalent to executing the same ops
// serially through the single-op API, for every IndexKind. Batches use
// distinct keys per batch, where the documented type-group reordering is
// unobservable, so the equivalence is exact.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

class MultiExecuteTest : public ::testing::TestWithParam<IndexKind> {};

DashOptions SmallTableOptions() {
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  return opts;
}

// Expected status of one op against the model, applying the op's effect.
Status ApplyToModel(std::map<uint64_t, uint64_t>* model, Op* op) {
  switch (op->type) {
    case OpType::kSearch: {
      const auto it = model->find(op->key);
      if (it == model->end()) return Status::kNotFound;
      op->value = it->second;
      return Status::kOk;
    }
    case OpType::kInsert:
      if (!model->emplace(op->key, op->value).second) return Status::kExists;
      return Status::kOk;
    case OpType::kUpdate: {
      const auto it = model->find(op->key);
      if (it == model->end()) return Status::kNotFound;
      it->second = op->value;
      return Status::kOk;
    }
    case OpType::kDelete:
      return model->erase(op->key) == 1 ? Status::kOk : Status::kNotFound;
  }
  return Status::kInternal;
}

TEST_P(MultiExecuteTest, MixedBatchesMatchSerialExecution) {
  test::TempPoolFile file(std::string("mexec_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(2026);
  constexpr uint64_t kKeySpace = 20000;
  constexpr int kRounds = 60;
  // Batch sizes straddle the adapter's internal chunking (256) and the
  // tables' prefetch group width (16), including awkward remainders.
  const size_t batch_sizes[] = {1, 7, 16, 100, 257, 1000};

  for (int round = 0; round < kRounds; ++round) {
    // Alternate the batch engine round to round: both must implement the
    // same serial-equivalent semantics.
    index->SetBatchPipeline(round % 2 == 0 ? BatchPipeline::kAmac
                                           : BatchPipeline::kGroup);
    const size_t n = batch_sizes[round % std::size(batch_sizes)];
    // Distinct keys within one batch (shuffle-free rejection sampling).
    std::vector<Op> ops;
    std::map<uint64_t, bool> used;
    while (ops.size() < n) {
      const uint64_t key = rng.NextBounded(kKeySpace) + 1;
      if (used.count(key)) continue;
      used[key] = true;
      Op op;
      switch (rng.NextBounded(4)) {
        case 0: op = Op::Search(key); break;
        case 1: op = Op::Insert(key, rng.Next()); break;
        case 2: op = Op::Update(key, rng.Next()); break;
        default: op = Op::Delete(key); break;
      }
      ops.push_back(op);
    }

    std::vector<Op> expected_ops = ops;
    std::vector<Status> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = ApplyToModel(&model, &expected_ops[i]);
    }

    std::vector<Status> statuses(n);
    index->MultiExecute(ops.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(statuses[i], expected[i])
          << "round " << round << " slot " << i << " op "
          << OpTypeName(ops[i].type) << " key " << ops[i].key;
      if (ops[i].type == OpType::kSearch && IsOk(statuses[i])) {
        ASSERT_EQ(ops[i].value, expected_ops[i].value)
            << "round " << round << " key " << ops[i].key;
      }
    }
  }

  EXPECT_EQ(index->Stats().records, model.size());
  // Full sweep: the table must agree with the model record-for-record.
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_EQ(index->Search(key, &got), Status::kOk) << "key " << key;
    ASSERT_EQ(got, value);
  }

  index->CloseClean();
  pool->CloseClean();
}

// Mid-batch SMO coverage: one MultiExecute batch whose inserts force the
// table's structural modification (Dash-EH segment splits + directory
// doubling, Dash-LH linear-hash expansions, CCEH directory doubling,
// Level hashing's full-table resize) partway through the batch, under
// both batch engines. Statuses and final contents must match the serial
// model, including the searches/updates/deletes of preloaded keys whose
// records physically move while the batch is in flight.
TEST_P(MultiExecuteTest, MidBatchSmoMatchesSerialModel) {
  for (const BatchPipeline pipeline :
       {BatchPipeline::kGroup, BatchPipeline::kAmac}) {
    const char* pname = pipeline == BatchPipeline::kAmac ? "amac" : "group";
    test::TempPoolFile file(std::string("mexec_smo_") + pname + "_" +
                            IndexKindName(GetParam()));
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    auto index =
        CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
    ASSERT_NE(index, nullptr);
    index->SetBatchPipeline(pipeline);

    std::map<uint64_t, uint64_t> model;
    constexpr uint64_t kPreload = 300;
    for (uint64_t k = 1; k <= kPreload; ++k) {
      ASSERT_EQ(index->Insert(k, k * 7), Status::kOk);
      model[k] = k * 7;
    }
    const uint64_t capacity_before = index->Stats().capacity_slots;

    // ~2400 ops, two thirds fresh-key inserts (enough to overflow the
    // small table several times over), interleaved with ops on preloaded
    // keys. Every key appears at most once in the batch, so the
    // documented type-group reordering is unobservable and the serial
    // model is exact.
    constexpr size_t kOps = 2400;
    std::vector<Op> ops;
    uint64_t fresh = 1000;
    uint64_t preloaded = 0;
    for (size_t i = 0; i < kOps; ++i) {
      if (i % 3 != 2 || preloaded >= kPreload) {
        ops.push_back(Op::Insert(++fresh, i));
      } else {
        const uint64_t key = ++preloaded;
        switch (preloaded % 3) {
          case 0: ops.push_back(Op::Search(key)); break;
          case 1: ops.push_back(Op::Update(key, key + 100000)); break;
          default: ops.push_back(Op::Delete(key)); break;
        }
      }
    }

    std::vector<Op> expected_ops = ops;
    std::vector<Status> expected(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      expected[i] = ApplyToModel(&model, &expected_ops[i]);
    }

    std::vector<Status> statuses(ops.size());
    index->MultiExecute(ops.data(), ops.size(), statuses.data());
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_EQ(statuses[i], expected[i])
          << pname << " slot " << i << " op " << OpTypeName(ops[i].type)
          << " key " << ops[i].key;
      if (ops[i].type == OpType::kSearch && IsOk(statuses[i])) {
        ASSERT_EQ(ops[i].value, expected_ops[i].value)
            << pname << " key " << ops[i].key;
      }
    }

    // The batch must actually have straddled at least one SMO, and the
    // table must agree with the model record-for-record afterwards.
    const IndexStats stats = index->Stats();
    EXPECT_GT(stats.capacity_slots, capacity_before)
        << "batch did not trigger a structural modification";
    EXPECT_EQ(stats.records, model.size());
    EXPECT_TRUE(stats.pool_page_bytes == 4096 ||
                stats.pool_page_bytes == (2ull << 20))
        << stats.pool_page_bytes;
    for (const auto& [key, value] : model) {
      uint64_t got = 0;
      ASSERT_EQ(index->Search(key, &got), Status::kOk)
          << pname << " key " << key;
      ASSERT_EQ(got, value) << pname << " key " << key;
    }

    index->CloseClean();
    pool->CloseClean();
  }
}

// Same-type ops keep their relative order even when the batch mixes
// types: two inserts then an update of one key in a later batch.
TEST_P(MultiExecuteTest, SameTypeOrderPreserved) {
  test::TempPoolFile file(std::string("mexec_order_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  // Duplicate inserts of one key inside a mixed batch: first wins.
  Op ops[4] = {Op::Insert(42, 1), Op::Search(7), Op::Insert(42, 2),
               Op::Insert(7, 70)};
  Status statuses[4];
  index->MultiExecute(ops, 4, statuses);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[2], Status::kExists);
  EXPECT_EQ(statuses[3], Status::kOk);
  uint64_t value = 0;
  ASSERT_EQ(index->Search(42, &value), Status::kOk);
  EXPECT_EQ(value, 1u);

  index->CloseClean();
  pool->CloseClean();
}

// A descriptor whose type byte is out of range must come back as
// kInvalidArgument, not corrupt the partition scratch (regression).
TEST_P(MultiExecuteTest, MalformedOpTypeRejected) {
  test::TempPoolFile file(std::string("mexec_badop_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      CreateKvIndex(GetParam(), pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  ASSERT_EQ(index->Insert(5, 50), Status::kOk);
  Op ops[3] = {Op::Search(5), Op{}, Op::Insert(7, 70)};
  ops[1].type = static_cast<OpType>(200);
  ops[1].key = 6;
  Status statuses[3];
  index->MultiExecute(ops, 3, statuses);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(ops[0].value, 50u);
  EXPECT_EQ(statuses[1], Status::kInvalidArgument);
  EXPECT_EQ(statuses[2], Status::kOk);
  uint64_t value = 0;
  EXPECT_EQ(index->Search(6, &value), Status::kNotFound);

  index->CloseClean();
  pool->CloseClean();
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, MultiExecuteTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The var-key MultiExecute shares the adapter template; one smoke test
// over Dash-EH covers the VarOp entry point.
TEST(VarMultiExecuteTest, DashEhMixedBatch) {
  test::TempPoolFile file("mexec_var");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index =
      CreateVarKvIndex(IndexKind::kDashEH, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  constexpr size_t kN = 600;
  std::vector<std::string> storage(kN);
  for (size_t i = 0; i < kN; ++i) {
    storage[i] = "vkey-" + std::to_string(i);
  }

  std::vector<VarOp> ops;
  for (size_t i = 0; i < kN; ++i) {
    ops.push_back(VarOp::Insert(storage[i], i + 1));
  }
  std::vector<Status> statuses(ops.size());
  index->MultiExecute(ops.data(), ops.size(), statuses.data());
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(statuses[i], Status::kOk) << storage[i];
  }

  // Mixed follow-up: search half, update a quarter, delete a quarter.
  ops.clear();
  for (size_t i = 0; i < kN; ++i) {
    if (i % 2 == 0) {
      ops.push_back(VarOp::Search(storage[i]));
    } else if (i % 4 == 1) {
      ops.push_back(VarOp::Update(storage[i], 9000 + i));
    } else {
      ops.push_back(VarOp::Delete(storage[i]));
    }
  }
  statuses.assign(ops.size(), Status::kInternal);
  index->MultiExecute(ops.data(), ops.size(), statuses.data());
  for (size_t i = 0, j = 0; i < kN; ++i, ++j) {
    ASSERT_EQ(statuses[j], Status::kOk) << storage[i];
    if (i % 2 == 0) {
      ASSERT_EQ(ops[j].value, i + 1) << storage[i];
    }
  }

  uint64_t value = 0;
  EXPECT_EQ(index->Search(storage[1], &value), Status::kOk);
  EXPECT_EQ(value, 9001u);
  EXPECT_EQ(index->Search(storage[3], &value), Status::kNotFound);

  index->CloseClean();
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::api
