// Wire-protocol framing tests: every frame type round-trips through
// encode/decode, truncated and corrupt frames are rejected without ever
// reporting a bogus kFrame, and a randomized fuzz loop hammers the
// decoder with mutated and garbage bytes.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"
#include "util/rand.h"

namespace dash::net {
namespace {

// Decode exactly one frame from `bytes`, expecting success.
Frame MustDecode(const std::vector<uint8_t>& bytes) {
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(NetProtocolTest, Crc32cKnownAnswerAndChaining) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  // Seed chaining composes: crc(A || B) == crc(B, seed=crc(A)).
  const uint8_t data[] = "framing frames for fun and profit";
  const size_t n = sizeof(data);
  const uint32_t whole = Crc32c(data, n);
  const uint32_t part = Crc32c(data + 10, n - 10, Crc32c(data, 10));
  EXPECT_EQ(whole, part);
}

TEST(NetProtocolTest, HelloRoundTrip) {
  std::vector<uint8_t> bytes;
  AppendHello(&bytes, /*tenant_id=*/42, /*weight=*/7);
  const Frame frame = MustDecode(bytes);
  HelloView hello;
  ASSERT_TRUE(ParseHello(frame, &hello));
  EXPECT_EQ(hello.tenant_id, 42u);
  EXPECT_EQ(hello.weight, 7u);
  // Weight 0 normalizes to 1 (a zero-weight tenant would starve forever).
  bytes.clear();
  AppendHello(&bytes, 1, 0);
  ASSERT_TRUE(ParseHello(MustDecode(bytes), &hello));
  EXPECT_EQ(hello.weight, 1u);
}

TEST(NetProtocolTest, HelloAckRoundTrip) {
  std::vector<uint8_t> bytes;
  AppendHelloAck(&bytes, /*shard_count=*/8, /*max_ops=*/kMaxOpsPerRequest);
  HelloAckView ack;
  ASSERT_TRUE(ParseHelloAck(MustDecode(bytes), &ack));
  EXPECT_EQ(ack.shard_count, 8u);
  EXPECT_EQ(ack.max_ops, kMaxOpsPerRequest);
}

TEST(NetProtocolTest, RequestRoundTripAllOpTypes) {
  const api::Op ops[] = {
      api::Op::Search(11),
      api::Op::Insert(22, 222),
      api::Op::Update(33, 333),
      api::Op::Delete(44),
  };
  std::vector<uint8_t> bytes;
  AppendRequest(&bytes, /*request_id=*/0xDEADBEEFCAFEull, ops, 4,
                /*deadline_us=*/1500);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.request_id, 0xDEADBEEFCAFEull);
  RequestView view;
  ASSERT_TRUE(ParseRequest(frame, &view));
  EXPECT_EQ(view.deadline_us, 1500u);
  ASSERT_EQ(view.count, 4u);
  for (size_t i = 0; i < 4; ++i) {
    api::Op op;
    ASSERT_TRUE(DecodeRequestOp(view, i, &op));
    EXPECT_EQ(op.type, ops[i].type);
    EXPECT_EQ(op.key, ops[i].key);
    EXPECT_EQ(op.value, ops[i].value);
  }
}

TEST(NetProtocolTest, ResponseRoundTripAllStatuses) {
  const api::Status statuses[] = {
      api::Status::kOk,         api::Status::kNotFound,
      api::Status::kExists,     api::Status::kInvalidArgument,
      api::Status::kOutOfSpace, api::Status::kInternal,
      api::Status::kUnavailable, api::Status::kTimeout,
  };
  constexpr size_t kN = sizeof(statuses) / sizeof(statuses[0]);
  uint64_t values[kN];
  for (size_t i = 0; i < kN; ++i) values[i] = i * 1000;
  std::vector<uint8_t> bytes;
  AppendResponse(&bytes, /*request_id=*/9, statuses, values, kN,
                 /*retry_after_us=*/250);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.request_id, 9u);
  EXPECT_NE(frame.header.flags & kFlagRetryAfter, 0);
  ResponseView view;
  ASSERT_TRUE(ParseResponse(frame, &view));
  EXPECT_EQ(view.retry_after_us, 250u);
  ASSERT_EQ(view.count, kN);
  for (size_t i = 0; i < kN; ++i) {
    api::Status status;
    uint64_t value;
    ASSERT_TRUE(DecodeResponseEntry(view, i, &status, &value));
    EXPECT_EQ(status, statuses[i]);
    EXPECT_EQ(value, values[i]);
  }
  // No retry hint -> flag clear.
  bytes.clear();
  AppendResponse(&bytes, 10, statuses, values, kN, 0);
  EXPECT_EQ(MustDecode(bytes).header.flags & kFlagRetryAfter, 0);
}

TEST(NetProtocolTest, TruncatedFramesNeedMore) {
  std::vector<uint8_t> bytes;
  AppendRequest(&bytes, 1, nullptr, 0, 0);
  Frame frame;
  size_t consumed = 0;
  // Every strict prefix of a valid frame asks for more bytes.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(DecodeFrame(bytes.data(), len, &frame, &consumed),
              DecodeResult::kNeedMore)
        << "prefix " << len;
  }
}

TEST(NetProtocolTest, BadMagicVersionTypeLengthRejected) {
  std::vector<uint8_t> good;
  AppendHello(&good, 1, 1);
  Frame frame;
  size_t consumed = 0;

  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xFF;  // magic
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
            DecodeResult::kBad);

  bad = good;
  bad[4] = kProtocolVersion + 1;  // version
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
            DecodeResult::kBad);

  bad = good;
  bad[5] = 0;  // type below range
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
            DecodeResult::kBad);
  bad[5] = 5;  // type above range
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
            DecodeResult::kBad);

  // Oversized payload_len is rejected from the header alone — no amount
  // of further bytes makes it valid (allocation-bomb guard).
  bad = good;
  const uint32_t huge = static_cast<uint32_t>(kMaxPayload) + 1;
  std::memcpy(bad.data() + 16, &huge, 4);
  EXPECT_EQ(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
            DecodeResult::kBad);
}

TEST(NetProtocolTest, CrcCorruptionRejected) {
  std::vector<uint8_t> good;
  const api::Op ops[] = {api::Op::Insert(7, 77)};
  AppendRequest(&good, 3, ops, 1, 0);
  Frame frame;
  size_t consumed = 0;
  // Flip each byte in turn (skipping none): every single-byte corruption
  // must be caught by header validation or the CRC.
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0x01;
    EXPECT_NE(DecodeFrame(bad.data(), bad.size(), &frame, &consumed),
              DecodeResult::kFrame)
        << "byte " << i;
  }
}

TEST(NetProtocolTest, PayloadSizeMismatchRejectedByParsers) {
  // A frame can be CRC-valid yet carry a payload whose size disagrees
  // with its type's layout; the typed parsers catch that.
  std::vector<uint8_t> bytes;
  AppendHello(&bytes, 1, 1);
  Frame frame = MustDecode(bytes);
  HelloAckView ack;
  RequestView request;
  EXPECT_FALSE(ParseHelloAck(frame, &ack));   // wrong type
  EXPECT_FALSE(ParseRequest(frame, &request));  // wrong type

  // Request whose count field disagrees with payload_len.
  bytes.clear();
  const api::Op ops[] = {api::Op::Search(1), api::Op::Search(2)};
  AppendRequest(&bytes, 1, ops, 2, 0);
  // Patch count 2 -> 1 and re-CRC so only the parser can object.
  uint32_t one = 1;
  std::memcpy(bytes.data() + kHeaderSize + 8, &one, 4);
  std::memset(bytes.data() + 20, 0, 4);
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  std::memcpy(bytes.data() + 20, &crc, 4);
  frame = MustDecode(bytes);
  EXPECT_FALSE(ParseRequest(frame, &request));
}

TEST(NetProtocolTest, BadOpTypeAndStatusBytesRejected) {
  std::vector<uint8_t> bytes;
  const api::Op ops[] = {api::Op::Search(5)};
  AppendRequest(&bytes, 1, ops, 1, 0);
  // Op type byte out of range, re-CRCed.
  bytes[kHeaderSize + 16] = 200;
  std::memset(bytes.data() + 20, 0, 4);
  uint32_t crc = Crc32c(bytes.data(), bytes.size());
  std::memcpy(bytes.data() + 20, &crc, 4);
  RequestView request;
  ASSERT_TRUE(ParseRequest(MustDecode(bytes), &request));
  api::Op op;
  EXPECT_FALSE(DecodeRequestOp(request, 0, &op));

  bytes.clear();
  const api::Status status = api::Status::kOk;
  const uint64_t value = 0;
  AppendResponse(&bytes, 1, &status, &value, 1, 0);
  bytes[kHeaderSize + 8] = 200;  // status byte out of range
  std::memset(bytes.data() + 20, 0, 4);
  crc = Crc32c(bytes.data(), bytes.size());
  std::memcpy(bytes.data() + 20, &crc, 4);
  ResponseView response;
  ASSERT_TRUE(ParseResponse(MustDecode(bytes), &response));
  api::Status out_status;
  uint64_t out_value;
  EXPECT_FALSE(DecodeResponseEntry(response, 0, &out_status, &out_value));
}

// Multiple frames back to back in one buffer decode in sequence, each
// reporting its own consumed length.
TEST(NetProtocolTest, StreamOfFramesDecodesInSequence) {
  std::vector<uint8_t> bytes;
  AppendHello(&bytes, 1, 1);
  const api::Op op = api::Op::Search(9);
  AppendRequest(&bytes, 2, &op, 1, 0);
  AppendHelloAck(&bytes, 4, 16);

  size_t off = 0;
  std::vector<uint8_t> types;
  while (off < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data() + off, bytes.size() - off, &frame,
                          &consumed),
              DecodeResult::kFrame);
    types.push_back(frame.header.type);
    off += consumed;
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], static_cast<uint8_t>(MsgType::kHello));
  EXPECT_EQ(types[1], static_cast<uint8_t>(MsgType::kRequest));
  EXPECT_EQ(types[2], static_cast<uint8_t>(MsgType::kHelloAck));
}

// Fuzz loop: random mutations of valid frames and raw garbage. The
// decoder must never report kFrame for a mutated frame whose CRC was not
// re-patched, never read out of bounds (ASan-checked in CI), and always
// consume within the buffer.
TEST(NetProtocolTest, MalformedFrameFuzz) {
  util::Xoshiro256 rng(0xF00DF00Du);
  std::vector<uint8_t> base;
  const api::Op ops[] = {api::Op::Insert(1, 2), api::Op::Search(3),
                         api::Op::Update(4, 5), api::Op::Delete(6)};
  AppendRequest(&base, 77, ops, 4, 123456);

  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<uint8_t> buf = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      buf[rng.NextBounded(buf.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    // Two mutations can land on the same byte and cancel; only assert
    // when the buffer really differs from the valid frame.
    if (std::memcmp(buf.data(), base.data(), buf.size()) == 0) continue;
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(buf.data(), buf.size(), &frame, &consumed);
    EXPECT_NE(r, DecodeResult::kFrame) << "iter " << iter;
  }

  // Pure garbage of random lengths: decode must stay in bounds and only
  // ever say kNeedMore or kBad.
  for (int iter = 0; iter < 20000; ++iter) {
    const size_t len = rng.NextBounded(128);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.NextBounded(256));
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(buf.data(), buf.size(), &frame, &consumed);
    EXPECT_NE(r, DecodeResult::kFrame) << "iter " << iter;
  }
}

}  // namespace
}  // namespace dash::net
