// Dash-EH table tests: directory growth, splits, doubling, persistence
// across clean restarts, and statistics.

#include "dash/dash_eh.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dash {
namespace {

class DashEhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("dash_eh");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    // Small segments grow the directory quickly in tests.
    opts_.buckets_per_segment = 16;
    opts_.stash_buckets = 2;
    opts_.initial_depth = 1;
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  DashOptions opts_;
  std::unique_ptr<DashEH<>> table_;
};

TEST_F(DashEhTest, BasicRoundTrip) {
  EXPECT_EQ(table_->Insert(1, 100), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kOk);
  EXPECT_EQ(value, 100u);
  EXPECT_EQ(table_->Delete(1), OpStatus::kOk);
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kNotFound);
}

TEST_F(DashEhTest, DuplicateInsertRejected) {
  EXPECT_EQ(table_->Insert(9, 1), OpStatus::kOk);
  EXPECT_EQ(table_->Insert(9, 2), OpStatus::kExists);
}

TEST_F(DashEhTest, UpdateReplacesPayloadInPlace) {
  EXPECT_EQ(table_->Update(5, 1), OpStatus::kNotFound);
  ASSERT_EQ(table_->Insert(5, 1), OpStatus::kOk);
  EXPECT_EQ(table_->Update(5, 99), OpStatus::kOk);
  uint64_t value = 0;
  ASSERT_EQ(table_->Search(5, &value), OpStatus::kOk);
  EXPECT_EQ(value, 99u);
  EXPECT_EQ(table_->Size(), 1u) << "update must not add a record";
}

TEST_F(DashEhTest, UpdateFindsStashResidents) {
  // Fill far enough that some keys live in stash buckets; update them all.
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Update(k, k + 7), OpStatus::kOk) << "key " << k;
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k + 7);
  }
}

TEST_F(DashEhTest, GrowsThroughManySplits) {
  constexpr uint64_t kKeys = 50000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 2 + 1), OpStatus::kOk) << "key " << k;
  }
  EXPECT_GT(table_->global_depth(), opts_.initial_depth)
      << "directory must have doubled";
  const DashTableStats stats = table_->Stats();
  EXPECT_EQ(stats.records, kKeys);
  EXPECT_GT(stats.segments, 4u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 2 + 1);
  }
  // Negative lookups after heavy growth.
  for (uint64_t k = kKeys + 1; k <= kKeys + 1000; ++k) {
    uint64_t value;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kNotFound);
  }
}

TEST_F(DashEhTest, LoadFactorStaysHighWhileGrowing) {
  for (uint64_t k = 1; k <= 30000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  // Splits halve individual segments, but the aggregate load factor of a
  // Dash table stays well above CCEH's 35-43% band (Fig. 12).
  EXPECT_GT(table_->LoadFactor(), 0.45);
}

TEST_F(DashEhTest, DeleteEverythingThenReinsert) {
  constexpr uint64_t kKeys = 5000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk) << "key " << k;
  }
  EXPECT_EQ(table_->Size(), 0u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k + 1), OpStatus::kOk);
    uint64_t value;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k + 1);
  }
}

TEST_F(DashEhTest, MixedInterleavedOperations) {
  uint64_t value;
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
    if (k % 3 == 0) {
      ASSERT_EQ(table_->Delete(k / 3), table_->Search(k / 3, &value) == OpStatus::kOk
                                           ? OpStatus::kOk
                                           : OpStatus::kNotFound);
    }
  }
  // Sanity: every surviving key maps to its value.
  const DashTableStats stats = table_->Stats();
  uint64_t found = 0;
  for (uint64_t k = 1; k <= 20000; ++k) {
    if (table_->Search(k, &value) == OpStatus::kOk) {
      ASSERT_EQ(value, k);
      ++found;
    }
  }
  EXPECT_EQ(found, stats.records);
}

TEST_F(DashEhTest, PersistsAcrossCleanRestart) {
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 7), OpStatus::kOk);
  }
  table_->CloseClean();
  table_.reset();
  pool_->CloseClean();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  EXPECT_FALSE(pool_->recovered_from_crash());
  table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 7);
  }
  EXPECT_EQ(table_->Size(), kKeys);
}

TEST_F(DashEhTest, SplitForTestSplitsSegment) {
  const uint64_t segments_before = table_->Stats().segments;
  ASSERT_TRUE(table_->SplitForTest(IntKeyPolicy::Hash(42)));
  EXPECT_EQ(table_->Stats().segments, segments_before + 1);
  // Table still behaves.
  EXPECT_EQ(table_->Insert(42, 1), OpStatus::kOk);
  uint64_t value;
  EXPECT_EQ(table_->Search(42, &value), OpStatus::kOk);
}

TEST_F(DashEhTest, SplitPreservesAllRecords) {
  // Fill one segment's worth, split repeatedly, verify no record is lost.
  std::set<uint64_t> keys;
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
    keys.insert(k);
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(table_->SplitForTest(IntKeyPolicy::Hash(i * 1000 + 1)));
  }
  for (uint64_t k : keys) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
  EXPECT_EQ(table_->Size(), keys.size());
}

TEST_F(DashEhTest, StatsCapacityConsistent) {
  for (uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  const DashTableStats stats = table_->Stats();
  EXPECT_EQ(stats.records, 10000u);
  EXPECT_GE(stats.capacity_slots, stats.records);
  EXPECT_NEAR(stats.load_factor,
              static_cast<double>(stats.records) / stats.capacity_slots,
              1e-9);
  EXPECT_EQ(stats.segments * ((opts_.buckets_per_segment +
                               opts_.stash_buckets) *
                              Bucket::kNumSlots),
            stats.capacity_slots);
}

TEST_F(DashEhTest, RwLockModeWorks) {
  opts_.concurrency = ConcurrencyMode::kRwLock;
  table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 100000; k < 101000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 100000; k < 101000; ++k) {
    uint64_t value;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk);
  }
}

TEST_F(DashEhTest, FingerprintsOffStillCorrect) {
  opts_.use_fingerprints = false;
  table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk);
  }
  ASSERT_EQ(table_->Search(999999, &value), OpStatus::kNotFound);
}

TEST_F(DashEhTest, FingerprintsReducePmReads) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  uint64_t value;
  pmem::ResetPmStats();
  for (uint64_t k = 1000000; k < 1002000; ++k) {
    table_->Search(k, &value);  // negative searches
  }
  const uint64_t with_fp = pmem::AggregatePmStats().read_probes;

  table_->mutable_options().use_fingerprints = false;
  pmem::ResetPmStats();
  for (uint64_t k = 1000000; k < 1002000; ++k) {
    table_->Search(k, &value);
  }
  const uint64_t without_fp = pmem::AggregatePmStats().read_probes;
  table_->mutable_options().use_fingerprints = true;

  EXPECT_LT(with_fp, without_fp / 2)
      << "fingerprints must avoid most record probes on negative search "
         "(paper Fig. 9)";
}

}  // namespace
}  // namespace dash
