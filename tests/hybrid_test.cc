// Hybrid DRAM-PM tier tests (src/hybrid/): white-box log behaviour
// (chunk growth, epoch-deferred slot reuse), rebuild-equals-model
// recovery across clean and dirty reopens for both key widths, and the
// hybrid-specific crash points the generic insert sweep cannot reach
// (reclamation callbacks, the rebuild GC itself).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "epoch/epoch_manager.h"
#include "hybrid/hybrid_table.h"
#include "pmem/crash_point.h"
#include "pmem/flush_tracker.h"
#include "pmem/pool.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::hybrid {
namespace {

using api::IndexKind;
using api::Status;

HybridOptions SmallHybridOptions() {
  HybridOptions o;
  o.buckets_per_segment = 16;
  o.stash_slots = 16;
  o.initial_depth = 1;
  o.log_lanes = 4;
  o.records_per_chunk = 256;
  return o;
}

TEST(HybridTableTest, BasicCrudAndStructure) {
  test::TempPoolFile file("hybrid_crud");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  HybridTable<> table(pool.get(), &epochs, SmallHybridOptions());

  constexpr uint64_t kKeys = 50000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Insert(k, k * 3), OpStatus::kOk) << "key " << k;
  }
  EXPECT_EQ(table.Insert(7, 1), OpStatus::kExists);
  ASSERT_TRUE(table.VerifyStructure());

  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 3);
  }
  EXPECT_EQ(table.Search(kKeys + 1, &value), OpStatus::kNotFound);

  for (uint64_t k = 1; k <= kKeys; k += 2) {
    ASSERT_EQ(table.Update(k, k * 5), OpStatus::kOk);
  }
  for (uint64_t k = 2; k <= kKeys; k += 2) {
    ASSERT_EQ(table.Delete(k), OpStatus::kOk);
  }
  EXPECT_EQ(table.Delete(2), OpStatus::kNotFound);
  ASSERT_TRUE(table.VerifyStructure());

  const HybridStats stats = table.Stats();
  EXPECT_EQ(stats.records, kKeys / 2);
  EXPECT_GT(stats.segments, 1u);          // the workload forced splits
  EXPECT_GT(stats.log_chunks, 1u);        // and multiple PM chunks
  EXPECT_GT(stats.write_locks, 0u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    if (k % 2 == 1) {
      ASSERT_EQ(table.Search(k, &value), OpStatus::kOk);
      ASSERT_EQ(value, k * 5);
    } else {
      ASSERT_EQ(table.Search(k, &value), OpStatus::kNotFound);
    }
  }
  table.CloseClean();
  pool->CloseClean();
}

// Epoch-deferred reclamation must actually recycle log slots: updating
// and re-inserting the same keyset for many rounds (with quiescent
// drains between rounds, standing in for epoch advance under load) may
// not grow the log linearly with the number of appends.
TEST(HybridTableTest, LogSlotsAreReusedAfterReclamation) {
  test::TempPoolFile file("hybrid_reuse");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  HybridTable<> table(pool.get(), &epochs, SmallHybridOptions());

  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Insert(k, k), OpStatus::kOk);
  }
  epochs.DrainAll();
  const uint64_t chunks_before = table.Stats().log_chunks;

  constexpr int kRounds = 50;
  for (int round = 1; round <= kRounds; ++round) {
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(table.Update(k, k + round), OpStatus::kOk);
    }
    for (uint64_t k = 1; k <= kKeys; k += 4) {
      ASSERT_EQ(table.Delete(k), OpStatus::kOk);
      ASSERT_EQ(table.Insert(k, k + round), OpStatus::kOk);
    }
    epochs.DrainAll();  // grace period: retirements run, slots recycle
  }

  // ~62 appends/key happened; without reuse that is kRounds * kKeys
  // extra slots (~390 chunks of 256). With reuse the chain stays near
  // its high-water mark.
  const uint64_t chunks_after = table.Stats().log_chunks;
  EXPECT_LT(chunks_after, chunks_before + 30)
      << "log grew as if reclaimed slots were never reused";
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k + kRounds);
  }
  ASSERT_TRUE(table.VerifyStructure());
  table.CloseClean();
  pool->CloseClean();
}

// The recovery contract for both reopen flavours: the rebuilt DRAM index
// serves exactly the model — the last committed value per key, deleted
// keys absent — and the rebuilt table is structurally sound and accepts
// new traffic. `clean` controls CloseClean vs a simulated power loss
// (epoch discard + dirty pool close).
void RunRebuildEqualsModel(bool clean) {
  test::TempPoolFile file(clean ? "hybrid_reopen_clean"
                                : "hybrid_reopen_dirty");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts;
  opts.buckets_per_segment = 16;
  std::map<uint64_t, uint64_t> model;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    util::Xoshiro256 rng(77);
    for (int iter = 0; iter < 60000; ++iter) {
      const uint64_t key = rng.NextBounded(6000) + 1;
      switch (rng.NextBounded(4)) {
        case 0:
        case 1:
          if (api::IsOk(index->Insert(key, iter))) model[key] = iter;
          break;
        case 2:
          if (api::IsOk(index->Update(key, iter + 1))) model[key] = iter + 1;
          break;
        default:
          if (api::IsOk(index->Delete(key))) model.erase(key);
          break;
      }
    }
    if (clean) {
      index->CloseClean();
      pool->CloseClean();
    } else {
      index.reset();   // ~HybridTable discards pending retirements
      pool->CloseDirty();
    }
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->recovered_from_crash(), !clean);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->Verify());

  EXPECT_EQ(index->Stats().records, model.size());
  uint64_t value = 0;
  for (const auto& [key, expected] : model) {
    ASSERT_EQ(index->Search(key, &value), Status::kOk) << "key " << key;
    ASSERT_EQ(value, expected) << "key " << key;
  }
  // A deleted key must not resurrect from a superseded log record.
  for (uint64_t key = 1; key <= 6000; ++key) {
    if (model.count(key)) continue;
    ASSERT_EQ(index->Search(key, &value), Status::kNotFound)
        << "deleted key " << key << " resurrected by rebuild";
  }
  for (uint64_t key = 100000; key < 101000; ++key) {
    ASSERT_EQ(index->Insert(key, key), Status::kOk);
  }
  index->CloseClean();
  pool->CloseClean();
}

TEST(HybridRecoveryTest, RebuildEqualsModelAfterCleanClose) {
  RunRebuildEqualsModel(/*clean=*/true);
}

TEST(HybridRecoveryTest, RebuildEqualsModelAfterDirtyClose) {
  RunRebuildEqualsModel(/*clean=*/false);
}

// Var-key flavour of the dirty reopen: rebuild must re-share the VarKey
// blobs between slots and records, dedup by content (not blob address),
// and free loser blobs without touching winners.
TEST(HybridRecoveryTest, VarKeyRebuildAfterDirtyClose) {
  test::TempPoolFile file("hybrid_var_reopen");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts;
  opts.buckets_per_segment = 16;
  auto key_of = [](uint64_t i) {
    return "hybrid-var-key-" + std::to_string(i);
  };
  constexpr uint64_t kKeys = 4000;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    for (uint64_t i = 1; i <= kKeys; ++i) {
      ASSERT_EQ(index->Insert(key_of(i), i), Status::kOk);
    }
    for (uint64_t i = 1; i <= kKeys; i += 2) {
      ASSERT_EQ(index->Update(key_of(i), i * 2), Status::kOk);
    }
    for (uint64_t i = 4; i <= kKeys; i += 4) {
      ASSERT_EQ(index->Delete(key_of(i)), Status::kOk);
    }
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->Verify());
  uint64_t value = 0;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    if (i % 4 == 0) {
      ASSERT_EQ(index->Search(key_of(i), &value), Status::kNotFound) << i;
    } else {
      ASSERT_EQ(index->Search(key_of(i), &value), Status::kOk) << i;
      ASSERT_EQ(value, i % 2 == 1 ? i * 2 : i) << i;
    }
  }
  index->CloseClean();
  pool->CloseClean();
}

struct InjectionCleanup {
  ~InjectionCleanup() {
    pmem::CrashPointDisarm();
    if (pmem::TornWriteArmed()) pmem::TornWriteDisarm();
  }
};

// Crash inside the reclamation callback chain (after the superseded
// record was zeroed, before its tombstone was). Reclamation only ever
// destroys already-superseded records, so the logical contents must
// come back exactly — at worst the crash leaks a slot until the next
// rebuild GC.
TEST(HybridCrashTest, CrashMidReclaimPreservesLogicalState) {
  InjectionCleanup cleanup;
  test::TempPoolFile file("hybrid_crash_reclaim");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts;
  opts.buckets_per_segment = 16;
  auto epochs = std::make_unique<epoch::EpochManager>();
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), epochs.get(), opts);
  ASSERT_NE(index, nullptr);

  constexpr uint64_t kKeys = 3000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(index->Insert(k, k), Status::kOk);
  }
  // Deletes queue ReclaimPair retirements; the armed point fires from
  // inside one of them once the epoch advances far enough.
  ASSERT_TRUE(pmem::TornWriteArm());
  ASSERT_TRUE(pmem::CrashPointArm("hybrid_reclaim_after_zero"));
  bool crashed = false;
  uint64_t survivors_deleted = 0;
  try {
    for (uint64_t k = 2; k <= kKeys; k += 2) {
      ASSERT_EQ(index->Delete(k), Status::kOk);
      ++survivors_deleted;
    }
    epochs->DrainAll();
  } catch (const pmem::CrashInjected&) {
    crashed = true;
  }
  pmem::CrashPointDisarm();
  ASSERT_TRUE(crashed) << "reclaim crash point never fired";

  pmem::TornWriteRevert();
  epochs->DiscardAll();
  index.reset();
  epochs.reset();
  pool->CloseDirty();
  pool.reset();

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs2;
  index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs2, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->Verify());
  // Every delete that returned kOk is durable (the tombstone publish
  // persisted before Delete returned), whether or not its reclamation
  // callbacks got to run. Odd keys are all still present.
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; k += 2) {
    ASSERT_EQ(index->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
  for (uint64_t k = 2; k <= 2 * survivors_deleted && k <= kKeys; k += 2) {
    ASSERT_EQ(index->Search(k, &value), Status::kNotFound)
        << "deleted key " << k << " resurrected";
  }
  index->CloseClean();
  pool->CloseClean();
}

// Crash inside the rebuild itself (after the scan; after the GC). A
// half-finished rebuild leaves only zeroed losers / spent tombstones
// behind, so rebuilding again from the same image must converge to the
// identical logical table.
TEST(HybridCrashTest, CrashMidRebuildIsIdempotent) {
  for (const char* point :
       {"hybrid_rebuild_after_scan", "hybrid_rebuild_after_gc"}) {
    SCOPED_TRACE(point);
    InjectionCleanup cleanup;
    test::TempPoolFile file("hybrid_crash_rebuild");
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    DashOptions opts;
    opts.buckets_per_segment = 16;
    constexpr uint64_t kKeys = 3000;
    {
      epoch::EpochManager epochs;
      auto index =
          api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
      ASSERT_NE(index, nullptr);
      // Updates and deletes leave superseded records and tombstones in
      // the log for the rebuild GC to chew on.
      for (uint64_t k = 1; k <= kKeys; ++k) {
        ASSERT_EQ(index->Insert(k, k), Status::kOk);
      }
      for (uint64_t k = 1; k <= kKeys; k += 3) {
        ASSERT_EQ(index->Update(k, k * 7), Status::kOk);
      }
      for (uint64_t k = 5; k <= kKeys; k += 5) {
        ASSERT_EQ(index->Delete(k), Status::kOk);
      }
      index.reset();  // dirty: retirements discarded, log keeps garbage
      pool->CloseDirty();
      pool.reset();
    }

    pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    {
      epoch::EpochManager epochs;
      ASSERT_TRUE(pmem::TornWriteArm());
      ASSERT_TRUE(pmem::CrashPointArm(point));
      EXPECT_THROW(api::CreateKvIndex(IndexKind::kHybrid, pool.get(),
                                      &epochs, opts),
                   pmem::CrashInjected);
      pmem::CrashPointDisarm();
      pmem::TornWriteRevert();
      pool->CloseDirty();
      pool.reset();
    }

    pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    EXPECT_TRUE(index->Verify());
    uint64_t value = 0;
    for (uint64_t k = 1; k <= kKeys; ++k) {
      if (k % 5 == 0) {
        ASSERT_EQ(index->Search(k, &value), Status::kNotFound) << k;
      } else {
        ASSERT_EQ(index->Search(k, &value), Status::kOk) << k;
        ASSERT_EQ(value, k % 3 == 1 ? k * 7 : k) << k;
      }
    }
    index->CloseClean();
    pool->CloseClean();
  }
}

}  // namespace
}  // namespace dash::hybrid
