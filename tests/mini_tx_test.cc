#include "pmem/mini_tx.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pmem/crash_point.h"
#include "pmem/pool.h"
#include "test_util.h"

namespace dash::pmem {
namespace {

using test::TempPoolFile;

TEST(MiniTxTest, CommitAppliesAllStores) {
  TempPoolFile file("tx_commit");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* words = static_cast<uint64_t*>(pool->root());
  {
    MiniTx tx(pool.get());
    tx.Stage(&words[0], 11);
    tx.Stage(&words[1], 22);
    tx.Stage(&words[2], 33);
    tx.Commit();
  }
  EXPECT_EQ(words[0], 11u);
  EXPECT_EQ(words[1], 22u);
  EXPECT_EQ(words[2], 33u);
  pool->CloseClean();
}

TEST(MiniTxTest, AbortAppliesNothing) {
  TempPoolFile file("tx_abort");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* words = static_cast<uint64_t*>(pool->root());
  {
    MiniTx tx(pool.get());
    tx.Stage(&words[0], 99);
    // no Commit
  }
  EXPECT_EQ(words[0], 0u);
  // The log must be reusable afterwards.
  {
    MiniTx tx(pool.get());
    tx.Stage(&words[0], 7);
    tx.Commit();
  }
  EXPECT_EQ(words[0], 7u);
  pool->CloseClean();
}

TEST(MiniTxTest, StagePtrStoresPointerValue) {
  TempPoolFile file("tx_ptr");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* root = static_cast<char**>(pool->root());
  char* target = static_cast<char*>(pool->root()) + 128;
  {
    MiniTx tx(pool.get());
    tx.StagePtr(root, target);
    tx.Commit();
  }
  EXPECT_EQ(*root, target);
  pool->CloseClean();
}

// Crash before the commit mark: nothing may be applied after recovery.
TEST(MiniTxCrashTest, CrashBeforeCommitMarkDiscards) {
  TempPoolFile file("tx_crash_before");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    auto* words = static_cast<uint64_t*>(pool->root());
    ASSERT_TRUE(CrashPointArm("minitx_before_commit_mark"));
    bool crashed = false;
    try {
      MiniTx tx(pool.get());
      tx.Stage(&words[0], 42);
      tx.Commit();
    } catch (const CrashInjected&) {
      crashed = true;
    }
    CrashPointDisarm();
    ASSERT_TRUE(crashed);
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(static_cast<uint64_t*>(pool->root())[0], 0u);
  pool->CloseClean();
}

// Crash after the commit mark but before application: recovery re-applies.
TEST(MiniTxCrashTest, CrashAfterCommitMarkRedoes) {
  TempPoolFile file("tx_crash_after");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    auto* words = static_cast<uint64_t*>(pool->root());
    ASSERT_TRUE(CrashPointArm("minitx_after_commit_mark"));
    bool crashed = false;
    try {
      MiniTx tx(pool.get());
      tx.Stage(&words[0], 42);
      tx.Stage(&words[1], 43);
      tx.Commit();
    } catch (const CrashInjected&) {
      crashed = true;
    }
    CrashPointDisarm();
    ASSERT_TRUE(crashed);
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(static_cast<uint64_t*>(pool->root())[0], 42u);
  EXPECT_EQ(static_cast<uint64_t*>(pool->root())[1], 43u);
  pool->CloseClean();
}

// Crash mid-application: the redo log re-applies idempotently.
TEST(MiniTxCrashTest, CrashDuringApplyRedoes) {
  TempPoolFile file("tx_crash_apply");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    auto* words = static_cast<uint64_t*>(pool->root());
    ASSERT_TRUE(CrashPointArm("minitx_after_apply"));
    bool crashed = false;
    try {
      MiniTx tx(pool.get());
      tx.Stage(&words[0], 1);
      tx.Stage(&words[1], 2);
      tx.Commit();
    } catch (const CrashInjected&) {
      crashed = true;
    }
    CrashPointDisarm();
    ASSERT_TRUE(crashed);
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(static_cast<uint64_t*>(pool->root())[0], 1u);
  EXPECT_EQ(static_cast<uint64_t*>(pool->root())[1], 2u);
  pool->CloseClean();
}

TEST(MiniTxTest, PerThreadLogsAreIndependent) {
  TempPoolFile file("tx_threads");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* words = static_cast<uint64_t*>(pool->root());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        MiniTx tx(pool.get());
        tx.Stage(&words[t], static_cast<uint64_t>(i + 1));
        tx.Commit();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(words[t], 200u);
  pool->CloseClean();
}

TEST(MiniTxTest, MaxEntriesFit) {
  TempPoolFile file("tx_full");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* words = static_cast<uint64_t*>(pool->root());
  MiniTx tx(pool.get());
  for (size_t i = 0; i < TxLog::kMaxEntries; ++i) {
    tx.Stage(&words[i], i + 1);
  }
  tx.Commit();
  for (size_t i = 0; i < TxLog::kMaxEntries; ++i) {
    EXPECT_EQ(words[i], i + 1);
  }
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::pmem
